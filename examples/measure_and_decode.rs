//! End-to-end measurement flow: prepare a basis input, run the compiled
//! circuit noisily, sample shots and decode ququart levels back into
//! logical bitstrings (§5.2: "the measured state would be decoded
//! according to the compression strategy").
//!
//! The shot loop runs through the artifact's `Simulation` session, which
//! owns the kernel workspace and state buffers — no per-shot allocation
//! and no hand-threaded `Workspace`.
//!
//! Run: `cargo run --release --example measure_and_decode`

use rand::rngs::StdRng;
use rand::SeedableRng;

use quantum_waltz::prelude::*;
use waltz_math::C64;

fn main() {
    // A 3-controls generalized Toffoli on 6 qubits: |111 00 0> -> |111 00 1>.
    let circuit = quantum_waltz::circuits::generalized_toffoli(3);
    let n = circuit.n_qubits();
    let compiled = Compiler::new(Target::paper(Strategy::full_ququart()))
        .compile(&circuit)
        .expect("compiles");

    // Prepare the all-controls-on basis input.
    let input_index = 0b111_000usize; // controls 1, ancillas & target 0
    let mut amps = vec![C64::ZERO; 1 << n];
    amps[input_index] = C64::ONE;
    let initial = compiled.embed_logical_state(&amps, &compiled.initial_sites);

    let mut rng = StdRng::seed_from_u64(99);
    println!(
        "input  |{:0width$b}>  (controls all on)",
        input_index,
        width = n
    );
    println!(
        "expect |{:0width$b}>  (target flipped)\n",
        input_index | 1,
        width = n
    );

    // One noisy shot at a time, decoding each measured register. The
    // session reuses its buffers across all 300 trajectories.
    let mut sim = compiled.simulate();
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..300 {
        let final_state = sim.run_trajectory(&initial, &mut rng);
        let shot = compiled.sample_decoded(final_state, 1, &mut rng);
        for (bits, c) in shot {
            *counts.entry(bits).or_insert(0usize) += c;
        }
    }
    println!("decoded counts over 300 noisy shots:");
    let mut rows: Vec<(usize, usize)> = counts.into_iter().collect();
    rows.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (bits, count) in rows.iter().take(6) {
        println!("  |{:0width$b}>  x{count}", bits, width = n);
    }
    let correct = rows
        .iter()
        .find(|&&(bits, _)| bits == input_index | 1)
        .map(|&(_, c)| c)
        .unwrap_or(0);
    println!(
        "\ncorrect outcome rate: {:.1} % (gate+coherence noise accounts for the rest)",
        100.0 * correct as f64 / 300.0
    );
}
