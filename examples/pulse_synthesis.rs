//! Synthesize gate pulses with GRAPE against the paper's Eq. 2 transmon
//! Hamiltonian, including the iterative gate-time shrinking of §2.3.
//!
//! Run: `cargo run --release --example pulse_synthesis`

use waltz_pulse::{synth, GrapeOptions, TransmonSystem};

fn main() {
    println!("== GRAPE pulse synthesis on the Eq. 2 transmon ==\n");

    // 1. A single-qubit X on a guarded transmon (logical {0,1}, one guard).
    let system = TransmonSystem::paper(1, 2, 1);
    let opts = GrapeOptions::default();
    let x = synth::synthesize(&system, &waltz_gates::standard::x(), 35.0, 40, &opts);
    println!(
        "X  @ 35 ns : F = {:.4}, leakage {:.4}, {} iterations",
        x.fidelity, x.leakage, x.iterations
    );

    // 2. Hadamard at the same duration.
    let h = synth::synthesize(&system, &waltz_gates::standard::h(), 35.0, 40, &opts);
    println!("H  @ 35 ns : F = {:.4}", h.fidelity);

    // 3. The Fig. 2 ququart gate: H (x) H on one four-level device.
    let ququart = TransmonSystem::paper(1, 4, 1);
    let hh = synth::synthesize(
        &ququart,
        &synth::h_tensor_h_target(),
        90.0,
        90,
        &GrapeOptions {
            max_iters: 800,
            learning_rate: 0.006,
            leakage_weight: 0.3,
            ..GrapeOptions::default()
        },
    );
    println!(
        "H(x)H @ 90 ns on a ququart : F = {:.4} (paper class: 86 ns single-ququart pulse)",
        hh.fidelity
    );

    // 4. Iterative duration shrinking (§2.3): find the shortest X pulse
    //    holding F >= 0.99.
    println!("\nDuration shrinking for X (target F >= 0.99):");
    let shrink = synth::shrink_duration(
        &system,
        &waltz_gates::standard::x(),
        60.0,
        60,
        0.75,
        0.99,
        &GrapeOptions {
            max_iters: 400,
            infidelity_target: 5e-3,
            ..GrapeOptions::default()
        },
    );
    for (t, f) in &shrink.attempts {
        println!("  T = {t:6.1} ns -> F = {f:.4}");
    }
    println!(
        "shortest pulse meeting the target: {:.1} ns (paper's calibrated U: 35 ns)",
        shrink.duration_ns
    );
}
