//! The compile-and-simulate service end to end: bind a loopback
//! server, stream a batch from a client, resubmit to hit the shared
//! artifact cache, then simulate a compiled circuit server-side by
//! cache reference — no artifact bytes on the wire.
//!
//! The server fronts the same supervised batch engine as
//! `examples/supervised_batch.rs`; every report that comes back over
//! TCP is element-wise identical to an in-process
//! `Supervisor::compile_batch`.
//!
//! Run: `cargo run --release --example serve_demo`

use quantum_waltz::circuits::{cuccaro_adder, generalized_toffoli, qram};
use quantum_waltz::codec::content_hash;
use quantum_waltz::core::{Compiler, Strategy, Target};
use quantum_waltz::prelude::*;
use quantum_waltz::serve::{ArtifactSource, BatchEvent, BatchOptions, ServeClient};

fn main() {
    // Port 0: let the OS pick, as a test harness would. The server
    // attaches a process-wide ArtifactCache shared by every connection.
    let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
    let server =
        Server::bind("127.0.0.1:0", compiler, ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    println!("serving on {addr}");

    let batch = vec![generalized_toffoli(3), cuccaro_adder(2), qram(2)];
    let fingerprint = server.supervisor().compiler().fingerprint();
    let first_hash = content_hash(&batch[0]);

    // Stream the batch event by event: start updates, per-job reports,
    // the closing tally.
    let mut client = ServeClient::connect(&addr).expect("connect");
    let mut stream = client
        .submit_batch(batch.clone(), BatchOptions::default().with_updates())
        .expect("batch admitted");
    while let Some(event) = stream.next_event().expect("stream") {
        match event {
            BatchEvent::Update { index, phase } => println!("job {index}: {phase:?}"),
            BatchEvent::Done(report) => println!(
                "job {}: {:?} via {:?} ({:.0} ms, cached: {})",
                report.index, report.status, report.degradation, report.wall_ms, report.cached
            ),
            BatchEvent::Complete {
                ok,
                failed,
                cancelled,
            } => {
                println!("batch complete: {ok} ok, {failed} failed, {cancelled} cancelled")
            }
        }
    }

    // Resubmit: every job replays from the shared cache, all passes
    // skipped.
    let reports = client.compile_batch(batch).expect("warm batch");
    assert!(reports.iter().all(|r| r.cached));
    println!("warm resubmission: {} jobs, all cached", reports.len());

    // Simulate by cache reference — the client never held the artifact.
    let estimate = client
        .simulate(
            ArtifactSource::Cached {
                circuit_hash: first_hash,
                fingerprint,
            },
            40,
            11,
            16,
        )
        .expect("remote simulate");
    println!(
        "remote fidelity over {} trajectories: {:.3} ± {:.3}",
        estimate.fidelities.len(),
        estimate.mean,
        estimate.std_error
    );

    drop(client);
    let stats = server.shutdown();
    println!("{}", stats.render());
}
