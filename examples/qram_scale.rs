//! Scale a QRAM fetch past the dense-state wall with the sparse
//! amplitude-map representation.
//!
//! A QRAM circuit is pure routing: every logical gate (X, CX, CSWAP)
//! permutes the computational basis, so a classical basis input keeps a
//! tiny support — the Hadamard sandwiches inside the compiled CSWAP
//! decompositions open a few amplitudes and immediately close them
//! again. The dense engine still pays 16 bytes for every one of the
//! 2^n amplitudes per sweep; the sparse amplitude map pays 24 bytes per
//! *nonzero*. This example races the two engines at 12 qubits, runs the
//! noisy adaptive estimator at 21 qubits (where a dense trajectory
//! takes ~a minute), and then traces a 38-qubit fetch whose dense state
//! would need 4 TiB.
//!
//! Run: `cargo run --release --example qram_scale`

use quantum_waltz::prelude::*;
use rand::rngs::StdRng;
use waltz_circuits::qram;
use waltz_sim::{ideal, trajectory, AdaptiveState, Register, SparsePolicy, SparseState, Workspace};

/// Noiseless adaptive run from |0...0>: (peak nnz, peak sparse bytes,
/// final nnz, wall time).
fn trace_support(compiled: &CompiledCircuit) -> (usize, usize, usize, std::time::Duration) {
    let policy = SparsePolicy::default();
    let mut ws = Workspace::serial();
    ws.set_sparse_density_threshold(policy.density_threshold);
    ws.set_sparse_epsilon(policy.epsilon);
    let t0 = std::time::Instant::now();
    let out = match compiled.sim_segments() {
        Some(seg) => {
            let initial = SparseState::basis(seg.first_register(), 0);
            let mut out = AdaptiveState::zero(seg.first_register());
            let mut scratch = AdaptiveState::zero(seg.first_register());
            ideal::run_segmented_adaptive_into(seg, &initial, &mut out, &mut scratch, &mut ws);
            out
        }
        None => {
            let tc = compiled.sim_circuit();
            let initial = SparseState::basis(&tc.register, 0);
            let mut out = AdaptiveState::zero(&tc.register);
            ideal::run_adaptive_into(tc, &initial, &mut out, &mut ws);
            out
        }
    };
    (
        out.peak_nnz(),
        out.peak_state_bytes(),
        out.nnz(),
        t0.elapsed(),
    )
}

/// Noisy adaptive trajectory sweep from |0...0>: (estimate, traj/sec).
fn adaptive_sweep(
    compiled: &CompiledCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> (quantum_waltz::sim::trajectory::FidelityEstimate, f64) {
    let policy = SparsePolicy::default();
    let basis = |_reg: &Register, _rng: &mut StdRng, out: &mut SparseState| {
        out.fill_basis(0);
    };
    let t0 = std::time::Instant::now();
    let est = match compiled.sim_segments() {
        Some(seg) => trajectory::average_fidelity_segmented_adaptive_with(
            seg,
            noise,
            trajectories,
            seed,
            &policy,
            basis,
        ),
        None => trajectory::average_fidelity_adaptive_with(
            compiled.sim_circuit(),
            noise,
            trajectories,
            seed,
            &policy,
            basis,
        ),
    };
    (
        est,
        trajectories as f64 / t0.elapsed().as_secs_f64().max(1e-9),
    )
}

fn main() {
    if !waltz_sim::sparse_enabled() {
        println!("WALTZ_SPARSE=0: the sparse representation is disabled; this");
        println!("example exists to show it off. Unset WALTZ_SPARSE and rerun.");
        return;
    }
    let noise = NoiseModel::paper();
    let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));

    // --- 12 qubits: both engines are fast — race them head to head. ---
    let circuit = qram(3);
    let compiled = compiler.compile(&circuit).expect("compiles");
    println!(
        "qram(3): {} qubits, dense peak {} KiB",
        circuit.n_qubits(),
        compiled.sim_state_bytes_peak() >> 10,
    );
    let trajectories = 60;
    let basis_dense = |_reg: &Register, _rng: &mut StdRng, out: &mut waltz_sim::State| {
        out.fill_product_with(|_, lvl| {
            if lvl == 0 {
                waltz_math::C64::ONE
            } else {
                waltz_math::C64::ZERO
            }
        });
    };
    let t0 = std::time::Instant::now();
    let dense_est = match compiled.sim_segments() {
        Some(seg) => {
            trajectory::average_fidelity_segmented_with(seg, &noise, trajectories, 7, basis_dense)
        }
        None => trajectory::average_fidelity_with(
            compiled.sim_circuit(),
            &noise,
            trajectories,
            7,
            basis_dense,
        ),
    };
    let dense_rate = trajectories as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let (adaptive_est, adaptive_rate) = adaptive_sweep(&compiled, &noise, trajectories, 7);
    println!(
        "  dense:    {dense_rate:>8.0} traj/s  fidelity {:.3} ± {:.3}",
        dense_est.mean, dense_est.std_error
    );
    println!(
        "  adaptive: {adaptive_rate:>8.0} traj/s  fidelity {:.3} ± {:.3}  ({:.1}x)",
        adaptive_est.mean,
        adaptive_est.std_error,
        adaptive_rate / dense_rate
    );

    // --- 21 qubits: a dense trajectory takes ~a minute; adaptive ~1 s. -
    let circuit = qram(4);
    let compiled = compiler.compile(&circuit).expect("compiles");
    let dense_amps = compiled.sim_state_bytes_peak() / 16;
    println!(
        "\nqram(4): {} qubits, dense peak {} MiB",
        circuit.n_qubits(),
        compiled.sim_state_bytes_peak() >> 20,
    );
    let (nnz_peak, sparse_bytes, nnz_final, dt) = trace_support(&compiled);
    println!(
        "  noiseless fetch: peak nnz {nnz_peak} of {dense_amps} amplitudes \
         ({sparse_bytes} B sparse), back to {nnz_final} basis state(s) in {dt:.2?}"
    );
    let (est, rate) = adaptive_sweep(&compiled, &noise, 12, 7);
    println!(
        "  noisy adaptive:  {rate:>8.1} traj/s  fidelity {:.3} ± {:.3}",
        est.mean, est.std_error
    );

    // --- 38 qubits: dense is out of the question — 4 TiB of state. ----
    let circuit = qram(5);
    let compiled = compiler.compile(&circuit).expect("compiles");
    let reg_amps: u128 = match compiled.sim_segments() {
        Some(seg) => seg.first_register().total_dim() as u128,
        None => compiled.sim_circuit().register.total_dim() as u128,
    };
    println!(
        "\nqram(5): {} qubits, {reg_amps} dense amplitudes \
         ({:.1} TiB — not allocatable here)",
        circuit.n_qubits(),
        reg_amps as f64 * 16.0 / (1u64 << 40) as f64,
    );
    println!(
        "  analyze predicts: sparse {} B vs dense {} B (plan stays honest:\n\
         \x20   the bound can't see Hadamard sandwiches collapse)",
        compiled.sparse_state_bytes_pred().unwrap_or(0),
        compiled.sim_state_bytes_peak(),
    );
    let (nnz_peak, sparse_bytes, nnz_final, dt) = trace_support(&compiled);
    println!(
        "  measured fetch:   peak nnz {nnz_peak} ({sparse_bytes} B sparse), \
         back to {nnz_final} basis state(s) in {dt:.2?}"
    );
    println!("\nSame compiled schedule, same apply_op interface — the amplitude map");
    println!("walks a 2^38-dimensional space touching a handful of entries.");
}
