//! Quickstart: compile a Toffoli-heavy circuit three ways and compare.
//!
//! One `Target` describes the machine, one `Compiler` is reused across
//! strategies, and the returned artifact estimates EPS and simulates
//! itself — no separate library/noise/workspace plumbing.
//!
//! Run: `cargo run --release --example quickstart`

use quantum_waltz::prelude::*;

fn main() {
    // A 6-qubit generalized Toffoli: three controls AND-ed into a target.
    let circuit = quantum_waltz::circuits::generalized_toffoli(3);
    println!(
        "logical circuit: {} qubits, {} gates ({} three-qubit)",
        circuit.n_qubits(),
        circuit.len(),
        circuit.three_qubit_gate_count()
    );

    for strategy in [
        Strategy::qubit_only(),
        Strategy::qubit_only_itoffoli(),
        Strategy::mixed_radix_ccz(),
        Strategy::full_ququart(),
    ] {
        let compiler = Compiler::new(Target::paper(strategy));
        let compiled = compiler.compile(&circuit).expect("compiles");
        // Trajectory-method fidelity on random product inputs (§6.4).
        let fid = compiled.simulate().with_seed(7).average_fidelity(200);
        println!(
            "{:<28} pulses {:>3}  duration {:>7.0} ns  EPS {:.3}  simulated fidelity {:.3} ± {:.3}",
            strategy.name(),
            compiled.stats.hw_ops,
            compiled.stats.total_duration_ns,
            compiled.eps().total(),
            fid.mean,
            fid.std_error,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 7): full-ququart > mixed-radix ≈ iToffoli > qubit-only."
    );
}
