//! Quickstart: compile a Toffoli-heavy circuit three ways and compare.
//!
//! Run: `cargo run --release --example quickstart`

use quantum_waltz::prelude::*;

fn main() {
    // A 6-qubit generalized Toffoli: three controls AND-ed into a target.
    let circuit = quantum_waltz::circuits::generalized_toffoli(3);
    println!(
        "logical circuit: {} qubits, {} gates ({} three-qubit)",
        circuit.n_qubits(),
        circuit.len(),
        circuit.three_qubit_gate_count()
    );

    let lib = GateLibrary::paper();
    let noise = NoiseModel::paper();

    for strategy in [
        Strategy::qubit_only(),
        Strategy::qubit_only_itoffoli(),
        Strategy::mixed_radix_ccz(),
        Strategy::full_ququart(),
    ] {
        let compiled = compile(&circuit, &strategy, &lib).expect("compiles");
        let eps = compiled.eps(&noise.coherence);
        // Trajectory-method fidelity on random product inputs (§6.4).
        let fid = waltz_sim::trajectory::average_fidelity_with(
            compiled.sim_circuit(),
            &noise,
            200,
            7,
            |_, rng, out| compiled.write_random_product_initial_state(rng, out),
        );
        println!(
            "{:<28} pulses {:>3}  duration {:>7.0} ns  EPS {:.3}  simulated fidelity {:.3} ± {:.3}",
            strategy.name(),
            compiled.stats.hw_ops,
            compiled.stats.total_duration_ns,
            eps.total(),
            fid.mean,
            fid.std_error,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 7): full-ququart > mixed-radix ≈ iToffoli > qubit-only."
    );
}
