//! Supervised batch submission: compile a mixed workload where individual
//! jobs may fail, run over deadline, or bust the memory budget — without
//! any of them taking down the batch.
//!
//! A `Supervisor` wraps the compiler with per-job `catch_unwind`
//! isolation, a wall-clock deadline, and a live state-byte budget whose
//! overruns walk a degradation ladder (forced windowed registers, then
//! the whole-program demoted register) before being rejected with a
//! structured `OverBudget` error. Each job comes back as a `JobReport`:
//! match on its status instead of unwrapping a batch-wide `Result`.
//!
//! Run: `cargo run --release --example supervised_batch`

use quantum_waltz::circuits::{cuccaro_adder, generalized_toffoli, qram};
use quantum_waltz::core::{
    CompileError, Compiler, JobStatus, Strategy, Supervisor, SupervisorPolicy, Target,
};
use quantum_waltz::prelude::*;

fn main() {
    // A realistic sweep: mostly healthy circuits, one malformed entry
    // (no qubits), one big enough to stress a deliberately small budget.
    let batch = vec![
        generalized_toffoli(2),
        generalized_toffoli(3),
        Circuit::new(0), // malformed: fails validation, nothing else
        cuccaro_adder(2),
        qram(2),
    ];

    let supervisor = Supervisor::with_policy(
        Compiler::new(Target::paper(Strategy::mixed_radix_ccz())),
        SupervisorPolicy::default()
            .with_deadline_ms(30_000)
            // Small on purpose: watch larger registers degrade to fit.
            .with_state_budget_bytes(1 << 12),
    );

    for job in supervisor.compile_batch(&batch) {
        print!("job {}: ", job.index);
        match (&job.status, &job.result) {
            (JobStatus::Ok, Ok(artifact)) => {
                let fid = artifact.simulate().with_seed(11).average_fidelity(50);
                println!(
                    "ok via {:?} — {} pulses, peak state {} B, fidelity {:.3} ± {:.3} ({:.0} ms)",
                    job.degradation,
                    artifact.stats.hw_ops,
                    artifact.sim_state_bytes_peak(),
                    fid.mean,
                    fid.std_error,
                    job.wall_ms,
                );
            }
            (JobStatus::OverBudget, Err(CompileError::OverBudget { needed, limit })) => {
                println!("rejected — needs {needed} state bytes, budget {limit}");
            }
            (JobStatus::TimedOut, Err(e)) => println!("deadline: {e}"),
            (JobStatus::Panicked, Err(e)) => println!("isolated panic: {e}"),
            (_, Err(e)) => println!("error: {e}"),
            (status, Ok(_)) => unreachable!("status {status:?} with an artifact"),
        }
    }
}
