//! Simulate a noisy QRAM fetch end to end: compile, run trajectories, and
//! inspect how the CSWAP orientation case study (§7.1) plays out.
//!
//! Run: `cargo run --release --example noisy_qram`

use quantum_waltz::prelude::*;
use waltz_circuits::qram;

fn main() {
    // 2 address bits, 4 words, one bus: 7 qubits, CSWAP-dominated.
    let circuit = qram(2);
    println!(
        "QRAM: {} qubits, {} gates (1q/2q/3q = {:?})\n",
        circuit.n_qubits(),
        circuit.len(),
        circuit.gate_counts()
    );

    let strategies = [
        ("CSWAP decomposed through CCZ", Strategy::mixed_radix_ccz()),
        (
            "native mixed-radix CSWAP",
            Strategy::MixedRadix {
                ccx: MrCcxMode::CczTransform,
                native_cswap: true,
            },
        ),
        (
            "full-ququart, oriented CSWAP",
            Strategy::FullQuquart {
                use_ccz: true,
                cswap: FqCswapMode::NativeOriented,
            },
        ),
    ];
    for (label, strategy) in strategies {
        let compiled = Compiler::new(Target::paper(strategy))
            .compile(&circuit)
            .expect("compiles");
        let fid = compiled.simulate().with_seed(11).average_fidelity(300);
        println!(
            "{label:<32} pulses {:>3}  duration {:>7.0} ns  fidelity {:.3} ± {:.3}",
            compiled.stats.hw_ops, compiled.stats.total_duration_ns, fid.mean, fid.std_error
        );
    }
    println!("\nPaper §7.1: keeping CSWAPs native and orienting targets together wins.");
}
