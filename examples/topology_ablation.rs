//! Ablation: how does the device topology change the picture?
//!
//! The paper evaluates on a 2D mesh (§6.2, "relative density on the upper
//! end of realized superconducting connectivity graphs"). This ablation
//! compiles the same adder onto a line, the mesh and a heavy-hex patch and
//! compares pulse counts, routing swaps and EPS — quantifying how much of
//! the ququart advantage survives sparser hardware.
//!
//! Run: `cargo run --release --example topology_ablation`

use quantum_waltz::prelude::*;
use waltz_arch::Topology;
use waltz_circuits::cuccaro_adder;

fn main() {
    let circuit = cuccaro_adder(4); // 10 qubits

    println!(
        "Cuccaro adder, {} qubits — topology ablation\n",
        circuit.n_qubits()
    );
    println!(
        "{:<14} {:<26} {:>7} {:>6} {:>10} {:>8}",
        "topology", "strategy", "pulses", "swaps", "duration", "EPS"
    );
    for strategy in [
        Strategy::qubit_only(),
        Strategy::mixed_radix_ccz(),
        Strategy::full_ququart(),
    ] {
        let devices = strategy.device_count(circuit.n_qubits());
        let topologies: Vec<(&str, Topology)> = vec![
            ("line", Topology::line(devices)),
            ("2D mesh", Topology::grid(devices)),
            ("heavy-hex", heavy_hex_with_at_least(devices)),
        ];
        for (name, topo) in topologies {
            let compiled = Compiler::new(Target::paper(strategy).with_topology(topo))
                .compile(&circuit)
                .expect("topology fits");
            let eps = compiled.eps();
            println!(
                "{:<14} {:<26} {:>7} {:>6} {:>9.0}ns {:>8.4}",
                name,
                strategy.name(),
                compiled.stats.hw_ops,
                compiled.stats.routing_swaps,
                compiled.stats.total_duration_ns,
                eps.total()
            );
        }
        println!();
    }
    println!("Denser topologies need fewer routing swaps; the ququart advantage");
    println!("persists on every graph because it removes gates, not just movement.");
}

/// Smallest heavy-hex patch with at least `n` devices.
fn heavy_hex_with_at_least(n: usize) -> Topology {
    for rows in 2..6 {
        for cols in 4..12 {
            let t = Topology::heavy_hex(rows, cols);
            if t.n_devices() >= n {
                return t;
            }
        }
    }
    Topology::heavy_hex(6, 12)
}
