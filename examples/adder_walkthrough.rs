//! Compile the Cuccaro ripple-carry adder and inspect what the Quantum
//! Waltz actually emits: per-pass reports, routing swaps, ENC/DEC
//! windows, configuration choices and the schedule.
//!
//! Run: `cargo run --release --example adder_walkthrough`

use quantum_waltz::prelude::*;
use waltz_circuits::cuccaro_adder;

fn main() {
    // 3-bit adder: 8 qubits, 6 Toffolis, heavily serialized.
    let circuit = cuccaro_adder(3);
    println!(
        "Cuccaro adder: {} qubits, {} gates (1q/2q/3q = {:?})\n",
        circuit.n_qubits(),
        circuit.len(),
        circuit.gate_counts()
    );

    for strategy in [
        Strategy::qubit_only(),
        Strategy::mixed_radix_ccz(),
        Strategy::full_ququart(),
    ] {
        let compiler = Compiler::new(Target::paper(strategy));
        let compiled = compiler.compile(&circuit).expect("compiles");
        let eps = compiled.eps();
        println!("--- {} ---", strategy.name());
        println!(
            "  pulses {:>3}  routing swaps {:>2}  ENC windows {:>2}  duration {:>8.0} ns",
            compiled.stats.hw_ops,
            compiled.stats.routing_swaps,
            compiled.stats.enc_windows,
            compiled.stats.total_duration_ns
        );
        println!(
            "  gate EPS {:.4}   coherence EPS {:.4}   total {:.4}",
            eps.gate,
            eps.coherence,
            eps.total()
        );
        // The pipeline is inspectable: one report per pass.
        println!("  pipeline ({:.2} ms total):", compiled.total_wall_ms());
        for report in compiled.reports() {
            println!(
                "    {:<10} {:>8.3} ms  ops {:>3} -> {:<3}  depth {:>3} -> {:<3}",
                report.pass.name(),
                report.wall_ms,
                report.ops_in,
                report.ops_out,
                report.depth_in,
                report.depth_out,
            );
        }
        // Show the first few scheduled pulses.
        for op in compiled.timed.ops.iter().take(6) {
            println!(
                "    t={:>7.0} ns  {:<26} on devices {:?}",
                op.start_ns, op.label, op.operands
            );
        }
        let report = waltz_core::verify::check(&circuit, &compiled, 2, 99);
        println!(
            "  verified against logical semantics: min fidelity {:.9}\n",
            report.min_fidelity
        );
    }
}
