//! Compile the Cuccaro ripple-carry adder and inspect what the Quantum
//! Waltz actually emits: routing swaps, ENC/DEC windows, configuration
//! choices and the schedule.
//!
//! Run: `cargo run --release --example adder_walkthrough`

use quantum_waltz::prelude::*;
use waltz_circuits::cuccaro_adder;

fn main() {
    // 3-bit adder: 8 qubits, 6 Toffolis, heavily serialized.
    let circuit = cuccaro_adder(3);
    println!(
        "Cuccaro adder: {} qubits, {} gates (1q/2q/3q = {:?})\n",
        circuit.n_qubits(),
        circuit.len(),
        circuit.gate_counts()
    );

    let lib = GateLibrary::paper();
    let model = CoherenceModel::paper();

    for strategy in [
        Strategy::qubit_only(),
        Strategy::mixed_radix_ccz(),
        Strategy::full_ququart(),
    ] {
        let compiled = compile(&circuit, &strategy, &lib).expect("compiles");
        let eps = compiled.eps(&model);
        println!("--- {} ---", strategy.name());
        println!(
            "  pulses {:>3}  routing swaps {:>2}  ENC windows {:>2}  duration {:>8.0} ns",
            compiled.stats.hw_ops,
            compiled.stats.routing_swaps,
            compiled.stats.enc_windows,
            compiled.stats.total_duration_ns
        );
        println!(
            "  gate EPS {:.4}   coherence EPS {:.4}   total {:.4}",
            eps.gate,
            eps.coherence,
            eps.total()
        );
        // Show the first few scheduled pulses.
        for op in compiled.timed.ops.iter().take(6) {
            println!(
                "    t={:>7.0} ns  {:<26} on devices {:?}",
                op.start_ns, op.label, op.operands
            );
        }
        let report = waltz_core::verify::check(&circuit, &compiled, 2, 99);
        println!(
            "  verified against logical semantics: min fidelity {:.9}\n",
            report.min_fidelity
        );
    }
}
