//! SIMD parity and trajectory-engine determinism.
//!
//! Every vectorized sweep arm (diagonal, permutation, dense
//! single-/two-qudit, general dense, and the diagonal single-qudit
//! scale fast paths) must agree with the always-compiled scalar fallback
//! to 1e-12 — the tolerance absorbs the one-ulp differences FMA's single
//! rounding introduces. The generators draw mixed-radix registers with
//! odd dimensions, non-power-of-two amplitude counts and operand sets
//! that put the paired innermost qudit at every stride, so the pairing
//! detection, the remainder handling and the unaligned 256-bit loads are
//! all on trial, not just the friendly all-ququart case.
//!
//! On hosts without AVX2+FMA both workspaces run the scalar body and the
//! parity tests pass trivially; the determinism tests below are
//! host-independent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use waltz_math::{linalg, Matrix, C64};
use waltz_noise::NoiseModel;
use waltz_sim::{
    trajectory, GateKernel, Register, SegmentedCircuit, SimdLevel, State, TimedCircuit, TimedOp,
    TrajectoryPool, Workspace,
};

const TOL: f64 = 1e-12;

/// A Haar-random state on a register.
fn random_state(reg: &Register, seed: u64) -> State {
    let mut rng = StdRng::seed_from_u64(seed);
    let amps = linalg::haar_state(reg.total_dim(), &mut rng);
    State::from_amplitudes(reg, amps)
}

/// A random unitary of dimension `n` of the requested structure class.
fn random_unitary(n: usize, class: usize, rng: &mut StdRng) -> Matrix {
    match class {
        0 => Matrix::from_diag(
            &(0..n)
                .map(|_| C64::cis(rng.gen::<f64>() * std::f64::consts::TAU))
                .collect::<Vec<_>>(),
        ),
        1 => {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let mut m = Matrix::zeros(n, n);
            for (j, &p) in perm.iter().enumerate() {
                m[(p, j)] = C64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
            }
            m
        }
        _ => linalg::haar_unitary(n, rng),
    }
}

/// Applies `u` twice from the same random state — once on a workspace
/// pinned to the host's detected SIMD tier, once pinned to scalar — and
/// asserts 1e-12 amplitude agreement.
fn assert_simd_parity(reg: &Register, u: &Matrix, operands: &[usize], seed: u64) {
    let kernel = GateKernel::classify(u, operands.len());
    let mut scalar_ws = Workspace::serial();
    scalar_ws.set_simd_level(SimdLevel::Scalar);
    let mut vector_ws = Workspace::serial();
    vector_ws.set_simd_level(SimdLevel::detect());

    let mut scalar = random_state(reg, seed);
    scalar.apply_kernel(&kernel, u, operands, &mut scalar_ws);
    let mut vector = random_state(reg, seed);
    vector.apply_kernel(&kernel, u, operands, &mut vector_ws);
    for (i, (a, b)) in vector
        .amplitudes()
        .iter()
        .zip(scalar.amplitudes())
        .enumerate()
    {
        assert!(
            a.approx_eq(*b, TOL),
            "{} arm deviates from scalar at amplitude {i} (dims {:?}, operands {:?}): {a} vs {b}",
            kernel.name(),
            reg.dims(),
            operands,
        );
    }
}

/// A register of `n` qudits with dimensions drawn from {2, 3, 4, 5}:
/// odd dimensions break the innermost-pairing precondition at some
/// positions and make most total amplitude counts non-powers of two.
fn random_mixed_register(rng: &mut StdRng) -> Register {
    let n = rng.gen_range(2..=5usize);
    let choices = [2u8, 3, 4, 5];
    Register::new(
        (0..n)
            .map(|_| choices[rng.gen_range(0..choices.len())])
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every kernel class on random mixed-radix shapes: the classified
    // kernel run at the detected SIMD tier matches the scalar body.
    #[test]
    fn vector_arms_match_scalar_on_random_registers(
        seed in 0u64..100_000,
        class in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = random_mixed_register(&mut rng);
        let max_k = reg.n_qudits().min(3);
        let k = rng.gen_range(1..=max_k);
        let mut operands: Vec<usize> = Vec::new();
        while operands.len() < k {
            let q = rng.gen_range(0..reg.n_qudits());
            if !operands.contains(&q) {
                operands.push(q);
            }
        }
        let dim: usize = operands.iter().map(|&q| reg.dim(q)).product();
        let u = random_unitary(dim, class, &mut rng);
        assert_simd_parity(&reg, &u, &operands, seed.wrapping_add(1));
    }
}

#[test]
fn diagonal_single_qudit_scale_paths_match_scalar() {
    // The diagonal single-qudit fast path takes the periodic-pattern
    // vector arm when the operand has stride 1 and the run-scaling arm
    // otherwise; sweep the operand over every position (= every stride)
    // of registers whose innermost dimension is even, odd, and larger
    // than the 16-lane pattern cap.
    for (dims, seed) in [
        (vec![2u8, 4, 2, 4, 2], 100u64),
        (vec![4, 3, 5, 2], 110),
        (vec![3, 4, 4, 3], 120),
        (vec![5, 5, 2, 2, 3], 130),
    ] {
        let reg = Register::new(dims);
        for q in 0..reg.n_qudits() {
            let mut rng = StdRng::seed_from_u64(seed + q as u64);
            let u = random_unitary(reg.dim(q), 0, &mut rng);
            assert_simd_parity(&reg, &u, &[q], seed + 10 + q as u64);
        }
    }
}

#[test]
fn dense_arms_match_scalar_at_unrolled_dimensions() {
    // The hand-unrolled gather-once arms: single-qudit d=2 and d=4, the
    // tiled two-qudit arm (4^7 amplitudes — hundreds of full 8-pair
    // tiles plus a remainder), and the general dense 3-operand arm.
    let reg = Register::ququarts(7);
    let mut rng = StdRng::seed_from_u64(200);
    for q in [0usize, 3, 6] {
        let u = linalg::haar_unitary(4, &mut rng);
        assert_simd_parity(&reg, &u, &[q], 210 + q as u64);
    }
    for (a, b) in [(0usize, 6usize), (2, 3), (6, 1)] {
        let u = linalg::haar_unitary(16, &mut rng);
        assert_simd_parity(&reg, &u, &[a, b], 220 + a as u64);
    }
    let u = linalg::haar_unitary(64, &mut rng);
    assert_simd_parity(&reg, &u, &[1, 4, 5], 230);

    // d=2 single-qudit on a qubit register, every operand position.
    let reg = Register::qubits(10);
    for q in [0usize, 5, 9] {
        let u = linalg::haar_unitary(2, &mut rng);
        assert_simd_parity(&reg, &u, &[q], 240 + q as u64);
    }
}

#[test]
fn odd_innermost_dimension_still_agrees() {
    // An odd innermost dimension defeats the pair detection, so the
    // dispatcher must fall through to the scalar body — parity here
    // guards the *dispatch* logic, not the lanes.
    let reg = Register::new(vec![4, 2, 3]);
    let mut rng = StdRng::seed_from_u64(300);
    for class in 0..3 {
        let u = random_unitary(8, class, &mut rng);
        assert_simd_parity(&reg, &u, &[0, 1], 310 + class as u64);
    }
}

#[test]
fn set_simd_level_clamps_to_the_host() {
    let mut ws = Workspace::serial();
    ws.set_simd_level(SimdLevel::Scalar);
    assert_eq!(ws.simd_level(), SimdLevel::Scalar);
    ws.set_simd_level(SimdLevel::Avx2Fma);
    // Granted only where the host can actually run it.
    assert_eq!(ws.simd_level(), SimdLevel::detect());
}

// ---------------------------------------------------------------------
// Trajectory-engine determinism
// ---------------------------------------------------------------------

/// A small mixed-kernel schedule for the determinism tests.
fn determinism_circuit() -> TimedCircuit {
    let reg = Register::new(vec![4, 2, 4, 2]);
    let mut tc = TimedCircuit::new(reg.clone());
    let mut rng = StdRng::seed_from_u64(400);
    let mut t = 0.0;
    for i in 0..6 {
        let k = 1 + (i % 2);
        let mut operands: Vec<usize> = Vec::new();
        while operands.len() < k {
            let q = rng.gen_range(0..reg.n_qudits());
            if !operands.contains(&q) {
                operands.push(q);
            }
        }
        let dim: usize = operands.iter().map(|&q| reg.dim(q)).product();
        let u = random_unitary(dim, i % 3, &mut rng);
        let error_dims: Vec<u8> = operands.iter().map(|&q| reg.dim(q) as u8).collect();
        tc.ops.push(TimedOp::new(
            format!("op{i}"),
            u,
            operands,
            error_dims,
            t,
            50.0,
            0.995,
        ));
        t += 50.0;
    }
    tc.total_duration_ns = t;
    tc
}

/// Fixed seed, varying pool width: the per-trajectory sample vector must
/// be bit-identical, because every trajectory's RNG seed derives from
/// `(seed, global index)` alone and each sample lands in its own slot.
#[test]
fn trajectory_samples_are_bit_identical_across_thread_counts() {
    let tc = determinism_circuit();
    let noise = NoiseModel::paper();
    let (trajectories, seed) = (33usize, 0xD5EEDu64); // not a multiple of any width below
    let reference =
        trajectory::fidelity_samples_on(&TrajectoryPool::serial(), &tc, &noise, trajectories, seed);
    assert_eq!(reference.len(), trajectories);
    for threads in [2usize, 4, 7] {
        let pool = TrajectoryPool::new(threads);
        let samples = trajectory::fidelity_samples_on(&pool, &tc, &noise, trajectories, seed);
        assert!(
            reference
                .iter()
                .zip(&samples)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "samples drifted at {threads} threads"
        );
        // And therefore the estimate is bit-identical too.
        let serial_est = trajectory::average_fidelity_on(
            &TrajectoryPool::serial(),
            &tc,
            &noise,
            trajectories,
            seed,
        );
        let pooled_est = trajectory::average_fidelity_on(&pool, &tc, &noise, trajectories, seed);
        assert_eq!(serial_est.mean.to_bits(), pooled_est.mean.to_bits());
        assert_eq!(
            serial_est.std_error.to_bits(),
            pooled_est.std_error.to_bits()
        );
    }
}

/// The segmented (windowed-register) estimator under the same contract.
#[test]
fn segmented_estimates_are_bit_identical_across_thread_counts() {
    let seg = SegmentedCircuit::single(determinism_circuit());
    let noise = NoiseModel::paper();
    let serial =
        trajectory::average_fidelity_segmented_on(&TrajectoryPool::serial(), &seg, &noise, 21, 777);
    let pooled =
        trajectory::average_fidelity_segmented_on(&TrajectoryPool::new(3), &seg, &noise, 21, 777);
    assert_eq!(serial.mean.to_bits(), pooled.mean.to_bits());
    assert_eq!(serial.std_error.to_bits(), pooled.std_error.to_bits());
}
