//! Dense-reference parity: every specialized kernel path must agree with
//! the generic dense `State::apply_unitary` loop to 1e-12 on random
//! mixed-radix states. `apply_unitary` is an independent implementation
//! (it never consults a `GateKernel`), so these tests catch bugs in the
//! classification, the offset arithmetic, the cycle walks and the
//! threaded sweep alike.

use rand::rngs::StdRng;
use rand::SeedableRng;

use waltz_math::{Matrix, C64};
use waltz_sim::{GateKernel, Register, State, Workspace};

const TOL: f64 = 1e-12;

/// A Haar-random state on a register.
fn random_state(reg: &Register, seed: u64) -> State {
    let mut rng = StdRng::seed_from_u64(seed);
    let amps = waltz_math::linalg::haar_state(reg.total_dim(), &mut rng);
    State::from_amplitudes(reg, amps)
}

/// A random diagonal unitary of dimension `n`.
fn random_diagonal(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let phases: Vec<C64> = (0..n)
        .map(|_| C64::cis(rng.gen::<f64>() * std::f64::consts::TAU))
        .collect();
    Matrix::from_diag(&phases)
}

/// A random phased permutation of dimension `n`.
fn random_phased_permutation(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    // Fisher-Yates.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut m = Matrix::zeros(n, n);
    for (j, &p) in perm.iter().enumerate() {
        m[(p, j)] = C64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
    }
    m
}

/// Applies `u` through its classified kernel and through the generic
/// dense path, asserting the expected class and 1e-12 agreement.
fn assert_parity(reg: &Register, u: &Matrix, operands: &[usize], seed: u64, expect: &str) {
    let kernel = GateKernel::classify(u, operands.len());
    assert_eq!(kernel.name(), expect, "classification of {u:?}");
    let reference = {
        let mut s = random_state(reg, seed);
        s.apply_unitary(u, operands);
        s
    };
    let mut specialized = random_state(reg, seed);
    let mut ws = Workspace::serial();
    specialized.apply_kernel(&kernel, u, operands, &mut ws);
    for (i, (a, b)) in specialized
        .amplitudes()
        .iter()
        .zip(reference.amplitudes())
        .enumerate()
    {
        assert!(
            a.approx_eq(*b, TOL),
            "{expect} kernel deviates at amplitude {i}: {a} vs {b}"
        );
    }
}

fn mixed_register() -> Register {
    Register::new(vec![2, 4, 2, 4, 3])
}

#[test]
fn identity_kernel_matches_dense() {
    let reg = mixed_register();
    assert_parity(&reg, &Matrix::identity(8), &[1, 2], 1, "identity");
}

#[test]
fn diagonal_kernel_matches_dense_single_operand() {
    let reg = mixed_register();
    for (q, seed) in [(0usize, 2u64), (1, 3), (4, 4)] {
        assert_parity(
            &reg,
            &random_diagonal(reg.dim(q), seed),
            &[q],
            seed,
            "diagonal",
        );
    }
}

#[test]
fn diagonal_kernel_matches_dense_multi_operand() {
    let reg = mixed_register();
    assert_parity(&reg, &random_diagonal(8, 5), &[1, 0], 5, "diagonal");
    assert_parity(&reg, &random_diagonal(24, 6), &[3, 4, 2], 6, "diagonal");
    // The paper's CCZ on (ququart, qubit).
    assert_parity(
        &Register::new(vec![4, 2]),
        &waltz_gates::mixed::ccz(),
        &[0, 1],
        7,
        "diagonal",
    );
}

#[test]
fn permutation_kernel_matches_dense() {
    let reg = mixed_register();
    assert_parity(
        &reg,
        &random_phased_permutation(4, 8),
        &[1],
        8,
        "permutation",
    );
    assert_parity(
        &reg,
        &random_phased_permutation(8, 9),
        &[2, 3],
        9,
        "permutation",
    );
    assert_parity(
        &reg,
        &random_phased_permutation(32, 10),
        &[1, 0, 3],
        10,
        "permutation",
    );
    // Textbook gates: X, CX, CCX.
    assert_parity(
        &Register::qubits(3),
        &waltz_gates::standard::x(),
        &[1],
        11,
        "permutation",
    );
    assert_parity(
        &Register::qubits(3),
        &waltz_gates::standard::cx(),
        &[2, 0],
        12,
        "permutation",
    );
    assert_parity(
        &Register::qubits(4),
        &waltz_gates::standard::ccx(),
        &[0, 2, 3],
        13,
        "permutation",
    );
}

#[test]
fn single_qudit_kernel_matches_dense() {
    let reg = mixed_register();
    let mut rng = StdRng::seed_from_u64(14);
    // d = 2 (unrolled), d = 4 (unrolled), d = 3 (generic gather).
    for q in [0usize, 1, 4] {
        let u = waltz_math::linalg::haar_unitary(reg.dim(q), &mut rng);
        assert_parity(&reg, &u, &[q], 15 + q as u64, "single-qudit");
    }
}

#[test]
fn two_qudit_kernel_matches_dense() {
    let reg = mixed_register();
    let mut rng = StdRng::seed_from_u64(20);
    for (a, b, seed) in [(0usize, 2usize, 21u64), (1, 3, 22), (3, 0, 23), (4, 1, 24)] {
        let dim = reg.dim(a) * reg.dim(b);
        let u = waltz_math::linalg::haar_unitary(dim, &mut rng);
        assert_parity(&reg, &u, &[a, b], seed, "two-qudit");
    }
}

#[test]
fn general_dense_kernel_matches_dense() {
    let reg = mixed_register();
    let mut rng = StdRng::seed_from_u64(30);
    let u = waltz_math::linalg::haar_unitary(16, &mut rng); // (2, 4, 2)
    assert_parity(&reg, &u, &[0, 1, 2], 31, "general-dense");
    let u = waltz_math::linalg::haar_unitary(32, &mut rng); // (4, 4, 2)
    assert_parity(&reg, &u, &[1, 3, 2], 32, "general-dense");
}

#[test]
fn parallel_sweep_matches_serial_on_large_register() {
    // 4^8 = 65536 amplitudes: above the parallel threshold, so a
    // parallel-enabled workspace exercises the threaded sweep on every
    // kernel class and must agree with the serial dense reference.
    let reg = Register::ququarts(8);
    let mut rng = StdRng::seed_from_u64(40);
    let gates: Vec<(Matrix, Vec<usize>, &str)> = vec![
        (random_diagonal(4, 41), vec![3], "diagonal"),
        (random_diagonal(16, 42), vec![2, 5], "diagonal"),
        (random_phased_permutation(16, 43), vec![1, 6], "permutation"),
        (
            waltz_math::linalg::haar_unitary(4, &mut rng),
            vec![4],
            "single-qudit",
        ),
        (
            waltz_math::linalg::haar_unitary(16, &mut rng),
            vec![0, 7],
            "two-qudit",
        ),
    ];
    let mut ws = Workspace::new(); // parallel allowed
    for (u, operands, expect) in gates {
        let kernel = GateKernel::classify(&u, operands.len());
        assert_eq!(kernel.name(), expect);
        let mut reference = random_state(&reg, 44);
        reference.apply_unitary(&u, &operands);
        let mut specialized = random_state(&reg, 44);
        specialized.apply_kernel(&kernel, &u, &operands, &mut ws);
        for (a, b) in specialized.amplitudes().iter().zip(reference.amplitudes()) {
            assert!(a.approx_eq(*b, TOL), "{expect} parallel sweep deviates");
        }
    }
}

#[test]
fn pauli_in_place_matches_dense_matrix_on_mixed_register() {
    // The in-place cycle walk of apply_pauli against the embedded dense
    // matrix, for every generalized Pauli of d = 2, 3, 4 on a mixed
    // register (including sub-dimension errors on a larger device).
    let reg = Register::new(vec![4, 2, 3]);
    let mut seed = 50;
    for q in 0..3 {
        let dev = reg.dim(q);
        for d in 2..=dev {
            for a in 0..d as u8 {
                for b in 0..d as u8 {
                    let op = waltz_noise::PauliOp { a, b, d: d as u8 };
                    let mut dense = Matrix::identity(dev);
                    let small = op.matrix();
                    for r in 0..d {
                        for c in 0..d {
                            dense[(r, c)] = small[(r, c)];
                        }
                    }
                    seed += 1;
                    let mut expected = random_state(&reg, seed);
                    expected.apply_unitary(&dense, &[q]);
                    let mut got = random_state(&reg, seed);
                    got.apply_pauli(op, q);
                    for (x, y) in got.amplitudes().iter().zip(expected.amplitudes()) {
                        assert!(x.approx_eq(*y, TOL), "pauli {op:?} on qudit {q}");
                    }
                }
            }
        }
    }
}

#[test]
fn pauli_permutation_kernel_matches_apply_pauli() {
    // PauliOp::as_phased_permutation feeds the simulator's permutation
    // kernel; both routes must produce the same state.
    let reg = Register::new(vec![4, 2]);
    let op = waltz_noise::PauliOp { a: 3, b: 2, d: 4 };
    let (perm, phases) = op.as_phased_permutation(4);
    let mut m = Matrix::zeros(4, 4);
    for (j, (&p, &ph)) in perm.iter().zip(phases.iter()).enumerate() {
        m[(p, j)] = ph;
    }
    let kernel = GateKernel::classify(&m, 1);
    assert_eq!(kernel.name(), "permutation");
    let mut via_kernel = random_state(&reg, 60);
    let mut ws = Workspace::serial();
    via_kernel.apply_kernel(&kernel, &m, &[0], &mut ws);
    let mut via_pauli = random_state(&reg, 60);
    via_pauli.apply_pauli(op, 0);
    for (x, y) in via_kernel.amplitudes().iter().zip(via_pauli.amplitudes()) {
        assert!(x.approx_eq(*y, TOL));
    }
}

#[test]
fn compiled_circuit_kernels_reproduce_dense_ideal_run() {
    // End-to-end: a compiled paper circuit executed through apply_op
    // (kernels) must match gate-by-gate dense application.
    use waltz_circuits_stub::build;
    let tc = build();
    let mut rng = StdRng::seed_from_u64(70);
    let initial = State::random_qubit_product(&tc.register, &mut rng);
    let via_kernels = waltz_sim::ideal::run(&tc, &initial);
    let mut dense = initial.clone();
    for op in &tc.ops {
        dense.apply_unitary(&op.unitary, &op.operands);
    }
    assert!((via_kernels.fidelity(&dense) - 1.0).abs() < TOL);
}

/// A small hand-built schedule mixing kernel classes (avoids a dev-dep on
/// the compiler crate, which would be a dependency cycle).
mod waltz_circuits_stub {
    use waltz_math::Matrix;
    use waltz_sim::{Register, TimedCircuit, TimedOp};

    pub fn build() -> TimedCircuit {
        let reg = Register::new(vec![4, 2, 4]);
        let mut tc = TimedCircuit::new(reg);
        let ops: Vec<(Matrix, Vec<usize>)> = vec![
            (waltz_gates::standard::h(), vec![1]),
            (waltz_gates::mixed::ccz(), vec![0, 1]),
            (
                waltz_gates::mixed::ccx(waltz_gates::hw::MrCcxConfig::ControlsEncoded),
                vec![2, 1],
            ),
            (
                waltz_gates::embed(&waltz_gates::standard::x(), &[2], &[4]),
                vec![0],
            ),
            (Matrix::identity(8), vec![1, 2]),
        ];
        let mut t = 0.0;
        for (u, operands) in ops {
            let dims = vec![2; operands.len()];
            tc.ops
                .push(TimedOp::new("g", u, operands, dims, t, 50.0, 1.0));
            t += 50.0;
        }
        tc.total_duration_ns = t;
        tc
    }
}
