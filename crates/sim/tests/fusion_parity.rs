//! Fusion parity: the fused program ([`TimedCircuit::fuse`]) must agree
//! with the unfused engine to 1e-12 on random mixed-radix circuits, never
//! grow the schedule, and preserve the kernel classification of
//! structured runs. The generators below build adversarial schedules —
//! random operand sets, interleaved conflicts, diagonal/permutation/dense
//! mixes — precisely because the fusion pass reorders commuting blocks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use waltz_math::{linalg, Matrix, C64};
use waltz_sim::{ideal, trajectory, GateKernel, Register, State, TimedCircuit, TimedOp};

const TOL: f64 = 1e-12;

/// A random register of 2..=5 qudits with dimensions drawn from {2, 4}.
fn random_register(rng: &mut StdRng) -> Register {
    let n = rng.gen_range(2..=5usize);
    Register::new((0..n).map(|_| if rng.gen() { 4 } else { 2 }).collect())
}

/// A random unitary of dimension `n` of a random structure class:
/// diagonal, phased permutation or Haar-dense.
fn random_unitary(n: usize, rng: &mut StdRng) -> Matrix {
    match rng.gen_range(0..3) {
        0 => Matrix::from_diag(
            &(0..n)
                .map(|_| C64::cis(rng.gen::<f64>() * std::f64::consts::TAU))
                .collect::<Vec<_>>(),
        ),
        1 => {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let mut m = Matrix::zeros(n, n);
            for (j, &p) in perm.iter().enumerate() {
                m[(p, j)] = C64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
            }
            m
        }
        _ => linalg::haar_unitary(n, rng),
    }
}

/// A random schedule of `n_ops` one- and two-qudit ops over `reg`, with
/// ASAP start times so the schedule validates.
fn random_circuit(reg: &Register, n_ops: usize, rng: &mut StdRng) -> TimedCircuit {
    let mut tc = TimedCircuit::new(reg.clone());
    let mut busy = vec![0.0f64; reg.n_qudits()];
    for i in 0..n_ops {
        let k = if reg.n_qudits() >= 2 && rng.gen() {
            2
        } else {
            1
        };
        let mut operands: Vec<usize> = Vec::new();
        while operands.len() < k {
            let q = rng.gen_range(0..reg.n_qudits());
            if !operands.contains(&q) {
                operands.push(q);
            }
        }
        let dim: usize = operands.iter().map(|&q| reg.dim(q)).product();
        let u = random_unitary(dim, rng);
        let start = operands.iter().map(|&q| busy[q]).fold(0.0f64, f64::max);
        let duration = rng.gen_range(30.0..300.0);
        for &q in &operands {
            busy[q] = start + duration;
        }
        let error_dims: Vec<u8> = operands.iter().map(|&q| reg.dim(q) as u8).collect();
        tc.ops.push(TimedOp::new(
            format!("op{i}"),
            u,
            operands,
            error_dims,
            start,
            duration,
            0.995,
        ));
    }
    tc.total_duration_ns = busy.iter().fold(0.0f64, |a, &b| a.max(b));
    tc
}

/// Asserts amplitude-level agreement of the fused and unfused programs on
/// a Haar-random initial state.
fn assert_ideal_parity(tc: &TimedCircuit, fused: &TimedCircuit, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let amps = linalg::haar_state(tc.register.total_dim(), &mut rng);
    let initial = State::from_amplitudes(&tc.register, amps);
    let a = ideal::run(tc, &initial);
    let b = ideal::run(fused, &initial);
    for (i, (x, y)) in a.amplitudes().iter().zip(b.amplitudes()).enumerate() {
        assert!(
            x.approx_eq(*y, TOL),
            "fused program deviates at amplitude {i}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_matches_unfused_on_random_mixed_radix_circuits(
        seed in 0u64..10_000,
        n_ops in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = random_register(&mut rng);
        let tc = random_circuit(&reg, n_ops, &mut rng);
        prop_assert!(tc.validate().is_ok());
        let fused = tc.fuse();
        prop_assert!(fused.validate().is_ok(), "{:?}", fused.validate());
        assert_ideal_parity(&tc, &fused, seed.wrapping_add(1));
    }

    #[test]
    fn fusion_never_increases_op_count_and_preserves_eps(
        seed in 0u64..10_000,
        n_ops in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = random_register(&mut rng);
        let tc = random_circuit(&reg, n_ops, &mut rng);
        let fused = tc.fuse();
        prop_assert!(fused.len() <= tc.len());
        prop_assert!((fused.gate_eps() - tc.gate_eps()).abs() < 1e-9);
        prop_assert!((fused.total_duration_ns - tc.total_duration_ns).abs() < 1e-9);
        // Re-fusing can only shrink further (flushing may have made
        // commuting singles adjacent), and existing fused blocks are
        // never re-absorbed — their noise events must survive verbatim.
        let refused = fused.fuse();
        prop_assert!(refused.len() <= fused.len());
        let events = |tc: &TimedCircuit| -> usize {
            tc.ops
                .iter()
                .filter_map(|op| op.noise_events.as_ref().map(Vec::len))
                .sum()
        };
        prop_assert!(events(&refused) >= events(&fused));
        assert_ideal_parity(&tc, &refused, seed.wrapping_add(3));
    }

    #[test]
    fn pure_diagonal_runs_keep_the_diagonal_kernel(
        seed in 0u64..10_000,
        n_ops in 1usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = random_register(&mut rng);
        let mut tc = TimedCircuit::new(reg.clone());
        let mut t = 0.0;
        for i in 0..n_ops {
            let k = if reg.n_qudits() >= 2 && rng.gen() { 2 } else { 1 };
            let mut operands: Vec<usize> = Vec::new();
            while operands.len() < k {
                let q = rng.gen_range(0..reg.n_qudits());
                if !operands.contains(&q) {
                    operands.push(q);
                }
            }
            let dim: usize = operands.iter().map(|&q| reg.dim(q)).product();
            let phases: Vec<C64> = (0..dim)
                .map(|_| C64::cis(rng.gen::<f64>() * std::f64::consts::TAU))
                .collect();
            let error_dims: Vec<u8> = operands.iter().map(|&q| reg.dim(q) as u8).collect();
            tc.ops.push(TimedOp::new(
                format!("d{i}"),
                Matrix::from_diag(&phases),
                operands,
                error_dims,
                t,
                50.0,
                1.0,
            ));
            t += 50.0;
        }
        tc.total_duration_ns = t;
        let fused = tc.fuse();
        prop_assert!(fused.len() <= tc.len());
        for op in &fused.ops {
            prop_assert!(
                matches!(op.kernel, GateKernel::Diagonal { .. } | GateKernel::Identity),
                "diagonal run produced a {} kernel",
                op.kernel.name()
            );
        }
        assert_ideal_parity(&tc, &fused, seed.wrapping_add(2));
    }

    #[test]
    fn noiseless_trajectories_agree_through_fusion(
        seed in 0u64..5_000,
        n_ops in 1usize..16,
    ) {
        // The trajectory runner's fused-op path (noise-event replay) must
        // collapse to the ideal result when every channel is off.
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = random_register(&mut rng);
        let tc = random_circuit(&reg, n_ops, &mut rng);
        let fused = tc.fuse();
        let noise = waltz_noise::NoiseModel::noiseless();
        let initial = State::random_qubit_product(&reg, &mut rng);
        let a = ideal::run(&tc, &initial);
        let b = trajectory::run_trajectory(&fused, &initial, &noise, &mut rng);
        prop_assert!((a.fidelity(&b) - 1.0).abs() < TOL);
    }
}

/// Three-or-more-qudit ops must flush and pass through unfused.
#[test]
fn oversized_ops_split_fusion_runs() {
    let reg = Register::qubits(3);
    let mut rng = StdRng::seed_from_u64(77);
    let mut tc = TimedCircuit::new(reg.clone());
    let mk = |label: &str, u: Matrix, ops: Vec<usize>, start: f64| {
        let dims = vec![2u8; ops.len()];
        TimedOp::new(label, u, ops, dims, start, 100.0, 1.0)
    };
    tc.ops.push(mk(
        "u01",
        linalg::haar_unitary(4, &mut rng),
        vec![0, 1],
        0.0,
    ));
    tc.ops.push(mk(
        "ccx",
        waltz_gates::standard::ccx(),
        vec![0, 1, 2],
        100.0,
    ));
    tc.ops.push(mk(
        "u01b",
        linalg::haar_unitary(4, &mut rng),
        vec![0, 1],
        200.0,
    ));
    tc.total_duration_ns = 300.0;
    let fused = tc.fuse();
    assert_eq!(fused.len(), 3, "the 3-qudit op must fence the runs");
    assert_eq!(fused.ops[1].label, "ccx");
    assert_ideal_parity(&tc, &fused, 78);
}

/// The noisy estimate of a fused schedule stays statistically consistent
/// with the unfused one (same per-pulse error channels, same idle time).
#[test]
fn fused_noisy_estimates_track_unfused() {
    let mut rng = StdRng::seed_from_u64(5);
    let reg = Register::new(vec![4, 2, 4]);
    let tc = random_circuit(&reg, 10, &mut rng);
    let fused = tc.fuse();
    let noise = waltz_noise::NoiseModel::paper();
    let a = trajectory::average_fidelity(&tc, &noise, 600, 40);
    let b = trajectory::average_fidelity(&fused, &noise, 600, 41);
    let spread = 4.0 * (a.std_error + b.std_error) + 2e-3;
    assert!(
        (a.mean - b.mean).abs() < spread,
        "unfused {} vs fused {} (allowed {})",
        a.mean,
        b.mean,
        spread
    );
}
