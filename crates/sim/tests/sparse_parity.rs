//! Sparse amplitude-map parity and the density-adaptive engine's
//! determinism contract.
//!
//! Every sparse kernel arm (diagonal in-place phase, permutation index
//! remap, single-/two-qudit and general-dense gather-scatter) must agree
//! with the dense scalar sweep body to 1e-12 on proptest-randomized
//! mixed-radix registers; with truncation epsilon 0 the sparse arms
//! mirror the scalar accumulation forms exactly, so the real contract —
//! pinned bitwise below — is that a trajectory run through the
//! [`AdaptiveState`] produces the *same bits* as the dense engine no
//! matter where (or whether) the representation switches, and the
//! estimate is bit-identical at every pool width.
//!
//! The acceptance test at the bottom simulates a 26-qubit Toffoli
//! ladder — a 1 GiB dense state — inside a 256 MiB budget, which is the
//! whole point of the representation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use waltz_math::{linalg, Matrix, C64};
use waltz_noise::NoiseModel;
use waltz_sim::{
    ideal, sparse_enabled, trajectory, AdaptiveState, GateKernel, Register, SegmentedCircuit,
    SimdLevel, SparsePolicy, SparseState, State, TimedCircuit, TimedOp, TrajectoryPool, Workspace,
};

const TOL: f64 = 1e-12;

/// A Haar-random state on a register.
fn random_state(reg: &Register, seed: u64) -> State {
    let mut rng = StdRng::seed_from_u64(seed);
    let amps = linalg::haar_state(reg.total_dim(), &mut rng);
    State::from_amplitudes(reg, amps)
}

/// A random unitary of dimension `n` of the requested structure class
/// (0 = diagonal, 1 = phased permutation, 2 = Haar dense).
fn random_unitary(n: usize, class: usize, rng: &mut StdRng) -> Matrix {
    match class {
        0 => Matrix::from_diag(
            &(0..n)
                .map(|_| C64::cis(rng.gen::<f64>() * std::f64::consts::TAU))
                .collect::<Vec<_>>(),
        ),
        1 => {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            let mut m = Matrix::zeros(n, n);
            for (j, &p) in perm.iter().enumerate() {
                m[(p, j)] = C64::cis(rng.gen::<f64>() * std::f64::consts::TAU);
            }
            m
        }
        _ => linalg::haar_unitary(n, rng),
    }
}

/// Applies `u` from the same random state through the dense scalar sweep
/// and through the sparse amplitude map (epsilon 0), and asserts 1e-12
/// agreement on every amplitude plus norm conservation.
fn assert_sparse_parity(reg: &Register, u: &Matrix, operands: &[usize], seed: u64) {
    let kernel = GateKernel::classify(u, operands.len());
    let mut ws = Workspace::serial();
    ws.set_simd_level(SimdLevel::Scalar);

    let initial = random_state(reg, seed);
    let mut dense = initial.clone();
    dense.apply_kernel(&kernel, u, operands, &mut ws);

    let mut sparse = SparseState::from_dense(&initial, 0.0);
    sparse.apply_kernel(&kernel, u, operands, &mut ws);

    for (i, &b) in dense.amplitudes().iter().enumerate() {
        let a = sparse.amplitude(i);
        assert!(
            a.approx_eq(b, TOL),
            "sparse {} arm deviates from dense at amplitude {i} \
             (dims {:?}, operands {:?}): {a} vs {b}",
            kernel.name(),
            reg.dims(),
            operands,
        );
    }
    // Epsilon 0 truncates only exact zeros: unitarity survives.
    assert!(
        (sparse.norm() - 1.0).abs() < 1e-9,
        "sparse {} arm lost norm: {}",
        kernel.name(),
        sparse.norm()
    );
}

/// A register of `n` qudits with dimensions drawn from {2, 3, 4, 5}.
fn random_mixed_register(rng: &mut StdRng) -> Register {
    let n = rng.gen_range(2..=5usize);
    let choices = [2u8, 3, 4, 5];
    Register::new(
        (0..n)
            .map(|_| choices[rng.gen_range(0..choices.len())])
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every kernel class on random mixed-radix shapes: the sparse arm
    // matches the dense scalar body on every amplitude.
    #[test]
    fn sparse_arms_match_dense_on_random_registers(
        seed in 0u64..100_000,
        class in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reg = random_mixed_register(&mut rng);
        let max_k = reg.n_qudits().min(3);
        let k = rng.gen_range(1..=max_k);
        let mut operands: Vec<usize> = Vec::new();
        while operands.len() < k {
            let q = rng.gen_range(0..reg.n_qudits());
            if !operands.contains(&q) {
                operands.push(q);
            }
        }
        let dim: usize = operands.iter().map(|&q| reg.dim(q)).product();
        let u = random_unitary(dim, class, &mut rng);
        assert_sparse_parity(&reg, &u, &operands, seed.wrapping_add(1));
    }
}

#[test]
fn every_specialized_arm_agrees_at_directed_shapes() {
    let mut rng = StdRng::seed_from_u64(77);
    // Single-operand diagonal fast path at every stride.
    let reg = Register::new(vec![4, 3, 2, 5]);
    for q in 0..reg.n_qudits() {
        let u = random_unitary(reg.dim(q), 0, &mut rng);
        assert_sparse_parity(&reg, &u, &[q], 500 + q as u64);
    }
    // Multi-operand diagonal (the unconditional-multiply arm).
    let u = random_unitary(12, 0, &mut rng);
    assert_sparse_parity(&reg, &u, &[0, 1], 510);
    // Permutation remap + re-sort across non-adjacent operands.
    let u = random_unitary(20, 1, &mut rng);
    assert_sparse_parity(&reg, &u, &[0, 3], 520);
    // Unrolled dense 2x2 and 4x4 single-qudit arms, plus the general
    // odd-dimension loop.
    for (q, seed) in [(2usize, 530u64), (0, 531), (1, 532), (3, 533)] {
        let u = linalg::haar_unitary(reg.dim(q), &mut rng);
        assert_sparse_parity(&reg, &u, &[q], seed);
    }
    // Two-qudit dense (16x16, stack block).
    let reg4 = Register::ququarts(5);
    let u = linalg::haar_unitary(16, &mut rng);
    assert_sparse_parity(&reg4, &u, &[1, 3], 540);
    // Two-qudit dense with structural zeros: a controlled-Haar block
    // drives the zero-skip accumulation branch.
    let mut cu = Matrix::zeros(16, 16);
    for j in 0..8 {
        cu[(j, j)] = C64::ONE;
    }
    let haar8 = linalg::haar_unitary(8, &mut rng);
    for r in 0..8 {
        for c in 0..8 {
            cu[(8 + r, 8 + c)] = haar8[(r, c)];
        }
    }
    assert_sparse_parity(&reg4, &u, &[0, 4], 550);
    assert_sparse_parity(&reg4, &cu, &[2, 3], 551);
    // General dense: 64-state stack block and an 80-state heap block.
    let u = linalg::haar_unitary(64, &mut rng);
    assert_sparse_parity(&reg4, &u, &[0, 2, 4], 560);
    let reg_heap = Register::new(vec![4, 4, 5, 2]);
    let u = linalg::haar_unitary(80, &mut rng);
    assert_sparse_parity(&reg_heap, &u, &[0, 1, 2], 561);
}

#[test]
fn truncation_epsilon_drops_small_amplitudes_and_zero_keeps_all() {
    let reg = Register::qubits(3);
    // Rotate |0> slightly: amplitudes of very different magnitudes.
    let theta: f64 = 1e-4;
    let ry = Matrix::from_rows(&[
        vec![C64::new(theta.cos(), 0.0), C64::new(-theta.sin(), 0.0)],
        vec![C64::new(theta.sin(), 0.0), C64::new(theta.cos(), 0.0)],
    ]);
    let kernel = GateKernel::classify(&ry, 1);
    let mut ws = Workspace::serial();

    let mut exact = SparseState::basis(&reg, 0);
    for q in 0..3 {
        exact.apply_kernel(&kernel, &ry, &[q], &mut ws);
    }
    // Epsilon 0: every nonzero product amplitude survives (2^3 of them).
    assert_eq!(exact.nnz(), 8);

    let mut truncated = SparseState::basis(&reg, 0);
    truncated.set_epsilon(1e-3);
    for q in 0..3 {
        truncated.apply_kernel(&kernel, &ry, &[q], &mut ws);
    }
    // Amplitudes with two or three sin(theta) factors (~1e-8, ~1e-12)
    // fall below epsilon; the |0> amplitude and the three single-flip
    // ones survive.
    assert!(truncated.nnz() < 8, "epsilon did not truncate");
    assert!(truncated.amplitude(0).norm_sqr() > 0.99);
}

// ---------------------------------------------------------------------
// Bit-identity across representation switches
// ---------------------------------------------------------------------

/// A mixed-kernel schedule whose basis-input support grows gradually, so
/// mid-range density thresholds genuinely switch representation mid-run.
fn switching_circuit() -> TimedCircuit {
    let reg = Register::new(vec![2, 4, 2, 3, 2]);
    let mut tc = TimedCircuit::new(reg.clone());
    let mut rng = StdRng::seed_from_u64(900);
    let mut t = 0.0;
    for i in 0..10 {
        let class = [1usize, 0, 2, 1, 2][i % 5];
        let k = 1 + (i % 2);
        let mut operands: Vec<usize> = Vec::new();
        while operands.len() < k {
            let q = rng.gen_range(0..reg.n_qudits());
            if !operands.contains(&q) {
                operands.push(q);
            }
        }
        let dim: usize = operands.iter().map(|&q| reg.dim(q)).product();
        let u = random_unitary(dim, class, &mut rng);
        let error_dims: Vec<u8> = operands.iter().map(|&q| reg.dim(q) as u8).collect();
        tc.ops.push(TimedOp::new(
            format!("op{i}"),
            u,
            operands,
            error_dims,
            t,
            50.0,
            0.995,
        ));
        t += 50.0;
    }
    tc.total_duration_ns = t;
    tc
}

/// Asserts the adaptive result carries exactly the dense result's bits:
/// every stored sparse entry equals the dense amplitude bitwise, and
/// every index the sparse map dropped is exactly zero in the dense state.
fn assert_bits_match_dense(adaptive: &AdaptiveState, dense: &State) {
    match adaptive.as_dense() {
        Some(d) => {
            for (i, (a, b)) in d.amplitudes().iter().zip(dense.amplitudes()).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "densified amplitude {i} drifted: {a} vs {b}"
                );
            }
        }
        None => {
            let sparse = adaptive.as_sparse().expect("not dense, so sparse");
            let mut entries = sparse.entries().iter().peekable();
            for (i, b) in dense.amplitudes().iter().enumerate() {
                match entries.peek() {
                    Some(&&(idx, a)) if idx == i as u64 => {
                        entries.next();
                        assert!(
                            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                            "sparse amplitude {i} drifted: {a} vs {b}"
                        );
                    }
                    _ => assert!(
                        b.norm_sqr() == 0.0,
                        "sparse map dropped a nonzero dense amplitude at {i}: {b}"
                    ),
                }
            }
        }
    }
}

/// One noisy trajectory, dense vs adaptive at several density
/// thresholds: identical RNG stream (the engines share `run_ops`), so
/// with truncation epsilon 0 the surviving amplitudes must be
/// bit-identical whether the run stayed sparse, densified at op 1, or
/// switched somewhere in the middle.
#[test]
fn noisy_trajectory_is_bit_identical_across_switch_points() {
    let tc = switching_circuit();
    let noise = NoiseModel::paper();
    let reg = tc.register.clone();

    let mut ws = Workspace::serial();
    ws.set_simd_level(SimdLevel::Scalar);
    let initial_dense = State::zero(&reg);
    let mut dense_out = State::zero(&reg);
    let mut rng = StdRng::seed_from_u64(0xABCD);
    trajectory::run_trajectory_into(
        &tc,
        &initial_dense,
        &noise,
        &mut rng,
        &mut dense_out,
        &mut ws,
    );

    let initial_sparse = SparseState::zero(&reg);
    for threshold in [0.0, 0.1, 0.3, 0.5, 2.0] {
        let mut aws = Workspace::serial();
        aws.set_simd_level(SimdLevel::Scalar);
        aws.set_sparse_density_threshold(threshold);
        aws.set_sparse_epsilon(0.0);
        let mut out = AdaptiveState::zero(&reg);
        let mut rng = StdRng::seed_from_u64(0xABCD);
        trajectory::run_trajectory_adaptive_into(
            &tc,
            &initial_sparse,
            &noise,
            &mut rng,
            &mut out,
            &mut aws,
        );
        assert_bits_match_dense(&out, &dense_out);
        if !sparse_enabled() {
            assert!(out.is_dense(), "WALTZ_SPARSE=0 must force dense");
        } else if threshold >= 2.0 {
            assert!(!out.is_dense(), "threshold 2.0 must never densify");
        } else if threshold <= 0.0 {
            assert!(out.is_dense(), "threshold 0 must densify immediately");
        }
    }
}

/// The segmented runner under the same contract, with a genuine reshape
/// boundary (a dimension-4 device clipped to 2 in the second segment) —
/// the boundary where a dense adaptive state may drop back to sparse.
#[test]
fn segmented_trajectory_is_bit_identical_across_switch_points() {
    let mut rng = StdRng::seed_from_u64(42);
    let reg_a = Register::new(vec![2, 4, 2]);
    let reg_b = Register::new(vec![2, 2, 2]);
    let mut seg_a = TimedCircuit::new(reg_a.clone());
    let mut t = 0.0;
    // Device 1 (the dimension-4 one) is never acted on, so it stays at
    // level 0 and the clip to dimension 2 at the boundary is lossless.
    for (ops, dims) in [
        (vec![0usize], vec![2u8]),
        (vec![2], vec![2]),
        (vec![0, 2], vec![2, 2]),
    ] {
        let dim: usize = dims.iter().map(|&d| d as usize).product();
        let u = linalg::haar_unitary(dim, &mut rng);
        seg_a
            .ops
            .push(TimedOp::new("a", u, ops, dims, t, 40.0, 0.997));
        t += 40.0;
    }
    seg_a.total_duration_ns = t;
    let mut seg_b = TimedCircuit::new(reg_b.clone());
    for (ops, dims) in [(vec![1usize, 2], vec![2u8, 2]), (vec![0], vec![2])] {
        let dim: usize = dims.iter().map(|&d| d as usize).product();
        let u = linalg::haar_unitary(dim, &mut rng);
        seg_b
            .ops
            .push(TimedOp::new("b", u, ops, dims, t, 40.0, 0.997));
        t += 40.0;
    }
    seg_b.total_duration_ns = t;
    let circuit = SegmentedCircuit::new(vec![seg_a, seg_b], t);

    let mut ws = Workspace::serial();
    ws.set_simd_level(SimdLevel::Scalar);
    let initial_dense = State::zero(&reg_a);
    let (mut dense_out, mut dense_scratch) = circuit.rolling_buffers();
    let mut rng = StdRng::seed_from_u64(31337);
    trajectory::run_trajectory_segmented_into(
        &circuit,
        &initial_dense,
        &noise_no_leak(),
        &mut rng,
        &mut dense_out,
        &mut dense_scratch,
        &mut ws,
    );

    let initial_sparse = SparseState::zero(&reg_a);
    for threshold in [0.0, 0.25, 2.0] {
        let mut aws = Workspace::serial();
        aws.set_simd_level(SimdLevel::Scalar);
        aws.set_sparse_density_threshold(threshold);
        aws.set_sparse_epsilon(0.0);
        let mut out = AdaptiveState::zero(&reg_a);
        let mut scratch = AdaptiveState::zero(&reg_a);
        let mut rng = StdRng::seed_from_u64(31337);
        trajectory::run_trajectory_segmented_adaptive_into(
            &circuit,
            &initial_sparse,
            &noise_no_leak(),
            &mut rng,
            &mut out,
            &mut scratch,
            &mut aws,
        );
        assert_bits_match_dense(&out, &dense_out);
    }
}

/// Noise with error draws disabled but damping on, so the fixture's
/// "device 1 never leaves level 0" guarantee — what makes the boundary
/// clip lossless — holds exactly on every trajectory.
fn noise_no_leak() -> NoiseModel {
    let mut noise = NoiseModel::paper();
    noise.depolarizing = false;
    noise
}

// ---------------------------------------------------------------------
// Estimator-level determinism
// ---------------------------------------------------------------------

/// Threshold 0 reproduces the dense estimator bit-for-bit (both run the
/// dense engine with the same RNG stream and SIMD level); threshold 2
/// runs sparse throughout and lands within 1e-12.
#[test]
fn adaptive_estimator_matches_dense_estimator() {
    let tc = switching_circuit();
    let noise = NoiseModel::paper();
    let (trajectories, seed) = (24usize, 0x5EEDu64);
    let pool = TrajectoryPool::serial();
    let dense = trajectory::average_fidelity_with_on(
        &pool,
        &tc,
        &noise,
        trajectories,
        seed,
        |_reg, _rng, out: &mut State| {
            out.fill_product_with(|_, lvl| if lvl == 0 { C64::ONE } else { C64::ZERO });
        },
    );
    let basis = |_reg: &Register, _rng: &mut StdRng, out: &mut SparseState| out.fill_basis(0);
    let densify_now = SparsePolicy {
        density_threshold: 0.0,
        epsilon: 0.0,
    };
    let adaptive = trajectory::average_fidelity_adaptive_with_on(
        &pool,
        &tc,
        &noise,
        trajectories,
        seed,
        &densify_now,
        basis,
    );
    assert_eq!(dense.mean.to_bits(), adaptive.mean.to_bits());
    assert_eq!(dense.std_error.to_bits(), adaptive.std_error.to_bits());

    let never_densify = SparsePolicy {
        density_threshold: 2.0,
        epsilon: 0.0,
    };
    let sparse = trajectory::average_fidelity_adaptive_with_on(
        &pool,
        &tc,
        &noise,
        trajectories,
        seed,
        &never_densify,
        basis,
    );
    assert!(
        (sparse.mean - dense.mean).abs() < TOL,
        "sparse-path estimate drifted: {} vs {}",
        sparse.mean,
        dense.mean
    );
}

/// Pool-width invariance: the adaptive estimate is bit-identical at 1,
/// 2 and 4 workers (per-trajectory seeding, one slot per sample).
#[test]
fn adaptive_estimates_are_bit_identical_across_thread_counts() {
    let tc = switching_circuit();
    let noise = NoiseModel::paper();
    let policy = SparsePolicy::default();
    let basis = |_reg: &Register, _rng: &mut StdRng, out: &mut SparseState| out.fill_basis(0);
    let reference = trajectory::average_fidelity_adaptive_with_on(
        &TrajectoryPool::serial(),
        &tc,
        &noise,
        21,
        777,
        &policy,
        basis,
    );
    for threads in [2usize, 4] {
        let pooled = trajectory::average_fidelity_adaptive_with_on(
            &TrajectoryPool::new(threads),
            &tc,
            &noise,
            21,
            777,
            &policy,
            basis,
        );
        assert_eq!(reference.mean.to_bits(), pooled.mean.to_bits());
        assert_eq!(reference.std_error.to_bits(), pooled.std_error.to_bits());
    }
}

// ---------------------------------------------------------------------
// The 20+ qubit budget acceptance
// ---------------------------------------------------------------------

/// A CCX permutation on three qubits (embedded 8x8).
fn ccx_unitary() -> Matrix {
    let perm: Vec<usize> = (0..8).map(|j| if j >= 6 { 6 + 7 - j } else { j }).collect();
    Matrix::permutation(&perm)
}

/// A Toffoli ladder on `n` qubits: X on the first two, then
/// `ccx(i, i+1, i+2)` up the ladder — from `|0..0>` the all-ones state
/// walks to the top, and every kernel stays a permutation, so the
/// basis-input support never exceeds one entry.
fn toffoli_ladder(n: usize) -> TimedCircuit {
    let reg = Register::qubits(n);
    let mut tc = TimedCircuit::new(reg.clone());
    let x = Matrix::permutation(&[1, 0]);
    let mut t = 0.0;
    for q in [0usize, 1] {
        tc.ops.push(TimedOp::new(
            "x",
            x.clone(),
            vec![q],
            vec![2],
            t,
            35.0,
            0.9995,
        ));
        t += 35.0;
    }
    let ccx = ccx_unitary();
    for i in 0..n - 2 {
        tc.ops.push(TimedOp::new(
            "ccx",
            ccx.clone(),
            vec![i, i + 1, i + 2],
            vec![2, 2, 2],
            t,
            250.0,
            0.995,
        ));
        t += 250.0;
    }
    tc.total_duration_ns = t;
    tc
}

/// 26 qubits: the dense state would be 2^26 x 16 B = 1 GiB, four times
/// the 256 MiB budget that used to make such programs OverBudget. The
/// sparse engine carries one amplitude end to end, noiselessly and under
/// the paper noise model, with 1e-12-exact output.
#[test]
fn twenty_six_qubit_ladder_fits_a_256_mib_budget() {
    if !sparse_enabled() {
        // WALTZ_SPARSE=0 forces dense everywhere; materializing the
        // 1 GiB state would defeat the budget this test pins.
        return;
    }
    const BUDGET: usize = 256 << 20;
    let n = 26;
    let tc = toffoli_ladder(n);
    let reg = tc.register.clone();
    assert!(
        reg.state_bytes() > BUDGET,
        "acceptance needs a register the dense engine cannot afford"
    );

    let mut ws = Workspace::serial();
    ws.set_sparse_density_threshold(SparsePolicy::default().density_threshold);
    ws.set_sparse_epsilon(0.0);

    // Noiseless: the ladder walks |0..0> to |1..1> exactly.
    let initial = SparseState::zero(&reg);
    let mut out = AdaptiveState::zero(&reg);
    ideal::run_adaptive_into(&tc, &initial, &mut out, &mut ws);
    assert!(!out.is_dense(), "permutation ladder must stay sparse");
    assert_eq!(out.nnz(), 1);
    assert_eq!(out.peak_nnz(), 1);
    assert!(out.peak_state_bytes() <= BUDGET);
    let all_ones = reg.total_dim() - 1;
    assert!(
        (out.probability_of(all_ones) - 1.0).abs() < TOL,
        "ladder output is not |1..1>: p = {}",
        out.probability_of(all_ones)
    );

    // One noisy trajectory under the paper model: Pauli draws and
    // damping collapses are support-preserving, so the run stays inside
    // the budget too.
    let noise = NoiseModel::paper();
    let mut rng = StdRng::seed_from_u64(2023);
    let mut noisy = AdaptiveState::zero(&reg);
    trajectory::run_trajectory_adaptive_into(&tc, &initial, &noise, &mut rng, &mut noisy, &mut ws);
    assert!(!noisy.is_dense());
    assert!(noisy.peak_state_bytes() <= BUDGET);
    assert!((noisy.norm() - 1.0).abs() < 1e-9);
}
