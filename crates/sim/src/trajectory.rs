//! The paper's modified trajectory method (§6.4–§6.5).
//!
//! Standard trajectory simulation inserts idle error gates at every time
//! step; the paper instead damps each operand **once per gate, for the
//! exact time it has been idle**, which better captures which level the
//! qudit decoheres from. After each gate a generalized-Pauli error is
//! drawn with probability `1 - F_gate` over the gate's calibrated error
//! dimensions (mixed-radix gates draw from `P_2 (x) P_4`, §6.5).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use waltz_noise::{pauli, NoiseModel};

use crate::kernel::Workspace;
use crate::{ideal, State, TimedCircuit};

/// Runs one noisy trajectory, returning the final (normalized) state.
///
/// # Panics
///
/// Panics if the initial state's register differs from the circuit's.
pub fn run_trajectory<R: Rng + ?Sized>(
    circuit: &TimedCircuit,
    initial: &State,
    noise: &NoiseModel,
    rng: &mut R,
) -> State {
    let mut out = initial.clone();
    let mut ws = Workspace::serial();
    run_trajectory_into(circuit, initial, noise, rng, &mut out, &mut ws);
    out
}

/// [`run_trajectory`] writing into a caller-owned output state. All gate
/// application goes through the ops' precomputed
/// [`crate::GateKernel`]s with
/// scratch borrowed from `ws`, so steady-state trajectory batches perform
/// no per-gate heap allocation.
///
/// # Panics
///
/// Panics if either state's register differs from the circuit's.
pub fn run_trajectory_into<R: Rng + ?Sized>(
    circuit: &TimedCircuit,
    initial: &State,
    noise: &NoiseModel,
    rng: &mut R,
    out: &mut State,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        &circuit.register,
        "state register does not match circuit register"
    );
    out.copy_from(initial);
    ws.free_at.clear();
    ws.free_at.resize(circuit.register.n_qudits(), 0.0);
    for op in &circuit.ops {
        match &op.noise_events {
            None => {
                // Exact-idle-time damping on each operand (§6.4).
                if noise.damping {
                    for &q in &op.operands {
                        let idle = op.start_ns - ws.free_at[q];
                        if idle > 0.0 {
                            out.damping_step_with(&noise.coherence, q, idle, rng, ws);
                        }
                    }
                }
                out.apply_op(op, ws);
                // Busy-time damping: decoherence during the pulse itself.
                if noise.damping && noise.busy_time_damping {
                    for &q in &op.operands {
                        out.damping_step_with(&noise.coherence, q, op.duration_ns, rng, ws);
                    }
                }
                // Depolarizing draw with probability 1 - F (§6.5).
                if noise.depolarizing && op.fidelity < 1.0 && rng.gen::<f64>() > op.fidelity {
                    let err = pauli::sample_error(&op.error_dims, rng);
                    for (p, &q) in err.iter().zip(op.operands.iter()) {
                        out.apply_pauli(*p, q);
                    }
                }
                for &q in &op.operands {
                    ws.free_at[q] = op.end_ns();
                }
            }
            Some(events) => {
                // A fused block: the unitary is applied once, but idle
                // damping, busy damping and depolarizing draws replay per
                // constituent pulse so each device still accumulates its
                // exact idle/busy time and each pulse keeps its calibrated
                // error channel. Only the interleaving of noise with the
                // block's interior unitaries is approximated.
                if noise.damping {
                    for ev in events {
                        for &q in &ev.operands {
                            let idle = ev.start_ns - ws.free_at[q];
                            if idle > 0.0 {
                                out.damping_step_with(&noise.coherence, q, idle, rng, ws);
                            }
                            ws.free_at[q] = ev.end_ns();
                        }
                    }
                } else {
                    for ev in events {
                        for &q in &ev.operands {
                            ws.free_at[q] = ev.end_ns();
                        }
                    }
                }
                out.apply_op(op, ws);
                for ev in events {
                    if noise.damping && noise.busy_time_damping {
                        for &q in &ev.operands {
                            out.damping_step_with(&noise.coherence, q, ev.duration_ns, rng, ws);
                        }
                    }
                    if noise.depolarizing && ev.fidelity < 1.0 && rng.gen::<f64>() > ev.fidelity {
                        let err = pauli::sample_error(&ev.error_dims, rng);
                        for (p, &q) in err.iter().zip(ev.operands.iter()) {
                            out.apply_pauli(*p, q);
                        }
                    }
                }
            }
        }
    }
    // Trailing idle until the circuit's wall-clock end.
    if noise.damping {
        for q in 0..circuit.register.n_qudits() {
            let idle = circuit.total_duration_ns - ws.free_at[q];
            if idle > 0.0 {
                out.damping_step_with(&noise.coherence, q, idle, rng, ws);
            }
        }
    }
}

/// Result of a Monte-Carlo fidelity estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityEstimate {
    /// Mean state fidelity over trajectories.
    pub mean: f64,
    /// Standard error of the mean (std-dev / sqrt(n), the paper's error
    /// bars).
    pub std_error: f64,
    /// Number of trajectories.
    pub trajectories: usize,
}

/// Estimates average fidelity over random initial states: for each
/// trajectory a fresh random qubit-product state is drawn (§6.4, "random
/// quantum states as classical inputs are not always affected by quantum
/// errors"), the ideal and noisy final states are computed, and their
/// overlap recorded.
pub fn average_fidelity(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> FidelityEstimate {
    average_fidelity_with(circuit, noise, trajectories, seed, |_, rng, out| {
        out.fill_random_qubit_product(rng)
    })
}

/// [`average_fidelity`] with a custom initial-state factory.
///
/// The factory **writes into a caller-owned buffer** (`write_initial(reg,
/// rng, out)` overwrites `out` in place): each worker thread owns one
/// [`Workspace`] and a fixed set of state buffers reused across all of
/// its trajectories, so the steady-state loop performs no per-trajectory
/// heap allocation at all — not even for the initial state. The ideal
/// output is memoized per worker: when the factory is deterministic
/// (ignores its RNG, e.g. a fixed input state), the noiseless circuit
/// runs once per worker instead of once per trajectory.
pub fn average_fidelity_with(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> FidelityEstimate {
    assert!(trajectories > 0, "need at least one trajectory");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(trajectories);
    let mut fidelities = vec![0.0f64; trajectories];
    std::thread::scope(|scope| {
        let chunks: Vec<_> = fidelities
            .chunks_mut(trajectories.div_ceil(threads))
            .enumerate()
            .collect();
        for (chunk_idx, chunk) in chunks {
            let write_initial = &write_initial;
            scope.spawn(move || {
                let mut ws = Workspace::serial();
                let mut initial = State::zero(&circuit.register);
                let mut noisy_out = State::zero(&circuit.register);
                let mut ideal_out = State::zero(&circuit.register);
                // Memoized initial of the previous trajectory on this
                // worker; `ideal_out` stays valid while it matches.
                let mut cached_initial = State::zero(&circuit.register);
                let mut ideal_cached = false;
                for (i, f) in chunk.iter_mut().enumerate() {
                    let traj_seed = seed
                        .wrapping_add((chunk_idx * 1_000_003 + i) as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut rng = StdRng::seed_from_u64(traj_seed);
                    write_initial(&circuit.register, &mut rng, &mut initial);
                    if !(ideal_cached && cached_initial == initial) {
                        ideal::run_into(circuit, &initial, &mut ideal_out, &mut ws);
                        cached_initial.copy_from(&initial);
                        ideal_cached = true;
                    }
                    run_trajectory_into(
                        circuit,
                        &initial,
                        noise,
                        &mut rng,
                        &mut noisy_out,
                        &mut ws,
                    );
                    *f = ideal_out.fidelity(&noisy_out);
                }
            });
        }
    });
    let n = trajectories as f64;
    let mean = fidelities.iter().sum::<f64>() / n;
    // Unbiased (Bessel) sample variance; a single trajectory carries no
    // spread information, so its standard error is reported as zero.
    let var = if trajectories < 2 {
        0.0
    } else {
        fidelities.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    FidelityEstimate {
        mean,
        std_error: (var / n).sqrt(),
        trajectories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Register, TimedOp};
    use waltz_gates::standard;
    use waltz_math::Matrix;

    fn one_gate_circuit(fidelity: f64, duration: f64) -> TimedCircuit {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(TimedOp::new(
            "cx",
            standard::cx(),
            vec![0, 1],
            vec![2, 2],
            0.0,
            duration,
            fidelity,
        ));
        tc.total_duration_ns = duration;
        tc
    }

    #[test]
    fn noiseless_trajectory_equals_ideal() {
        let tc = one_gate_circuit(0.5, 251.0);
        let noise = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        let init = State::random_qubit_product(&tc.register, &mut rng);
        let a = ideal::run(&tc, &init);
        let b = run_trajectory(&tc, &init, &noise, &mut rng);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    /// A small schedule with a fuseable run: h(0); cx(0,1); h(1).
    fn fuseable_circuit(fidelity: f64) -> TimedCircuit {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg);
        let mk = |label: &str, u: Matrix, ops: Vec<usize>, start: f64, dur: f64| {
            let dims = vec![2u8; ops.len()];
            TimedOp::new(label, u, ops, dims, start, dur, fidelity)
        };
        tc.ops.push(mk("h", standard::h(), vec![0], 0.0, 35.0));
        tc.ops
            .push(mk("cx", standard::cx(), vec![0, 1], 35.0, 251.0));
        tc.ops.push(mk("h", standard::h(), vec![1], 286.0, 35.0));
        tc.total_duration_ns = 321.0;
        tc
    }

    #[test]
    fn fused_noiseless_trajectory_equals_ideal() {
        let tc = fuseable_circuit(0.9);
        let fused = tc.fuse();
        assert_eq!(fused.len(), 1);
        let noise = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(21);
        let init = State::random_qubit_product(&tc.register, &mut rng);
        let a = ideal::run(&tc, &init);
        let b = run_trajectory(&fused, &init, &noise, &mut rng);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_noise_replays_per_constituent_pulse() {
        // With noise on, the fused estimate must match the unfused one
        // statistically: same per-pulse depolarizing probabilities and the
        // same per-device idle/busy damping time.
        let tc = fuseable_circuit(0.97);
        let fused = tc.fuse();
        let noise = NoiseModel::paper();
        let a = average_fidelity(&tc, &noise, 800, 11);
        let b = average_fidelity(&fused, &noise, 800, 12);
        let spread = 4.0 * (a.std_error + b.std_error) + 1e-3;
        assert!(
            (a.mean - b.mean).abs() < spread,
            "unfused {} vs fused {} (allowed {})",
            a.mean,
            b.mean,
            spread
        );
    }

    #[test]
    fn fused_trailing_idle_still_damps() {
        // The block's constituents update free_at per event, so the
        // trailing-idle damping window stays exact after fusion.
        let mut tc = fuseable_circuit(1.0);
        tc.total_duration_ns = 10_000_000.0; // 10 ms >> T1
        let fused = tc.fuse();
        let est = average_fidelity(&fused, &NoiseModel::paper(), 60, 3);
        assert!(est.mean < 0.8, "mean {} should collapse", est.mean);
    }

    #[test]
    fn perfect_gates_and_zero_time_give_unit_fidelity() {
        let tc = one_gate_circuit(1.0, 0.0);
        let est = average_fidelity(&tc, &NoiseModel::paper(), 20, 42);
        assert!((est.mean - 1.0).abs() < 1e-9, "mean {}", est.mean);
    }

    #[test]
    fn depolarizing_rate_shows_in_average_fidelity() {
        // One gate with fidelity 0.9 and no decoherence: mean fidelity
        // should be near 0.9 (error states are mostly orthogonal).
        let tc = one_gate_circuit(0.9, 0.0);
        let mut noise = NoiseModel::paper();
        noise.damping = false;
        noise.busy_time_damping = false;
        let est = average_fidelity(&tc, &noise, 600, 7);
        assert!(
            est.mean > 0.85 && est.mean < 0.97,
            "mean {} should be near the gate fidelity",
            est.mean
        );
        assert!(est.std_error < 0.02);
    }

    #[test]
    fn long_idle_time_damps_fidelity() {
        // A gate followed by an enormous idle window: coherence error
        // dominates and fidelity collapses.
        let reg = Register::qubits(1);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(TimedOp::new(
            "x",
            standard::x(),
            vec![0],
            vec![2],
            0.0,
            35.0,
            1.0,
        ));
        tc.total_duration_ns = 10_000_000.0; // 10 ms >> T1
        let est = average_fidelity(&tc, &NoiseModel::paper(), 60, 3);
        assert!(est.mean < 0.75, "mean {} should collapse", est.mean);
    }

    #[test]
    fn busy_time_damping_penalizes_long_pulses() {
        // Same gate, 100x duration: fidelity must drop when busy-time
        // damping is on.
        let short = one_gate_circuit(1.0, 100.0);
        let long = one_gate_circuit(1.0, 100_000.0);
        let noise = NoiseModel::paper();
        let fs = average_fidelity(&short, &noise, 200, 5).mean;
        let fl = average_fidelity(&long, &noise, 200, 5).mean;
        assert!(fl < fs, "long pulse {fl} should underperform short {fs}");
    }

    #[test]
    fn error_dims_restrict_errors_to_logical_levels() {
        // A qubit-calibrated gate on 4-level devices must never populate
        // levels 2/3 even when errors fire.
        let reg = Register::ququarts(1);
        let mut tc = TimedCircuit::new(reg.clone());
        tc.ops.push(TimedOp::new(
            "x",
            waltz_gates::embed(&standard::x(), &[2], &[4]),
            vec![0],
            vec![2],
            0.0,
            35.0,
            0.0, // always draw an error
        ));
        tc.total_duration_ns = 35.0;
        let mut noise = NoiseModel::paper();
        noise.damping = false;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let out = run_trajectory(&tc, &State::zero(&reg), &noise, &mut rng);
            assert!(out.probability_of(2) < 1e-12);
            assert!(out.probability_of(3) < 1e-12);
        }
    }

    #[test]
    fn estimates_are_deterministic_for_fixed_seed() {
        let tc = one_gate_circuit(0.95, 300.0);
        let a = average_fidelity(&tc, &NoiseModel::paper(), 40, 99);
        let b = average_fidelity(&tc, &NoiseModel::paper(), 40, 99);
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn validate_passes_for_embedded_unitaries() {
        let reg = Register::new(vec![4, 4]);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(TimedOp::new(
            "cx-embedded",
            waltz_gates::embed(&standard::cx(), &[2, 2], &[4, 4]),
            vec![0, 1],
            vec![2, 2],
            0.0,
            251.0,
            0.99,
        ));
        tc.total_duration_ns = 251.0;
        assert!(tc.validate().is_ok());
        let _ = Matrix::identity(2);
    }
}
