//! The paper's modified trajectory method (§6.4–§6.5).
//!
//! Standard trajectory simulation inserts idle error gates at every time
//! step; the paper instead damps each operand **once per gate, for the
//! exact time it has been idle**, which better captures which level the
//! qudit decoheres from. After each gate a generalized-Pauli error is
//! drawn with probability `1 - F_gate` over the gate's calibrated error
//! dimensions (mixed-radix gates draw from `P_2 (x) P_4`, §6.5).

use std::sync::{Mutex, PoisonError};

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use waltz_noise::{pauli, CoherenceModel, NoiseModel, PauliOp};

use crate::kernel::Workspace;
use crate::pool::TrajectoryPool;
use crate::sparse::{AdaptiveState, SparsePolicy, SparseState};
use crate::{ideal, SegmentedCircuit, State, TimedCircuit, TimedOp};

/// The state-representation interface the shared per-op noise loop runs
/// against. Dense [`State`] and the density-adaptive
/// [`AdaptiveState`] both implement it, so the noise accounting — idle
/// and busy damping windows, depolarizing draws, the order of every RNG
/// consumption — is *the same code* for both representations, which is
/// what makes adaptive estimates bit-compatible with dense ones for a
/// fixed seed.
pub(crate) trait NoisyTarget {
    fn apply_op(&mut self, op: &TimedOp, ws: &mut Workspace);
    fn apply_pauli(&mut self, op: PauliOp, qudit: usize);
    fn damping_step_with<R: Rng + ?Sized>(
        &mut self,
        model: &CoherenceModel,
        qudit: usize,
        dt_ns: f64,
        rng: &mut R,
        ws: &mut Workspace,
    );
    #[cfg(feature = "fault-inject")]
    fn fault_tick(&mut self);
}

impl NoisyTarget for State {
    fn apply_op(&mut self, op: &TimedOp, ws: &mut Workspace) {
        State::apply_op(self, op, ws);
    }
    fn apply_pauli(&mut self, op: PauliOp, qudit: usize) {
        State::apply_pauli(self, op, qudit);
    }
    fn damping_step_with<R: Rng + ?Sized>(
        &mut self,
        model: &CoherenceModel,
        qudit: usize,
        dt_ns: f64,
        rng: &mut R,
        ws: &mut Workspace,
    ) {
        State::damping_step_with(self, model, qudit, dt_ns, rng, ws);
    }
    #[cfg(feature = "fault-inject")]
    fn fault_tick(&mut self) {
        crate::fault::tick_op(self);
    }
}

impl NoisyTarget for AdaptiveState {
    fn apply_op(&mut self, op: &TimedOp, ws: &mut Workspace) {
        AdaptiveState::apply_op(self, op, ws);
    }
    fn apply_pauli(&mut self, op: PauliOp, qudit: usize) {
        AdaptiveState::apply_pauli(self, op, qudit);
    }
    fn damping_step_with<R: Rng + ?Sized>(
        &mut self,
        model: &CoherenceModel,
        qudit: usize,
        dt_ns: f64,
        rng: &mut R,
        ws: &mut Workspace,
    ) {
        AdaptiveState::damping_step_with(self, model, qudit, dt_ns, rng, ws);
    }
    #[cfg(feature = "fault-inject")]
    fn fault_tick(&mut self) {
        crate::fault::tick_op_with(|| self.poison_first_amplitude());
    }
}

/// Runs one noisy trajectory, returning the final (normalized) state.
///
/// # Panics
///
/// Panics if the initial state's register differs from the circuit's.
pub fn run_trajectory<R: Rng + ?Sized>(
    circuit: &TimedCircuit,
    initial: &State,
    noise: &NoiseModel,
    rng: &mut R,
) -> State {
    let mut out = initial.clone();
    let mut ws = Workspace::serial();
    run_trajectory_into(circuit, initial, noise, rng, &mut out, &mut ws);
    out
}

/// [`run_trajectory`] writing into a caller-owned output state. All gate
/// application goes through the ops' precomputed
/// [`crate::GateKernel`]s with
/// scratch borrowed from `ws`, so steady-state trajectory batches perform
/// no per-gate heap allocation.
///
/// # Panics
///
/// Panics if either state's register differs from the circuit's.
pub fn run_trajectory_into<R: Rng + ?Sized>(
    circuit: &TimedCircuit,
    initial: &State,
    noise: &NoiseModel,
    rng: &mut R,
    out: &mut State,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        &circuit.register,
        "state register does not match circuit register"
    );
    out.copy_from(initial);
    ws.free_at.clear();
    ws.free_at.resize(circuit.register.n_qudits(), 0.0);
    run_ops(circuit, noise, rng, out, ws);
    // Trailing idle until the circuit's wall-clock end.
    if noise.damping {
        for q in 0..circuit.register.n_qudits() {
            let idle = circuit.total_duration_ns - ws.free_at[q];
            if idle > 0.0 {
                out.damping_step_with(&noise.coherence, q, idle, rng, ws);
            }
        }
    }
}

/// The per-op noise/apply loop shared by the whole-program and segmented
/// runners: damps exact idle time, applies each op through its kernel,
/// replays fused-block noise events, and draws depolarizing errors —
/// continuing from (and updating) the per-device busy times in
/// `ws.free_at`, which the caller owns across segments.
fn run_ops<S: NoisyTarget, R: Rng + ?Sized>(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    rng: &mut R,
    out: &mut S,
    ws: &mut Workspace,
) {
    for op in &circuit.ops {
        match &op.noise_events {
            None => {
                // Exact-idle-time damping on each operand (§6.4).
                if noise.damping {
                    for &q in &op.operands {
                        let idle = op.start_ns - ws.free_at[q];
                        if idle > 0.0 {
                            out.damping_step_with(&noise.coherence, q, idle, rng, ws);
                        }
                    }
                }
                out.apply_op(op, ws);
                #[cfg(feature = "fault-inject")]
                out.fault_tick();
                // Busy-time damping: decoherence during the pulse itself.
                if noise.damping && noise.busy_time_damping {
                    for &q in &op.operands {
                        out.damping_step_with(&noise.coherence, q, op.duration_ns, rng, ws);
                    }
                }
                // Depolarizing draw with probability 1 - F (§6.5).
                if noise.depolarizing && op.fidelity < 1.0 && rng.gen::<f64>() > op.fidelity {
                    let err = pauli::sample_error(&op.error_dims, rng);
                    for (p, &q) in err.iter().zip(op.operands.iter()) {
                        out.apply_pauli(*p, q);
                    }
                }
                for &q in &op.operands {
                    ws.free_at[q] = op.end_ns();
                }
            }
            Some(events) => {
                // A fused block: the unitary is applied once, but idle
                // damping, busy damping and depolarizing draws replay per
                // constituent pulse so each device still accumulates its
                // exact idle/busy time and each pulse keeps its calibrated
                // error channel. Only the interleaving of noise with the
                // block's interior unitaries is approximated.
                if noise.damping {
                    for ev in events {
                        for &q in &ev.operands {
                            let idle = ev.start_ns - ws.free_at[q];
                            if idle > 0.0 {
                                out.damping_step_with(&noise.coherence, q, idle, rng, ws);
                            }
                            ws.free_at[q] = ev.end_ns();
                        }
                    }
                } else {
                    for ev in events {
                        for &q in &ev.operands {
                            ws.free_at[q] = ev.end_ns();
                        }
                    }
                }
                out.apply_op(op, ws);
                #[cfg(feature = "fault-inject")]
                out.fault_tick();
                for ev in events {
                    if noise.damping && noise.busy_time_damping {
                        for &q in &ev.operands {
                            out.damping_step_with(&noise.coherence, q, ev.duration_ns, rng, ws);
                        }
                    }
                    if noise.depolarizing && ev.fidelity < 1.0 && rng.gen::<f64>() > ev.fidelity {
                        let err = pauli::sample_error(&ev.error_dims, rng);
                        for (p, &q) in err.iter().zip(ev.operands.iter()) {
                            out.apply_pauli(*p, q);
                        }
                    }
                }
            }
        }
    }
}

/// Runs one noisy trajectory of a windowed-register schedule, returning
/// the final state (on the last segment's register). Convenience wrapper
/// that allocates the two rolling state buffers; steady-state loops
/// should use [`run_trajectory_segmented_into`] (or a
/// [`crate::SegmentedSession`]) with reused buffers.
///
/// # Panics
///
/// Panics if the initial state's register differs from the first
/// segment's.
pub fn run_trajectory_segmented<R: Rng + ?Sized>(
    circuit: &SegmentedCircuit,
    initial: &State,
    noise: &NoiseModel,
    rng: &mut R,
) -> State {
    let (mut out, mut scratch) = circuit.rolling_buffers();
    let mut ws = Workspace::serial();
    run_trajectory_segmented_into(
        circuit,
        initial,
        noise,
        rng,
        &mut out,
        &mut scratch,
        &mut ws,
    );
    out
}

/// [`run_trajectory_segmented`] rolling **two** caller-owned state
/// buffers across the segments (see
/// [`crate::SegmentedCircuit::rolling_buffers`]): at each boundary
/// `scratch` is re-targeted onto the next segment's register, the state
/// reshaped into it, and the buffers swapped — live allocation is two
/// peak-sized buffers regardless of the segment count, and once both
/// have reached the peak size the loop allocates nothing. The final
/// state is left in `out` (on the last segment's register). Segments run
/// in order sharing one per-device busy timeline, so idle-time damping
/// windows are identical to the whole-program engine.
///
/// # Panics
///
/// Panics if the initial state's register differs from the first
/// segment's.
#[allow(clippy::too_many_arguments)]
pub fn run_trajectory_segmented_into<R: Rng + ?Sized>(
    circuit: &SegmentedCircuit,
    initial: &State,
    noise: &NoiseModel,
    rng: &mut R,
    out: &mut State,
    scratch: &mut State,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        circuit.first_register(),
        "state register does not match the first segment"
    );
    let n_qudits = circuit.first_register().n_qudits();
    ws.free_at.clear();
    ws.free_at.resize(n_qudits, 0.0);
    out.remap(circuit.first_register());
    out.copy_from(initial);
    for (k, segment) in circuit.segments.iter().enumerate() {
        if k > 0 {
            // Lossy: an error draw may have populated levels the
            // noiseless occupancy analysis proved empty; dropping them
            // un-renormalized matches the whole-program engine's
            // fidelity contribution to first order in the leaked
            // probability (see `State::reshape_into_lossy`).
            scratch.remap(&segment.register);
            let _leaked = out.reshape_into_lossy(scratch);
            std::mem::swap(out, scratch);
        }
        run_ops(segment, noise, rng, out, ws);
    }
    // Trailing idle until the program's wall-clock end, on the final
    // register.
    if noise.damping {
        for q in 0..n_qudits {
            let idle = circuit.total_duration_ns - ws.free_at[q];
            if idle > 0.0 {
                out.damping_step_with(&noise.coherence, q, idle, rng, ws);
            }
        }
    }
}

/// Result of a Monte-Carlo fidelity estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityEstimate {
    /// Mean state fidelity over trajectories.
    pub mean: f64,
    /// Standard error of the mean (std-dev / sqrt(n), the paper's error
    /// bars).
    pub std_error: f64,
    /// Number of trajectories.
    pub trajectories: usize,
}

/// Estimates average fidelity over random initial states: for each
/// trajectory a fresh random qubit-product state is drawn (§6.4, "random
/// quantum states as classical inputs are not always affected by quantum
/// errors"), the ideal and noisy final states are computed, and their
/// overlap recorded. Runs on the process-wide [`TrajectoryPool`].
pub fn average_fidelity(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> FidelityEstimate {
    average_fidelity_on(
        &TrajectoryPool::global(),
        circuit,
        noise,
        trajectories,
        seed,
    )
}

/// [`average_fidelity`] on a caller-chosen [`TrajectoryPool`].
pub fn average_fidelity_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> FidelityEstimate {
    average_fidelity_with_on(pool, circuit, noise, trajectories, seed, |_, rng, out| {
        out.fill_random_qubit_product(rng)
    })
}

/// [`average_fidelity`] with a custom initial-state factory.
///
/// The factory **writes into a caller-owned buffer** (`write_initial(reg,
/// rng, out)` overwrites `out` in place): each pool worker owns one
/// [`Workspace`] and a fixed set of state buffers reused across all of
/// the trajectories it steals, so the steady-state loop performs no
/// per-trajectory heap allocation at all — not even for the initial
/// state. The ideal output is memoized per worker: when the factory is
/// deterministic (ignores its RNG, e.g. a fixed input state), the
/// noiseless circuit runs once per worker instead of once per trajectory.
pub fn average_fidelity_with(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> FidelityEstimate {
    average_fidelity_with_on(
        &TrajectoryPool::global(),
        circuit,
        noise,
        trajectories,
        seed,
        write_initial,
    )
}

/// [`average_fidelity_with`] on a caller-chosen [`TrajectoryPool`].
pub fn average_fidelity_with_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> FidelityEstimate {
    estimate_from(&fidelity_samples_with_on(
        pool,
        circuit,
        noise,
        trajectories,
        seed,
        write_initial,
    ))
}

/// The raw per-trajectory fidelity samples behind [`average_fidelity`]:
/// `samples[g]` is the fidelity of the trajectory with global index `g`,
/// whose RNG seed depends only on `(seed, g)` — so the vector is
/// bit-identical for any pool width, and downstream consumers (the serve
/// layer's replay check, incremental tallies) can reference individual
/// trajectories stably.
pub fn fidelity_samples_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Vec<f64> {
    fidelity_samples_with_on(pool, circuit, noise, trajectories, seed, |_, rng, out| {
        out.fill_random_qubit_product(rng)
    })
}

/// [`fidelity_samples_on`] with a custom initial-state factory (the
/// sample-vector form of [`average_fidelity_with_on`]).
pub fn fidelity_samples_with_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> Vec<f64> {
    struct Worker {
        ws: Workspace,
        initial: State,
        noisy_out: State,
        ideal_out: State,
        cached_initial: State,
        ideal_cached: bool,
    }
    sample_over_trajectories(
        pool,
        trajectories,
        seed,
        || Worker {
            ws: Workspace::serial(),
            initial: State::zero(&circuit.register),
            noisy_out: State::zero(&circuit.register),
            ideal_out: State::zero(&circuit.register),
            cached_initial: State::zero(&circuit.register),
            ideal_cached: false,
        },
        |w, rng| {
            write_initial(&circuit.register, rng, &mut w.initial);
            if !(w.ideal_cached && w.cached_initial == w.initial) {
                ideal::run_into(circuit, &w.initial, &mut w.ideal_out, &mut w.ws);
                w.cached_initial.copy_from(&w.initial);
                w.ideal_cached = true;
            }
            run_trajectory_into(circuit, &w.initial, noise, rng, &mut w.noisy_out, &mut w.ws);
            w.ideal_out.fidelity(&w.noisy_out)
        },
    )
}

/// Per-index fidelity slots written concurrently by pool workers. Sound
/// because [`TrajectoryPool::run_units`] hands out each global index
/// exactly once, so distinct workers never touch the same slot.
struct SharedSlots(*mut f64);
unsafe impl Sync for SharedSlots {}
unsafe impl Send for SharedSlots {}

impl SharedSlots {
    /// # Safety
    ///
    /// `idx` must be in bounds and claimed by exactly one worker.
    unsafe fn write(&self, idx: usize, value: f64) {
        unsafe { *self.0.add(idx) = value }
    }
}

/// The one Monte-Carlo driver behind every fidelity estimator: workers
/// steal global trajectory indices from `pool`, each carrying one buffer
/// state from `make_worker` across all the indices it claims, and
/// `run_one`'s fidelity lands in the per-index slot. Centralizing the
/// stealing and the per-index seeding here is what guarantees (a) the
/// whole-program and segmented estimators consume **identical** seed
/// streams and (b) the sample vector does not depend on the pool width.
fn sample_over_trajectories<W>(
    pool: &TrajectoryPool,
    trajectories: usize,
    seed: u64,
    make_worker: impl Fn() -> W + Sync,
    run_one: impl Fn(&mut W, &mut StdRng) -> f64 + Sync,
) -> Vec<f64> {
    assert!(trajectories > 0, "need at least one trajectory");
    let mut fidelities = vec![0.0f64; trajectories];
    let slots = SharedSlots(fidelities.as_mut_ptr());
    pool.run_units(
        trajectories,
        |_| make_worker(),
        |worker, g| {
            #[cfg(feature = "fault-inject")]
            crate::fault::begin_trajectory(g);
            let mut rng = StdRng::seed_from_u64(trajectory_seed(seed, g));
            let f = run_one(worker, &mut rng);
            // SAFETY: `g` is in `0..trajectories` and claimed once.
            unsafe { slots.write(g, f) };
        },
    );
    fidelities
}

/// Mean and Bessel-corrected standard error of a fidelity sample.
fn estimate_from(fidelities: &[f64]) -> FidelityEstimate {
    let trajectories = fidelities.len();
    let n = trajectories as f64;
    let mean = fidelities.iter().sum::<f64>() / n;
    // Unbiased (Bessel) sample variance; a single trajectory carries no
    // spread information, so its standard error is reported as zero.
    let var = if trajectories < 2 {
        0.0
    } else {
        fidelities.iter().map(|f| (f - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    FidelityEstimate {
        mean,
        std_error: (var / n).sqrt(),
        trajectories,
    }
}

/// Deterministic RNG seed of the trajectory with global index `g` — a
/// function of `(seed, g)` only, never of which worker ran it or how the
/// indices were distributed, which is what makes every estimate
/// thread-count-invariant.
fn trajectory_seed(seed: u64, g: usize) -> u64 {
    seed.wrapping_add(g as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Health guards for the supervised estimators
/// ([`average_fidelity_supervised_with`] and friends): when a trajectory
/// trips a guard it is **quarantined** — its sample is dropped, the
/// quarantine counted in [`RunHealth`], and the run keeps going.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Quarantine a trajectory whose final noisy-state norm exceeds
    /// `1 + max_norm_growth`. Growth-only on purpose: lossy reshapes at
    /// segment boundaries legitimately *shrink* the norm, but nothing in
    /// a trajectory may grow it.
    pub max_norm_growth: f64,
    /// Quarantine a fidelity sample outside
    /// `[-fidelity_tolerance, 1 + fidelity_tolerance]` (or non-finite).
    pub fidelity_tolerance: f64,
    /// Stop early once the running standard error of the mean drops to
    /// this threshold (after [`min_trajectories`](Self::min_trajectories)
    /// healthy samples). `None` disables early stop.
    pub target_std_error: Option<f64>,
    /// Minimum healthy samples before early stop may trigger.
    pub min_trajectories: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            max_norm_growth: 1e-6,
            fidelity_tolerance: 1e-6,
            target_std_error: None,
            min_trajectories: 16,
        }
    }
}

/// What actually happened during a supervised estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunHealth {
    /// Trajectories requested by the caller.
    pub requested: usize,
    /// Healthy trajectories that contributed to the estimate.
    pub completed: usize,
    /// Trajectories quarantined by a health guard (NaN/Inf fidelity,
    /// out-of-range fidelity, or norm growth).
    pub quarantined: usize,
    /// Whether the run stopped early on
    /// [`HealthPolicy::target_std_error`].
    pub early_stopped: bool,
}

/// The supervised counterpart of [`sample_over_trajectories`]: same pool,
/// same work-stealing and per-index seed stream, plus per-trajectory
/// health guards, an optional early stop on the running standard error,
/// and (under `fault-inject`) per-trajectory arming of the amplitude
/// poison. Because indices are stolen one at a time, an early stop or a
/// straggling trajectory never strands a static chunk: every worker stays
/// busy until the stop flag flips. `run_one` returns
/// `(fidelity, final_noisy_norm)`.
fn estimate_supervised<W>(
    pool: &TrajectoryPool,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
    make_worker: impl Fn() -> W + Sync,
    run_one: impl Fn(&mut W, &mut StdRng) -> (f64, f64) + Sync,
) -> (FidelityEstimate, RunHealth) {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    assert!(trajectories > 0, "need at least one trajectory");
    // NaN marks a slot that never produced a healthy sample (skipped by
    // early stop, or quarantined); the final estimate is taken over the
    // finite slots only.
    let mut fidelities = vec![f64::NAN; trajectories];
    let slots = SharedSlots(fidelities.as_mut_ptr());
    let stop = AtomicBool::new(false);
    let quarantined = AtomicUsize::new(0);
    // Running (count, sum, sum of squares) over healthy samples, for the
    // early-stop standard-error check.
    let tally = Mutex::new((0usize, 0.0f64, 0.0f64));
    pool.run_units(
        trajectories,
        |_| make_worker(),
        |worker, g| {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            #[cfg(feature = "fault-inject")]
            crate::fault::begin_trajectory(g);
            let mut rng = StdRng::seed_from_u64(trajectory_seed(seed, g));
            let (f, norm) = run_one(worker, &mut rng);
            let healthy = f.is_finite()
                && norm.is_finite()
                && f >= -policy.fidelity_tolerance
                && f <= 1.0 + policy.fidelity_tolerance
                && norm <= 1.0 + policy.max_norm_growth;
            if !healthy {
                quarantined.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // SAFETY: `g` is in `0..trajectories` and claimed once.
            unsafe { slots.write(g, f) };
            if let Some(target) = policy.target_std_error {
                let mut t = tally.lock().unwrap_or_else(PoisonError::into_inner);
                t.0 += 1;
                t.1 += f;
                t.2 += f * f;
                if t.0 >= policy.min_trajectories.max(2) {
                    let n = t.0 as f64;
                    let var = ((t.2 - t.1 * t.1 / n) / (n - 1.0)).max(0.0);
                    if (var / n).sqrt() <= target {
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            }
        },
    );
    let kept: Vec<f64> = fidelities
        .iter()
        .copied()
        .filter(|f| f.is_finite())
        .collect();
    let health = RunHealth {
        requested: trajectories,
        completed: kept.len(),
        quarantined: quarantined.load(std::sync::atomic::Ordering::Relaxed),
        early_stopped: stop.load(std::sync::atomic::Ordering::Relaxed),
    };
    let estimate = if kept.is_empty() {
        FidelityEstimate {
            mean: f64::NAN,
            std_error: f64::NAN,
            trajectories: 0,
        }
    } else {
        estimate_from(&kept)
    };
    (estimate, health)
}

/// [`average_fidelity`] with health supervision: per-trajectory NaN/Inf
/// and norm-growth guards (quarantine, count, keep going) and an optional
/// early stop when the running standard error reaches
/// [`HealthPolicy::target_std_error`]. Returns the estimate over healthy
/// trajectories plus a [`RunHealth`] report.
pub fn average_fidelity_supervised(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
) -> (FidelityEstimate, RunHealth) {
    average_fidelity_supervised_with(circuit, noise, trajectories, seed, policy, |_, rng, out| {
        out.fill_random_qubit_product(rng)
    })
}

/// [`average_fidelity_supervised`] on a caller-chosen [`TrajectoryPool`].
pub fn average_fidelity_supervised_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
) -> (FidelityEstimate, RunHealth) {
    average_fidelity_supervised_with_on(
        pool,
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        |_, rng, out| out.fill_random_qubit_product(rng),
    )
}

/// [`average_fidelity_supervised`] with a custom initial-state factory;
/// same buffer-reuse and seed-stream discipline as
/// [`average_fidelity_with`], so a fully healthy supervised run (no
/// quarantine, no early stop) reproduces its estimate exactly.
pub fn average_fidelity_supervised_with(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> (FidelityEstimate, RunHealth) {
    average_fidelity_supervised_with_on(
        &TrajectoryPool::global(),
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        write_initial,
    )
}

/// [`average_fidelity_supervised_with`] on a caller-chosen
/// [`TrajectoryPool`].
pub fn average_fidelity_supervised_with_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> (FidelityEstimate, RunHealth) {
    struct Worker {
        ws: Workspace,
        initial: State,
        noisy_out: State,
        ideal_out: State,
        cached_initial: State,
        ideal_cached: bool,
    }
    estimate_supervised(
        pool,
        trajectories,
        seed,
        policy,
        || Worker {
            ws: Workspace::serial(),
            initial: State::zero(&circuit.register),
            noisy_out: State::zero(&circuit.register),
            ideal_out: State::zero(&circuit.register),
            cached_initial: State::zero(&circuit.register),
            ideal_cached: false,
        },
        |w, rng| {
            write_initial(&circuit.register, rng, &mut w.initial);
            if !(w.ideal_cached && w.cached_initial == w.initial) {
                ideal::run_into(circuit, &w.initial, &mut w.ideal_out, &mut w.ws);
                w.cached_initial.copy_from(&w.initial);
                w.ideal_cached = true;
            }
            run_trajectory_into(circuit, &w.initial, noise, rng, &mut w.noisy_out, &mut w.ws);
            (w.ideal_out.fidelity(&w.noisy_out), w.noisy_out.norm())
        },
    )
}

/// [`average_fidelity_segmented`] with health supervision — the segmented
/// counterpart of [`average_fidelity_supervised`].
pub fn average_fidelity_segmented_supervised(
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
) -> (FidelityEstimate, RunHealth) {
    average_fidelity_segmented_supervised_with(
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        |_, rng, out| out.fill_random_qubit_product(rng),
    )
}

/// [`average_fidelity_segmented_supervised`] on a caller-chosen
/// [`TrajectoryPool`].
pub fn average_fidelity_segmented_supervised_on(
    pool: &TrajectoryPool,
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
) -> (FidelityEstimate, RunHealth) {
    average_fidelity_segmented_supervised_with_on(
        pool,
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        |_, rng, out| out.fill_random_qubit_product(rng),
    )
}

/// [`average_fidelity_segmented_supervised`] with a custom initial-state
/// factory; same buffers and seed stream as
/// [`average_fidelity_segmented_with`].
pub fn average_fidelity_segmented_supervised_with(
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> (FidelityEstimate, RunHealth) {
    average_fidelity_segmented_supervised_with_on(
        &TrajectoryPool::global(),
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        write_initial,
    )
}

/// [`average_fidelity_segmented_supervised_with`] on a caller-chosen
/// [`TrajectoryPool`].
pub fn average_fidelity_segmented_supervised_with_on(
    pool: &TrajectoryPool,
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &HealthPolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> (FidelityEstimate, RunHealth) {
    struct Worker {
        ws: Workspace,
        initial: State,
        noisy_out: State,
        noisy_scratch: State,
        ideal_out: State,
        ideal_scratch: State,
        cached_initial: State,
        ideal_cached: bool,
    }
    estimate_supervised(
        pool,
        trajectories,
        seed,
        policy,
        || {
            let (noisy_out, noisy_scratch) = circuit.rolling_buffers();
            let (ideal_out, ideal_scratch) = circuit.rolling_buffers();
            Worker {
                ws: Workspace::serial(),
                initial: State::zero(circuit.first_register()),
                noisy_out,
                noisy_scratch,
                ideal_out,
                ideal_scratch,
                cached_initial: State::zero(circuit.first_register()),
                ideal_cached: false,
            }
        },
        |w, rng| {
            write_initial(circuit.first_register(), rng, &mut w.initial);
            if !(w.ideal_cached && w.cached_initial == w.initial) {
                ideal::run_segmented_into(
                    circuit,
                    &w.initial,
                    &mut w.ideal_out,
                    &mut w.ideal_scratch,
                    &mut w.ws,
                );
                w.cached_initial.copy_from(&w.initial);
                w.ideal_cached = true;
            }
            run_trajectory_segmented_into(
                circuit,
                &w.initial,
                noise,
                rng,
                &mut w.noisy_out,
                &mut w.noisy_scratch,
                &mut w.ws,
            );
            (w.ideal_out.fidelity(&w.noisy_out), w.noisy_out.norm())
        },
    )
}

/// [`average_fidelity`] over a windowed-register schedule
/// ([`SegmentedCircuit`]): random qubit-product inputs on the *first*
/// segment's register, ideal and noisy runs through the same segmented
/// engine, fidelity taken on the last segment's register.
pub fn average_fidelity_segmented(
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> FidelityEstimate {
    average_fidelity_segmented_with(circuit, noise, trajectories, seed, |_, rng, out| {
        out.fill_random_qubit_product(rng)
    })
}

/// [`average_fidelity_segmented`] on a caller-chosen [`TrajectoryPool`].
pub fn average_fidelity_segmented_on(
    pool: &TrajectoryPool,
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> FidelityEstimate {
    average_fidelity_segmented_with_on(pool, circuit, noise, trajectories, seed, |_, rng, out| {
        out.fill_random_qubit_product(rng)
    })
}

/// [`average_fidelity_segmented`] with a custom initial-state factory
/// (`write_initial(first_register, rng, out)` overwrites `out` in place).
///
/// The segmented counterpart of [`average_fidelity_with`], with the same
/// steady-state discipline: each worker owns one [`Workspace`], two
/// rolling peak-sized state buffers for the noisy run, two for the
/// memoized ideal run, and an initial-state buffer — all reused across
/// its trajectories, so the loop performs no per-trajectory heap
/// allocation. Seeds follow the exact scheme of
/// [`average_fidelity_with`].
pub fn average_fidelity_segmented_with(
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> FidelityEstimate {
    average_fidelity_segmented_with_on(
        &TrajectoryPool::global(),
        circuit,
        noise,
        trajectories,
        seed,
        write_initial,
    )
}

/// [`average_fidelity_segmented_with`] on a caller-chosen
/// [`TrajectoryPool`].
pub fn average_fidelity_segmented_with_on(
    pool: &TrajectoryPool,
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> FidelityEstimate {
    estimate_from(&fidelity_samples_segmented_with_on(
        pool,
        circuit,
        noise,
        trajectories,
        seed,
        write_initial,
    ))
}

/// The segmented counterpart of [`fidelity_samples_with_on`]: raw
/// per-global-index fidelity samples over a windowed-register schedule,
/// bit-identical for any pool width.
pub fn fidelity_samples_segmented_with_on(
    pool: &TrajectoryPool,
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut State) + Sync,
) -> Vec<f64> {
    struct Worker {
        ws: Workspace,
        initial: State,
        noisy_out: State,
        noisy_scratch: State,
        ideal_out: State,
        ideal_scratch: State,
        cached_initial: State,
        ideal_cached: bool,
    }
    sample_over_trajectories(
        pool,
        trajectories,
        seed,
        || {
            let (noisy_out, noisy_scratch) = circuit.rolling_buffers();
            let (ideal_out, ideal_scratch) = circuit.rolling_buffers();
            Worker {
                ws: Workspace::serial(),
                initial: State::zero(circuit.first_register()),
                noisy_out,
                noisy_scratch,
                ideal_out,
                ideal_scratch,
                cached_initial: State::zero(circuit.first_register()),
                ideal_cached: false,
            }
        },
        |w, rng| {
            write_initial(circuit.first_register(), rng, &mut w.initial);
            if !(w.ideal_cached && w.cached_initial == w.initial) {
                ideal::run_segmented_into(
                    circuit,
                    &w.initial,
                    &mut w.ideal_out,
                    &mut w.ideal_scratch,
                    &mut w.ws,
                );
                w.cached_initial.copy_from(&w.initial);
                w.ideal_cached = true;
            }
            run_trajectory_segmented_into(
                circuit,
                &w.initial,
                noise,
                rng,
                &mut w.noisy_out,
                &mut w.noisy_scratch,
                &mut w.ws,
            );
            w.ideal_out.fidelity(&w.noisy_out)
        },
    )
}

/// [`run_trajectory_into`] on a density-adaptive state: starts from a
/// sparse initial state, runs the **same** per-op noise loop (identical
/// RNG stream to the dense runner), and leaves the final state — in
/// whichever representation the density threshold chose — in `out`. The
/// workspace's [`Workspace::sparse_density_threshold`] /
/// `sparse_epsilon` knobs govern the switching.
///
/// # Panics
///
/// Panics if the initial state's register differs from the circuit's.
pub fn run_trajectory_adaptive_into<R: Rng + ?Sized>(
    circuit: &TimedCircuit,
    initial: &SparseState,
    noise: &NoiseModel,
    rng: &mut R,
    out: &mut AdaptiveState,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        &circuit.register,
        "state register does not match circuit register"
    );
    out.reset_from_sparse(initial, ws);
    ws.free_at.clear();
    ws.free_at.resize(circuit.register.n_qudits(), 0.0);
    run_ops(circuit, noise, rng, out, ws);
    // Trailing idle until the circuit's wall-clock end.
    if noise.damping {
        for q in 0..circuit.register.n_qudits() {
            let idle = circuit.total_duration_ns - ws.free_at[q];
            if idle > 0.0 {
                out.damping_step_with(&noise.coherence, q, idle, rng, ws);
            }
        }
    }
}

/// [`run_trajectory_segmented_into`] on density-adaptive rolling
/// buffers: segment boundaries reshape through
/// [`AdaptiveState::reshape_into_lossy`], which is also where a dense
/// state may drop back to sparse.
///
/// # Panics
///
/// Panics if the initial state's register differs from the first
/// segment's.
#[allow(clippy::too_many_arguments)]
pub fn run_trajectory_segmented_adaptive_into<R: Rng + ?Sized>(
    circuit: &SegmentedCircuit,
    initial: &SparseState,
    noise: &NoiseModel,
    rng: &mut R,
    out: &mut AdaptiveState,
    scratch: &mut AdaptiveState,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        circuit.first_register(),
        "state register does not match the first segment"
    );
    let n_qudits = circuit.first_register().n_qudits();
    ws.free_at.clear();
    ws.free_at.resize(n_qudits, 0.0);
    out.reset_from_sparse(initial, ws);
    for (k, segment) in circuit.segments.iter().enumerate() {
        if k > 0 {
            // Lossy for the same reason as the dense segmented runner:
            // an error draw may populate levels the noiseless occupancy
            // analysis proved empty.
            scratch.remap(&segment.register);
            let _leaked = out.reshape_into_lossy(scratch, ws);
            std::mem::swap(out, scratch);
        }
        run_ops(segment, noise, rng, out, ws);
    }
    // Trailing idle until the program's wall-clock end, on the final
    // register.
    if noise.damping {
        for q in 0..n_qudits {
            let idle = circuit.total_duration_ns - ws.free_at[q];
            if idle > 0.0 {
                out.damping_step_with(&noise.coherence, q, idle, rng, ws);
            }
        }
    }
}

/// Applies a [`SparsePolicy`] to a fresh serial worker workspace.
fn sparse_worker_ws(policy: &SparsePolicy) -> Workspace {
    let mut ws = Workspace::serial();
    ws.set_sparse_density_threshold(policy.density_threshold);
    ws.set_sparse_epsilon(policy.epsilon);
    ws
}

/// [`average_fidelity_with`] through the density-adaptive engine:
/// initial states are written into per-worker [`SparseState`] buffers
/// (classical basis inputs stay at a handful of entries), every
/// trajectory runs sparse until `policy.density_threshold` trips, and
/// the estimate consumes the *same* seed stream as the dense
/// estimators — with `policy.density_threshold` 0 it reproduces
/// [`average_fidelity_with`] exactly.
pub fn average_fidelity_adaptive_with(
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &SparsePolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut SparseState) + Sync,
) -> FidelityEstimate {
    average_fidelity_adaptive_with_on(
        &TrajectoryPool::global(),
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        write_initial,
    )
}

/// [`average_fidelity_adaptive_with`] on a caller-chosen
/// [`TrajectoryPool`].
pub fn average_fidelity_adaptive_with_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &SparsePolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut SparseState) + Sync,
) -> FidelityEstimate {
    estimate_from(&fidelity_samples_adaptive_with_on(
        pool,
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        write_initial,
    ))
}

/// The raw per-trajectory samples behind
/// [`average_fidelity_adaptive_with`] — same per-global-index seeding as
/// [`fidelity_samples_with_on`], so the vector is bit-identical for any
/// pool width.
pub fn fidelity_samples_adaptive_with_on(
    pool: &TrajectoryPool,
    circuit: &TimedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &SparsePolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut SparseState) + Sync,
) -> Vec<f64> {
    struct Worker {
        ws: Workspace,
        initial: SparseState,
        noisy_out: AdaptiveState,
        ideal_out: AdaptiveState,
        cached_initial: SparseState,
        ideal_cached: bool,
    }
    sample_over_trajectories(
        pool,
        trajectories,
        seed,
        || Worker {
            ws: sparse_worker_ws(policy),
            initial: SparseState::zero(&circuit.register),
            noisy_out: AdaptiveState::zero(&circuit.register),
            ideal_out: AdaptiveState::zero(&circuit.register),
            cached_initial: SparseState::zero(&circuit.register),
            ideal_cached: false,
        },
        |w, rng| {
            write_initial(&circuit.register, rng, &mut w.initial);
            if !(w.ideal_cached && w.cached_initial == w.initial) {
                ideal::run_adaptive_into(circuit, &w.initial, &mut w.ideal_out, &mut w.ws);
                w.cached_initial.copy_from(&w.initial);
                w.ideal_cached = true;
            }
            run_trajectory_adaptive_into(
                circuit,
                &w.initial,
                noise,
                rng,
                &mut w.noisy_out,
                &mut w.ws,
            );
            w.ideal_out.fidelity(&w.noisy_out)
        },
    )
}

/// The segmented counterpart of [`average_fidelity_adaptive_with`]:
/// windowed-register schedules through the density-adaptive engine,
/// with the same seed stream as the dense segmented estimators.
pub fn average_fidelity_segmented_adaptive_with(
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &SparsePolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut SparseState) + Sync,
) -> FidelityEstimate {
    average_fidelity_segmented_adaptive_with_on(
        &TrajectoryPool::global(),
        circuit,
        noise,
        trajectories,
        seed,
        policy,
        write_initial,
    )
}

/// [`average_fidelity_segmented_adaptive_with`] on a caller-chosen
/// [`TrajectoryPool`].
pub fn average_fidelity_segmented_adaptive_with_on(
    pool: &TrajectoryPool,
    circuit: &SegmentedCircuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    policy: &SparsePolicy,
    write_initial: impl Fn(&crate::Register, &mut StdRng, &mut SparseState) + Sync,
) -> FidelityEstimate {
    struct Worker {
        ws: Workspace,
        initial: SparseState,
        noisy_out: AdaptiveState,
        noisy_scratch: AdaptiveState,
        ideal_out: AdaptiveState,
        ideal_scratch: AdaptiveState,
        cached_initial: SparseState,
        ideal_cached: bool,
    }
    let samples = sample_over_trajectories(
        pool,
        trajectories,
        seed,
        || Worker {
            ws: sparse_worker_ws(policy),
            initial: SparseState::zero(circuit.first_register()),
            noisy_out: AdaptiveState::zero(circuit.first_register()),
            noisy_scratch: AdaptiveState::zero(circuit.first_register()),
            ideal_out: AdaptiveState::zero(circuit.first_register()),
            ideal_scratch: AdaptiveState::zero(circuit.first_register()),
            cached_initial: SparseState::zero(circuit.first_register()),
            ideal_cached: false,
        },
        |w, rng| {
            write_initial(circuit.first_register(), rng, &mut w.initial);
            if !(w.ideal_cached && w.cached_initial == w.initial) {
                ideal::run_segmented_adaptive_into(
                    circuit,
                    &w.initial,
                    &mut w.ideal_out,
                    &mut w.ideal_scratch,
                    &mut w.ws,
                );
                w.cached_initial.copy_from(&w.initial);
                w.ideal_cached = true;
            }
            run_trajectory_segmented_adaptive_into(
                circuit,
                &w.initial,
                noise,
                rng,
                &mut w.noisy_out,
                &mut w.noisy_scratch,
                &mut w.ws,
            );
            w.ideal_out.fidelity(&w.noisy_out)
        },
    );
    estimate_from(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Register, TimedOp};
    use waltz_gates::standard;
    use waltz_math::Matrix;

    fn one_gate_circuit(fidelity: f64, duration: f64) -> TimedCircuit {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(TimedOp::new(
            "cx",
            standard::cx(),
            vec![0, 1],
            vec![2, 2],
            0.0,
            duration,
            fidelity,
        ));
        tc.total_duration_ns = duration;
        tc
    }

    #[test]
    fn noiseless_trajectory_equals_ideal() {
        let tc = one_gate_circuit(0.5, 251.0);
        let noise = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        let init = State::random_qubit_product(&tc.register, &mut rng);
        let a = ideal::run(&tc, &init);
        let b = run_trajectory(&tc, &init, &noise, &mut rng);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    /// A small schedule with a fuseable run: h(0); cx(0,1); h(1).
    fn fuseable_circuit(fidelity: f64) -> TimedCircuit {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg);
        let mk = |label: &str, u: Matrix, ops: Vec<usize>, start: f64, dur: f64| {
            let dims = vec![2u8; ops.len()];
            TimedOp::new(label, u, ops, dims, start, dur, fidelity)
        };
        tc.ops.push(mk("h", standard::h(), vec![0], 0.0, 35.0));
        tc.ops
            .push(mk("cx", standard::cx(), vec![0, 1], 35.0, 251.0));
        tc.ops.push(mk("h", standard::h(), vec![1], 286.0, 35.0));
        tc.total_duration_ns = 321.0;
        tc
    }

    #[test]
    fn fused_noiseless_trajectory_equals_ideal() {
        let tc = fuseable_circuit(0.9);
        let fused = tc.fuse();
        assert_eq!(fused.len(), 1);
        let noise = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(21);
        let init = State::random_qubit_product(&tc.register, &mut rng);
        let a = ideal::run(&tc, &init);
        let b = run_trajectory(&fused, &init, &noise, &mut rng);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_noise_replays_per_constituent_pulse() {
        // With noise on, the fused estimate must match the unfused one
        // statistically: same per-pulse depolarizing probabilities and the
        // same per-device idle/busy damping time.
        let tc = fuseable_circuit(0.97);
        let fused = tc.fuse();
        let noise = NoiseModel::paper();
        let a = average_fidelity(&tc, &noise, 800, 11);
        let b = average_fidelity(&fused, &noise, 800, 12);
        let spread = 4.0 * (a.std_error + b.std_error) + 1e-3;
        assert!(
            (a.mean - b.mean).abs() < spread,
            "unfused {} vs fused {} (allowed {})",
            a.mean,
            b.mean,
            spread
        );
    }

    #[test]
    fn fused_trailing_idle_still_damps() {
        // The block's constituents update free_at per event, so the
        // trailing-idle damping window stays exact after fusion.
        let mut tc = fuseable_circuit(1.0);
        tc.total_duration_ns = 10_000_000.0; // 10 ms >> T1
        let fused = tc.fuse();
        let est = average_fidelity(&fused, &NoiseModel::paper(), 60, 3);
        assert!(est.mean < 0.8, "mean {} should collapse", est.mean);
    }

    #[test]
    fn perfect_gates_and_zero_time_give_unit_fidelity() {
        let tc = one_gate_circuit(1.0, 0.0);
        let est = average_fidelity(&tc, &NoiseModel::paper(), 20, 42);
        assert!((est.mean - 1.0).abs() < 1e-9, "mean {}", est.mean);
    }

    #[test]
    fn depolarizing_rate_shows_in_average_fidelity() {
        // One gate with fidelity 0.9 and no decoherence: mean fidelity
        // should be near 0.9 (error states are mostly orthogonal).
        let tc = one_gate_circuit(0.9, 0.0);
        let mut noise = NoiseModel::paper();
        noise.damping = false;
        noise.busy_time_damping = false;
        let est = average_fidelity(&tc, &noise, 600, 7);
        assert!(
            est.mean > 0.85 && est.mean < 0.97,
            "mean {} should be near the gate fidelity",
            est.mean
        );
        assert!(est.std_error < 0.02);
    }

    #[test]
    fn long_idle_time_damps_fidelity() {
        // A gate followed by an enormous idle window: coherence error
        // dominates and fidelity collapses.
        let reg = Register::qubits(1);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(TimedOp::new(
            "x",
            standard::x(),
            vec![0],
            vec![2],
            0.0,
            35.0,
            1.0,
        ));
        tc.total_duration_ns = 10_000_000.0; // 10 ms >> T1
        let est = average_fidelity(&tc, &NoiseModel::paper(), 60, 3);
        assert!(est.mean < 0.75, "mean {} should collapse", est.mean);
    }

    #[test]
    fn busy_time_damping_penalizes_long_pulses() {
        // Same gate, 100x duration: fidelity must drop when busy-time
        // damping is on.
        let short = one_gate_circuit(1.0, 100.0);
        let long = one_gate_circuit(1.0, 100_000.0);
        let noise = NoiseModel::paper();
        let fs = average_fidelity(&short, &noise, 200, 5).mean;
        let fl = average_fidelity(&long, &noise, 200, 5).mean;
        assert!(fl < fs, "long pulse {fl} should underperform short {fs}");
    }

    #[test]
    fn error_dims_restrict_errors_to_logical_levels() {
        // A qubit-calibrated gate on 4-level devices must never populate
        // levels 2/3 even when errors fire.
        let reg = Register::ququarts(1);
        let mut tc = TimedCircuit::new(reg.clone());
        tc.ops.push(TimedOp::new(
            "x",
            waltz_gates::embed(&standard::x(), &[2], &[4]),
            vec![0],
            vec![2],
            0.0,
            35.0,
            0.0, // always draw an error
        ));
        tc.total_duration_ns = 35.0;
        let mut noise = NoiseModel::paper();
        noise.damping = false;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let out = run_trajectory(&tc, &State::zero(&reg), &noise, &mut rng);
            assert!(out.probability_of(2) < 1e-12);
            assert!(out.probability_of(3) < 1e-12);
        }
    }

    /// A (4, 2)-window-then-(2, 2)-tail segmented schedule next to the
    /// equivalent whole-program (4, 2) schedule, for parity checks. The
    /// window applies the mixed-radix CCZ; the tail applies qubit gates
    /// that embed identically on both registers.
    fn segmented_and_whole() -> (crate::SegmentedCircuit, TimedCircuit) {
        let ccz = waltz_gates::mixed::ccz();
        let mk = |label: &str, u: Matrix, ops: Vec<usize>, dims: Vec<u8>, start: f64, dur: f64| {
            TimedOp::new(label, u, ops, dims, start, dur, 0.99)
        };
        // Whole-program register (4, 2).
        let mut whole = TimedCircuit::new(Register::new(vec![4, 2]));
        whole
            .ops
            .push(mk("ccz", ccz.clone(), vec![0, 1], vec![4, 2], 0.0, 100.0));
        whole.ops.push(mk(
            "cx",
            waltz_gates::embed(&standard::cx(), &[2, 2], &[4, 2]),
            vec![0, 1],
            vec![2, 2],
            100.0,
            251.0,
        ));
        whole
            .ops
            .push(mk("h", standard::h(), vec![1], vec![2], 351.0, 35.0));
        whole.total_duration_ns = 500.0;
        // Segmented: the tail runs on a demoted (2, 2) register.
        let mut first = TimedCircuit::new(Register::new(vec![4, 2]));
        first
            .ops
            .push(mk("ccz", ccz, vec![0, 1], vec![4, 2], 0.0, 100.0));
        first.total_duration_ns = 500.0;
        let mut second = TimedCircuit::new(Register::qubits(2));
        second.ops.push(mk(
            "cx",
            standard::cx(),
            vec![0, 1],
            vec![2, 2],
            100.0,
            251.0,
        ));
        second
            .ops
            .push(mk("h", standard::h(), vec![1], vec![2], 351.0, 35.0));
        second.total_duration_ns = 500.0;
        (
            crate::SegmentedCircuit::new(vec![first, second], 500.0),
            whole,
        )
    }

    /// Maps a (2, 2) state up into the qubit subspace of a (4, 2) one.
    fn expand_to_whole(small: &State, whole_reg: &Register) -> State {
        let mut out = State::zero(whole_reg);
        small.reshape_into(&mut out);
        out
    }

    #[test]
    fn segmented_noiseless_trajectory_matches_whole_program() {
        let (seg, whole) = segmented_and_whole();
        assert!(seg.validate().is_ok());
        let mut rng = StdRng::seed_from_u64(31);
        let initial = State::random_qubit_product(seg.first_register(), &mut rng);
        let noise = NoiseModel::noiseless();
        let out_seg = run_trajectory_segmented(&seg, &initial, &noise, &mut rng);
        let out_whole = crate::ideal::run(&whole, &initial);
        let expanded = expand_to_whole(&out_seg, &whole.register);
        assert!((expanded.fidelity(&out_whole) - 1.0).abs() < 1e-12);
        // And the dedicated segmented ideal runner agrees.
        let ideal_seg = crate::ideal::run_segmented(&seg, &initial);
        assert!((ideal_seg.fidelity(&out_seg) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segmented_noisy_estimate_matches_whole_program_statistically() {
        let (seg, whole) = segmented_and_whole();
        let noise = NoiseModel::paper();
        let est_seg = average_fidelity_segmented(&seg, &noise, 800, 5);
        let est_whole = average_fidelity(&whole, &noise, 800, 6);
        let spread = 4.0 * (est_seg.std_error + est_whole.std_error) + 1e-3;
        assert!(
            (est_seg.mean - est_whole.mean).abs() < spread,
            "segmented {} vs whole {} (allowed {})",
            est_seg.mean,
            est_whole.mean,
            spread
        );
    }

    #[test]
    fn segmented_session_reuses_buffers_and_matches_free_functions() {
        let (seg, _) = segmented_and_whole();
        let mut session = crate::SegmentedSession::serial(&seg);
        let mut rng = StdRng::seed_from_u64(41);
        let initial = State::random_qubit_product(seg.first_register(), &mut rng);
        let noise = NoiseModel::paper();
        let mut rng_a = StdRng::seed_from_u64(43);
        let mut rng_b = StdRng::seed_from_u64(43);
        let a = session
            .run_trajectory(&seg, &initial, &noise, &mut rng_a)
            .clone();
        let b = run_trajectory_segmented(&seg, &initial, &noise, &mut rng_b);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        // The second (ideal) run fully overwrites the first.
        let fresh = session.run_ideal(&seg, &initial).clone();
        let reference = crate::ideal::run_segmented(&seg, &initial);
        assert!((fresh.fidelity(&reference) - 1.0).abs() < 1e-12);
        assert!((session.last().fidelity(&reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segmented_trailing_idle_still_damps() {
        let (mut seg, _) = segmented_and_whole();
        seg.total_duration_ns = 10_000_000.0; // 10 ms >> T1
        let est = average_fidelity_segmented(&seg, &NoiseModel::paper(), 60, 3);
        assert!(est.mean < 0.8, "mean {} should collapse", est.mean);
    }

    #[test]
    fn estimates_are_deterministic_for_fixed_seed() {
        let tc = one_gate_circuit(0.95, 300.0);
        let a = average_fidelity(&tc, &NoiseModel::paper(), 40, 99);
        let b = average_fidelity(&tc, &NoiseModel::paper(), 40, 99);
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn validate_passes_for_embedded_unitaries() {
        let reg = Register::new(vec![4, 4]);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(TimedOp::new(
            "cx-embedded",
            waltz_gates::embed(&standard::cx(), &[2, 2], &[4, 4]),
            vec![0, 1],
            vec![2, 2],
            0.0,
            251.0,
            0.99,
        ));
        tc.total_duration_ns = 251.0;
        assert!(tc.validate().is_ok());
        let _ = Matrix::identity(2);
    }
}
