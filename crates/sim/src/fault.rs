//! Deterministic fault injection for the simulator (compiled only under
//! the `fault-inject` feature).
//!
//! The only fault the simulator can inject is **amplitude poisoning**: a
//! [`PoisonPlan`] names one global trajectory index and one op index, and
//! the trajectory engine overwrites the state's first amplitude with NaN
//! right after that op is applied. The supervised estimators
//! ([`crate::trajectory::average_fidelity_supervised_with`]) arm the plan
//! per trajectory via [`begin_trajectory`], so the poison lands on exactly
//! one trajectory no matter how work is split across threads — which is
//! what lets `tests/fault_injection.rs` prove a poisoned trajectory is
//! quarantined while the batch mean stays finite.
//!
//! All state is process-global (a mutex-held plan plus a thread-local
//! countdown); tests that arm a plan must serialize on their own lock and
//! disarm with `set_poison(None)` when done.

use std::cell::Cell;
use std::sync::{Mutex, PoisonError};

use crate::State;

/// A deterministic amplitude-poisoning plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonPlan {
    /// Global trajectory index (in estimator submission order) to poison.
    pub trajectory: usize,
    /// Op index within that trajectory after which the first amplitude
    /// becomes NaN (0 = after the first op).
    pub op_index: usize,
}

static PLAN: Mutex<Option<PoisonPlan>> = Mutex::new(None);

thread_local! {
    /// Ops remaining until this thread's current trajectory is poisoned;
    /// negative = disarmed.
    static COUNTDOWN: Cell<i64> = const { Cell::new(-1) };
}

/// Arms (`Some`) or disarms (`None`) the global poison plan.
pub fn set_poison(plan: Option<PoisonPlan>) {
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = plan;
}

/// Marks the start of a trajectory with the given global index, arming
/// the per-op countdown when the index matches the active plan (and
/// disarming it otherwise). Called by the supervised estimators before
/// every trajectory.
pub fn begin_trajectory(global_index: usize) {
    let armed = PLAN
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .filter(|p| p.trajectory == global_index);
    COUNTDOWN.with(|c| c.set(armed.map(|p| p.op_index as i64).unwrap_or(-1)));
}

/// Per-op hook in the trajectory loop: counts down and poisons the state
/// when the armed op index is reached.
pub(crate) fn tick_op(out: &mut State) {
    tick_op_with(|| out.poison_first_amplitude());
}

/// [`tick_op`] for state representations other than the dense [`State`]:
/// counts down identically and invokes `poison` when the armed op index
/// is reached.
pub(crate) fn tick_op_with(poison: impl FnOnce()) {
    COUNTDOWN.with(|c| {
        let remaining = c.get();
        if remaining < 0 {
            return;
        }
        if remaining == 0 {
            poison();
        }
        c.set(remaining - 1);
    });
}
