//! Persistent worker pool for trajectory ensembles.
//!
//! The trajectory estimators are embarrassingly parallel — hundreds of
//! independent noisy replays, each a few milliseconds — but the engine
//! used to pay a `thread::spawn` per worker *per estimate call*, and
//! static chunking meant an early-stopped run (via
//! [`crate::trajectory::HealthPolicy`]) left whole chunks idle.
//! [`TrajectoryPool`] fixes both:
//!
//! * workers are spawned **once** and parked on a condvar between runs,
//!   so per-call overhead is one lock + notify;
//! * work is **stolen** one trajectory index at a time from a shared
//!   atomic counter, so stragglers and early stops keep every core busy;
//! * each worker lazily builds one per-run state (a `Workspace` plus
//!   reusable state buffers) and carries it across all the trajectories
//!   it claims — no per-trajectory allocation.
//!
//! Determinism: the pool hands out *global* trajectory indices, and the
//! trajectory layer derives each replay's RNG seed from that index alone.
//! Results land in per-index slots, so a fixed seed produces bit-identical
//! estimates for any thread count — including the inline serial path a
//! 1-thread pool takes.
//!
//! The process-wide default pool ([`TrajectoryPool::global`]) sizes
//! itself to `available_parallelism`, overridable with the
//! `WALTZ_TRAJ_THREADS` environment variable.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A task published to the helper threads for one run: called once per
/// helper with its worker index. The `'static` is a lie told by
/// [`TrajectoryPool::run`], which erases the real (shorter) lifetime and
/// is sound because it never returns before every helper has finished
/// with the reference.
type Task = &'static (dyn Fn(usize) + Sync);

/// What the helpers watch: an epoch counter (bumped per published task),
/// the task itself, and how many helpers have yet to finish it.
struct PoolState {
    epoch: u64,
    task: Option<Task>,
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Helpers park here between runs.
    work_cv: Condvar,
    /// The publishing caller parks here until `remaining` hits zero.
    done_cv: Condvar,
}

struct Helpers {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

/// A persistent pool of worker threads for trajectory ensembles.
///
/// See the [module docs](self) for semantics. A pool with one thread
/// spawns nothing and runs every task inline on the caller; calls into a
/// wider pool are serialized by an internal lock (the caller participates
/// as worker 0, helpers are workers `1..threads`).
pub struct TrajectoryPool {
    threads: usize,
    helpers: Option<Helpers>,
    run_lock: Mutex<()>,
}

impl TrajectoryPool {
    /// Creates a pool with exactly `threads` workers (clamped to at
    /// least 1). `threads - 1` helper threads are spawned immediately;
    /// the caller of [`TrajectoryPool::run_units`] is always worker 0.
    pub fn new(threads: usize) -> TrajectoryPool {
        let threads = threads.max(1);
        let helpers = (threads > 1).then(|| {
            let shared = Arc::new(Shared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    task: None,
                    remaining: 0,
                    panicked: false,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            });
            let handles = (1..threads)
                .map(|worker| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("waltz-traj-{worker}"))
                        .spawn(move || helper_loop(shared, worker))
                        .expect("spawn trajectory worker")
                })
                .collect();
            Helpers { shared, handles }
        });
        TrajectoryPool {
            threads,
            helpers,
            run_lock: Mutex::new(()),
        }
    }

    /// A single-threaded pool: every task runs inline on the caller.
    pub fn serial() -> TrajectoryPool {
        TrajectoryPool::new(1)
    }

    /// The process-wide shared pool, created on first use with
    /// `WALTZ_TRAJ_THREADS` workers if that variable is set (clamped to
    /// `1..=256`), else one worker per available core.
    pub fn global() -> Arc<TrajectoryPool> {
        static GLOBAL: OnceLock<Arc<TrajectoryPool>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(TrajectoryPool::new(default_threads()))))
    }

    /// Number of workers (caller included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `units` independent work items across the pool with
    /// work-stealing: workers repeatedly claim the next unclaimed global
    /// index `g` and call `f(state, g)`, where `state` is built at most
    /// once per worker per call by `init(worker)` (workers that never
    /// claim a unit never build one).
    ///
    /// Blocks until every unit has run. If any worker panics, the panic
    /// is re-raised here — after all other workers have finished, so no
    /// borrow published to the pool outlives the call.
    pub fn run_units<S, I, F>(&self, units: usize, init: I, f: F)
    where
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        if units == 0 {
            return;
        }
        let next = AtomicUsize::new(0);
        self.run(&|worker| {
            let mut state: Option<S> = None;
            loop {
                let g = next.fetch_add(1, Ordering::Relaxed);
                if g >= units {
                    break;
                }
                f(state.get_or_insert_with(|| init(worker)), g);
            }
        });
    }

    /// Publishes `f` to every helper and runs it as worker 0, returning
    /// once all workers are done.
    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        // A panic re-raised below poisons this lock; it guards no data,
        // so a poisoned acquisition is still a valid serialization.
        let _serialize = self.run_lock.lock().unwrap_or_else(|e| e.into_inner());
        let Some(helpers) = &self.helpers else {
            f(0);
            return;
        };
        // SAFETY: the erased reference is only reachable by the helper
        // threads between here and the `remaining == 0` wait below; we
        // do not return (even on panic) until that wait completes, so
        // the reference never outlives the closure it points to.
        let task: Task = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = helpers.shared.state.lock().unwrap();
            st.epoch += 1;
            st.task = Some(task);
            st.remaining = self.threads - 1;
            st.panicked = false;
            helpers.shared.work_cv.notify_all();
        }
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let helper_panicked = {
            let mut st = helpers.shared.state.lock().unwrap();
            while st.remaining > 0 {
                st = helpers.shared.done_cv.wait(st).unwrap();
            }
            st.task = None;
            st.panicked
        };
        match caller {
            Err(payload) => resume_unwind(payload),
            Ok(()) if helper_panicked => panic!("trajectory pool worker panicked"),
            Ok(()) => {}
        }
    }
}

impl Drop for TrajectoryPool {
    fn drop(&mut self) {
        if let Some(helpers) = self.helpers.take() {
            {
                let mut st = helpers.shared.state.lock().unwrap();
                st.shutdown = true;
                helpers.shared.work_cv.notify_all();
            }
            for handle in helpers.handles {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for TrajectoryPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrajectoryPool")
            .field("threads", &self.threads)
            .finish()
    }
}

fn helper_loop(shared: Arc<Shared>, worker: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.task.expect("published epoch carries a task");
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| task(worker)));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

fn default_threads() -> usize {
    if let Some(n) = std::env::var("WALTZ_TRAJ_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.clamp(1, 256);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_inline_and_in_order() {
        let pool = TrajectoryPool::serial();
        assert_eq!(pool.threads(), 1);
        let seen = Mutex::new(Vec::new());
        pool.run_units(5, |w| w, |&mut w, g| seen.lock().unwrap().push((w, g)));
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]
        );
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let pool = TrajectoryPool::new(4);
        let hits: Vec<AtomicU64> = (0..137).map(|_| AtomicU64::new(0)).collect();
        pool.run_units(
            hits.len(),
            |_| (),
            |(), g| {
                hits[g].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        // The pool is reusable: a second run sees fresh counters.
        pool.run_units(
            hits.len(),
            |_| (),
            |(), g| {
                hits[g].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
    }

    #[test]
    fn init_runs_at_most_once_per_worker() {
        let pool = TrajectoryPool::new(3);
        let inits = AtomicU64::new(0);
        pool.run_units(
            64,
            |w| {
                inits.fetch_add(1, Ordering::Relaxed);
                w
            },
            |_, _| {},
        );
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "saw {n} inits");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = TrajectoryPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_units(
                8,
                |_| (),
                |(), g| {
                    if g == 3 {
                        panic!("boom");
                    }
                },
            );
        }));
        assert!(result.is_err());
        // Still usable after a panicking run.
        let count = AtomicU64::new(0);
        pool.run_units(
            8,
            |_| (),
            |(), _| {
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_units_is_a_no_op() {
        let pool = TrajectoryPool::new(2);
        pool.run_units(0, |_| panic!("init must not run"), |_: &mut (), _| {});
    }
}
