//! Sparse amplitude-map states and density-adaptive representation
//! switching.
//!
//! The dense [`State`] stores every amplitude of the register — `16 ·
//! Π dims` bytes whether or not the program ever populates them. The
//! paper's compiled circuits are dominated by classical-reversible
//! structure (Toffoli ladders, qram routing): on classical basis inputs
//! the state holds a handful of nonzero amplitudes inside an
//! exponentially large register, and every diagonal or permutation
//! kernel preserves that count exactly. [`SparseState`] stores only the
//! nonzero amplitudes as a sorted `(index, amplitude)` map, and
//! [`AdaptiveState`] runs a trajectory sparse until the population
//! density crosses a threshold, then switches to the dense engine (and
//! back, at reshape/segment boundaries where the state is re-scanned
//! anyway).
//!
//! # Parity discipline
//!
//! Every sparse kernel arm mirrors the *scalar* dense sweep body in
//! [`crate::kernel`] operation for operation: absent entries are exact
//! `+0.0` zeros, and adding an exact zero into a floating-point
//! accumulation never changes a nonzero result. With truncation epsilon
//! `0` the sparse arms therefore reproduce the scalar dense path
//! bit-for-bit on every nonzero amplitude — the `sparse_parity` test
//! suite pins this per kernel class and across representation-switch
//! points.

use std::sync::OnceLock;

use rand::Rng;
use waltz_math::{Matrix, C64};
use waltz_noise::{CoherenceModel, PauliOp};

use crate::kernel::{self, GateKernel, Workspace};
use crate::{Register, State, TimedOp};

/// Default nnz/amps ratio above which an [`AdaptiveState`] abandons the
/// sparse map for the dense engine.
///
/// One sparse entry costs 24 bytes (`u64` index + complex amplitude)
/// against 16 bytes per dense amplitude, so the map stops winning on
/// *memory* at density 2/3; the sweep arms stop winning earlier because
/// every sparse apply rebuilds and re-sorts the entry list while the
/// dense sweeps stream contiguous memory with SIMD and threads. One
/// quarter — comfortably below the memory break-even, several re-sorts
/// of headroom above the regime where sparse clearly wins (density
/// `1e-3` and below) — is the shipped default; tune per workspace with
/// [`Workspace::set_sparse_density_threshold`].
pub const DEFAULT_SPARSE_DENSITY_THRESHOLD: f64 = 0.25;

/// Whether sparse representations are enabled for this process.
///
/// Resolution order mirrors [`crate::SimdLevel::detect`]: the
/// `WALTZ_SPARSE` environment variable (`0`, `off` or `dense`,
/// case-insensitively, forces the dense path everywhere — every
/// [`AdaptiveState`] starts dense and never sparsifies), else enabled.
/// Probed once per process.
pub fn sparse_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("WALTZ_SPARSE") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            !(v == "0" || v == "off" || v == "dense")
        }
        Err(_) => true,
    })
}

/// The sparse-representation policy one adaptive run executes under:
/// plumbing for the [`Workspace`] knobs, carried by the adaptive
/// estimators to each pool worker's workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsePolicy {
    /// nnz/amps ratio above which sparse switches to dense
    /// ([`DEFAULT_SPARSE_DENSITY_THRESHOLD`]).
    pub density_threshold: f64,
    /// Entries with `|amp| <= epsilon` are dropped by the rebuild arms.
    /// `0.0` (the default) drops exact zeros only and is lossless.
    pub epsilon: f64,
}

impl Default for SparsePolicy {
    fn default() -> Self {
        SparsePolicy {
            density_threshold: DEFAULT_SPARSE_DENSITY_THRESHOLD,
            epsilon: 0.0,
        }
    }
}

/// A state vector stored as a sorted map from basis index to nonzero
/// amplitude.
///
/// Entries are `(index, amplitude)` pairs sorted by index with no
/// duplicates; amplitudes with `|amp| <= epsilon` are truncated by the
/// kernel arms that rebuild the list (dense blocks, permutations,
/// Paulis) — epsilon `0` keeps everything except exact zeros. All gate
/// application goes through the same [`GateKernel`] classification as
/// the dense engine, with per-class arms:
///
/// * *diagonal* — in-place phase over the stored entries;
/// * *permutation* — index remap + re-sort;
/// * *single-/two-qudit/general dense* — gather each populated
///   operand-stride coset into a stack block (absent entries are exact
///   zeros), run the same matvec form as the scalar dense sweep, scatter
///   the surviving rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseState {
    register: Register,
    entries: Vec<(u64, C64)>,
    epsilon: f64,
}

impl SparseState {
    /// The all-zeros basis state `|0...0>`.
    pub fn zero(register: &Register) -> SparseState {
        SparseState::basis(register, 0)
    }

    /// The computational basis state `|idx>`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the register.
    pub fn basis(register: &Register, idx: usize) -> SparseState {
        assert!(idx < register.total_dim(), "basis index out of range");
        SparseState {
            register: register.clone(),
            entries: vec![(idx as u64, C64::ONE)],
            epsilon: 0.0,
        }
    }

    /// Rewrites this state to the basis state `|idx>` in place.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the register.
    pub fn fill_basis(&mut self, idx: usize) {
        assert!(idx < self.register.total_dim(), "basis index out of range");
        self.entries.clear();
        self.entries.push((idx as u64, C64::ONE));
    }

    /// Builds a sparse map from a dense state, keeping amplitudes with
    /// `|amp| > epsilon`.
    pub fn from_dense(state: &State, epsilon: f64) -> SparseState {
        let mut out = SparseState {
            register: state.register().clone(),
            entries: Vec::new(),
            epsilon,
        };
        out.fill_from_dense(state);
        out
    }

    /// [`SparseState::from_dense`] into this state's buffers (register
    /// is re-targeted to match).
    pub fn fill_from_dense(&mut self, state: &State) {
        self.register.clone_from(state.register());
        let eps2 = self.epsilon * self.epsilon;
        self.entries.clear();
        for (idx, &amp) in state.amplitudes().iter().enumerate() {
            if amp.norm_sqr() > eps2 {
                self.entries.push((idx as u64, amp));
            }
        }
    }

    /// Scatters this map into a dense state buffer (which must already
    /// be on the same register).
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    pub fn write_dense_into(&self, out: &mut State) {
        assert_eq!(
            &self.register,
            out.register(),
            "register mismatch in sparse-to-dense conversion"
        );
        out.amps.fill(C64::ZERO);
        for &(idx, amp) in &self.entries {
            out.amps[idx as usize] = amp;
        }
    }

    /// Overwrites this state with `other` without reallocating beyond
    /// the entry buffer's growth.
    pub fn copy_from(&mut self, other: &SparseState) {
        self.register.clone_from(&other.register);
        self.entries.clone_from(&other.entries);
        self.epsilon = other.epsilon;
    }

    /// The register this state is defined over.
    pub fn register(&self) -> &Register {
        &self.register
    }

    /// Re-targets this state onto `register` as its `|0...0>` basis
    /// state, reusing the entry buffer.
    pub fn remap(&mut self, register: &Register) {
        self.register.clone_from(register);
        self.entries.clear();
        self.entries.push((0, C64::ONE));
    }

    /// Number of stored (nonzero) amplitudes.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored entries, sorted by basis index.
    pub fn entries(&self) -> &[(u64, C64)] {
        &self.entries
    }

    /// Bytes held by the stored entries (24 per entry).
    pub fn state_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(u64, C64)>()
    }

    /// Current nnz/amps population density.
    pub fn density(&self) -> f64 {
        self.entries.len() as f64 / self.register.total_dim() as f64
    }

    /// The truncation epsilon the rebuild arms apply.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Sets the truncation epsilon (clamped to be non-negative).
    pub fn set_epsilon(&mut self, epsilon: f64) {
        self.epsilon = epsilon.max(0.0);
    }

    /// Amplitude of basis state `idx` (zero when absent).
    pub fn amplitude(&self, idx: usize) -> C64 {
        match self
            .entries
            .binary_search_by_key(&(idx as u64), |&(i, _)| i)
        {
            Ok(pos) => self.entries[pos].1,
            Err(_) => C64::ZERO,
        }
    }

    /// Probability of a computational basis state.
    pub fn probability_of(&self, idx: usize) -> f64 {
        self.amplitude(idx).norm_sqr()
    }

    /// The state's 2-norm. Zeros the dense engine would sum are exact
    /// `+0.0` no-ops, so the sum visits the same nonzero terms in the
    /// same (ascending index) order as [`State::norm`].
    pub fn norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, a)| a.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales to unit norm (no-op on an all-zero state), returning the
    /// previous norm — the same `1/n` multiply as
    /// `waltz_math::vector::normalize`.
    pub fn normalize(&mut self) -> f64 {
        let n = self.norm();
        if n > 0.0 {
            let inv = 1.0 / n;
            for (_, a) in &mut self.entries {
                *a *= inv;
            }
        }
        n
    }

    /// `|<self|other>|²` between two sparse states via a merge join over
    /// the sorted entries; terms the dense inner product would add for
    /// indices absent on either side are exact zero products.
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    pub fn fidelity(&self, other: &SparseState) -> f64 {
        assert_eq!(self.register, other.register, "register mismatch");
        let (mut i, mut j) = (0, 0);
        let mut acc = C64::ZERO;
        while i < self.entries.len() && j < other.entries.len() {
            let (ia, a) = self.entries[i];
            let (ib, b) = other.entries[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a.conj() * b;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc.norm_sqr()
    }

    /// `|<self|other>|²` against a dense state.
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    pub fn fidelity_dense(&self, other: &State) -> f64 {
        assert_eq!(&self.register, other.register(), "register mismatch");
        let amps = other.amplitudes();
        let mut acc = C64::ZERO;
        for &(idx, a) in &self.entries {
            acc += a.conj() * amps[idx as usize];
        }
        acc.norm_sqr()
    }

    /// Applies a scheduled op through its precomputed kernel — the
    /// sparse counterpart of [`State::apply_op`].
    pub fn apply_op(&mut self, op: &TimedOp, ws: &mut Workspace) {
        self.apply_kernel(&op.kernel, &op.unitary, &op.operands, ws);
    }

    /// Applies a unitary through an explicitly classified kernel — the
    /// sparse counterpart of [`State::apply_kernel`]. The kernel must
    /// have been produced by [`GateKernel::classify`] on `u`.
    pub fn apply_kernel(
        &mut self,
        kernel: &GateKernel,
        u: &Matrix,
        operands: &[usize],
        ws: &mut Workspace,
    ) {
        for (i, a) in operands.iter().enumerate() {
            for b in operands.iter().skip(i + 1) {
                assert_ne!(a, b, "operands must be distinct");
            }
        }
        let reg = &self.register;
        let dims_product: usize = operands.iter().map(|&q| reg.dim(q)).product();
        assert_eq!(
            u.rows(),
            dims_product,
            "unitary does not match operand dims"
        );

        if matches!(kernel, GateKernel::Identity) {
            return;
        }

        // Single-operand diagonal: phase per stored entry, skipping unit
        // phases exactly as the dense contiguous-slice fast path does.
        if let (GateKernel::Diagonal { phases }, [q]) = (kernel, operands) {
            let stride = reg.stride(*q);
            let dim = reg.dim(*q);
            for (idx, amp) in &mut self.entries {
                let phase = phases[(*idx as usize / stride) % dim];
                if phase == C64::ONE {
                    continue;
                }
                *amp *= phase;
            }
            return;
        }

        let block = kernel::compute_offsets(reg, operands, &mut ws.offsets);
        match kernel {
            GateKernel::Identity => {}
            GateKernel::Diagonal { phases } => {
                // Multi-operand diagonal: the dense sweep multiplies
                // unconditionally, so the sparse arm does too.
                for (idx, amp) in &mut self.entries {
                    let sub = operand_sub(reg, operands, *idx);
                    *amp *= phases[sub];
                }
            }
            GateKernel::Permutation { perm, phases, .. } => {
                let offsets: &[usize] = &ws.offsets;
                for (idx, amp) in &mut self.entries {
                    let sub = operand_sub(reg, operands, *idx);
                    let dst = perm[sub];
                    if dst == sub && phases[sub] == C64::ONE {
                        // Unit-phase fixed point: the dense cycle
                        // decomposition omits it entirely.
                        continue;
                    }
                    // Mirrors `walk_cycle`: destination `perm[j]` takes
                    // `phases[j] * old[j]`.
                    *amp = phases[sub] * *amp;
                    *idx = *idx - offsets[sub] as u64 + offsets[dst] as u64;
                }
                // A bijection on unique indices stays unique; only the
                // order needs restoring.
                self.entries.sort_unstable_by_key(|&(i, _)| i);
            }
            GateKernel::SingleQudit | GateKernel::TwoQudit | GateKernel::GeneralDense => {
                self.apply_dense_block(kernel, u, operands, block, ws);
            }
        }
    }

    /// The gather-scatter arm shared by the dense kernel classes: stored
    /// entries are grouped by operand-stride coset, each populated coset
    /// gathered into a zeroed block (absent members are exact zeros —
    /// precisely what the dense sweep reads), the block run through the
    /// *same matvec form* the scalar dense sweep uses for this kernel
    /// class, and surviving rows scattered back.
    fn apply_dense_block(
        &mut self,
        kernel: &GateKernel,
        u: &Matrix,
        operands: &[usize],
        block: usize,
        ws: &mut Workspace,
    ) {
        let reg = &self.register;
        let offsets: &[usize] = &ws.offsets;
        let gather = &mut ws.sparse_gather;
        let rebuilt = &mut ws.sparse_out;

        gather.clear();
        for &(idx, amp) in &self.entries {
            let sub = operand_sub(reg, operands, idx);
            gather.push((idx - offsets[sub] as u64, sub as u32, amp));
        }
        // Indices are unique, so (base, sub) pairs are unique and the
        // grouping is deterministic.
        gather.sort_unstable_by_key(|&(base, sub, _)| (base, sub));

        rebuilt.clear();
        let eps2 = self.epsilon * self.epsilon;
        let m = u.as_slice();
        // Same once-per-apply scan as `dense_block_sweep`: fully dense
        // blocks run the branchless accumulation chain, blocks with
        // structural zeros keep the per-coefficient skip.
        let fully_dense = m.iter().all(|&c| c != C64::ZERO);
        let single = matches!(kernel, GateKernel::SingleQudit);
        let mut scratch = [C64::ZERO; kernel::MAX_STACK_BLOCK];
        let mut heap_scratch = Vec::new();
        if block > kernel::MAX_STACK_BLOCK {
            heap_scratch.resize(block, C64::ZERO);
        }

        let keep = |buf: &mut Vec<(u64, C64)>, base: u64, row: usize, acc: C64| {
            if acc.norm_sqr() > eps2 {
                buf.push((base + offsets[row] as u64, acc));
            }
        };

        let mut i = 0;
        while i < gather.len() {
            let base = gather[i].0;
            let mut j = i;
            if block <= kernel::MAX_STACK_BLOCK {
                scratch[..block].fill(C64::ZERO);
                while j < gather.len() && gather[j].0 == base {
                    scratch[gather[j].1 as usize] = gather[j].2;
                    j += 1;
                }
                if single && block == 2 {
                    // The dense engine's unrolled 2x2 form.
                    let (a0, a1) = (scratch[0], scratch[1]);
                    keep(rebuilt, base, 0, m[0] * a0 + m[1] * a1);
                    keep(rebuilt, base, 1, m[2] * a0 + m[3] * a1);
                } else if single && block == 4 {
                    // The dense engine's unrolled 4x4 form.
                    let (a0, a1, a2, a3) = (scratch[0], scratch[1], scratch[2], scratch[3]);
                    for row in 0..4 {
                        let r = &m[row * 4..row * 4 + 4];
                        keep(
                            rebuilt,
                            base,
                            row,
                            r[0] * a0 + r[1] * a1 + r[2] * a2 + r[3] * a3,
                        );
                    }
                } else if fully_dense {
                    for (row, row_coeffs) in m.chunks_exact(block).enumerate() {
                        let mut acc = C64::ZERO;
                        for (&coeff, &amp) in row_coeffs.iter().zip(&scratch[..block]) {
                            acc += coeff * amp;
                        }
                        keep(rebuilt, base, row, acc);
                    }
                } else {
                    for (row, row_coeffs) in m.chunks_exact(block).enumerate() {
                        let mut acc = C64::ZERO;
                        for (&coeff, &amp) in row_coeffs.iter().zip(&scratch[..block]) {
                            if coeff != C64::ZERO {
                                acc += coeff * amp;
                            }
                        }
                        keep(rebuilt, base, row, acc);
                    }
                }
            } else {
                // Oversized block: mirrors the dense serial heap
                // fallback, which always skips structural zeros.
                heap_scratch.fill(C64::ZERO);
                while j < gather.len() && gather[j].0 == base {
                    heap_scratch[gather[j].1 as usize] = gather[j].2;
                    j += 1;
                }
                for row in 0..block {
                    let mut acc = C64::ZERO;
                    for (col, &amp) in heap_scratch.iter().enumerate() {
                        let coeff = u[(row, col)];
                        if coeff != C64::ZERO {
                            acc += coeff * amp;
                        }
                    }
                    keep(rebuilt, base, row, acc);
                }
            }
            i = j;
        }
        // Bases are processed in ascending order but row offsets can
        // interleave between cosets; one final sort restores the map
        // invariant. Distinct cosets produce distinct indices, so there
        // are no duplicates to merge.
        rebuilt.sort_unstable_by_key(|&(i, _)| i);
        std::mem::swap(&mut self.entries, rebuilt);
    }

    /// Applies a generalized Pauli to one qudit — the sparse counterpart
    /// of [`State::apply_pauli`]. Levels at or above the Pauli's own
    /// dimension are untouched.
    pub fn apply_pauli(&mut self, op: PauliOp, qudit: usize) {
        if op.is_identity() {
            return;
        }
        let dev_dim = self.register.dim(qudit);
        let d = op.d as usize;
        assert!(d <= dev_dim, "Pauli dimension exceeds device dimension");
        assert!(d <= 16, "Pauli dimension above 16 is unsupported");
        let stride = self.register.stride(qudit);
        let mut phases = [C64::ZERO; 16];
        for (j, p) in phases.iter_mut().take(d).enumerate() {
            *p = op.act_on_basis(j).1;
        }
        let a = op.a as usize;
        if a == 0 {
            // Pure clock operator: the dense walk scales every level
            // below `d` unconditionally (`phase * amp` order).
            for (idx, amp) in &mut self.entries {
                let lvl = (*idx as usize / stride) % dev_dim;
                if lvl < d {
                    *amp = phases[lvl] * *amp;
                }
            }
        } else {
            // Shift-by-a permutation: the dense cycle walk sends column
            // j to (j + a) % d with weight phases[j].
            for (idx, amp) in &mut self.entries {
                let lvl = (*idx as usize / stride) % dev_dim;
                if lvl < d {
                    let dst = (lvl + a) % d;
                    *amp = phases[lvl] * *amp;
                    *idx = *idx - (lvl * stride) as u64 + (dst * stride) as u64;
                }
            }
            self.entries.sort_unstable_by_key(|&(i, _)| i);
        }
    }

    /// One stochastic amplitude-damping step — the sparse counterpart of
    /// [`State::damping_step_with`], consuming the identical RNG stream:
    /// the same two pre-RNG early returns, level probabilities
    /// accumulated in the same per-span-block partial-sum order (absent
    /// amplitudes contribute exact zeros), one uniform draw, and the
    /// same collapse/no-jump arithmetic.
    pub fn damping_step_with<R: Rng + ?Sized>(
        &mut self,
        model: &CoherenceModel,
        qudit: usize,
        dt_ns: f64,
        rng: &mut R,
        ws: &mut Workspace,
    ) {
        if dt_ns <= 0.0 {
            return;
        }
        let dim = self.register.dim(qudit);
        ws.lambdas.clear();
        ws.lambdas.extend((1..dim).map(|m| model.lambda(m, dt_ns)));
        if ws.lambdas.iter().all(|&l| l == 0.0) {
            return;
        }
        let stride = self.register.stride(qudit);
        let span = stride * dim;
        ws.level_p.clear();
        ws.level_p.resize(dim, 0.0);
        // Sorted entries visit each (span block, level) slice as one
        // contiguous run, so the per-slice partial sums reassociate
        // exactly like the dense `chunks_exact(span)` loop.
        let mut i = 0;
        while i < self.entries.len() {
            let idx = self.entries[i].0 as usize;
            let block = idx / span;
            let lvl = (idx / stride) % dim;
            let mut partial = 0.0f64;
            while i < self.entries.len() {
                let idx = self.entries[i].0 as usize;
                if idx / span != block || (idx / stride) % dim != lvl {
                    break;
                }
                partial += self.entries[i].1.norm_sqr();
                i += 1;
            }
            ws.level_p[lvl] += partial;
        }
        ws.jump_p.clear();
        for m in 1..dim {
            ws.jump_p.push(ws.lambdas[m - 1] * ws.level_p[m]);
        }
        let total_jump: f64 = ws.jump_p.iter().sum();
        let roll: f64 = rng.gen();
        if roll < total_jump {
            let mut acc = 0.0;
            let mut level = 1;
            for (m, &p) in ws.jump_p.iter().enumerate() {
                acc += p;
                if roll < acc {
                    level = m + 1;
                    break;
                }
            }
            self.collapse_level_to_ground(qudit, level);
        } else {
            for (idx, amp) in &mut self.entries {
                let lvl = (*idx as usize / stride) % dim;
                if lvl >= 1 {
                    let scale = (1.0 - ws.lambdas[lvl - 1]).sqrt();
                    *amp *= scale;
                }
            }
            self.normalize();
            self.truncate();
        }
    }

    /// Applies the jump `K_m` (decay of `level` to ground) and
    /// normalizes: entries on `level` move to ground (subtracting the
    /// same `level * stride` keeps them sorted), every other entry is
    /// dropped.
    fn collapse_level_to_ground(&mut self, qudit: usize, level: usize) {
        let stride = self.register.stride(qudit);
        let dim = self.register.dim(qudit);
        let shift = (level * stride) as u64;
        self.entries.retain_mut(|(idx, _)| {
            if (*idx as usize / stride) % dim == level {
                *idx -= shift;
                true
            } else {
                false
            }
        });
        self.normalize();
    }

    /// Drops entries at or below the truncation epsilon. With epsilon
    /// `0` only exact zeros are dropped, which never changes any dense
    /// sum the entries feed into.
    fn truncate(&mut self) {
        let eps2 = self.epsilon * self.epsilon;
        self.entries.retain(|(_, a)| a.norm_sqr() > eps2);
    }

    /// Reshape onto `out`'s register, clipping whatever population sits
    /// outside it and returning the clipped probability — the sparse
    /// counterpart of [`State::reshape_into_lossy`] (same digit-wise
    /// amplitude-label mapping, clip sum accumulated in the same
    /// ascending-source-index order, no renormalization).
    ///
    /// # Panics
    ///
    /// Panics if the qudit counts differ.
    pub fn reshape_into_lossy(&self, out: &mut SparseState) -> f64 {
        let src = &self.register;
        let dst = &out.register;
        assert_eq!(
            src.n_qudits(),
            dst.n_qudits(),
            "reshape must preserve the qudit count"
        );
        out.epsilon = self.epsilon;
        if src == dst {
            out.entries.clone_from(&self.entries);
            return 0.0;
        }
        let n = src.n_qudits();
        assert!(
            n <= kernel::MAX_QUDITS,
            "register too large for stack digits"
        );
        let mut digits = [0usize; kernel::MAX_QUDITS];
        let mut leaked = 0.0f64;
        out.entries.clear();
        for &(idx, amp) in &self.entries {
            src.digits_into(idx as usize, &mut digits[..n]);
            if digits[..n].iter().enumerate().all(|(q, &d)| d < dst.dim(q)) {
                out.entries.push((dst.index_of(&digits[..n]) as u64, amp));
            } else {
                leaked += amp.norm_sqr();
            }
        }
        // The digit-preserving map is injective but not monotone across
        // dimension changes.
        out.entries.sort_unstable_by_key(|&(i, _)| i);
        leaked
    }
}

/// Linear operand-block configuration of `idx` (first operand most
/// significant) — the inverse of the decomposition
/// [`kernel::compute_offsets`] uses to build the offset table.
#[inline]
fn operand_sub(reg: &Register, operands: &[usize], idx: u64) -> usize {
    let idx = idx as usize;
    let mut sub = 0usize;
    for &q in operands {
        sub = sub * reg.dim(q) + reg.digit(idx, q);
    }
    sub
}

/// A state that runs sparse while the population is sparse and switches
/// to the dense engine when it is not.
///
/// * **sparse → dense** after any apply whose resulting density
///   `nnz/amps` exceeds the workspace's
///   [`Workspace::sparse_density_threshold`]; the dense buffer is
///   allocated lazily on first switch and reused afterwards.
/// * **dense → sparse** at reshape/segment boundaries, where the state
///   is re-scanned amplitude by amplitude anyway: if the surviving
///   population fits under the threshold on the next segment's register,
///   the reshaped state is built sparse.
///
/// With `WALTZ_SPARSE=0` (see [`sparse_enabled`]) every adaptive state
/// starts dense and never sparsifies, forcing the dense path everywhere.
#[derive(Debug, Clone)]
pub struct AdaptiveState {
    sparse: SparseState,
    dense: Option<State>,
    is_dense: bool,
    peak_nnz: usize,
    peak_bytes: usize,
}

impl AdaptiveState {
    /// The `|0...0>` state — sparse unless sparse representations are
    /// disabled for the process.
    pub fn zero(register: &Register) -> AdaptiveState {
        let mut out = AdaptiveState {
            sparse: SparseState::zero(register),
            dense: None,
            is_dense: false,
            peak_nnz: 1,
            peak_bytes: 0,
        };
        if !sparse_enabled() {
            out.densify();
        }
        out.peak_bytes = out.state_bytes();
        out
    }

    /// The register this state is defined over.
    pub fn register(&self) -> &Register {
        if self.is_dense {
            self.dense.as_ref().expect("dense buffer").register()
        } else {
            self.sparse.register()
        }
    }

    /// Whether the state currently lives in the dense representation.
    pub fn is_dense(&self) -> bool {
        self.is_dense
    }

    /// Stored amplitude count: nnz while sparse, the full register size
    /// while dense.
    pub fn nnz(&self) -> usize {
        if self.is_dense {
            self.register().total_dim()
        } else {
            self.sparse.nnz()
        }
    }

    /// Current population density (1.0 while dense).
    pub fn density(&self) -> f64 {
        if self.is_dense {
            1.0
        } else {
            self.sparse.density()
        }
    }

    /// Bytes held by the current representation.
    pub fn state_bytes(&self) -> usize {
        if self.is_dense {
            self.register().state_bytes()
        } else {
            self.sparse.state_bytes()
        }
    }

    /// Peak stored-amplitude count observed since the last reset.
    pub fn peak_nnz(&self) -> usize {
        self.peak_nnz
    }

    /// Peak representation size in bytes observed since the last reset.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Read-only view of the sparse map (`None` while dense).
    pub fn as_sparse(&self) -> Option<&SparseState> {
        if self.is_dense {
            None
        } else {
            Some(&self.sparse)
        }
    }

    /// Read-only view of the dense buffer (`None` while sparse).
    pub fn as_dense(&self) -> Option<&State> {
        if self.is_dense {
            self.dense.as_ref()
        } else {
            None
        }
    }

    /// Resets to a sparse initial state (densifying immediately when
    /// sparse representations are disabled or the threshold demands it)
    /// and restarts the peak counters.
    pub fn reset_from_sparse(&mut self, initial: &SparseState, ws: &mut Workspace) {
        self.sparse.copy_from(initial);
        self.sparse.set_epsilon(ws.sparse_epsilon);
        self.is_dense = false;
        if !sparse_enabled() {
            self.densify();
        } else {
            self.maybe_densify(ws);
        }
        self.peak_nnz = self.nnz();
        self.peak_bytes = self.state_bytes();
    }

    /// Re-targets this state onto `register` (contents reset to
    /// `|0...0>`), reusing buffers — the adaptive counterpart of
    /// [`State::remap`] for rolling segment buffers.
    pub fn remap(&mut self, register: &Register) {
        self.sparse.remap(register);
        if let Some(dense) = &mut self.dense {
            dense.remap(register);
        }
        if self.is_dense {
            if let Some(dense) = &mut self.dense {
                self.sparse.write_dense_into(dense);
            }
        }
    }

    /// Converts to the dense representation (allocating the dense buffer
    /// on first use).
    pub fn densify(&mut self) {
        if self.is_dense {
            return;
        }
        let reg = self.sparse.register().clone();
        match &mut self.dense {
            Some(dense) => dense.remap(&reg),
            None => self.dense = Some(State::zero(&reg)),
        }
        self.sparse
            .write_dense_into(self.dense.as_mut().expect("dense buffer"));
        self.is_dense = true;
    }

    /// Converts to the sparse representation regardless of density
    /// (entries with `|amp| <= epsilon` are dropped).
    pub fn sparsify(&mut self, epsilon: f64) {
        if !self.is_dense {
            return;
        }
        self.sparse.set_epsilon(epsilon);
        self.sparse
            .fill_from_dense(self.dense.as_ref().expect("dense buffer"));
        self.is_dense = false;
    }

    fn maybe_densify(&mut self, ws: &Workspace) {
        if self.is_dense {
            return;
        }
        let total = self.sparse.register().total_dim() as f64;
        if self.sparse.nnz() as f64 > ws.sparse_density_threshold * total {
            self.densify();
        }
    }

    fn note_peak(&mut self) {
        self.peak_nnz = self.peak_nnz.max(self.nnz());
        self.peak_bytes = self.peak_bytes.max(self.state_bytes());
    }

    /// Applies a scheduled op through its precomputed kernel, switching
    /// to dense when the resulting density crosses the workspace's
    /// threshold.
    pub fn apply_op(&mut self, op: &TimedOp, ws: &mut Workspace) {
        if self.is_dense {
            self.dense.as_mut().expect("dense buffer").apply_op(op, ws);
        } else {
            self.sparse.set_epsilon(ws.sparse_epsilon);
            self.sparse.apply_op(op, ws);
            self.maybe_densify(ws);
        }
        self.note_peak();
    }

    /// Applies a generalized Pauli to one qudit.
    pub fn apply_pauli(&mut self, op: PauliOp, qudit: usize) {
        if self.is_dense {
            self.dense
                .as_mut()
                .expect("dense buffer")
                .apply_pauli(op, qudit);
        } else {
            self.sparse.apply_pauli(op, qudit);
        }
        self.note_peak();
    }

    /// One stochastic amplitude-damping step (same RNG stream in either
    /// representation).
    pub fn damping_step_with<R: Rng + ?Sized>(
        &mut self,
        model: &CoherenceModel,
        qudit: usize,
        dt_ns: f64,
        rng: &mut R,
        ws: &mut Workspace,
    ) {
        if self.is_dense {
            self.dense
                .as_mut()
                .expect("dense buffer")
                .damping_step_with(model, qudit, dt_ns, rng, ws);
        } else {
            self.sparse.damping_step_with(model, qudit, dt_ns, rng, ws);
        }
        self.note_peak();
    }

    /// The state's 2-norm.
    pub fn norm(&self) -> f64 {
        if self.is_dense {
            self.dense.as_ref().expect("dense buffer").norm()
        } else {
            self.sparse.norm()
        }
    }

    /// Scales to unit norm, returning the previous norm.
    pub fn normalize(&mut self) -> f64 {
        if self.is_dense {
            self.dense.as_mut().expect("dense buffer").normalize()
        } else {
            self.sparse.normalize()
        }
    }

    /// Probability of a computational basis state.
    pub fn probability_of(&self, idx: usize) -> f64 {
        if self.is_dense {
            self.dense
                .as_ref()
                .expect("dense buffer")
                .probability_of(idx)
        } else {
            self.sparse.probability_of(idx)
        }
    }

    /// `|<self|other>|²` across any representation pairing.
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    pub fn fidelity(&self, other: &AdaptiveState) -> f64 {
        match (self.as_dense(), other.as_dense()) {
            (Some(a), Some(b)) => a.fidelity(b),
            (Some(a), None) => other.sparse.fidelity_dense(a),
            (None, Some(b)) => self.sparse.fidelity_dense(b),
            (None, None) => self.sparse.fidelity(&other.sparse),
        }
    }

    /// Reshape onto `out`'s register (as set by [`AdaptiveState::remap`])
    /// clipping population outside it, and re-decide the representation
    /// on the destination register: a dense source whose surviving
    /// population fits under the density threshold is rebuilt sparse,
    /// a sparse destination over the threshold is densified.
    ///
    /// Returns the clipped probability (no renormalization), exactly as
    /// [`State::reshape_into_lossy`].
    pub fn reshape_into_lossy(&self, out: &mut AdaptiveState, ws: &mut Workspace) -> f64 {
        let leaked = if self.is_dense {
            let src = self.dense.as_ref().expect("dense buffer");
            // Dense reshape first (bit-identical to the dense engine),
            // then the boundary re-scan decides the representation.
            let dst_reg = out.sparse.register().clone();
            match &mut out.dense {
                Some(dense) => dense.remap(&dst_reg),
                None => out.dense = Some(State::zero(&dst_reg)),
            }
            let dense_out = out.dense.as_mut().expect("dense buffer");
            let leaked = src.reshape_into_lossy(dense_out);
            out.is_dense = true;
            out.sparsify_if_sparse_enough(ws);
            leaked
        } else {
            out.is_dense = false;
            let leaked = self.sparse.reshape_into_lossy(&mut out.sparse);
            out.maybe_densify(ws);
            leaked
        };
        // Peak counters follow the state across rolling-buffer swaps
        // (the destination's own history is a stale prior trajectory).
        out.peak_nnz = self.peak_nnz;
        out.peak_bytes = self.peak_bytes;
        out.note_peak();
        leaked
    }

    /// Dense → sparse at a boundary re-scan, if the population fits
    /// under the workspace threshold (and sparse is enabled).
    fn sparsify_if_sparse_enough(&mut self, ws: &Workspace) {
        if !self.is_dense || !sparse_enabled() {
            return;
        }
        let dense = self.dense.as_ref().expect("dense buffer");
        let eps = ws.sparse_epsilon;
        let eps2 = eps * eps;
        let nnz = dense
            .amplitudes()
            .iter()
            .filter(|a| a.norm_sqr() > eps2)
            .count();
        let total = dense.register().total_dim() as f64;
        if (nnz as f64) <= ws.sparse_density_threshold * total {
            self.sparsify(eps);
        }
    }

    #[cfg(feature = "fault-inject")]
    pub(crate) fn poison_first_amplitude(&mut self) {
        let nan = C64::new(f64::NAN, f64::NAN);
        if self.is_dense {
            self.dense
                .as_mut()
                .expect("dense buffer")
                .poison_first_amplitude();
        } else if let Some(first) = self.sparse.entries.first_mut() {
            first.1 = nan;
        } else {
            self.sparse.entries.push((0, nan));
        }
    }
}
