//! Noiseless execution of a [`TimedCircuit`].
//!
//! Fused programs ([`TimedCircuit::fuse`]) run through the same entry
//! points: a fused block is an ordinary op with a pre-multiplied unitary
//! and a re-classified kernel, so the noiseless engine needs no special
//! handling — it simply performs one sweep per block instead of one per
//! pulse, which is where the fusion pass earns its keep.

use crate::kernel::Workspace;
use crate::sparse::{AdaptiveState, SparseState};
use crate::{SegmentedCircuit, State, TimedCircuit, RESHAPE_LEAK_TOL};

/// Runs the circuit on `initial` with no noise, returning the final state.
///
/// # Panics
///
/// Panics if the initial state's register differs from the circuit's.
pub fn run(circuit: &TimedCircuit, initial: &State) -> State {
    let mut out = initial.clone();
    let mut ws = Workspace::serial();
    run_into(circuit, initial, &mut out, &mut ws);
    out
}

/// [`run`] writing into a caller-owned output state and borrowing gate
/// scratch from `ws`, so repeated ideal runs (one per trajectory batch)
/// allocate nothing.
///
/// # Panics
///
/// Panics if either state's register differs from the circuit's.
pub fn run_into(circuit: &TimedCircuit, initial: &State, out: &mut State, ws: &mut Workspace) {
    assert_eq!(
        initial.register(),
        &circuit.register,
        "state register does not match circuit register"
    );
    out.copy_from(initial);
    for op in &circuit.ops {
        out.apply_op(op, ws);
    }
}

/// Runs a windowed-register schedule ([`SegmentedCircuit`]) noiselessly,
/// reshaping the state between segments, and returns the final state (on
/// the last segment's register). Convenience wrapper that allocates the
/// two rolling buffers; steady-state loops should use
/// [`run_segmented_into`] (or a [`crate::SegmentedSession`]) with reused
/// buffers.
///
/// # Panics
///
/// Panics if the initial state's register differs from the first
/// segment's.
pub fn run_segmented(circuit: &SegmentedCircuit, initial: &State) -> State {
    let (mut out, mut scratch) = circuit.rolling_buffers();
    let mut ws = Workspace::serial();
    run_segmented_into(circuit, initial, &mut out, &mut scratch, &mut ws);
    out
}

/// [`run_segmented`] rolling **two** caller-owned state buffers across
/// the segments: at each boundary `scratch` is re-targeted onto the next
/// segment's register ([`State::remap`] — capacity is reused once both
/// buffers have reached the peak segment size), the state reshaped into
/// it, and the buffers swapped, so the live allocation is two peak-sized
/// buffers regardless of the segment count. The final state is left in
/// `out` (on the last segment's register).
///
/// # Panics
///
/// Panics if the initial state's register differs from the first
/// segment's.
pub fn run_segmented_into(
    circuit: &SegmentedCircuit,
    initial: &State,
    out: &mut State,
    scratch: &mut State,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        circuit.first_register(),
        "state register does not match the first segment"
    );
    out.remap(circuit.first_register());
    out.copy_from(initial);
    for (k, segment) in circuit.segments.iter().enumerate() {
        if k > 0 {
            scratch.remap(&segment.register);
            out.reshape_into(scratch);
            std::mem::swap(out, scratch);
        }
        for op in &segment.ops {
            out.apply_op(op, ws);
        }
    }
}

/// [`run_into`] on a density-adaptive state: starts from a sparse
/// initial state, applies every op through the representation-switching
/// [`AdaptiveState::apply_op`], and leaves the final state (in whichever
/// representation it ended up) in `out`. The workspace's
/// [`Workspace::sparse_density_threshold`] / `sparse_epsilon` knobs
/// govern the switching.
///
/// # Panics
///
/// Panics if the initial state's register differs from the circuit's.
pub fn run_adaptive_into(
    circuit: &TimedCircuit,
    initial: &SparseState,
    out: &mut AdaptiveState,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        &circuit.register,
        "state register does not match circuit register"
    );
    out.reset_from_sparse(initial, ws);
    for op in &circuit.ops {
        out.apply_op(op, ws);
    }
}

/// [`run_segmented_into`] on density-adaptive rolling buffers: between
/// segments the state is reshaped through
/// [`AdaptiveState::reshape_into_lossy`] — which is also where a dense
/// state may drop back to sparse — and, as in the strict dense reshape,
/// a clipped amplitude above [`RESHAPE_LEAK_TOL`] panics (noiseless
/// occupancy analysis must prove clipped levels unpopulated).
///
/// # Panics
///
/// Panics if the initial state's register differs from the first
/// segment's, or a reshape clips a nonzero amplitude.
pub fn run_segmented_adaptive_into(
    circuit: &SegmentedCircuit,
    initial: &SparseState,
    out: &mut AdaptiveState,
    scratch: &mut AdaptiveState,
    ws: &mut Workspace,
) {
    assert_eq!(
        initial.register(),
        circuit.first_register(),
        "state register does not match the first segment"
    );
    out.reset_from_sparse(initial, ws);
    for (k, segment) in circuit.segments.iter().enumerate() {
        if k > 0 {
            scratch.remap(&segment.register);
            let leaked = out.reshape_into_lossy(scratch, ws);
            assert!(
                leaked <= RESHAPE_LEAK_TOL * RESHAPE_LEAK_TOL,
                "reshape clipped a nonzero amplitude (probability {leaked:.3e}): \
                 the occupancy analysis must prove clipped levels unpopulated"
            );
            std::mem::swap(out, scratch);
        }
        for op in &segment.ops {
            out.apply_op(op, ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Register, TimedOp};
    use waltz_gates::standard;

    #[test]
    fn ideal_run_produces_expected_state() {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg.clone());
        tc.ops.push(TimedOp::new(
            "h",
            standard::h(),
            vec![0],
            vec![2],
            0.0,
            35.0,
            1.0,
        ));
        tc.ops.push(TimedOp::new(
            "cx",
            standard::cx(),
            vec![0, 1],
            vec![2, 2],
            35.0,
            251.0,
            1.0,
        ));
        tc.total_duration_ns = 286.0;
        let out = run(&tc, &State::zero(&reg));
        assert!((out.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((out.probability_of(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fused_program_runs_with_fewer_sweeps_and_equal_output() {
        // A longer alternating schedule on (4, 2): fuse, check the op
        // count dropped, and pin the ideal outputs against each other.
        let reg = Register::new(vec![4, 2]);
        let mut tc = TimedCircuit::new(reg.clone());
        let ccz = waltz_gates::mixed::ccz();
        let mut t = 0.0;
        for i in 0..6 {
            let (label, u, ops, dims) = if i % 2 == 0 {
                ("ccz", ccz.clone(), vec![0, 1], vec![4u8, 2])
            } else {
                ("h", standard::h(), vec![1], vec![2u8])
            };
            tc.ops
                .push(TimedOp::new(label, u, ops, dims, t, 100.0, 1.0));
            t += 100.0;
        }
        tc.total_duration_ns = t;
        let fused = tc.fuse();
        assert!(fused.len() < tc.len());
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let initial = State::random_qubit_product(&reg, &mut rng);
        let a = run(&tc, &initial);
        let b = run(&fused, &initial);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_into_reuses_buffers_and_matches_run() {
        let reg = Register::new(vec![4, 2]);
        let mut tc = TimedCircuit::new(reg.clone());
        tc.ops.push(TimedOp::new(
            "ccz",
            waltz_gates::mixed::ccz(),
            vec![0, 1],
            vec![4, 2],
            0.0,
            100.0,
            1.0,
        ));
        tc.total_duration_ns = 100.0;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let initial = State::random_qubit_product(&reg, &mut rng);
        let fresh = run(&tc, &initial);
        let mut out = State::zero(&reg);
        let mut ws = Workspace::serial();
        run_into(&tc, &initial, &mut out, &mut ws);
        // Run twice into the same buffer: stale contents must not leak.
        run_into(&tc, &initial, &mut out, &mut ws);
        assert!((fresh.fidelity(&out) - 1.0).abs() < 1e-12);
    }
}
