//! Noiseless execution of a [`TimedCircuit`].

use crate::kernel::Workspace;
use crate::{State, TimedCircuit};

/// Runs the circuit on `initial` with no noise, returning the final state.
///
/// # Panics
///
/// Panics if the initial state's register differs from the circuit's.
pub fn run(circuit: &TimedCircuit, initial: &State) -> State {
    let mut out = initial.clone();
    let mut ws = Workspace::serial();
    run_into(circuit, initial, &mut out, &mut ws);
    out
}

/// [`run`] writing into a caller-owned output state and borrowing gate
/// scratch from `ws`, so repeated ideal runs (one per trajectory batch)
/// allocate nothing.
///
/// # Panics
///
/// Panics if either state's register differs from the circuit's.
pub fn run_into(circuit: &TimedCircuit, initial: &State, out: &mut State, ws: &mut Workspace) {
    assert_eq!(
        initial.register(),
        &circuit.register,
        "state register does not match circuit register"
    );
    out.copy_from(initial);
    for op in &circuit.ops {
        out.apply_op(op, ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Register, TimedOp};
    use waltz_gates::standard;

    #[test]
    fn ideal_run_produces_expected_state() {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg.clone());
        tc.ops.push(TimedOp::new(
            "h",
            standard::h(),
            vec![0],
            vec![2],
            0.0,
            35.0,
            1.0,
        ));
        tc.ops.push(TimedOp::new(
            "cx",
            standard::cx(),
            vec![0, 1],
            vec![2, 2],
            35.0,
            251.0,
            1.0,
        ));
        tc.total_duration_ns = 286.0;
        let out = run(&tc, &State::zero(&reg));
        assert!((out.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((out.probability_of(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_into_reuses_buffers_and_matches_run() {
        let reg = Register::new(vec![4, 2]);
        let mut tc = TimedCircuit::new(reg.clone());
        tc.ops.push(TimedOp::new(
            "ccz",
            waltz_gates::mixed::ccz(),
            vec![0, 1],
            vec![4, 2],
            0.0,
            100.0,
            1.0,
        ));
        tc.total_duration_ns = 100.0;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let initial = State::random_qubit_product(&reg, &mut rng);
        let fresh = run(&tc, &initial);
        let mut out = State::zero(&reg);
        let mut ws = Workspace::serial();
        run_into(&tc, &initial, &mut out, &mut ws);
        // Run twice into the same buffer: stale contents must not leak.
        run_into(&tc, &initial, &mut out, &mut ws);
        assert!((fresh.fidelity(&out) - 1.0).abs() < 1e-12);
    }
}
