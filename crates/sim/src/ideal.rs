//! Noiseless execution of a [`TimedCircuit`].

use crate::{State, TimedCircuit};

/// Runs the circuit on `initial` with no noise, returning the final state.
///
/// # Panics
///
/// Panics if the initial state's register differs from the circuit's.
pub fn run(circuit: &TimedCircuit, initial: &State) -> State {
    assert_eq!(
        initial.register(),
        &circuit.register,
        "state register does not match circuit register"
    );
    let mut state = initial.clone();
    for op in &circuit.ops {
        state.apply_unitary(&op.unitary, &op.operands);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Register, TimedOp};
    use waltz_gates::standard;

    #[test]
    fn ideal_run_produces_expected_state() {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg.clone());
        tc.ops.push(TimedOp {
            label: "h".into(),
            unitary: standard::h(),
            operands: vec![0],
            error_dims: vec![2],
            start_ns: 0.0,
            duration_ns: 35.0,
            fidelity: 1.0,
        });
        tc.ops.push(TimedOp {
            label: "cx".into(),
            unitary: standard::cx(),
            operands: vec![0, 1],
            error_dims: vec![2, 2],
            start_ns: 35.0,
            duration_ns: 251.0,
            fidelity: 1.0,
        });
        tc.total_duration_ns = 286.0;
        let out = run(&tc, &State::zero(&reg));
        assert!((out.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((out.probability_of(3) - 0.5).abs() < 1e-12);
    }
}
