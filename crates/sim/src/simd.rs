//! Runtime-dispatched SIMD sweep bodies.
//!
//! The sweep kernels in [`crate::kernel`] are written twice: a portable
//! scalar form (always compiled, the parity reference) and an explicit
//! x86_64 AVX2+FMA form working on 256-bit lanes over the interleaved
//! `[re, im]` layout of [`C64`] (guaranteed by its `repr(C)`). One
//! [`SimdLevel`] — detected once per process with
//! `is_x86_feature_detected!` and forced to scalar by `WALTZ_SIMD=0` —
//! picks the form at run time; on non-x86_64 targets every dispatcher
//! here compiles to the scalar fallback.
//!
//! # Pairing
//!
//! A 256-bit lane holds **two** complex amplitudes, but a kernel's
//! operand offsets are rarely adjacent in memory. What *is* adjacent is
//! the innermost dimension of the sweep itself: when the lowest-stride
//! qudit is a non-operand with even dimension, consecutive sweep
//! configurations touch neighbouring amplitudes (`base` and `base + 1`)
//! for every operand offset. The vector arms therefore process sweep
//! configurations **in pairs** — one lane per offset covers two
//! configurations at once — which vectorizes every kernel class without
//! reshuffling amplitudes, the same trick high-performance state-vector
//! simulators use. When no pairing is possible (the innermost qudit is
//! an operand, or has odd dimension) the scalar body runs instead.
//!
//! Arithmetic note: the vector complex product uses FMA
//! (`vfmaddsub231pd`), so results can differ from the scalar two-rounding
//! form in the last ulp. `tests/simd_parity.rs` pins every arm to the
//! scalar path at 1e-12.

use waltz_math::C64;

use crate::kernel::SharedAmps;
use crate::Register;

#[cfg(target_arch = "x86_64")]
use crate::kernel::{par_sweep_worthwhile, sweep_threads, MAX_QUDITS};

/// The instruction-set tier the sweep bodies run at.
///
/// Detected once per process by [`SimdLevel::detect`]; stored per
/// [`crate::Workspace`] so tests can pin a workspace to the scalar path
/// with [`crate::Workspace::set_simd_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar sweep bodies (always compiled; forced by setting
    /// the `WALTZ_SIMD` environment variable to `0`).
    Scalar,
    /// 256-bit AVX2 + FMA lanes over the interleaved complex layout.
    Avx2Fma,
}

impl SimdLevel {
    /// The best level this host supports, computed once per process.
    ///
    /// Detection order: the `WALTZ_SIMD` environment variable is read
    /// first (`0` forces [`SimdLevel::Scalar`]); otherwise, on x86_64,
    /// `is_x86_feature_detected!` probes for AVX2 *and* FMA; any other
    /// architecture or older CPU falls back to scalar.
    pub fn detect() -> SimdLevel {
        static CACHED: std::sync::OnceLock<SimdLevel> = std::sync::OnceLock::new();
        *CACHED.get_or_init(detect_uncached)
    }

    /// Stable lower-case name, used in perf reports and the serve stats
    /// surface (`"scalar"` / `"avx2+fma"`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2Fma => "avx2+fma",
        }
    }

    /// Whether this level carries vector arms at all.
    pub(crate) fn accelerated(self) -> bool {
        !matches!(self, SimdLevel::Scalar)
    }
}

fn detect_uncached() -> SimdLevel {
    if let Ok(v) = std::env::var("WALTZ_SIMD") {
        let v = v.trim();
        if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("scalar") {
            return SimdLevel::Scalar;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2Fma;
        }
    }
    SimdLevel::Scalar
}

/// Everything a vector dispatcher needs about the sweep being applied.
/// Built once per [`crate::kernel::apply`] call.
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
pub(crate) struct SweepCtx<'a> {
    /// Register being swept.
    pub reg: &'a Register,
    /// Non-operand qudits, ascending.
    pub others: &'a [usize],
    /// Amplitude offset per operand-block configuration.
    pub offsets: &'a [usize],
    /// Shared amplitude pointer (see [`SharedAmps`]).
    pub shared: SharedAmps,
    /// Total amplitude count of the state.
    pub total_amps: usize,
    /// Whether this workspace may split sweeps across threads.
    pub parallel: bool,
    /// Parallel-sweep threshold of the workspace.
    pub min_amps: usize,
    /// The workspace's SIMD level.
    pub level: SimdLevel,
}

/// The paired view of a sweep: the innermost (stride-1, even-dimension)
/// non-operand qudit is folded in half so one "unit" covers two
/// consecutive configurations — exactly one 256-bit lane per operand
/// offset.
#[cfg(target_arch = "x86_64")]
struct PairedSweep {
    dims: [usize; MAX_QUDITS],
    strides: [usize; MAX_QUDITS],
    len: usize,
    units: usize,
}

#[cfg(target_arch = "x86_64")]
impl PairedSweep {
    fn detect(reg: &Register, others: &[usize]) -> Option<PairedSweep> {
        let &innermost = others.last()?;
        if reg.stride(innermost) != 1 || !reg.dim(innermost).is_multiple_of(2) {
            return None;
        }
        debug_assert!(others.len() <= MAX_QUDITS);
        let mut dims = [0usize; MAX_QUDITS];
        let mut strides = [0usize; MAX_QUDITS];
        for (slot, &q) in others.iter().enumerate() {
            dims[slot] = reg.dim(q);
            strides[slot] = reg.stride(q);
        }
        let len = others.len();
        // Two configurations per unit: half the innermost count, double
        // its (unit) stride.
        dims[len - 1] /= 2;
        strides[len - 1] = 2;
        let units = dims[..len].iter().product();
        Some(PairedSweep {
            dims,
            strides,
            len,
            units,
        })
    }

    fn dims(&self) -> &[usize] {
        &self.dims[..self.len]
    }

    fn strides(&self) -> &[usize] {
        &self.strides[..self.len]
    }
}

/// Runs `f(lo, hi)` over pair-unit ranges covering `0..units`, splitting
/// across threads under the same guard as the scalar sweep. Chunks are
/// in pair-units, so workers always split at even configuration
/// boundaries and never share a lane.
#[cfg(target_arch = "x86_64")]
fn sweep_pair_ranges<F: Fn(usize, usize) + Sync>(ctx: &SweepCtx<'_>, units: usize, f: F) {
    let threads = sweep_threads();
    if !par_sweep_worthwhile(ctx.parallel, ctx.total_amps, units, threads, ctx.min_amps) {
        f(0, units);
        return;
    }
    let chunk = units.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = (lo + chunk).min(units);
            if lo >= hi {
                break;
            }
            let f = &f;
            scope.spawn(move || f(lo, hi));
        }
    });
}

/// Vector arm of the multi-qudit diagonal sweep. Returns `true` when the
/// sweep was handled (level accelerated and pairing possible).
pub(crate) fn diag_sweep(ctx: &SweepCtx<'_>, phases: &[C64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if ctx.level.accelerated() {
            if let Some(ps) = PairedSweep::detect(ctx.reg, ctx.others) {
                sweep_pair_ranges(ctx, ps.units, |lo, hi| unsafe {
                    x86::diag_pairs(
                        ctx.shared,
                        ps.dims(),
                        ps.strides(),
                        lo,
                        hi,
                        ctx.offsets,
                        phases,
                    );
                });
                return true;
            }
        }
    }
    let _ = (ctx, phases);
    false
}

/// Vector arm of the permutation cycle walk. Returns `true` when handled.
pub(crate) fn perm_sweep(ctx: &SweepCtx<'_>, cycles: &[Vec<usize>], phases: &[C64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if ctx.level.accelerated() {
            if let Some(ps) = PairedSweep::detect(ctx.reg, ctx.others) {
                sweep_pair_ranges(ctx, ps.units, |lo, hi| unsafe {
                    x86::perm_pairs(
                        ctx.shared,
                        ps.dims(),
                        ps.strides(),
                        lo,
                        hi,
                        ctx.offsets,
                        cycles,
                        phases,
                    );
                });
                return true;
            }
        }
    }
    let _ = (ctx, cycles, phases);
    false
}

/// Vector arm of the dense-block matvec (single-qudit, two-qudit and
/// general-dense kernels). `tiled` selects the cache-blocked two-qudit
/// gather: pair-units are buffered into an L1-resident tile so each
/// coefficient broadcast is amortized over the whole tile. Returns `true`
/// when handled.
pub(crate) fn dense_sweep(ctx: &SweepCtx<'_>, m: &[C64], tiled: bool) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let block = ctx.offsets.len();
        if ctx.level.accelerated()
            && block <= x86::MAX_BLOCK
            && (!tiled || block <= x86::MAX_TILE_BLOCK)
        {
            if let Some(ps) = PairedSweep::detect(ctx.reg, ctx.others) {
                // Embedded gates carry structural zeros worth skipping;
                // fully dense (Haar / fused) blocks run branch-free.
                let sparse = m.contains(&C64::ZERO);
                sweep_pair_ranges(ctx, ps.units, |lo, hi| unsafe {
                    if tiled {
                        x86::two_qudit_pairs(
                            ctx.shared,
                            ps.dims(),
                            ps.strides(),
                            lo,
                            hi,
                            ctx.offsets,
                            m,
                            sparse,
                        );
                    } else {
                        x86::dense_pairs(
                            ctx.shared,
                            ps.dims(),
                            ps.strides(),
                            lo,
                            hi,
                            ctx.offsets,
                            m,
                            sparse,
                        );
                    }
                });
                return true;
            }
        }
    }
    let _ = (ctx, m, tiled);
    false
}

/// Vector arm of the single-qudit diagonal fast path, over one worker's
/// contiguous chunk (a whole number of `stride * phases.len()` spans,
/// starting on a span boundary). Returns `true` when handled.
pub(crate) fn scale_diag_chunk(
    level: SimdLevel,
    chunk: &mut [C64],
    phases: &[C64],
    stride: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level.accelerated() {
            if stride == 1 {
                // Contiguous periodic pattern: amps[i] *= phases[i % d].
                let d = phases.len();
                let pat = if d.is_multiple_of(2) { d } else { 2 * d };
                if pat <= x86::MAX_PATTERN {
                    unsafe { x86::scale_periodic(chunk.as_mut_ptr(), chunk.len(), phases) };
                    return true;
                }
            } else {
                unsafe { x86::scale_runs(chunk.as_mut_ptr(), chunk.len(), phases, stride) };
                return true;
            }
        }
    }
    let _ = (level, chunk, phases, stride);
    false
}

/// The AVX2+FMA bodies. Every function here is compiled with
/// `#[target_feature(enable = "avx2", enable = "fma")]` and must only be
/// called after [`SimdLevel::detect`] returned [`SimdLevel::Avx2Fma`].
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use waltz_math::C64;

    use crate::kernel::{walk_bases, SharedAmps};

    /// Largest dense block the vector matvec handles (mirrors the
    /// kernel's stack-buffer cap).
    pub(super) const MAX_BLOCK: usize = 64;
    /// Largest block the tiled two-qudit arm handles.
    pub(super) const MAX_TILE_BLOCK: usize = 16;
    /// Pair-units buffered per two-qudit tile. One tile's gather scratch
    /// is `2 * MAX_TILE_BLOCK * TILE` lanes = 8 KiB — comfortably
    /// L1-resident next to the amplitudes it mirrors.
    const TILE: usize = 8;
    /// Longest periodic diagonal pattern (in complexes) kept in lane
    /// registers by [`scale_periodic`].
    pub(super) const MAX_PATTERN: usize = 16;

    /// Loads two consecutive complexes starting at amplitude `idx`.
    ///
    /// # Safety
    ///
    /// `idx` and `idx + 1` must be in bounds and not under concurrent
    /// access; the caller must be in an AVX context.
    #[inline(always)]
    unsafe fn load2(amps: SharedAmps, idx: usize) -> __m256d {
        unsafe { _mm256_loadu_pd(amps.at(idx) as *const f64) }
    }

    /// Stores two consecutive complexes starting at amplitude `idx`.
    ///
    /// # Safety
    ///
    /// As [`load2`].
    #[inline(always)]
    unsafe fn store2(amps: SharedAmps, idx: usize, v: __m256d) {
        unsafe { _mm256_storeu_pd(amps.at(idx) as *mut f64, v) }
    }

    /// As [`load2`] on a raw slice pointer.
    #[inline(always)]
    unsafe fn load2p(p: *const C64) -> __m256d {
        unsafe { _mm256_loadu_pd(p as *const f64) }
    }

    /// As [`store2`] on a raw slice pointer.
    #[inline(always)]
    unsafe fn store2p(p: *mut C64, v: __m256d) {
        unsafe { _mm256_storeu_pd(p as *mut f64, v) }
    }

    /// Broadcasts a scalar to all four lanes.
    #[inline(always)]
    unsafe fn bcast(x: f64) -> __m256d {
        unsafe { _mm256_set1_pd(x) }
    }

    /// All-zero lanes.
    #[inline(always)]
    unsafe fn zero() -> __m256d {
        unsafe { _mm256_setzero_pd() }
    }

    /// Swaps the re/im halves of each complex: `[im0, re0, im1, re1]`.
    #[inline(always)]
    unsafe fn swap_halves(a: __m256d) -> __m256d {
        unsafe { _mm256_permute_pd(a, 0b0101) }
    }

    /// Fused `a * b + acc` per lane.
    #[inline(always)]
    unsafe fn fmadd(a: __m256d, b: __m256d, acc: __m256d) -> __m256d {
        unsafe { _mm256_fmadd_pd(a, b, acc) }
    }

    /// `s - t` in even (re) lanes, `s + t` in odd (im) lanes — the final
    /// combine of the split complex accumulators.
    #[inline(always)]
    unsafe fn addsub(s: __m256d, t: __m256d) -> __m256d {
        unsafe { _mm256_addsub_pd(s, t) }
    }

    /// Complex product of two interleaved complexes `a` against one
    /// broadcast coefficient `b` (`br` = `b.re` in all lanes, `bi` =
    /// `b.im`): even lanes `a.re*b.re - a.im*b.im`, odd lanes
    /// `a.im*b.re + a.re*b.im` — exactly what `vfmaddsub` computes from
    /// `a * br` and `swap(a) * bi`.
    #[inline(always)]
    unsafe fn cmul_bcast(a: __m256d, br: __m256d, bi: __m256d) -> __m256d {
        unsafe { _mm256_fmaddsub_pd(a, br, _mm256_mul_pd(swap_halves(a), bi)) }
    }

    /// Paired diagonal sweep: every operand offset of every pair-unit is
    /// one lane scaled by its broadcast phase.
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be available; `amps` must cover every
    /// `base + offset (+1)` the paired layout produces, with no
    /// concurrent access to those amplitudes.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn diag_pairs(
        amps: SharedAmps,
        dims: &[usize],
        strides: &[usize],
        lo: usize,
        hi: usize,
        offsets: &[usize],
        phases: &[C64],
    ) {
        walk_bases(dims, strides, lo, hi, |base| unsafe {
            for (&off, p) in offsets.iter().zip(phases) {
                let v = load2(amps, base + off);
                store2(amps, base + off, cmul_bcast(v, bcast(p.re), bcast(p.im)));
            }
        });
    }

    /// Paired permutation sweep: [`crate::kernel`]'s cycle walk with each
    /// element widened to a two-configuration lane.
    ///
    /// # Safety
    ///
    /// As [`diag_pairs`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn perm_pairs(
        amps: SharedAmps,
        dims: &[usize],
        strides: &[usize],
        lo: usize,
        hi: usize,
        offsets: &[usize],
        cycles: &[Vec<usize>],
        phases: &[C64],
    ) {
        walk_bases(dims, strides, lo, hi, |base| unsafe {
            for cycle in cycles {
                if let [only] = cycle.as_slice() {
                    let idx = base + offsets[*only];
                    let p = phases[*only];
                    store2(
                        amps,
                        idx,
                        cmul_bcast(load2(amps, idx), bcast(p.re), bcast(p.im)),
                    );
                    continue;
                }
                let last = cycle[cycle.len() - 1];
                let tmp = load2(amps, base + offsets[last]);
                for k in (1..cycle.len()).rev() {
                    let from = cycle[k - 1];
                    let p = phases[from];
                    let v = load2(amps, base + offsets[from]);
                    store2(
                        amps,
                        base + offsets[cycle[k]],
                        cmul_bcast(v, bcast(p.re), bcast(p.im)),
                    );
                }
                let p = phases[last];
                store2(
                    amps,
                    base + offsets[cycle[0]],
                    cmul_bcast(tmp, bcast(p.re), bcast(p.im)),
                );
            }
        });
    }

    /// Paired dense-block matvec: gather each pair-unit's block into lane
    /// scratch (both plain and re/im-swapped forms, so the inner loop is
    /// two FMAs per coefficient), run the row dot products through split
    /// real/imag accumulators, combine with one `addsub`, scatter back.
    ///
    /// # Safety
    ///
    /// As [`diag_pairs`]; additionally `m` must be a `block * block`
    /// row-major matrix for `block = offsets.len() <= MAX_BLOCK`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dense_pairs(
        amps: SharedAmps,
        dims: &[usize],
        strides: &[usize],
        lo: usize,
        hi: usize,
        offsets: &[usize],
        m: &[C64],
        sparse: bool,
    ) {
        let block = offsets.len();
        debug_assert!(block <= MAX_BLOCK);
        let mut sc = [unsafe { zero() }; MAX_BLOCK];
        let mut sw = [unsafe { zero() }; MAX_BLOCK];
        walk_bases(dims, strides, lo, hi, |base| unsafe {
            for (i, &off) in offsets.iter().enumerate() {
                let v = load2(amps, base + off);
                sc[i] = v;
                sw[i] = swap_halves(v);
            }
            for (row, &off) in offsets.iter().enumerate() {
                let coeffs = &m[row * block..(row + 1) * block];
                let mut s = zero();
                let mut t = zero();
                for (col, c) in coeffs.iter().enumerate() {
                    if sparse && *c == C64::ZERO {
                        continue;
                    }
                    s = fmadd(sc[col], bcast(c.re), s);
                    t = fmadd(sw[col], bcast(c.im), t);
                }
                store2(amps, base + off, addsub(s, t));
            }
        });
    }

    /// The cache-blocked two-qudit gather arm: pair-units are buffered
    /// [`TILE`] at a time, their 16-wide blocks gathered column-major
    /// into an L1-resident tile, and every coefficient broadcast is then
    /// amortized over the whole tile before the results scatter back.
    ///
    /// # Safety
    ///
    /// As [`dense_pairs`], with `block <= MAX_TILE_BLOCK`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn two_qudit_pairs(
        amps: SharedAmps,
        dims: &[usize],
        strides: &[usize],
        lo: usize,
        hi: usize,
        offsets: &[usize],
        m: &[C64],
        sparse: bool,
    ) {
        debug_assert!(offsets.len() <= MAX_TILE_BLOCK);
        let mut bases = [0usize; TILE];
        let mut n = 0usize;
        walk_bases(dims, strides, lo, hi, |base| unsafe {
            bases[n] = base;
            n += 1;
            if n == TILE {
                two_qudit_tile(amps, &bases, offsets, m, sparse);
                n = 0;
            }
        });
        if n > 0 {
            unsafe { two_qudit_tile(amps, &bases[..n], offsets, m, sparse) };
        }
    }

    /// One tile of [`two_qudit_pairs`]: gathers every listed pair-unit,
    /// applies the block matrix, scatters back. All gathers complete
    /// before the first store (distinct pair-units touch disjoint
    /// amplitudes, but the row outputs alias the gathered inputs).
    ///
    /// # Safety
    ///
    /// As [`two_qudit_pairs`], with `bases.len() <= TILE`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn two_qudit_tile(
        amps: SharedAmps,
        bases: &[usize],
        offsets: &[usize],
        m: &[C64],
        sparse: bool,
    ) {
        let block = offsets.len();
        unsafe {
            let mut sc = [[zero(); TILE]; MAX_TILE_BLOCK];
            let mut sw = [[zero(); TILE]; MAX_TILE_BLOCK];
            for (col, &off) in offsets.iter().enumerate() {
                for (j, &base) in bases.iter().enumerate() {
                    let v = load2(amps, base + off);
                    sc[col][j] = v;
                    sw[col][j] = swap_halves(v);
                }
            }
            for (row, &off) in offsets.iter().enumerate() {
                let coeffs = &m[row * block..(row + 1) * block];
                let mut s = [zero(); TILE];
                let mut t = [zero(); TILE];
                for (col, c) in coeffs.iter().enumerate() {
                    if sparse && *c == C64::ZERO {
                        continue;
                    }
                    let br = bcast(c.re);
                    let bi = bcast(c.im);
                    for j in 0..bases.len() {
                        s[j] = fmadd(sc[col][j], br, s[j]);
                        t[j] = fmadd(sw[col][j], bi, t[j]);
                    }
                }
                for (j, &base) in bases.iter().enumerate() {
                    store2(amps, base + off, addsub(s[j], t[j]));
                }
            }
        }
    }

    /// Single-qudit diagonal with `stride >= 2`: scales each contiguous
    /// level run by its broadcast phase (unit phases skipped, odd-stride
    /// tails finished scalar).
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be available; `chunk..chunk+len` must be exclusively
    /// owned and a whole number of `stride * phases.len()` spans.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn scale_runs(chunk: *mut C64, len: usize, phases: &[C64], stride: usize) {
        let span = stride * phases.len();
        unsafe {
            let mut blk = 0;
            while blk < len {
                for (lvl, p) in phases.iter().enumerate() {
                    if *p == C64::ONE {
                        continue;
                    }
                    let br = bcast(p.re);
                    let bi = bcast(p.im);
                    let run = chunk.add(blk + lvl * stride);
                    let mut i = 0;
                    while i + 2 <= stride {
                        let ptr = run.add(i);
                        store2p(ptr, cmul_bcast(load2p(ptr), br, bi));
                        i += 2;
                    }
                    if i < stride {
                        *run.add(i) *= *p;
                    }
                }
                blk += span;
            }
        }
    }

    /// Single-qudit diagonal with `stride == 1`: the chunk is a
    /// contiguous repetition of the phase pattern, multiplied through
    /// with `lcm(d, 2) / 2` precomputed coefficient lanes per period
    /// (odd dimensions need two periods to realign with the lanes).
    ///
    /// # Safety
    ///
    /// AVX2+FMA must be available; `chunk..chunk+len` must be exclusively
    /// owned and start on a pattern boundary; the pattern
    /// (`lcm(phases.len(), 2)` complexes) must fit [`MAX_PATTERN`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn scale_periodic(chunk: *mut C64, len: usize, phases: &[C64]) {
        let d = phases.len();
        let pat = if d.is_multiple_of(2) { d } else { 2 * d };
        debug_assert!(pat <= MAX_PATTERN);
        unsafe {
            let mut br = [zero(); MAX_PATTERN / 2];
            let mut bi = [zero(); MAX_PATTERN / 2];
            let nv = pat / 2;
            for v in 0..nv {
                let p0 = phases[(2 * v) % d];
                let p1 = phases[(2 * v + 1) % d];
                br[v] = _mm256_setr_pd(p0.re, p0.re, p1.re, p1.re);
                bi[v] = _mm256_setr_pd(p0.im, p0.im, p1.im, p1.im);
            }
            let mut i = 0;
            while i + pat <= len {
                for v in 0..nv {
                    let ptr = chunk.add(i + 2 * v);
                    store2p(ptr, cmul_bcast(load2p(ptr), br[v], bi[v]));
                }
                i += pat;
            }
            while i < len {
                *chunk.add(i) *= phases[i % d];
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_cached_and_named() {
        let a = SimdLevel::detect();
        let b = SimdLevel::detect();
        assert_eq!(a, b);
        assert!(matches!(a.name(), "scalar" | "avx2+fma"));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn paired_layout_halves_the_innermost_free_qudit() {
        let reg = Register::ququarts(4);
        // Operands (0, 1): the innermost qudit 3 (stride 1, dim 4) pairs.
        let others = [2usize, 3];
        let ps = PairedSweep::detect(&reg, &others).expect("pairable");
        assert_eq!(ps.dims(), &[4, 2]);
        assert_eq!(ps.strides(), &[reg.stride(2), 2]);
        assert_eq!(ps.units, 8);
        // When the innermost qudit is an operand the sweep cannot pair.
        let others = [0usize, 1];
        assert!(PairedSweep::detect(&reg, &others).is_none());
        // Odd innermost dimensions cannot pair either.
        let reg = Register::new(vec![2, 3]);
        assert!(PairedSweep::detect(&reg, &[1usize]).is_none());
    }
}
