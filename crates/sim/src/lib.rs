//! Mixed-dimension qudit simulation for the Quantum Waltz reproduction.
//!
//! * [`Register`] / [`State`] — state vectors over registers whose qudits
//!   may have different dimensions (bare qubits are 2-level, ququarts
//!   4-level), with efficient k-qudit unitary application.
//! * [`TimedCircuit`] — the scheduled hardware circuit the compiler emits:
//!   each op carries its unitary (already embedded to device dimensions),
//!   operand devices, start time, duration, calibrated fidelity **and a
//!   precomputed [`GateKernel`]**.
//! * [`kernel`] — the kernel-specialized gate engine (see below).
//! * [`ideal`] — noiseless execution.
//! * [`trajectory`] — the paper's modified trajectory method (§6.4):
//!   before each gate, each operand is amplitude-damped for the *exact*
//!   time it has been idle; after each gate a generalized-Pauli error is
//!   drawn with probability `1 - F_gate` (§6.5).
//!
//! # The kernel layer
//!
//! The paper's compiled circuits are dominated by structured gates:
//! CZ/CCZ and phase gates are diagonal, X/CX/CCX and routing swaps are
//! (phased) permutations of the computational basis. [`TimedOp::new`]
//! classifies each unitary **once** into a [`GateKernel`]
//! (`Identity` / `Diagonal` / `Permutation` / `SingleQudit` / `TwoQudit` /
//! `GeneralDense`), and [`State::apply_op`] dispatches to a specialized
//! apply path:
//!
//! * diagonal gates become a pure phase sweep (no scratch block, no
//!   matvec);
//! * permutations become in-place index remaps along precomputed cycles;
//! * small dense blocks run through unrolled stride-aware loops on stack
//!   buffers.
//!
//! Scratch that cannot live on the stack is borrowed from a reusable
//! [`Workspace`], so the trajectory hot loop performs no per-gate heap
//! allocation; sweeps over large registers are split across threads
//! (threshold tunable via `WALTZ_PAR_MIN_AMPS` or
//! [`Workspace::set_par_min_amps`]). [`State::apply_unitary`] remains the
//! independent generic dense reference path that every kernel is tested
//! against (≤ 1e-12).
//!
//! # Gate fusion (gather-once/apply-many)
//!
//! [`TimedCircuit::fuse`] batches the schedule before simulation: runs of
//! adjacent ops supported on the same ≤2-qudit operand set are multiplied
//! into one dense block at schedule time and re-classified through the
//! [`GateKernel`] probes (a run of diagonals fuses back to a diagonal).
//! Each fused block keeps one [`NoiseEvent`] per original pulse so the
//! trajectory method still damps idle time and draws errors per hardware
//! pulse. Fused programs run through the same [`ideal`] / [`trajectory`]
//! entry points and are parity-pinned against the unfused engine.
//!
//! # SIMD dispatch & threading
//!
//! Every sweep body exists in two forms: a portable scalar loop (always
//! compiled, the parity reference) and an explicit AVX2+FMA form in
//! [`simd`] working on 256-bit lanes over the interleaved complex
//! layout. One [`SimdLevel`] picks between them at run time; detection
//! order is
//!
//! 1. the `WALTZ_SIMD` environment variable (`0`/`off`/`scalar` forces
//!    the scalar bodies),
//! 2. `is_x86_feature_detected!("avx2")` **and** `("fma")` on x86_64,
//! 3. scalar everywhere else.
//!
//! The level is probed once per process, stored per [`Workspace`], and
//! overridable per workspace with [`Workspace::set_simd_level`] (requests
//! for unavailable levels clamp to scalar). The vector arms pair
//! consecutive sweep configurations along the innermost stride-1
//! non-operand qudit — see the [`simd`] module docs — and fall back to
//! the scalar body whenever no pairing exists, so results never depend on
//! shape-specific support.
//!
//! Threaded sweeps are gated by a measured threshold: the first
//! [`Workspace::new`] in a process times a serial vs. split diagonal
//! sweep at increasing state sizes and records the smallest size where
//! splitting wins ([`DEFAULT_PAR_MIN_AMPS`] is the ladder's middle
//! rung; single-core hosts calibrate to "never split"). The
//! `WALTZ_PAR_MIN_AMPS` environment variable or
//! [`Workspace::set_par_min_amps`] overrides the calibration.
//! Trajectory ensembles run on the persistent [`TrajectoryPool`]
//! (`WALTZ_TRAJ_THREADS` caps its workers): workers steal trajectory
//! indices one at a time, every trajectory derives its RNG seed from its
//! *global* index, and each worker reuses one `Workspace` + state
//! buffers across trajectories — so for a fixed seed the estimate is
//! bit-identical no matter the thread count, including the pure serial
//! path.
//!
//! # State representations (dense vs sparse)
//!
//! The engine has two state representations behind one interface:
//!
//! * **Dense** — [`State`], one amplitude per basis state (16 bytes
//!   each), SIMD + threaded sweeps. The reference representation.
//! * **Sparse** — [`SparseState`], a sorted `(index, amplitude)` map
//!   holding only nonzero amplitudes (24 bytes per entry), with
//!   kernel-specialized arms: diagonal gates phase the stored entries
//!   in place, permutations remap indices and re-sort, and dense blocks
//!   gather each populated operand-stride coset into a stack buffer and
//!   run the *same scalar matvec form* as the dense sweep — so with
//!   truncation epsilon `0` the sparse arms are bit-identical to the
//!   scalar dense path on every nonzero amplitude.
//!
//! [`AdaptiveState`] switches between them per trajectory: it starts
//! sparse and densifies when the population density `nnz/amps` crosses
//! [`Workspace::sparse_density_threshold`]
//! ([`sparse::DEFAULT_SPARSE_DENSITY_THRESHOLD`] by default), and at
//! reshape/segment boundaries — where every amplitude is re-scanned
//! anyway — a dense state whose surviving population fits back under
//! the threshold is rebuilt sparse. Knobs: `WALTZ_SPARSE=0` forces the
//! dense path everywhere (mirrors `WALTZ_SIMD=0`);
//! [`Workspace::set_sparse_density_threshold`] and
//! [`Workspace::set_sparse_epsilon`] tune the switch point and the
//! truncation epsilon (nonzero epsilon trades norm for entry count and
//! is *not* lossless). The adaptive trajectory runners
//! ([`trajectory::run_trajectory_adaptive_into`],
//! [`trajectory::average_fidelity_adaptive_with`], and the segmented
//! twins) consume RNG streams identical to the dense runners, so for a
//! fixed seed an estimate is invariant under the representation path
//! and the pool width. Classical basis inputs through
//! Toffoli-ladder/qram-style circuits stay at a handful of entries
//! inside registers far past dense reach — the sparse map is what lets
//! 20+ qubit mixed-radix programs run inside a 256 MiB budget.
//!
//! # Windowed registers (segmented schedules)
//!
//! A [`SegmentedCircuit`] is a schedule cut at the points where a
//! device's *occupied* dimension changes (mixed-radix `ENC`/`DEC`
//! boundaries): each segment carries its own [`Register`], so a host
//! device is four-dimensional only while its window is open instead of
//! pinning the whole program's state size. Between segments the
//! simulator performs one in-flight [`State::reshape_into`] — an
//! expand/clip that preserves amplitude labels and asserts (at
//! [`RESHAPE_LEAK_TOL`]) that clipped levels were provably unpopulated.
//! The segmented entry points ([`ideal::run_segmented_into`],
//! [`trajectory::run_trajectory_segmented_into`],
//! [`trajectory::average_fidelity_segmented_with`], [`SegmentedSession`])
//! thread one per-device busy timeline through every segment, so noise
//! accounting is identical to the single-register engine; fusion runs
//! per segment ([`SegmentedCircuit::fuse_with_cache`]) and never crosses
//! a reshape boundary.
//!
//! # Example
//!
//! ```
//! use waltz_sim::{Register, State};
//! use waltz_math::C64;
//!
//! // One ququart next to one qubit.
//! let reg = Register::new(vec![4, 2]);
//! let mut state = State::zero(&reg);
//! assert_eq!(state.amplitudes().len(), 8);
//! assert!(state.probability_of(0) > 0.99);
//! ```

#![warn(missing_docs)]

#[cfg(feature = "fault-inject")]
pub mod fault;
mod register;
mod session;
mod state;
mod timed;
mod wire;

pub mod ideal;
pub mod kernel;
pub mod pool;
pub mod simd;
pub mod sparse;
pub mod trajectory;

pub use kernel::{GateKernel, Workspace, DEFAULT_PAR_MIN_AMPS};
pub use pool::TrajectoryPool;
pub use register::Register;
pub use session::{SegmentedSession, Session};
pub use simd::SimdLevel;
pub use sparse::{
    sparse_enabled, AdaptiveState, SparsePolicy, SparseState, DEFAULT_SPARSE_DENSITY_THRESHOLD,
};
pub use state::{State, RESHAPE_LEAK_TOL};
pub use timed::{FuseCache, FuseOptions, NoiseEvent, SegmentedCircuit, TimedCircuit, TimedOp};
