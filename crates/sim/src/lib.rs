//! Mixed-dimension qudit simulation for the Quantum Waltz reproduction.
//!
//! * [`Register`] / [`State`] — state vectors over registers whose qudits
//!   may have different dimensions (bare qubits are 2-level, ququarts
//!   4-level), with efficient k-qudit unitary application.
//! * [`TimedCircuit`] — the scheduled hardware circuit the compiler emits:
//!   each op carries its unitary (already embedded to device dimensions),
//!   operand devices, start time, duration and calibrated fidelity.
//! * [`ideal`] — noiseless execution.
//! * [`trajectory`] — the paper's modified trajectory method (§6.4):
//!   before each gate, each operand is amplitude-damped for the *exact*
//!   time it has been idle; after each gate a generalized-Pauli error is
//!   drawn with probability `1 - F_gate` (§6.5).
//!
//! # Example
//!
//! ```
//! use waltz_sim::{Register, State};
//! use waltz_math::C64;
//!
//! // One ququart next to one qubit.
//! let reg = Register::new(vec![4, 2]);
//! let mut state = State::zero(&reg);
//! assert_eq!(state.amplitudes().len(), 8);
//! assert!(state.probability_of(0) > 0.99);
//! ```

#![warn(missing_docs)]

mod register;
mod state;
mod timed;

pub mod ideal;
pub mod trajectory;

pub use register::Register;
pub use state::State;
pub use timed::{TimedCircuit, TimedOp};
