//! The scheduled hardware circuit: what the compiler hands the simulator.

use waltz_math::Matrix;

use crate::kernel::GateKernel;
use crate::Register;

/// One scheduled hardware pulse.
#[derive(Debug, Clone)]
pub struct TimedOp {
    /// Human-readable gate name (e.g. `"MrCcz"`), used in reports.
    pub label: String,
    /// Unitary already embedded to the operand devices' dimensions.
    pub unitary: Matrix,
    /// Operand device indices (order matches the unitary's digit order).
    pub operands: Vec<usize>,
    /// Logical dimensions the pulse was calibrated on (e.g. `[2, 2]` for a
    /// qubit CX executed on 4-level transmons) — the error channel is drawn
    /// on these dimensions (§6.5).
    pub error_dims: Vec<u8>,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// Pulse duration in nanoseconds.
    pub duration_ns: f64,
    /// Calibrated success probability.
    pub fidelity: f64,
    /// The apply strategy classified from `unitary` at construction —
    /// diagonal and permutation gates skip the dense matvec entirely.
    /// Kept consistent with `unitary` by building ops through
    /// [`TimedOp::new`]; re-run [`TimedOp::reclassify`] after mutating the
    /// matrix in place.
    pub kernel: GateKernel,
}

impl TimedOp {
    /// Builds a scheduled op, classifying its unitary into a
    /// [`GateKernel`] once so every simulation of the circuit reuses the
    /// specialized apply path.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        unitary: Matrix,
        operands: Vec<usize>,
        error_dims: Vec<u8>,
        start_ns: f64,
        duration_ns: f64,
        fidelity: f64,
    ) -> Self {
        let kernel = GateKernel::classify(&unitary, operands.len());
        TimedOp {
            label: label.into(),
            unitary,
            operands,
            error_dims,
            start_ns,
            duration_ns,
            fidelity,
            kernel,
        }
    }

    /// Re-classifies the kernel after an in-place change to `unitary`.
    pub fn reclassify(&mut self) {
        self.kernel = GateKernel::classify(&self.unitary, self.operands.len());
    }

    /// End time of the pulse.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

/// A fully scheduled hardware circuit over a device register.
///
/// Invariants (checked by [`TimedCircuit::validate`]): ops are listed in
/// dependency order, every op's unitary matches its operands' device
/// dimensions, and per-device start times never regress.
#[derive(Debug, Clone)]
pub struct TimedCircuit {
    /// The device register (dimension 2 or 4 per device).
    pub register: Register,
    /// Scheduled pulses in dependency order.
    pub ops: Vec<TimedOp>,
    /// Total wall-clock duration in nanoseconds.
    pub total_duration_ns: f64,
}

impl TimedCircuit {
    /// An empty schedule over `register`.
    pub fn new(register: Register) -> Self {
        TimedCircuit {
            register,
            ops: Vec::new(),
            total_duration_ns: 0.0,
        }
    }

    /// Total number of pulses.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Product of all gate fidelities — the paper's *gate EPS* (§6.3).
    pub fn gate_eps(&self) -> f64 {
        self.ops.iter().map(|op| op.fidelity).product()
    }

    /// Count of pulses grouped by operand count `(1, 2, 3)`.
    pub fn pulse_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for op in &self.ops {
            match op.operands.len() {
                1 => c.0 += 1,
                2 => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut busy_until = vec![0.0f64; self.register.n_qudits()];
        for (i, op) in self.ops.iter().enumerate() {
            let dims: usize = op
                .operands
                .iter()
                .map(|&q| {
                    assert!(q < self.register.n_qudits());
                    self.register.dim(q)
                })
                .product();
            if op.unitary.rows() != dims {
                return Err(format!(
                    "op {i} ({}) unitary dim {} != operand space {dims}",
                    op.label,
                    op.unitary.rows()
                ));
            }
            if op.duration_ns < 0.0 || op.fidelity < 0.0 || op.fidelity > 1.0 {
                return Err(format!("op {i} ({}) has invalid calibration", op.label));
            }
            for &q in &op.operands {
                if op.start_ns + 1e-9 < busy_until[q] {
                    return Err(format!(
                        "op {i} ({}) starts at {} before device {q} frees at {}",
                        op.label, op.start_ns, busy_until[q]
                    ));
                }
                busy_until[q] = op.end_ns();
            }
            if op.end_ns() > self.total_duration_ns + 1e-6 {
                return Err(format!(
                    "op {i} ({}) ends after the recorded total duration",
                    op.label
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_gates::standard;

    fn op(label: &str, u: Matrix, operands: Vec<usize>, start: f64, dur: f64) -> TimedOp {
        let error_dims = vec![2; operands.len()];
        TimedOp::new(label, u, operands, error_dims, start, dur, 0.99)
    }

    #[test]
    fn validate_accepts_well_formed_schedule() {
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops.push(op("h", standard::h(), vec![0], 0.0, 35.0));
        tc.ops
            .push(op("cx", standard::cx(), vec![0, 1], 35.0, 251.0));
        tc.total_duration_ns = 286.0;
        assert!(tc.validate().is_ok());
        assert_eq!(tc.pulse_counts(), (1, 1, 0));
        assert!((tc.gate_eps() - 0.99f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_overlapping_ops() {
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops
            .push(op("cx", standard::cx(), vec![0, 1], 0.0, 251.0));
        tc.ops.push(op("h", standard::h(), vec![0], 100.0, 35.0));
        tc.total_duration_ns = 251.0;
        assert!(tc.validate().unwrap_err().contains("before device"));
    }

    #[test]
    fn validate_rejects_dimension_mismatch() {
        let mut tc = TimedCircuit::new(Register::new(vec![4, 2]));
        // 4x4 matrix on the 2-dim device 1.
        tc.ops
            .push(op("bad", Matrix::identity(4), vec![1], 0.0, 10.0));
        tc.total_duration_ns = 10.0;
        assert!(tc.validate().unwrap_err().contains("unitary dim"));
    }
}
