//! The scheduled hardware circuit: what the compiler hands the simulator,
//! and the gate-fusion pass that batches it for throughput
//! ([`TimedCircuit::fuse`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use waltz_math::{structure, Matrix};

use crate::kernel::GateKernel;
use crate::Register;

/// Maximum number of qudits a fused *dense* block may span.
const MAX_FUSED_QUDITS: usize = 2;

/// Maximum dimension a fused *dense* block may reach (two ququarts).
const MAX_FUSED_DIM: usize = 16;

/// Maximum dimension a fused *structured* block may reach (three
/// ququarts / six qubits). Products of diagonals and phased permutations
/// stay phased permutations at any support size — applying them costs one
/// multiply per amplitude regardless of dimension — so structured runs
/// may fuse across more than two qudits; the ceiling only bounds the
/// schedule-time matrix arithmetic.
const MAX_STRUCTURED_FUSED_DIM: usize = 64;

/// Tunable knobs of the gate-fusion cost model consumed by
/// [`TimedCircuit::fuse_with`]. The defaults are the constants the pass
/// shipped with (tuned on a 1-core container); the compiler calibrates
/// host-specific values from a one-shot measured sweep timing at
/// `Compiler` construction and can cap block granularity for workloads
/// that need tighter noise interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuseOptions {
    /// Estimated per-amplitude bookkeeping cost of one extra sweep over
    /// the state vector (index walk, load/store traffic), in units of one
    /// complex multiply. Fusing `k` pieces into one block saves `k - 1`
    /// sweeps; the cost model credits this against the extra multiplies a
    /// denser fused kernel spends per amplitude.
    pub sweep_overhead: usize,
    /// Estimated *fixed* cost of one sweep (dispatch, offset table,
    /// scratch setup, and the per-pulse bookkeeping around it), again in
    /// complex multiplies. Amortized over the state size when crediting a
    /// saved sweep: on small registers (a handful of ququarts) this
    /// dominates and fusion pays even when it densifies the block, while
    /// on large states the per-amplitude arithmetic decides.
    pub sweep_fixed: usize,
    /// Maximum number of constituent pulses a fused block may absorb.
    /// Fused blocks replay their interior noise around one unitary apply;
    /// capping the span bounds how much noise interleaving is deferred,
    /// at the cost of throughput. A cap of 1 disables fusion entirely
    /// (every block holds one pulse and is emitted verbatim); values of 0
    /// are treated as 1.
    pub max_block_span: usize,
}

impl Default for FuseOptions {
    fn default() -> Self {
        FuseOptions {
            sweep_overhead: 2,
            sweep_fixed: 4096,
            max_block_span: usize::MAX,
        }
    }
}

/// Coarse kernel-class lattice the fusion cost model predicts products
/// in: products never leave the join of their factors' classes
/// (diagonal × permutation stays a phased permutation, anything × dense
/// is dense), so the class — and with it the apply cost — of a candidate
/// block is known *before* multiplying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FuseClass {
    /// Exact identity: applying costs nothing.
    Identity,
    /// Diagonal or phased permutation: one multiply per amplitude.
    Structured,
    /// Dense block: `block_dim` multiplies per amplitude.
    Dense,
}

impl FuseClass {
    /// The class of a classified kernel.
    fn of(kernel: &GateKernel) -> FuseClass {
        match kernel {
            GateKernel::Identity => FuseClass::Identity,
            GateKernel::Diagonal { .. } | GateKernel::Permutation { .. } => FuseClass::Structured,
            _ => FuseClass::Dense,
        }
    }

    /// Estimated complex multiplies per state-vector amplitude when a
    /// block of this class and dimension is applied.
    fn weight(self, block_dim: usize) -> usize {
        match self {
            FuseClass::Identity => 0,
            FuseClass::Structured => 1,
            FuseClass::Dense => block_dim,
        }
    }
}

/// Identity of one fused-block product: the block's operand dimensions
/// plus, per constituent, its operand positions within the block and the
/// exact unitary entries (as `f64` bit patterns, so the key is `Eq` +
/// `Hash`). Two blocks with the same key multiply to the same matrix
/// regardless of which physical devices they sit on or when they start.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlockKey {
    dims: Vec<usize>,
    parts: Vec<BlockPart>,
}

/// One [`BlockKey`] constituent: operand positions within the block and
/// the unitary's entries as `(re, im)` bit patterns.
type BlockPart = (Vec<usize>, Vec<(u64, u64)>);

impl BlockKey {
    fn part_of(unitary: &Matrix, positions: Vec<usize>) -> BlockPart {
        let bits = unitary
            .as_slice()
            .iter()
            .map(|c| (c.re.to_bits(), c.im.to_bits()))
            .collect();
        (positions, bits)
    }
}

/// A memoized fused-block product: the multiplied unitary and its
/// already-classified kernel.
#[derive(Debug, Clone)]
struct CachedBlock {
    unitary: Matrix,
    kernel: GateKernel,
}

/// Entries the cache holds by default; [`FuseCache::with_capacity`]
/// tunes it per deployment.
const FUSE_CACHE_CAP: usize = 4096;

/// Shared store behind [`FuseCache`]: the memo map (tagged with
/// last-use ticks for LRU eviction) plus lifetime hit/miss/eviction
/// counters.
#[derive(Debug)]
struct FuseCacheInner {
    map: Mutex<HashMap<BlockKey, (u64, CachedBlock)>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Memoizes fused-block products across [`TimedCircuit::fuse_with_cache`]
/// calls: repeated (operand-dims, constituent-run) shapes — ubiquitous in
/// batches of structurally similar circuits, and within one schedule
/// whenever a gate pattern repeats — skip the schedule-time matrix
/// multiplication and kernel re-classification entirely.
///
/// Cloning is cheap and *shares* the underlying store (`Arc`), which is
/// how a compiler hands one cache to every worker of a batch compile.
/// Correctness does not depend on the cache: keys identify the exact
/// unitary entries, so a hit returns bit-identical blocks.
///
/// The store holds at most [`FuseCache::capacity`] shapes (default 4096,
/// tunable via [`FuseCache::with_capacity`]); overflow evicts the
/// least-recently-used entry. Lifetime [`FuseCache::hits`] /
/// [`FuseCache::misses`] / [`FuseCache::evictions`] counters expose the
/// cache's effectiveness to compile-pass diagnostics.
#[derive(Debug, Clone)]
pub struct FuseCache {
    inner: Arc<FuseCacheInner>,
}

impl Default for FuseCache {
    fn default() -> Self {
        FuseCache::new()
    }
}

impl FuseCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        FuseCache::with_capacity(FUSE_CACHE_CAP)
    }

    /// An empty cache holding at most `capacity` block shapes. A capacity
    /// of 0 disables memoization (every lookup misses, nothing is stored).
    pub fn with_capacity(capacity: usize) -> Self {
        FuseCache {
            inner: Arc::new(FuseCacheInner {
                map: Mutex::new(HashMap::new()),
                capacity,
                tick: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// Maximum number of memoized block shapes.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of memoized block shapes.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits across every handle sharing this store.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses across every handle sharing this store.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Lifetime LRU evictions across every handle sharing this store.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Poison-tolerant lock: entries are only ever inserted whole, so a
    /// panic on another thread (isolated by a batch supervisor) cannot
    /// leave a half-written entry — sibling jobs keep using the cache.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<BlockKey, (u64, CachedBlock)>> {
        self.inner
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn get(&self, key: &BlockKey) -> Option<CachedBlock> {
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.lock();
        match map.get_mut(key) {
            Some((last_use, block)) => {
                *last_use = tick;
                let block = block.clone();
                drop(map);
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(block)
            }
            None => {
                drop(map);
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: BlockKey, value: CachedBlock) {
        if self.inner.capacity == 0 {
            return;
        }
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.lock();
        if map.len() >= self.inner.capacity && !map.contains_key(&key) {
            // Evict the least-recently-used shape. O(len) scan: eviction
            // only happens past `capacity` distinct shapes, far off the
            // per-block hot path.
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, (last_use, _))| *last_use)
                .map(|(k, _)| k.clone())
            {
                map.remove(&oldest);
                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, (tick, value));
    }
}

/// One constituent pulse's noise record, kept by a fused op so the
/// trajectory method still draws errors and damps idle time **per
/// hardware pulse** even though the unitaries were multiplied into one
/// block at schedule time (see [`TimedCircuit::fuse`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseEvent {
    /// Operand device indices of the original pulse.
    pub operands: Vec<usize>,
    /// Logical dimensions the pulse's error channel is drawn on (§6.5).
    pub error_dims: Vec<u8>,
    /// Calibrated success probability of the original pulse.
    pub fidelity: f64,
    /// Start time of the original pulse in nanoseconds.
    pub start_ns: f64,
    /// Duration of the original pulse in nanoseconds.
    pub duration_ns: f64,
}

impl NoiseEvent {
    /// End time of the original pulse.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

/// One scheduled hardware pulse.
#[derive(Debug, Clone)]
pub struct TimedOp {
    /// Human-readable gate name (e.g. `"MrCcz"`), used in reports.
    pub label: String,
    /// Unitary already embedded to the operand devices' dimensions.
    pub unitary: Matrix,
    /// Operand device indices (order matches the unitary's digit order).
    pub operands: Vec<usize>,
    /// Logical dimensions the pulse was calibrated on (e.g. `[2, 2]` for a
    /// qubit CX executed on 4-level transmons) — the error channel is drawn
    /// on these dimensions (§6.5).
    pub error_dims: Vec<u8>,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// Pulse duration in nanoseconds.
    pub duration_ns: f64,
    /// Calibrated success probability.
    pub fidelity: f64,
    /// The apply strategy classified from `unitary` at construction —
    /// diagonal and permutation gates skip the dense matvec entirely.
    /// Kept consistent with `unitary` by building ops through
    /// [`TimedOp::new`]; re-run [`TimedOp::reclassify`] after mutating the
    /// matrix in place.
    pub kernel: GateKernel,
    /// `Some` when this op is a fused block: one noise record per original
    /// hardware pulse, in schedule order. The trajectory runner then damps
    /// idle time, damps busy time and draws depolarizing errors per
    /// constituent while applying `unitary` only once. `None` for plain
    /// scheduled pulses (the op's own fields describe its noise).
    pub noise_events: Option<Vec<NoiseEvent>>,
}

impl TimedOp {
    /// Builds a scheduled op, classifying its unitary into a
    /// [`GateKernel`] once so every simulation of the circuit reuses the
    /// specialized apply path.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        unitary: Matrix,
        operands: Vec<usize>,
        error_dims: Vec<u8>,
        start_ns: f64,
        duration_ns: f64,
        fidelity: f64,
    ) -> Self {
        let kernel = GateKernel::classify(&unitary, operands.len());
        TimedOp {
            label: label.into(),
            unitary,
            operands,
            error_dims,
            start_ns,
            duration_ns,
            fidelity,
            kernel,
            noise_events: None,
        }
    }

    /// Re-classifies the kernel after an in-place change to `unitary`.
    pub fn reclassify(&mut self) {
        self.kernel = GateKernel::classify(&self.unitary, self.operands.len());
    }

    /// End time of the pulse.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

/// A fully scheduled hardware circuit over a device register.
///
/// Invariants (checked by [`TimedCircuit::validate`]): ops are listed in
/// dependency order, every op's unitary matches its operands' device
/// dimensions, and per-device start times never regress.
#[derive(Debug, Clone)]
pub struct TimedCircuit {
    /// The device register (dimension 2 or 4 per device).
    pub register: Register,
    /// Scheduled pulses in dependency order.
    pub ops: Vec<TimedOp>,
    /// Total wall-clock duration in nanoseconds.
    pub total_duration_ns: f64,
}

impl TimedCircuit {
    /// An empty schedule over `register`.
    pub fn new(register: Register) -> Self {
        TimedCircuit {
            register,
            ops: Vec::new(),
            total_duration_ns: 0.0,
        }
    }

    /// Total number of pulses.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Product of all gate fidelities — the paper's *gate EPS* (§6.3).
    pub fn gate_eps(&self) -> f64 {
        self.ops.iter().map(|op| op.fidelity).product()
    }

    /// Count of pulses grouped by operand count `(1, 2, 3)`.
    pub fn pulse_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for op in &self.ops {
            match op.operands.len() {
                1 => c.0 += 1,
                2 => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }

    /// Checks structural invariants.
    ///
    /// Fused blocks (ops carrying [`TimedOp::noise_events`]) are checked
    /// per constituent event: each event's devices must be a subset of the
    /// block's operands and per-device start times must not regress across
    /// events, since the block envelope itself may start before a
    /// late-joining device frees.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut busy_until = vec![0.0f64; self.register.n_qudits()];
        self.validate_ops(&mut busy_until)
    }

    /// The op walk of [`TimedCircuit::validate`] against caller-owned
    /// per-device busy times, so a [`SegmentedCircuit`] can thread one
    /// timeline through every segment (a reshape boundary is a simulation
    /// artifact — it must never hide a scheduling overlap).
    fn validate_ops(&self, busy_until: &mut [f64]) -> Result<(), String> {
        for (i, op) in self.ops.iter().enumerate() {
            let dims: usize = op
                .operands
                .iter()
                .map(|&q| {
                    assert!(q < self.register.n_qudits());
                    self.register.dim(q)
                })
                .product();
            if op.unitary.rows() != dims {
                return Err(format!(
                    "op {i} ({}) unitary dim {} != operand space {dims}",
                    op.label,
                    op.unitary.rows()
                ));
            }
            if op.duration_ns < 0.0 || op.fidelity < 0.0 || op.fidelity > 1.0 {
                return Err(format!("op {i} ({}) has invalid calibration", op.label));
            }
            match &op.noise_events {
                None => {
                    for &q in &op.operands {
                        if op.start_ns + 1e-9 < busy_until[q] {
                            return Err(format!(
                                "op {i} ({}) starts at {} before device {q} frees at {}",
                                op.label, op.start_ns, busy_until[q]
                            ));
                        }
                        busy_until[q] = op.end_ns();
                    }
                }
                Some(events) => {
                    for (e, ev) in events.iter().enumerate() {
                        if ev.duration_ns < 0.0 || ev.fidelity < 0.0 || ev.fidelity > 1.0 {
                            return Err(format!(
                                "op {i} ({}) event {e} has invalid calibration",
                                op.label
                            ));
                        }
                        for &q in &ev.operands {
                            if !op.operands.contains(&q) {
                                return Err(format!(
                                    "op {i} ({}) event {e} touches non-operand device {q}",
                                    op.label
                                ));
                            }
                            if ev.start_ns + 1e-9 < busy_until[q] {
                                return Err(format!(
                                    "op {i} ({}) event {e} starts at {} before device {q} \
                                     frees at {}",
                                    op.label, ev.start_ns, busy_until[q]
                                ));
                            }
                            busy_until[q] = ev.end_ns();
                        }
                    }
                }
            }
            if op.end_ns() > self.total_duration_ns + 1e-6 {
                return Err(format!(
                    "op {i} ({}) ends after the recorded total duration",
                    op.label
                ));
            }
        }
        Ok(())
    }

    /// The gate-fusion pass (gather-once/apply-many): greedily fuses runs
    /// of adjacent ops into single blocks, multiplying the unitaries once
    /// at schedule time so the simulator sweeps the state vector once per
    /// block instead of once per pulse (SU(4) block compilation in the
    /// spirit of Zulehner & Wille). Dense blocks are capped at a ≤2-qudit
    /// operand set; purely structured runs (diagonals and phased
    /// permutations, closed under products) may span up to
    /// `MAX_STRUCTURED_FUSED_DIM` since their apply cost is independent
    /// of the block dimension.
    ///
    /// The pass keeps one *open block* per disjoint operand set and scans
    /// the schedule in order:
    ///
    /// * an op whose devices fall inside (or extend to at most
    ///   `MAX_FUSED_QUDITS` qudits / dimension `MAX_FUSED_DIM`) the
    ///   open blocks it touches is absorbed, merging those blocks —
    ///   **provided the fusion pays**: a `FuseClass` cost model
    ///   predicts the fused block's kernel class and refuses absorptions
    ///   that would promote cheap diagonal/permutation sweeps into dense
    ///   matvecs costing more than the sweeps they replace;
    /// * any other op flushes every block it conflicts with — ops on
    ///   disjoint supports commute, which is what makes absorbing across
    ///   them sound.
    ///
    /// Each fused block's unitary is re-classified through the
    /// [`GateKernel`] probes, so a run of diagonals fuses back to a
    /// diagonal kernel and a run of permutations to a permutation kernel.
    /// The constituents' calibration data is preserved as
    /// [`TimedOp::noise_events`], which the trajectory runner replays per
    /// hardware pulse; the fused op's own fidelity is the product of its
    /// constituents', so [`TimedCircuit::gate_eps`] is unchanged. Blocks
    /// that end up with a single constituent are emitted verbatim.
    ///
    /// The result simulates identically to `self` under [`crate::ideal`]
    /// (pinned at 1e-12 by the fusion parity suite) and statistically
    /// equivalently under [`crate::trajectory`]; it is a simulation
    /// artifact, not a hardware schedule — pulse counts reflect blocks,
    /// not pulses.
    #[must_use]
    pub fn fuse(&self) -> TimedCircuit {
        self.fuse_with(&FuseOptions::default())
    }

    /// [`TimedCircuit::fuse`] with explicit cost-model constants and an
    /// optional cap on fused-block span (see [`FuseOptions`]). Block
    /// products are memoized within the call; to share the memo across a
    /// batch of circuits use [`TimedCircuit::fuse_with_cache`].
    #[must_use]
    pub fn fuse_with(&self, opts: &FuseOptions) -> TimedCircuit {
        self.fuse_with_cache(opts, &FuseCache::new())
    }

    /// [`TimedCircuit::fuse_with`] memoizing fused-block products in a
    /// caller-owned [`FuseCache`], so repeated (kernel-class,
    /// operand-dims, op-run) shapes across a batch of circuits multiply
    /// once instead of once per circuit.
    #[must_use]
    pub fn fuse_with_cache(&self, opts: &FuseOptions, cache: &FuseCache) -> TimedCircuit {
        let max_span = opts.max_block_span.max(1);
        let mut open: Vec<PendingBlock> = Vec::new();
        let mut out: Vec<TimedOp> = Vec::new();
        // What one saved sweep is worth, per amplitude.
        let sweep_credit =
            opts.sweep_overhead + opts.sweep_fixed / self.register.total_dim().max(1);
        for (idx, op) in self.ops.iter().enumerate() {
            let block_dim: usize = op.operands.iter().map(|&q| self.register.dim(q)).product();
            let op_class = FuseClass::of(&op.kernel);
            // Structured ops may fuse at any support up to the structured
            // ceiling; dense ops only inside a ≤2-qudit block.
            let fuseable = op.noise_events.is_none()
                && if op_class <= FuseClass::Structured {
                    block_dim <= MAX_STRUCTURED_FUSED_DIM
                } else {
                    op.operands.len() <= MAX_FUSED_QUDITS && block_dim <= MAX_FUSED_DIM
                };
            // Open blocks sharing a device with this op, in schedule order.
            let sharing: Vec<usize> = (0..open.len())
                .filter(|&b| open[b].operands.iter().any(|q| op.operands.contains(q)))
                .collect();
            if fuseable {
                let mut union: Vec<usize> = Vec::new();
                for &b in &sharing {
                    union.extend(open[b].operands.iter().copied());
                }
                for &q in &op.operands {
                    if !union.contains(&q) {
                        union.push(q);
                    }
                }
                let union_dim: usize = union.iter().map(|&q| self.register.dim(q)).product();
                // Cost check: the fused block must not spend more per
                // amplitude than the separate sweeps it replaces, credited
                // with the per-sweep overhead it saves. This is what keeps
                // cheap diagonal/permutation kernels from being promoted
                // into expensive dense blocks for no gain.
                let joined_class = sharing
                    .iter()
                    .map(|&b| open[b].class)
                    .chain([op_class])
                    .max()
                    .expect("at least the op itself");
                let separate: usize = sharing
                    .iter()
                    .map(|&b| {
                        let dim: usize = open[b]
                            .operands
                            .iter()
                            .map(|&q| self.register.dim(q))
                            .product();
                        open[b].class.weight(dim)
                    })
                    .sum::<usize>()
                    + op_class.weight(block_dim)
                    + sweep_credit * sharing.len();
                let span: usize = sharing.iter().map(|&b| open[b].ops.len()).sum::<usize>() + 1;
                let fits = span <= max_span
                    && if joined_class <= FuseClass::Structured {
                        union_dim <= MAX_STRUCTURED_FUSED_DIM
                    } else {
                        union.len() <= MAX_FUSED_QUDITS && union_dim <= MAX_FUSED_DIM
                    };
                if fits && joined_class.weight(union_dim) <= separate {
                    // Merge the sharing blocks (they are pairwise disjoint,
                    // hence commuting) and absorb the op.
                    let mut merged = match sharing.first() {
                        Some(&first) => {
                            let mut merged = std::mem::replace(
                                &mut open[first],
                                PendingBlock {
                                    operands: Vec::new(),
                                    ops: Vec::new(),
                                    class: FuseClass::Identity,
                                },
                            );
                            for &b in sharing.iter().skip(1).rev() {
                                let other = open.remove(b);
                                merged.ops.extend(other.ops);
                                merged.operands.extend(other.operands);
                            }
                            merged.ops.sort_by_key(|(idx, _)| *idx);
                            merged
                        }
                        None => PendingBlock {
                            operands: Vec::new(),
                            ops: Vec::new(),
                            class: FuseClass::Identity,
                        },
                    };
                    for &q in &op.operands {
                        if !merged.operands.contains(&q) {
                            merged.operands.push(q);
                        }
                    }
                    merged.ops.push((idx, op.clone()));
                    merged.class = joined_class;
                    if let Some(&first) = sharing.first() {
                        open[first] = merged;
                    } else {
                        open.push(merged);
                    }
                    continue;
                }
            }
            // Conflict: flush every sharing block in schedule order, then
            // emit the op (unfuseable) or open a fresh block for it.
            // Removals run descending to keep indices valid.
            let mut flushed: Vec<PendingBlock> =
                sharing.iter().rev().map(|&b| open.remove(b)).collect();
            flushed.reverse();
            for block in flushed {
                out.push(self.emit_block(block, cache));
            }
            if fuseable {
                open.push(PendingBlock {
                    operands: op.operands.clone(),
                    ops: vec![(idx, op.clone())],
                    class: op_class,
                });
            } else {
                out.push(op.clone());
            }
        }
        while !open.is_empty() {
            let block = open.remove(0);
            out.push(self.emit_block(block, cache));
        }
        TimedCircuit {
            register: self.register.clone(),
            ops: out,
            total_duration_ns: self.total_duration_ns,
        }
    }

    /// Builds the emitted op for a pending block: the original op when the
    /// block holds a single constituent, otherwise the fused dense block
    /// with per-constituent [`NoiseEvent`]s. The product and its kernel
    /// classification are memoized in `cache` keyed on the exact
    /// constituent shapes, so a repeated run costs one lookup.
    fn emit_block(&self, block: PendingBlock, cache: &FuseCache) -> TimedOp {
        if block.ops.len() == 1 {
            return block.ops.into_iter().next().expect("non-empty block").1;
        }
        let operands = block.operands;
        let dims: Vec<usize> = operands.iter().map(|&q| self.register.dim(q)).collect();
        let positions_of = |op: &TimedOp| -> Vec<usize> {
            op.operands
                .iter()
                .map(|q| {
                    operands
                        .iter()
                        .position(|b| b == q)
                        .expect("operand inside block")
                })
                .collect()
        };
        let key = BlockKey {
            dims: dims.clone(),
            parts: block
                .ops
                .iter()
                .map(|(_, op)| BlockKey::part_of(&op.unitary, positions_of(op)))
                .collect(),
        };
        let CachedBlock { unitary, kernel } = cache.get(&key).unwrap_or_else(|| {
            let unitary = structure::fuse_unitaries(
                block
                    .ops
                    .iter()
                    .map(|(_, op)| (&op.unitary, positions_of(op))),
                &dims,
            );
            let kernel = GateKernel::classify(&unitary, operands.len());
            let computed = CachedBlock { unitary, kernel };
            cache.insert(key, computed.clone());
            computed
        });
        let start_ns = block
            .ops
            .iter()
            .map(|(_, op)| op.start_ns)
            .fold(f64::INFINITY, f64::min);
        let end_ns = block
            .ops
            .iter()
            .map(|(_, op)| op.end_ns())
            .fold(0.0f64, f64::max);
        let fidelity: f64 = block.ops.iter().map(|(_, op)| op.fidelity).product();
        let label = format!(
            "fused{}[{}..{}]",
            block.ops.len(),
            block.ops.first().expect("non-empty block").1.label,
            block.ops.last().expect("non-empty block").1.label
        );
        let error_dims: Vec<u8> = dims.iter().map(|&d| d as u8).collect();
        let events: Vec<NoiseEvent> = block
            .ops
            .iter()
            .map(|(_, op)| NoiseEvent {
                operands: op.operands.clone(),
                error_dims: op.error_dims.clone(),
                fidelity: op.fidelity,
                start_ns: op.start_ns,
                duration_ns: op.duration_ns,
            })
            .collect();
        // Built directly (not through `TimedOp::new`) so the memoized
        // kernel classification is reused instead of re-probed.
        TimedOp {
            label,
            unitary,
            operands,
            error_dims,
            start_ns,
            duration_ns: end_ns - start_ns,
            fidelity,
            kernel,
            noise_events: Some(events),
        }
    }
}

/// An open fusion block: the operand set accumulated so far and the
/// constituent ops with their original schedule indices.
struct PendingBlock {
    operands: Vec<usize>,
    ops: Vec<(usize, TimedOp)>,
    /// Join of the constituents' kernel classes — predicts the fused
    /// block's class (and hence apply cost) without multiplying.
    class: FuseClass,
}

/// A schedule cut into segments that each carry their **own**
/// [`Register`]: the windowed-register form of a [`TimedCircuit`].
///
/// The compiler's windowed occupancy analysis splits a program wherever a
/// device's occupied dimension changes (mixed-radix `ENC`/`DEC`
/// boundaries) and emits one segment per window, so a device sits at
/// dimension 4 only while its window is open instead of pinning the whole
/// program's register. Between adjacent segments the simulator performs
/// one in-flight [`crate::State::reshape_into`] — an expand/clip of the
/// state onto the next segment's register (amplitude labels preserved,
/// clipped levels asserted empty).
///
/// Segments share one global timeline: op start times are absolute, and
/// [`SegmentedCircuit::total_duration_ns`] covers the whole program, so
/// trajectory noise accounting (idle windows, trailing idle) is identical
/// to the single-register engine. A reshape is a simulation artifact with
/// zero duration — it appears nowhere in the timeline.
#[derive(Debug, Clone)]
pub struct SegmentedCircuit {
    /// Segments in program order, each a self-contained [`TimedCircuit`]
    /// over its own register. Consecutive registers span the same qudits
    /// with (possibly) different per-qudit dimensions.
    pub segments: Vec<TimedCircuit>,
    /// Wall-clock duration of the whole program in nanoseconds.
    pub total_duration_ns: f64,
}

impl SegmentedCircuit {
    /// A segmented circuit from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or two segments disagree on the
    /// qudit count.
    pub fn new(segments: Vec<TimedCircuit>, total_duration_ns: f64) -> Self {
        assert!(!segments.is_empty(), "need at least one segment");
        let n = segments[0].register.n_qudits();
        assert!(
            segments.iter().all(|s| s.register.n_qudits() == n),
            "segments must span the same qudits"
        );
        SegmentedCircuit {
            segments,
            total_duration_ns,
        }
    }

    /// Wraps a whole-program schedule as a single segment (no reshapes) —
    /// the degenerate form every single-register circuit embeds into.
    pub fn single(circuit: TimedCircuit) -> Self {
        let total = circuit.total_duration_ns;
        SegmentedCircuit::new(vec![circuit], total)
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of in-flight state reshapes a simulation performs (one per
    /// adjacent segment pair).
    pub fn reshape_count(&self) -> usize {
        self.segments.len() - 1
    }

    /// Total scheduled ops across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(TimedCircuit::len).sum()
    }

    /// Whether no segment holds any op.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(TimedCircuit::is_empty)
    }

    /// The register simulation starts on (first segment's).
    pub fn first_register(&self) -> &Register {
        &self.segments[0].register
    }

    /// The register simulation ends on (last segment's).
    pub fn last_register(&self) -> &Register {
        &self.segments[self.segments.len() - 1].register
    }

    /// Largest per-segment state size in bytes — the unit the simulation
    /// buffers are sized by (a segmented run holds **two** rolling
    /// buffers of at most this size, regardless of the segment count;
    /// see [`SegmentedCircuit::rolling_buffers`]) and the quantity byte
    /// budgets gate on.
    pub fn peak_state_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.register.state_bytes())
            .max()
            .expect("at least one segment")
    }

    /// Allocates the two rolling state buffers a segmented run needs
    /// (`(out, scratch)`), both pre-sized to the peak segment register —
    /// so the per-boundary [`crate::State::remap`] calls inside the run
    /// never reallocate — and re-targeted onto the first segment's
    /// register, ready for [`crate::ideal::run_segmented_into`] /
    /// [`crate::trajectory::run_trajectory_segmented_into`].
    pub fn rolling_buffers(&self) -> (crate::State, crate::State) {
        let peak = self
            .segments
            .iter()
            .map(|s| &s.register)
            .max_by_key(|r| r.total_dim())
            .expect("at least one segment");
        let mut out = crate::State::zero(peak);
        let mut scratch = crate::State::zero(peak);
        out.remap(self.first_register());
        scratch.remap(self.first_register());
        (out, scratch)
    }

    /// Op-weighted mean state size in bytes: each op sweeps its own
    /// segment's state, so this is the average bytes touched per sweep —
    /// the windowed analysis shrinks it even when the peak is pinned by
    /// one wide window. Falls back to the peak for op-less schedules.
    pub fn mean_state_bytes(&self) -> f64 {
        let ops: usize = self.len();
        if ops == 0 {
            return self.peak_state_bytes() as f64;
        }
        let weighted: f64 = self
            .segments
            .iter()
            .map(|s| s.len() as f64 * s.register.state_bytes() as f64)
            .sum();
        weighted / ops as f64
    }

    /// Product of all gate fidelities across segments (the gate EPS; the
    /// segmentation never adds or removes pulses).
    pub fn gate_eps(&self) -> f64 {
        self.segments.iter().map(TimedCircuit::gate_eps).product()
    }

    /// Checks structural invariants: every segment's invariants
    /// ([`TimedCircuit::validate`]) with one per-device timeline threaded
    /// across segments, so a reshape boundary cannot hide an overlap.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut busy_until = vec![0.0f64; self.first_register().n_qudits()];
        for (k, segment) in self.segments.iter().enumerate() {
            segment
                .validate_ops(&mut busy_until)
                .map_err(|e| format!("segment {k}: {e}"))?;
            if segment.total_duration_ns > self.total_duration_ns + 1e-6 {
                return Err(format!("segment {k} duration exceeds the segmented total"));
            }
        }
        Ok(())
    }

    /// Per-segment gate fusion: [`TimedCircuit::fuse`] applied inside
    /// each segment independently. Fusion never crosses a reshape
    /// boundary — a block's unitary lives on one register, and the
    /// registers differ across the boundary by construction.
    #[must_use]
    pub fn fuse(&self) -> SegmentedCircuit {
        self.fuse_with(&FuseOptions::default())
    }

    /// [`SegmentedCircuit::fuse`] with explicit cost-model constants.
    #[must_use]
    pub fn fuse_with(&self, opts: &FuseOptions) -> SegmentedCircuit {
        self.fuse_with_cache(opts, &FuseCache::new())
    }

    /// [`SegmentedCircuit::fuse_with`] memoizing block products in a
    /// caller-owned [`FuseCache`]. The cache key carries the block's
    /// operand dimensions *in the segment's register* (the `dims` field
    /// of the internal block key), so the same gate run fused in a dim-4
    /// window and in a demoted dim-2 segment occupies two distinct
    /// entries and a hit is always bit-identical.
    #[must_use]
    pub fn fuse_with_cache(&self, opts: &FuseOptions, cache: &FuseCache) -> SegmentedCircuit {
        SegmentedCircuit {
            segments: self
                .segments
                .iter()
                .map(|s| s.fuse_with_cache(opts, cache))
                .collect(),
            total_duration_ns: self.total_duration_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_gates::standard;

    fn op(label: &str, u: Matrix, operands: Vec<usize>, start: f64, dur: f64) -> TimedOp {
        let error_dims = vec![2; operands.len()];
        TimedOp::new(label, u, operands, error_dims, start, dur, 0.99)
    }

    #[test]
    fn validate_accepts_well_formed_schedule() {
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops.push(op("h", standard::h(), vec![0], 0.0, 35.0));
        tc.ops
            .push(op("cx", standard::cx(), vec![0, 1], 35.0, 251.0));
        tc.total_duration_ns = 286.0;
        assert!(tc.validate().is_ok());
        assert_eq!(tc.pulse_counts(), (1, 1, 0));
        assert!((tc.gate_eps() - 0.99f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_overlapping_ops() {
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops
            .push(op("cx", standard::cx(), vec![0, 1], 0.0, 251.0));
        tc.ops.push(op("h", standard::h(), vec![0], 100.0, 35.0));
        tc.total_duration_ns = 251.0;
        assert!(tc.validate().unwrap_err().contains("before device"));
    }

    #[test]
    fn fuse_collapses_same_pair_run_and_preserves_ideal_output() {
        // h(0); cx(0,1); h(1); h(0) on two qubits: one fused block.
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops.push(op("h", standard::h(), vec![0], 0.0, 35.0));
        tc.ops
            .push(op("cx", standard::cx(), vec![0, 1], 35.0, 251.0));
        tc.ops.push(op("h", standard::h(), vec![1], 286.0, 35.0));
        tc.ops.push(op("h", standard::h(), vec![0], 286.0, 35.0));
        tc.total_duration_ns = 321.0;
        let fused = tc.fuse();
        assert_eq!(fused.len(), 1, "run should fuse into one block");
        let block = &fused.ops[0];
        assert_eq!(block.noise_events.as_ref().unwrap().len(), 4);
        assert!((block.fidelity - 0.99f64.powi(4)).abs() < 1e-12);
        assert!((fused.gate_eps() - tc.gate_eps()).abs() < 1e-12);
        assert!(fused.validate().is_ok(), "{:?}", fused.validate());
        let initial = crate::State::zero(&tc.register);
        let a = crate::ideal::run(&tc, &initial);
        let b = crate::ideal::run(&fused, &initial);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fuse_merges_disjoint_blocks_bridged_by_two_qudit_gate() {
        // h(0); h(1); cx(0,1): the two single-qudit blocks merge when the
        // bridging CX arrives.
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops.push(op("h", standard::h(), vec![0], 0.0, 35.0));
        tc.ops.push(op("h", standard::h(), vec![1], 0.0, 35.0));
        tc.ops
            .push(op("cx", standard::cx(), vec![0, 1], 35.0, 251.0));
        tc.total_duration_ns = 286.0;
        let fused = tc.fuse();
        assert_eq!(fused.len(), 1);
        let initial = crate::State::zero(&tc.register);
        let a = crate::ideal::run(&tc, &initial);
        let b = crate::ideal::run(&fused, &initial);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fuse_reclassifies_diagonal_runs_as_diagonal() {
        use waltz_math::C64;
        let s_gate = Matrix::from_diag(&[C64::ONE, C64::I]);
        let cz = Matrix::from_diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE]);
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops.push(op("s", s_gate.clone(), vec![0], 0.0, 35.0));
        tc.ops.push(op("cz", cz, vec![0, 1], 35.0, 251.0));
        tc.ops.push(op("s", s_gate, vec![1], 286.0, 35.0));
        tc.total_duration_ns = 321.0;
        let fused = tc.fuse();
        assert_eq!(fused.len(), 1);
        assert_eq!(fused.ops[0].kernel.name(), "diagonal");
    }

    #[test]
    fn fuse_leaves_singleton_and_oversized_ops_verbatim() {
        // A lone three-qubit gate and an isolated single-qubit gate on a
        // third device pass through untouched (no noise events).
        let mut tc = TimedCircuit::new(Register::qubits(3));
        let ccx = standard::ccx();
        tc.ops.push(op("ccx", ccx, vec![0, 1, 2], 0.0, 912.0));
        tc.ops.push(op("h", standard::h(), vec![1], 912.0, 35.0));
        tc.total_duration_ns = 947.0;
        let fused = tc.fuse();
        assert_eq!(fused.len(), 2);
        assert!(fused.ops.iter().all(|o| o.noise_events.is_none()));
        assert_eq!(fused.ops[0].label, "ccx");
        assert_eq!(fused.ops[1].label, "h");
    }

    #[test]
    fn fuse_never_reorders_conflicting_ops() {
        // cx(0,1); cx(1,2); cx(0,1): the middle gate conflicts with the
        // open (0,1) block, so blocks flush in schedule order and the
        // ideal outputs agree.
        let mut tc = TimedCircuit::new(Register::qubits(3));
        tc.ops
            .push(op("cx01", standard::cx(), vec![0, 1], 0.0, 251.0));
        tc.ops
            .push(op("cx12", standard::cx(), vec![1, 2], 251.0, 251.0));
        tc.ops
            .push(op("cx01", standard::cx(), vec![0, 1], 502.0, 251.0));
        tc.total_duration_ns = 753.0;
        let fused = tc.fuse();
        assert!(fused.len() <= tc.len());
        let mut initial = crate::State::zero(&tc.register);
        initial.apply_unitary(&standard::h(), &[0]);
        initial.apply_unitary(&standard::h(), &[1]);
        initial.apply_unitary(&standard::h(), &[2]);
        let a = crate::ideal::run(&tc, &initial);
        let b = crate::ideal::run(&fused, &initial);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    /// h(0); cx(0,1); h(1); h(0): fuses to a single 4-constituent block
    /// under the default options.
    fn four_op_run() -> TimedCircuit {
        let mut tc = TimedCircuit::new(Register::qubits(2));
        tc.ops.push(op("h", standard::h(), vec![0], 0.0, 35.0));
        tc.ops
            .push(op("cx", standard::cx(), vec![0, 1], 35.0, 251.0));
        tc.ops.push(op("h", standard::h(), vec![1], 286.0, 35.0));
        tc.ops.push(op("h", standard::h(), vec![0], 286.0, 35.0));
        tc.total_duration_ns = 321.0;
        tc
    }

    #[test]
    fn span_cap_bounds_constituents_per_block() {
        let tc = four_op_run();
        for cap in [1usize, 2, 3, 4] {
            let fused = tc.fuse_with(&FuseOptions {
                max_block_span: cap,
                ..FuseOptions::default()
            });
            for b in &fused.ops {
                let span = b.noise_events.as_ref().map_or(1, Vec::len);
                assert!(span <= cap, "cap {cap}: block spans {span} pulses");
            }
            assert!((fused.gate_eps() - tc.gate_eps()).abs() < 1e-12);
            let initial = crate::State::zero(&tc.register);
            let a = crate::ideal::run(&tc, &initial);
            let b = crate::ideal::run(&fused, &initial);
            assert!((a.fidelity(&b) - 1.0).abs() < 1e-12, "cap {cap} parity");
        }
    }

    #[test]
    fn span_cap_of_one_disables_fusion() {
        let tc = four_op_run();
        for cap in [0usize, 1] {
            let fused = tc.fuse_with(&FuseOptions {
                max_block_span: cap,
                ..FuseOptions::default()
            });
            assert_eq!(fused.len(), tc.len());
            assert!(fused.ops.iter().all(|o| o.noise_events.is_none()));
        }
    }

    #[test]
    fn fuse_cache_hits_across_circuits_and_stays_bit_identical() {
        let tc = four_op_run();
        // Same schedule shape on a *different* device pair: positions and
        // dims match, so the cached product must be reused.
        let mut shifted = TimedCircuit::new(Register::qubits(3));
        shifted.ops.push(op("h", standard::h(), vec![1], 0.0, 35.0));
        shifted
            .ops
            .push(op("cx", standard::cx(), vec![1, 2], 35.0, 251.0));
        shifted
            .ops
            .push(op("h", standard::h(), vec![2], 286.0, 35.0));
        shifted
            .ops
            .push(op("h", standard::h(), vec![1], 286.0, 35.0));
        shifted.total_duration_ns = 321.0;

        let opts = FuseOptions::default();
        let cache = FuseCache::new();
        let a = tc.fuse_with_cache(&opts, &cache);
        let entries_after_first = cache.len();
        assert!(entries_after_first > 0, "block product must be memoized");
        let b = shifted.fuse_with_cache(&opts, &cache);
        assert_eq!(
            cache.len(),
            entries_after_first,
            "identical shape on other devices must hit, not repopulate"
        );
        // Cached results are bit-identical to the uncached pass.
        let fresh = shifted.fuse_with(&opts);
        assert_eq!(b.len(), fresh.len());
        for (x, y) in b.ops.iter().zip(&fresh.ops) {
            assert_eq!(x.unitary, y.unitary);
            assert_eq!(x.operands, y.operands);
            assert_eq!(x.kernel.name(), y.kernel.name());
        }
        // And the first circuit's fused output still validates/parities.
        let initial = crate::State::zero(&tc.register);
        let x = crate::ideal::run(&tc, &initial);
        let y = crate::ideal::run(&a, &initial);
        assert!((x.fidelity(&y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fuse_cache_clones_share_the_store() {
        let cache = FuseCache::new();
        let clone = cache.clone();
        let tc = four_op_run();
        let _ = tc.fuse_with_cache(&FuseOptions::default(), &cache);
        assert!(!cache.is_empty());
        assert_eq!(clone.len(), cache.len(), "clones share the Arc'd store");
        assert_eq!(clone.hits(), cache.hits(), "counters are shared too");
    }

    #[test]
    fn fuse_cache_counts_hits_and_misses() {
        let cache = FuseCache::new();
        assert_eq!(cache.capacity(), 4096);
        let tc = four_op_run();
        let _ = tc.fuse_with_cache(&FuseOptions::default(), &cache);
        let first_misses = cache.misses();
        assert!(first_misses > 0, "a cold cache must record misses");
        assert_eq!(cache.evictions(), 0);
        let hits_before = cache.hits();
        let _ = tc.fuse_with_cache(&FuseOptions::default(), &cache);
        assert!(cache.hits() > hits_before, "warm re-fuse must hit");
        assert_eq!(cache.misses(), first_misses, "warm re-fuse must not miss");
    }

    #[test]
    fn fuse_cache_capacity_one_evicts_lru() {
        // A tiny cache forced to evict: two distinct block shapes compete
        // for a single slot.
        let cache = FuseCache::with_capacity(1);
        assert_eq!(cache.capacity(), 1);
        let a = four_op_run();
        let mut b = four_op_run();
        // A different trailing gate changes the block shapes.
        b.ops.pop();
        b.ops.push(op("x", standard::x(), vec![0], 286.0, 35.0));
        let fused_a = a.fuse_with_cache(&FuseOptions::default(), &cache);
        let _ = b.fuse_with_cache(&FuseOptions::default(), &cache);
        assert!(cache.len() <= 1, "capacity bound must hold");
        assert!(cache.evictions() > 0, "overflow must evict, not drop");
        // Evictions never change results: re-fusing stays bit-identical.
        let fused_a_again = a.fuse_with_cache(&FuseOptions::default(), &cache);
        assert_eq!(fused_a.len(), fused_a_again.len());
        for (x, y) in fused_a.ops.iter().zip(&fused_a_again.ops) {
            assert_eq!(x.unitary, y.unitary);
        }
    }

    #[test]
    fn fuse_cache_zero_capacity_disables_memoization() {
        let cache = FuseCache::with_capacity(0);
        let tc = four_op_run();
        let fused = tc.fuse_with_cache(&FuseOptions::default(), &cache);
        assert!(cache.is_empty(), "nothing may be stored at capacity 0");
        assert_eq!(cache.hits(), 0);
        let fresh = tc.fuse_with(&FuseOptions::default());
        assert_eq!(fused.len(), fresh.len());
    }

    #[test]
    fn fuse_with_custom_constants_matches_default_when_equal() {
        let tc = four_op_run();
        let a = tc.fuse();
        let b = tc.fuse_with(&FuseOptions::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.unitary, y.unitary);
        }
    }

    /// A two-segment schedule: a (4, 2) window followed by a demoted
    /// (2, 2) tail, sharing one timeline.
    fn segmented_fixture() -> SegmentedCircuit {
        let mut first = TimedCircuit::new(Register::new(vec![4, 2]));
        first
            .ops
            .push(op("ccz", waltz_gates::mixed::ccz(), vec![0, 1], 0.0, 100.0));
        first.total_duration_ns = 451.0;
        let mut second = TimedCircuit::new(Register::qubits(2));
        second
            .ops
            .push(op("cx", standard::cx(), vec![0, 1], 100.0, 251.0));
        second
            .ops
            .push(op("h", standard::h(), vec![1], 351.0, 35.0));
        second.total_duration_ns = 451.0;
        SegmentedCircuit::new(vec![first, second], 451.0)
    }

    #[test]
    fn segmented_accessors_and_validate() {
        let seg = segmented_fixture();
        assert_eq!(seg.n_segments(), 2);
        assert_eq!(seg.reshape_count(), 1);
        assert_eq!(seg.len(), 3);
        assert!(!seg.is_empty());
        assert_eq!(seg.first_register().dims(), &[4, 2]);
        assert_eq!(seg.last_register().dims(), &[2, 2]);
        assert_eq!(seg.peak_state_bytes(), 8 * 16);
        // 1 op on 8 amps + 2 ops on 4 amps -> (128 + 2 * 64) / 3 bytes.
        assert!((seg.mean_state_bytes() - (128.0 + 2.0 * 64.0) / 3.0).abs() < 1e-9);
        assert!((seg.gate_eps() - 0.99f64.powi(3)).abs() < 1e-12);
        assert!(seg.validate().is_ok(), "{:?}", seg.validate());
    }

    #[test]
    fn segmented_validate_catches_cross_segment_overlap() {
        let mut seg = segmented_fixture();
        // Move the second segment's first op to overlap the window op.
        seg.segments[1].ops[0].start_ns = 50.0;
        let err = seg.validate().unwrap_err();
        assert!(err.contains("segment 1"), "{err}");
        assert!(err.contains("before device"), "{err}");
    }

    #[test]
    fn segmented_fuse_never_crosses_a_boundary() {
        let seg = segmented_fixture();
        let fused = seg.fuse();
        assert_eq!(fused.n_segments(), 2);
        // The two ops of the second segment fuse; the window op cannot
        // join them (different segment, different register).
        assert_eq!(fused.segments[0].len(), 1);
        assert_eq!(fused.segments[1].len(), 1);
        assert!((fused.gate_eps() - seg.gate_eps()).abs() < 1e-12);
        assert!(fused.validate().is_ok(), "{:?}", fused.validate());
    }

    #[test]
    fn segmented_single_wraps_whole_schedule() {
        let tc = four_op_run();
        let seg = SegmentedCircuit::single(tc.clone());
        assert_eq!(seg.n_segments(), 1);
        assert_eq!(seg.reshape_count(), 0);
        assert_eq!(seg.len(), tc.len());
        assert_eq!(seg.total_duration_ns, tc.total_duration_ns);
    }

    #[test]
    #[should_panic(expected = "same qudits")]
    fn segmented_rejects_qudit_count_mismatch() {
        let a = TimedCircuit::new(Register::qubits(2));
        let b = TimedCircuit::new(Register::qubits(3));
        let _ = SegmentedCircuit::new(vec![a, b], 0.0);
    }

    #[test]
    fn validate_rejects_dimension_mismatch() {
        let mut tc = TimedCircuit::new(Register::new(vec![4, 2]));
        // 4x4 matrix on the 2-dim device 1.
        tc.ops
            .push(op("bad", Matrix::identity(4), vec![1], 0.0, 10.0));
        tc.total_duration_ns = 10.0;
        assert!(tc.validate().unwrap_err().contains("unitary dim"));
    }
}
