//! Wire-format ([`waltz_codec`]) implementations for the simulation
//! types.
//!
//! Derived state is recomputed, never serialized: a [`Register`] travels
//! as its dimension list (strides and totals rebuild in
//! [`Register::new`]), and a [`TimedOp`] travels without its
//! [`GateKernel`] — decode re-classifies the unitary through the same
//! probe as [`TimedOp::new`], so the specialized apply paths of a decoded
//! circuit are bit-identical to a freshly built one.

use waltz_codec::{ByteReader, ByteWriter, Decode, DecodeError, Encode};
use waltz_math::Matrix;

use crate::kernel::GateKernel;
use crate::timed::{FuseOptions, NoiseEvent, SegmentedCircuit, TimedCircuit, TimedOp};
use crate::Register;

impl Encode for Register {
    fn encode(&self, w: &mut ByteWriter) {
        self.dims().to_vec().encode(w);
    }
}

impl Decode for Register {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let dims: Vec<u8> = Vec::decode(r)?;
        if dims.is_empty() {
            return Err(DecodeError::Invalid("register needs at least one qudit"));
        }
        if dims.iter().any(|&d| d < 2) {
            return Err(DecodeError::Invalid("qudit dimension below 2"));
        }
        Ok(Register::new(dims))
    }
}

impl Encode for FuseOptions {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.sweep_overhead);
        w.put_usize(self.sweep_fixed);
        w.put_usize(self.max_block_span);
    }
}

impl Decode for FuseOptions {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(FuseOptions {
            sweep_overhead: r.get_usize()?,
            sweep_fixed: r.get_usize()?,
            max_block_span: r.get_usize()?,
        })
    }
}

impl Encode for NoiseEvent {
    fn encode(&self, w: &mut ByteWriter) {
        self.operands.encode(w);
        self.error_dims.encode(w);
        w.put_f64(self.fidelity);
        w.put_f64(self.start_ns);
        w.put_f64(self.duration_ns);
    }
}

impl Decode for NoiseEvent {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(NoiseEvent {
            operands: Vec::decode(r)?,
            error_dims: Vec::decode(r)?,
            fidelity: r.get_f64()?,
            start_ns: r.get_f64()?,
            duration_ns: r.get_f64()?,
        })
    }
}

impl Encode for TimedOp {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.label);
        self.unitary.encode(w);
        self.operands.encode(w);
        self.error_dims.encode(w);
        w.put_f64(self.start_ns);
        w.put_f64(self.duration_ns);
        w.put_f64(self.fidelity);
        self.noise_events.encode(w);
    }
}

impl Decode for TimedOp {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let label = r.get_str()?;
        let unitary = Matrix::decode(r)?;
        let operands: Vec<usize> = Vec::decode(r)?;
        let error_dims: Vec<u8> = Vec::decode(r)?;
        let start_ns = r.get_f64()?;
        let duration_ns = r.get_f64()?;
        let fidelity = r.get_f64()?;
        let noise_events: Option<Vec<NoiseEvent>> = Option::decode(r)?;
        let kernel = GateKernel::classify(&unitary, operands.len());
        Ok(TimedOp {
            label,
            unitary,
            operands,
            error_dims,
            start_ns,
            duration_ns,
            fidelity,
            kernel,
            noise_events,
        })
    }
}

impl Encode for TimedCircuit {
    fn encode(&self, w: &mut ByteWriter) {
        self.register.encode(w);
        self.ops.encode(w);
        w.put_f64(self.total_duration_ns);
    }
}

impl Decode for TimedCircuit {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let timed = TimedCircuit {
            register: Register::decode(r)?,
            ops: Vec::decode(r)?,
            total_duration_ns: r.get_f64()?,
        };
        timed
            .validate()
            .map_err(|_| DecodeError::Invalid("timed circuit violates schedule invariants"))?;
        Ok(timed)
    }
}

impl Encode for SegmentedCircuit {
    fn encode(&self, w: &mut ByteWriter) {
        self.segments.encode(w);
        w.put_f64(self.total_duration_ns);
    }
}

impl Decode for SegmentedCircuit {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let segments: Vec<TimedCircuit> = Vec::decode(r)?;
        let total_duration_ns = r.get_f64()?;
        if segments.is_empty() {
            return Err(DecodeError::Invalid("segmented circuit has no segments"));
        }
        let n = segments[0].register.n_qudits();
        if segments.iter().any(|s| s.register.n_qudits() != n) {
            return Err(DecodeError::Invalid("segments span different qudits"));
        }
        Ok(SegmentedCircuit::new(segments, total_duration_ns))
    }
}

#[cfg(test)]
mod tests {
    use waltz_codec::{decode_from_slice, encode_to_vec};
    use waltz_math::C64;

    use super::*;

    fn x2() -> Matrix {
        Matrix::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]])
    }

    fn small_schedule() -> TimedCircuit {
        let mut t = TimedCircuit::new(Register::new(vec![2, 4]));
        t.ops.push(TimedOp::new(
            "X",
            waltz_gates::embed(&x2(), &[2], &[2]),
            vec![0],
            vec![2],
            0.0,
            35.0,
            0.999,
        ));
        t.ops.push(TimedOp::new(
            "CX2",
            waltz_gates::embed(&waltz_gates::standard::cx(), &[2, 2], &[2, 4]),
            vec![0, 1],
            vec![2, 2],
            35.0,
            251.0,
            0.99,
        ));
        t.total_duration_ns = 286.0;
        t
    }

    #[test]
    fn timed_circuit_round_trip_is_byte_identical() {
        let t = small_schedule();
        let bytes = encode_to_vec(&t);
        let back: TimedCircuit = decode_from_slice(&bytes).unwrap();
        assert_eq!(encode_to_vec(&back), bytes);
        assert_eq!(back.register, t.register);
        assert_eq!(back.len(), t.len());
        // The kernel is recomputed, not stored: same classification.
        for (a, b) in back.ops.iter().zip(&t.ops) {
            assert_eq!(
                std::mem::discriminant(&a.kernel),
                std::mem::discriminant(&b.kernel)
            );
        }
    }

    #[test]
    fn segmented_circuit_round_trips() {
        let s = SegmentedCircuit::single(small_schedule());
        let bytes = encode_to_vec(&s);
        let back: SegmentedCircuit = decode_from_slice(&bytes).unwrap();
        assert_eq!(encode_to_vec(&back), bytes);
        assert_eq!(back.n_segments(), 1);
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let mut t = small_schedule();
        // Make op 1 start before op 0 frees device 0.
        t.ops[1].start_ns = 0.0;
        let bytes = encode_to_vec(&t);
        assert!(decode_from_slice::<TimedCircuit>(&bytes).is_err());
    }

    #[test]
    fn register_with_bad_dimension_is_rejected() {
        let bytes = encode_to_vec(&vec![2u8, 1, 4]);
        assert!(decode_from_slice::<Register>(&bytes).is_err());
    }
}
