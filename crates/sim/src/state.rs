//! State vectors over mixed-dimension registers.

use rand::Rng;

use waltz_math::{vector, Matrix, C64};
use waltz_noise::PauliOp;

use crate::kernel::{self, GateKernel, Workspace};
use crate::{Register, TimedOp};

/// Largest modulus an amplitude clipped by [`State::reshape_into`] may
/// carry. The occupancy analysis proves clipped levels are *exactly*
/// unpopulated; numerically the amplitudes it drops are accumulated
/// floating-point dust, so anything above this tolerance means the
/// analysis (not the arithmetic) was wrong and the reshape panics.
pub const RESHAPE_LEAK_TOL: f64 = 1e-9;

/// A pure state over a [`Register`].
///
/// # Example
///
/// ```
/// use waltz_sim::{Register, State};
/// use waltz_math::C64;
///
/// let reg = Register::qubits(2);
/// let mut s = State::zero(&reg);
/// // Build a Bell state by hand.
/// let h = waltz_gates::standard::h();
/// s.apply_unitary(&h, &[0]);
/// let cx = waltz_gates::standard::cx();
/// s.apply_unitary(&cx, &[0, 1]);
/// assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
/// assert!((s.probability_of(3) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    pub(crate) register: Register,
    pub(crate) amps: Vec<C64>,
}

impl State {
    /// The all-zeros computational basis state.
    pub fn zero(register: &Register) -> Self {
        let mut amps = vec![C64::ZERO; register.total_dim()];
        amps[0] = C64::ONE;
        State {
            register: register.clone(),
            amps,
        }
    }

    /// A state from explicit amplitudes (normalized on construction).
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches the register or the norm is zero.
    pub fn from_amplitudes(register: &Register, mut amps: Vec<C64>) -> Self {
        assert_eq!(
            amps.len(),
            register.total_dim(),
            "amplitude length mismatch"
        );
        let n = vector::normalize(&mut amps);
        assert!(n > 0.0, "state must have nonzero norm");
        State {
            register: register.clone(),
            amps,
        }
    }

    /// The tensor product of per-qudit pure states.
    ///
    /// # Panics
    ///
    /// Panics if a factor's length differs from its qudit's dimension.
    pub fn from_product(register: &Register, factors: &[Vec<C64>]) -> Self {
        assert_eq!(factors.len(), register.n_qudits(), "factor count mismatch");
        for (q, f) in factors.iter().enumerate() {
            assert_eq!(f.len(), register.dim(q), "factor {q} dimension mismatch");
        }
        let mut amps = vec![C64::ZERO; register.total_dim()];
        for (idx, amp) in amps.iter_mut().enumerate() {
            let mut a = C64::ONE;
            for (q, f) in factors.iter().enumerate() {
                a *= f[register.digit(idx, q)];
            }
            *amp = a;
        }
        State::from_amplitudes(register, amps)
    }

    /// A product of Haar-random single-qubit states, one per qudit,
    /// embedded in each qudit's lowest two levels — the paper's random
    /// initial states (§6.4) for devices starting in the qubit regime.
    pub fn random_qubit_product<R: Rng + ?Sized>(register: &Register, rng: &mut R) -> Self {
        let mut s = State::zero(register);
        s.fill_random_qubit_product(rng);
        s
    }

    /// In-place [`State::random_qubit_product`]: overwrites this state
    /// with a fresh random qubit-product draw without touching the heap —
    /// the per-trajectory initial-state factory of the steady-state
    /// fidelity loop.
    pub fn fill_random_qubit_product<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        const MAX_QUDITS: usize = 64;
        let n = self.register.n_qudits();
        assert!(n <= MAX_QUDITS, "register too large for stack factors");
        // Draw the per-qudit single-qubit factors onto the stack first so
        // the RNG is consumed in qudit order.
        let mut factors = [[C64::ZERO; 2]; MAX_QUDITS];
        for f in factors.iter_mut().take(n) {
            *f = waltz_math::linalg::haar_qubit(rng);
        }
        self.fill_product_with(|q, level| match level {
            0 | 1 => factors[q][level],
            _ => C64::ZERO,
        });
    }

    /// Overwrites this state with the tensor product of per-qudit factors,
    /// `factor(q, level)` giving the amplitude of `level` on qudit `q`,
    /// then normalizes — the allocation-free counterpart of
    /// [`State::from_product`] for caller-owned buffers.
    ///
    /// # Panics
    ///
    /// Panics if the resulting state has zero norm.
    pub fn fill_product_with(&mut self, factor: impl Fn(usize, usize) -> C64) {
        // Build the product by tensor expansion from the last qudit: after
        // processing qudit q, the first `len` amplitudes hold the product
        // over qudits q..n-1. Levels are written from the top so the old
        // prefix is still intact when it is read.
        self.amps[0] = C64::ONE;
        let mut len = 1usize;
        for q in (0..self.register.n_qudits()).rev() {
            let d = self.register.dim(q);
            for level in (0..d).rev() {
                let weight = factor(q, level);
                let (lo, hi) = self.amps.split_at_mut(level * len);
                if level == 0 {
                    // Source and destination coincide: scale in place.
                    for a in &mut hi[..len] {
                        *a *= weight;
                    }
                } else if weight == C64::ZERO {
                    hi[..len].fill(C64::ZERO);
                } else {
                    for (dst, src) in hi[..len].iter_mut().zip(&lo[..len]) {
                        *dst = weight * *src;
                    }
                }
            }
            len *= d;
        }
        let norm = self.normalize();
        assert!(norm > 0.0, "product state must have nonzero norm");
    }

    /// The register this state lives on.
    pub fn register(&self) -> &Register {
        &self.register
    }

    /// Raw amplitudes (row-major, qudit 0 most significant).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Overwrites the first amplitude with NaN — the deterministic
    /// amplitude-poisoning hook of the fault-injection harness
    /// ([`crate::fault`]).
    #[cfg(feature = "fault-inject")]
    pub(crate) fn poison_first_amplitude(&mut self) {
        self.amps[0] = C64::new(f64::NAN, f64::NAN);
    }

    /// Probability of a computational basis state.
    pub fn probability_of(&self, idx: usize) -> f64 {
        self.amps[idx].norm_sqr()
    }

    /// Norm of the state (1 unless mid-trajectory).
    pub fn norm(&self) -> f64 {
        vector::norm(&self.amps)
    }

    /// Renormalizes in place; returns the previous norm.
    pub fn normalize(&mut self) -> f64 {
        vector::normalize(&mut self.amps)
    }

    /// Overlap fidelity `|<self|other>|^2`.
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    pub fn fidelity(&self, other: &State) -> f64 {
        assert_eq!(self.register, other.register, "register mismatch");
        vector::state_fidelity(&self.amps, &other.amps)
    }

    /// Applies a unitary to the listed operand qudits (first operand is the
    /// most significant digit of the matrix's basis).
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not equal the product of the
    /// operand dimensions, or if an operand repeats.
    pub fn apply_unitary(&mut self, u: &Matrix, operands: &[usize]) {
        let k = operands.len();
        for (i, a) in operands.iter().enumerate() {
            for b in operands.iter().skip(i + 1) {
                assert_ne!(a, b, "operands must be distinct");
            }
        }
        let block: usize = operands.iter().map(|&q| self.register.dim(q)).product();
        assert_eq!(u.rows(), block, "unitary does not match operand dims");

        // Offset of each of the `block` operand configurations.
        let mut offsets = vec![0usize; block];
        for (sub, off) in offsets.iter_mut().enumerate() {
            let mut rem = sub;
            let mut acc = 0usize;
            for &q in operands.iter().rev() {
                let d = self.register.dim(q);
                acc += (rem % d) * self.register.stride(q);
                rem /= d;
            }
            *off = acc;
        }

        // Iterate over all configurations of the non-operand qudits.
        let others: Vec<usize> = (0..self.register.n_qudits())
            .filter(|q| !operands.contains(q))
            .collect();
        let mut scratch = vec![C64::ZERO; block];
        let mut counter = vec![0usize; others.len()];
        loop {
            let base: usize = others
                .iter()
                .zip(counter.iter())
                .map(|(&q, &digit)| digit * self.register.stride(q))
                .sum();
            for (sub, s) in scratch.iter_mut().enumerate() {
                *s = self.amps[base + offsets[sub]];
            }
            for row in 0..block {
                let mut acc = C64::ZERO;
                for (col, &amp) in scratch.iter().enumerate() {
                    let coeff = u[(row, col)];
                    if coeff != C64::ZERO {
                        acc += coeff * amp;
                    }
                }
                self.amps[base + offsets[row]] = acc;
            }
            // Advance the mixed-radix counter over `others`.
            let mut pos = others.len();
            loop {
                if pos == 0 {
                    return;
                }
                pos -= 1;
                counter[pos] += 1;
                if counter[pos] < self.register.dim(others[pos]) {
                    break;
                }
                counter[pos] = 0;
            }
            let _ = k;
        }
    }

    /// Applies a scheduled op through its precomputed [`GateKernel`],
    /// borrowing scratch from `ws` — the trajectory hot path.
    pub fn apply_op(&mut self, op: &TimedOp, ws: &mut Workspace) {
        kernel::apply(
            &mut self.amps,
            &self.register,
            &op.kernel,
            &op.unitary,
            &op.operands,
            ws,
        );
    }

    /// Applies a unitary through an explicitly classified kernel. The
    /// kernel must have been produced by [`GateKernel::classify`] on `u`.
    pub fn apply_kernel(
        &mut self,
        kernel: &GateKernel,
        u: &Matrix,
        operands: &[usize],
        ws: &mut Workspace,
    ) {
        kernel::apply(&mut self.amps, &self.register, kernel, u, operands, ws);
    }

    /// Overwrites this state with `other` without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the registers differ.
    pub fn copy_from(&mut self, other: &State) {
        assert_eq!(self.register, other.register, "register mismatch");
        self.amps.copy_from_slice(&other.amps);
    }

    /// Re-targets this buffer onto `register`, resizing the amplitude
    /// vector; the amplitudes are unspecified afterwards (the caller
    /// overwrites them). This is how the segmented runners roll **two**
    /// buffers across per-segment registers instead of holding one
    /// buffer per segment: once both buffers have reached the peak
    /// segment size, re-targeting reuses their capacity (the register
    /// metadata is `clone_from`'d in place), so the steady-state loop
    /// stays allocation-free.
    pub fn remap(&mut self, register: &Register) {
        if &self.register != register {
            self.register.clone_from(register);
        }
        self.amps.resize(self.register.total_dim(), C64::ZERO);
    }

    /// Rewrites this state onto `out`'s register, which must span the
    /// same qudits with possibly different per-qudit dimensions — the
    /// in-flight transition between two adjacent segments of a windowed
    /// register schedule ([`crate::SegmentedCircuit`]).
    ///
    /// Per amplitude the basis labels are preserved: a qudit whose
    /// dimension *grows* keeps its digits and the new levels start empty,
    /// one whose dimension *shrinks* is clipped — sound only because the
    /// compiler's occupancy analysis proved the clipped levels
    /// unpopulated, which this method enforces by asserting every clipped
    /// amplitude is below [`RESHAPE_LEAK_TOL`]. Allocation-free: `out`'s
    /// buffer is zeroed and refilled in place.
    ///
    /// # Panics
    ///
    /// Panics if the qudit counts differ or a clipped amplitude exceeds
    /// the leak tolerance (the occupancy analysis was wrong — a bug).
    /// Noisy trajectories, whose error draws *can* legitimately populate
    /// levels the noiseless analysis proved empty, must use
    /// [`State::reshape_into_lossy`] instead.
    pub fn reshape_into(&self, out: &mut State) {
        let leaked = self.reshape_into_lossy(out);
        assert!(
            leaked <= RESHAPE_LEAK_TOL * RESHAPE_LEAK_TOL,
            "reshape clipped a nonzero amplitude (probability {leaked:.3e}): \
             the occupancy analysis must prove clipped levels unpopulated"
        );
    }

    /// [`State::reshape_into`] for noisy trajectories: clips whatever
    /// population sits outside `out`'s register and returns the clipped
    /// probability (summed `|amp|²`), **without renormalizing**.
    ///
    /// A depolarizing draw inside an `ENC` window can leave population on
    /// levels the *noiseless* occupancy analysis proved empty (e.g. a
    /// ququart Pauli right after the `DEC` pulse); the whole-program
    /// engine simply carries that population to the end, where it
    /// overlaps the ideal state — which never leaves the occupied
    /// subspace — with amplitude zero. Dropping it here *without*
    /// renormalizing reproduces that zero contribution to first order
    /// (renormalizing would bias the estimate upward for every leaking
    /// trajectory), at the cost of a slightly sub-unit norm for the rest
    /// of the trajectory. It is not exact: in the whole-program engine,
    /// amplitude damping or a later window's gates can move leaked
    /// population *back* into the kept subspace — an `O(p_leak)`
    /// second-order correction the `window_parity` 4000-trajectory
    /// statistical pin bounds below one standard error.
    ///
    /// # Panics
    ///
    /// Panics if the qudit counts differ.
    pub fn reshape_into_lossy(&self, out: &mut State) -> f64 {
        const MAX_QUDITS: usize = 64;
        let src = &self.register;
        let State {
            register: dst,
            amps: out_amps,
        } = out;
        assert_eq!(
            src.n_qudits(),
            dst.n_qudits(),
            "reshape must preserve the qudit count"
        );
        if src == dst {
            out_amps.copy_from_slice(&self.amps);
            return 0.0;
        }
        let n = src.n_qudits();
        assert!(n <= MAX_QUDITS, "register too large for stack digits");
        out_amps.fill(C64::ZERO);
        let mut digits = [0usize; MAX_QUDITS];
        let mut leaked = 0.0f64;
        for (idx, &amp) in self.amps.iter().enumerate() {
            src.digits_into(idx, &mut digits[..n]);
            if digits[..n].iter().enumerate().all(|(q, &d)| d < dst.dim(q)) {
                out_amps[dst.index_of(&digits[..n])] = amp;
            } else {
                leaked += amp.norm_sqr();
            }
        }
        leaked
    }

    /// Applies a generalized Pauli to one qudit, in place (no amplitude
    /// buffer is cloned: the permutation's cycles are walked with a single
    /// temporary). The Pauli's dimension may be smaller than the device
    /// dimension (e.g. a qubit error on a 4-level transmon): levels at or
    /// above `op.d` are untouched.
    ///
    /// This is a stack-only specialization of the permutation-kernel
    /// cycle walk in [`crate::kernel`], kept allocation-free for the
    /// trajectory hot path; the kernel-parity test suite pins it against
    /// a kernel built from [`PauliOp::as_phased_permutation`].
    pub fn apply_pauli(&mut self, op: PauliOp, qudit: usize) {
        if op.is_identity() {
            return;
        }
        let dev_dim = self.register.dim(qudit);
        let d = op.d as usize;
        assert!(d <= dev_dim, "Pauli dimension exceeds device dimension");
        assert!(d <= 16, "Pauli dimension above 16 is unsupported");
        let stride = self.register.stride(qudit);
        let span = stride * dev_dim;
        // Permutation + phases on the logical levels, on the stack.
        let mut phases = [C64::ZERO; 16];
        for (j, p) in phases.iter_mut().take(d).enumerate() {
            *p = op.act_on_basis(j).1;
        }
        let a = op.a as usize;
        for block in self.amps.chunks_exact_mut(span) {
            for inner in 0..stride {
                if a == 0 {
                    // Pure clock operator: scale each level in place.
                    for (j, &phase) in phases.iter().take(d).enumerate() {
                        let cell = inner + j * stride;
                        block[cell] = phase * block[cell];
                    }
                } else {
                    // Shift-by-a permutation: walk each cycle of
                    // j -> (j + a) % d with one temporary.
                    let g = gcd(a, d);
                    for start in 0..g {
                        let len = d / g;
                        let pos = |k: usize| inner + ((start + k * a) % d) * stride;
                        let last_col = (start + (len - 1) * a) % d;
                        let tmp = block[pos(len - 1)];
                        for k in (1..len).rev() {
                            let from_col = (start + (k - 1) * a) % d;
                            block[pos(k)] = phases[from_col] * block[pos(k - 1)];
                        }
                        block[pos(0)] = phases[last_col] * tmp;
                    }
                }
            }
        }
    }

    /// One stochastic amplitude-damping step on `qudit` for `dt_ns` of
    /// elapsed time (trajectory unraveling of the §6.5 channel): with
    /// probability `lambda_m P(level m)` the state collapses through the
    /// jump operator `K_m`; otherwise the no-jump Kraus `K_0` is applied
    /// and the state renormalized.
    pub fn damping_step<R: Rng + ?Sized>(
        &mut self,
        model: &waltz_noise::CoherenceModel,
        qudit: usize,
        dt_ns: f64,
        rng: &mut R,
    ) {
        let mut ws = Workspace::serial();
        self.damping_step_with(model, qudit, dt_ns, rng, &mut ws);
    }

    /// [`State::damping_step`] borrowing its probability buffers from a
    /// reusable [`Workspace`] — the allocation-free trajectory hot path.
    pub fn damping_step_with<R: Rng + ?Sized>(
        &mut self,
        model: &waltz_noise::CoherenceModel,
        qudit: usize,
        dt_ns: f64,
        rng: &mut R,
        ws: &mut Workspace,
    ) {
        if dt_ns <= 0.0 {
            return;
        }
        let dim = self.register.dim(qudit);
        ws.lambdas.clear();
        ws.lambdas.extend((1..dim).map(|m| model.lambda(m, dt_ns)));
        if ws.lambdas.iter().all(|&l| l == 0.0) {
            return;
        }
        // Level occupation probabilities, summed over contiguous level
        // slices of each span block.
        let stride = self.register.stride(qudit);
        let span = stride * dim;
        ws.level_p.clear();
        ws.level_p.resize(dim, 0.0);
        for block in self.amps.chunks_exact(span) {
            for (lvl, p) in ws.level_p.iter_mut().enumerate() {
                *p += block[lvl * stride..(lvl + 1) * stride]
                    .iter()
                    .map(|a| a.norm_sqr())
                    .sum::<f64>();
            }
        }
        ws.jump_p.clear();
        for m in 1..dim {
            ws.jump_p.push(ws.lambdas[m - 1] * ws.level_p[m]);
        }
        let total_jump: f64 = ws.jump_p.iter().sum();
        let roll: f64 = rng.gen();
        if roll < total_jump {
            // Select which level decayed.
            let mut acc = 0.0;
            let mut level = 1;
            for (m, &p) in ws.jump_p.iter().enumerate() {
                acc += p;
                if roll < acc {
                    level = m + 1;
                    break;
                }
            }
            self.collapse_level_to_ground(qudit, level);
        } else {
            // No-jump evolution: scale each excited level by sqrt(1 - l_m).
            for block in self.amps.chunks_exact_mut(span) {
                for (m, &lambda) in ws.lambdas.iter().enumerate() {
                    let scale = (1.0 - lambda).sqrt();
                    for a in &mut block[(m + 1) * stride..(m + 2) * stride] {
                        *a *= scale;
                    }
                }
            }
            self.normalize();
        }
    }

    /// Applies the jump `K_m` (decay of `level` to ground) and normalizes.
    /// Runs in place: the decayed level's slice moves to ground and every
    /// other level is zeroed, with no scratch vector.
    fn collapse_level_to_ground(&mut self, qudit: usize, level: usize) {
        let stride = self.register.stride(qudit);
        let dim = self.register.dim(qudit);
        let span = stride * dim;
        for block in self.amps.chunks_exact_mut(span) {
            for inner in 0..stride {
                let survivor = block[inner + level * stride];
                for lvl in 0..dim {
                    block[inner + lvl * stride] = C64::ZERO;
                }
                block[inner] = survivor;
            }
        }
        self.normalize();
    }

    /// Samples a computational basis outcome.
    pub fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let roll: f64 = rng.gen();
        let mut acc = 0.0;
        for (idx, amp) in self.amps.iter().enumerate() {
            acc += amp.norm_sqr();
            if roll < acc {
                return idx;
            }
        }
        self.amps.len() - 1
    }
}

/// Greatest common divisor (for Pauli shift cycle lengths).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waltz_gates::standard;
    use waltz_noise::CoherenceModel;

    #[test]
    fn zero_state_probabilities() {
        let s = State::zero(&Register::new(vec![4, 2]));
        assert!((s.probability_of(0) - 1.0).abs() < 1e-15);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn apply_unitary_matches_dense_reference_on_mixed_register() {
        // Apply the mixed-radix CCZ to (ququart, qubit) and compare with the
        // dense 8x8 matrix applied to the full vector.
        let reg = Register::new(vec![4, 2]);
        let mut rng = StdRng::seed_from_u64(3);
        let amps = waltz_math::linalg::haar_state(8, &mut rng);
        let mut s = State::from_amplitudes(&reg, amps.clone());
        let u = waltz_gates::mixed::ccz();
        s.apply_unitary(&u, &[0, 1]);
        let expected = u.apply(&amps);
        for (got, want) in s.amplitudes().iter().zip(&expected) {
            assert!(got.approx_eq(*want, 1e-12));
        }
    }

    #[test]
    fn apply_unitary_respects_operand_order() {
        // CX(control=1, target=0) on 2 qubits: |01> -> |11>.
        let reg = Register::qubits(2);
        let mut s = State::zero(&reg);
        s.apply_unitary(&standard::x(), &[1]); // |01>
        s.apply_unitary(&standard::cx(), &[1, 0]); // control qubit 1
        assert!((s.probability_of(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_unitary_on_non_adjacent_operands() {
        // 3 qudits (2,4,2); apply CX(q2, q0) leaving the middle alone.
        let reg = Register::new(vec![2, 4, 2]);
        let mut s = State::zero(&reg);
        s.apply_unitary(&standard::x(), &[2]);
        s.apply_unitary(&standard::cx(), &[2, 0]);
        // Expect |1, 0, 1> = 8 + 0 + 1 = 9.
        assert!((s.probability_of(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_operand_unitary() {
        let reg = Register::qubits(3);
        let mut s = State::zero(&reg);
        s.apply_unitary(&standard::x(), &[0]);
        s.apply_unitary(&standard::x(), &[1]);
        s.apply_unitary(&standard::ccx(), &[0, 1, 2]);
        assert!((s.probability_of(7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_state_construction() {
        let reg = Register::new(vec![2, 2]);
        let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        let s = State::from_product(&reg, &[vec![h, h], vec![C64::ONE, C64::ZERO]]);
        assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_product_states_are_normalized_and_qubit_confined() {
        let reg = Register::new(vec![4, 4]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = State::random_qubit_product(&reg, &mut rng);
        assert!((s.norm() - 1.0).abs() < 1e-12);
        // No amplitude outside levels {0,1} of either ququart.
        for idx in 0..16 {
            let d0 = reg.digit(idx, 0);
            let d1 = reg.digit(idx, 1);
            if d0 > 1 || d1 > 1 {
                assert!(s.amplitudes()[idx].abs() < 1e-15);
            }
        }
    }

    #[test]
    fn fill_product_reuses_buffer_without_stale_leakage() {
        let reg = Register::new(vec![4, 2, 4]);
        let mut rng = StdRng::seed_from_u64(12);
        let mut s = State::from_amplitudes(&reg, waltz_math::linalg::haar_state(32, &mut rng));
        // Overwrite the garbage with a product state, twice.
        for _ in 0..2 {
            s.fill_random_qubit_product(&mut rng);
            assert!((s.norm() - 1.0).abs() < 1e-12);
            for idx in 0..reg.total_dim() {
                if (0..reg.n_qudits()).any(|q| reg.digit(idx, q) > 1) {
                    assert!(s.amplitudes()[idx].abs() < 1e-15, "leak at {idx}");
                }
            }
        }
        // And the generic fill agrees with from_product.
        let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        let f0 = vec![h, h, C64::ZERO, C64::ZERO];
        let f1 = vec![C64::ZERO, C64::ONE];
        let f2 = vec![C64::ZERO, C64::ZERO, h, h];
        let want = State::from_product(&reg, &[f0.clone(), f1.clone(), f2.clone()]);
        let factors = [f0, f1, f2];
        s.fill_product_with(|q, level| factors[q][level]);
        assert!((s.fidelity(&want) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_on_sub_dimension_leaves_high_levels() {
        let reg = Register::new(vec![4]);
        // Put amplitude on |2>.
        let mut amps = vec![C64::ZERO; 4];
        amps[2] = C64::ONE;
        let mut s = State::from_amplitudes(&reg, amps);
        s.apply_pauli(waltz_noise::PauliOp { a: 1, b: 0, d: 2 }, 0);
        assert!((s.probability_of(2) - 1.0).abs() < 1e-12);
        // And a qubit X on |0> flips to |1>.
        let mut s = State::zero(&reg);
        s.apply_pauli(waltz_noise::PauliOp { a: 1, b: 0, d: 2 }, 0);
        assert!((s.probability_of(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_matches_matrix_application() {
        let reg = Register::new(vec![4, 2]);
        let mut rng = StdRng::seed_from_u64(9);
        let amps = waltz_math::linalg::haar_state(8, &mut rng);
        let op = waltz_noise::PauliOp { a: 3, b: 2, d: 4 };
        let mut s = State::from_amplitudes(&reg, amps.clone());
        s.apply_pauli(op, 0);
        let dense = op.matrix().kron(&Matrix::identity(2));
        let expected = dense.apply(&amps);
        for (got, want) in s.amplitudes().iter().zip(&expected) {
            assert!(got.approx_eq(*want, 1e-12));
        }
    }

    #[test]
    fn damping_ground_state_is_invariant() {
        let reg = Register::new(vec![4]);
        let mut s = State::zero(&reg);
        let mut rng = StdRng::seed_from_u64(2);
        s.damping_step(&CoherenceModel::paper(), 0, 1e6, &mut rng);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn damping_eventually_decays_excited_state() {
        // |3> damped for a very long time must end in |0>.
        let reg = Register::new(vec![4]);
        let mut amps = vec![C64::ZERO; 4];
        amps[3] = C64::ONE;
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = State::from_amplitudes(&reg, amps);
        s.damping_step(&CoherenceModel::paper(), 0, 1e12, &mut rng);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn damping_statistics_match_lambda() {
        // Monte-Carlo estimate of survival of |1> over dt vs exp(-dt/T1).
        let model = CoherenceModel::with_t1_ns(1000.0);
        let dt = 700.0;
        let reg = Register::new(vec![2]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4000;
        let mut survived = 0;
        for _ in 0..n {
            let mut amps = vec![C64::ZERO; 2];
            amps[1] = C64::ONE;
            let mut s = State::from_amplitudes(&reg, amps);
            s.damping_step(&model, 0, dt, &mut rng);
            if s.probability_of(1) > 0.5 {
                survived += 1;
            }
        }
        let expected = (-dt / 1000.0f64).exp();
        let got = survived as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.03,
            "survival {got} vs expected {expected}"
        );
    }

    #[test]
    fn sample_basis_respects_distribution() {
        let reg = Register::qubits(1);
        let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        let s = State::from_amplitudes(&reg, vec![h, h]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut ones = 0;
        for _ in 0..2000 {
            ones += s.sample_basis(&mut rng);
        }
        assert!((ones as f64 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "operands must be distinct")]
    fn repeated_operand_rejected() {
        let reg = Register::qubits(2);
        let mut s = State::zero(&reg);
        s.apply_unitary(&standard::cx(), &[0, 0]);
    }

    #[test]
    fn reshape_expand_then_clip_round_trips() {
        // A (2, 2) state expanded to (4, 2) keeps its amplitudes at the
        // same digit labels, leaves the new levels empty, and clips back
        // bit-identically.
        let small = Register::new(vec![2, 2]);
        let big = Register::new(vec![4, 2]);
        let mut rng = StdRng::seed_from_u64(6);
        let s = State::from_amplitudes(&small, waltz_math::linalg::haar_state(4, &mut rng));
        let mut wide = State::zero(&big);
        s.reshape_into(&mut wide);
        assert!((wide.norm() - 1.0).abs() < 1e-12);
        for idx in 0..big.total_dim() {
            let digits = big.digits_of(idx);
            let want = if digits[0] < 2 {
                s.amplitudes()[small.index_of(&digits)]
            } else {
                C64::ZERO
            };
            assert_eq!(wide.amplitudes()[idx], want, "idx {idx}");
        }
        let mut back = State::zero(&small);
        wide.reshape_into(&mut back);
        assert_eq!(back.amplitudes(), s.amplitudes());
    }

    #[test]
    fn reshape_mixed_grow_and_shrink() {
        // (4, 2) -> (2, 4): qudit 0 clips (its upper levels are empty),
        // qudit 1 grows.
        let src_reg = Register::new(vec![4, 2]);
        let dst_reg = Register::new(vec![2, 4]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut src = State::zero(&src_reg);
        src.fill_random_qubit_product(&mut rng);
        let mut dst = State::zero(&dst_reg);
        src.reshape_into(&mut dst);
        assert!((dst.norm() - 1.0).abs() < 1e-12);
        for idx in 0..src_reg.total_dim() {
            let digits = src_reg.digits_of(idx);
            if digits[0] < 2 {
                assert_eq!(
                    dst.amplitudes()[dst_reg.index_of(&digits)],
                    src.amplitudes()[idx]
                );
            }
        }
    }

    #[test]
    fn reshape_same_register_is_a_copy() {
        let reg = Register::new(vec![4, 2]);
        let mut rng = StdRng::seed_from_u64(8);
        let s = State::from_amplitudes(&reg, waltz_math::linalg::haar_state(8, &mut rng));
        let mut out = State::zero(&reg);
        s.reshape_into(&mut out);
        assert_eq!(out.amplitudes(), s.amplitudes());
    }

    #[test]
    #[should_panic(expected = "clipped a nonzero amplitude")]
    fn reshape_refuses_to_clip_populated_levels() {
        let src = Register::new(vec![4]);
        let mut amps = vec![C64::ZERO; 4];
        amps[3] = C64::ONE;
        let s = State::from_amplitudes(&src, amps);
        let mut out = State::zero(&Register::new(vec![2]));
        s.reshape_into(&mut out);
    }

    #[test]
    #[should_panic(expected = "preserve the qudit count")]
    fn reshape_rejects_qudit_count_mismatch() {
        let s = State::zero(&Register::qubits(2));
        let mut out = State::zero(&Register::qubits(3));
        s.reshape_into(&mut out);
    }
}
