//! A reusable simulation session: one [`Workspace`] plus an output state
//! buffer, owned together so repeated runs of the same circuit perform no
//! per-run heap allocation.
//!
//! Before this handle existed, callers threaded a `Workspace` and a
//! caller-owned output [`State`] through [`trajectory::run_trajectory_into`]
//! and [`ideal::run_into`] by hand; [`Session`] owns both and keeps the
//! borrow plumbing out of user code. The batched estimator
//! ([`trajectory::average_fidelity_with`]) still manages its own per-worker
//! buffers — a `Session` is the *serial* counterpart for shot-by-shot
//! workflows (sampling, decoding, custom statistics).

use rand::Rng;

use waltz_noise::NoiseModel;

use crate::kernel::Workspace;
use crate::{ideal, trajectory, SegmentedCircuit, State, TimedCircuit};

/// An owned simulation workspace: scratch and output buffers reused across
/// runs.
///
/// # Example
///
/// ```
/// use waltz_sim::{Register, Session, State, TimedCircuit};
///
/// let reg = Register::qubits(2);
/// let circuit = TimedCircuit::new(reg.clone());
/// let mut session = Session::new(&reg);
/// let input = State::zero(&reg);
/// let out = session.run_ideal(&circuit, &input);
/// assert!((out.norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct Session {
    ws: Workspace,
    out: State,
}

impl Session {
    /// A session over `register` with a threaded-sweep-capable workspace.
    pub fn new(register: &crate::Register) -> Self {
        Session {
            ws: Workspace::new(),
            out: State::zero(register),
        }
    }

    /// A session whose sweeps never split across threads (see
    /// [`Workspace::serial`]).
    pub fn serial(register: &crate::Register) -> Self {
        Session {
            ws: Workspace::serial(),
            out: State::zero(register),
        }
    }

    /// The reusable kernel workspace (e.g. to tune the parallel-sweep
    /// threshold via [`Workspace::set_par_min_amps`]).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Runs `circuit` noiselessly from `initial` into the session's output
    /// buffer and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the states' registers differ from the circuit's.
    pub fn run_ideal(&mut self, circuit: &TimedCircuit, initial: &State) -> &State {
        ideal::run_into(circuit, initial, &mut self.out, &mut self.ws);
        &self.out
    }

    /// Runs one noisy trajectory from `initial` into the session's output
    /// buffer and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the states' registers differ from the circuit's.
    pub fn run_trajectory<R: Rng + ?Sized>(
        &mut self,
        circuit: &TimedCircuit,
        initial: &State,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> &State {
        trajectory::run_trajectory_into(circuit, initial, noise, rng, &mut self.out, &mut self.ws);
        &self.out
    }

    /// The output of the most recent run.
    pub fn last(&self) -> &State {
        &self.out
    }
}

/// The windowed-register counterpart of [`Session`]: owns a
/// [`Workspace`] plus the **two rolling state buffers** a segmented run
/// needs ([`SegmentedCircuit::rolling_buffers`] — both peak-segment
/// sized), so repeated segmented runs (ideal or trajectory) perform no
/// per-run heap allocation regardless of the segment count.
#[derive(Debug)]
pub struct SegmentedSession {
    ws: Workspace,
    out: State,
    scratch: State,
}

impl SegmentedSession {
    /// A session sized to `circuit`'s peak segment, with a
    /// threaded-sweep-capable workspace.
    pub fn new(circuit: &SegmentedCircuit) -> Self {
        let (out, scratch) = circuit.rolling_buffers();
        SegmentedSession {
            ws: Workspace::new(),
            out,
            scratch,
        }
    }

    /// A session whose sweeps never split across threads (see
    /// [`Workspace::serial`]).
    pub fn serial(circuit: &SegmentedCircuit) -> Self {
        let (out, scratch) = circuit.rolling_buffers();
        SegmentedSession {
            ws: Workspace::serial(),
            out,
            scratch,
        }
    }

    /// The reusable kernel workspace.
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Runs `circuit` noiselessly from `initial` (on the first segment's
    /// register) through every segment and returns the final state (on
    /// the last segment's register).
    ///
    /// # Panics
    ///
    /// Panics if the initial state's register differs from the first
    /// segment's.
    pub fn run_ideal(&mut self, circuit: &SegmentedCircuit, initial: &State) -> &State {
        ideal::run_segmented_into(
            circuit,
            initial,
            &mut self.out,
            &mut self.scratch,
            &mut self.ws,
        );
        &self.out
    }

    /// Runs one noisy trajectory from `initial` through every segment and
    /// returns the final state (on the last segment's register).
    ///
    /// # Panics
    ///
    /// Panics if the initial state's register differs from the first
    /// segment's.
    pub fn run_trajectory<R: Rng + ?Sized>(
        &mut self,
        circuit: &SegmentedCircuit,
        initial: &State,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> &State {
        trajectory::run_trajectory_segmented_into(
            circuit,
            initial,
            noise,
            rng,
            &mut self.out,
            &mut self.scratch,
            &mut self.ws,
        );
        &self.out
    }

    /// The final (last-segment) state of the most recent run.
    pub fn last(&self) -> &State {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Register, TimedOp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waltz_gates::standard;

    fn small_circuit() -> TimedCircuit {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(TimedOp::new(
            "h",
            standard::h(),
            vec![0],
            vec![2],
            0.0,
            35.0,
            0.99,
        ));
        tc.ops.push(TimedOp::new(
            "cx",
            standard::cx(),
            vec![0, 1],
            vec![2, 2],
            35.0,
            251.0,
            0.99,
        ));
        tc.total_duration_ns = 286.0;
        tc
    }

    #[test]
    fn session_matches_free_functions() {
        let tc = small_circuit();
        let mut rng = StdRng::seed_from_u64(5);
        let initial = State::random_qubit_product(&tc.register, &mut rng);
        let mut session = Session::new(&tc.register);
        let a = session.run_ideal(&tc, &initial).clone();
        let b = ideal::run(&tc, &initial);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);

        let noise = NoiseModel::paper();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let a = session
            .run_trajectory(&tc, &initial, &noise, &mut rng_a)
            .clone();
        let b = trajectory::run_trajectory(&tc, &initial, &noise, &mut rng_b);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        assert!((session.last().fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn session_reuses_buffers_across_runs() {
        let tc = small_circuit();
        let mut session = Session::serial(&tc.register);
        let initial = State::zero(&tc.register);
        // The second run must fully overwrite the first.
        session.run_trajectory(
            &tc,
            &initial,
            &NoiseModel::paper(),
            &mut StdRng::seed_from_u64(1),
        );
        let fresh = session.run_ideal(&tc, &initial).clone();
        let reference = ideal::run(&tc, &initial);
        assert!((fresh.fidelity(&reference) - 1.0).abs() < 1e-12);
    }
}
