//! Kernel-specialized gate application.
//!
//! Every unitary a compiled circuit applies is classified **once** (at
//! compile/schedule time, via [`GateKernel::classify`]) into the cheapest
//! apply strategy the simulator knows:
//!
//! * [`GateKernel::Identity`] — no-op (embedding often produces exact
//!   identities).
//! * [`GateKernel::Diagonal`] — CZ/CCZ and all phase gates: a pure phase
//!   sweep over the amplitudes, no scratch block, no matvec.
//! * [`GateKernel::Permutation`] — X/CX/CCX, routing swaps and the
//!   generalized Paulis: an in-place index remap along precomputed
//!   permutation cycles.
//! * [`GateKernel::SingleQudit`] / [`GateKernel::TwoQudit`] — small dense
//!   blocks applied through unrolled stride-aware loops on stack buffers.
//! * [`GateKernel::GeneralDense`] — the fallback dense block matvec.
//!
//! All paths share one sweep over the configurations of the non-operand
//! qudits; for large registers the sweep is split across threads (each
//! configuration touches a disjoint set of amplitudes, so workers never
//! overlap). Scratch that cannot live on the stack is borrowed from a
//! reusable [`Workspace`] so steady-state trajectory simulation performs
//! no heap allocation per gate.

use waltz_math::structure::{self, MatrixStructure};
use waltz_math::{Matrix, C64};

use crate::simd::{self, SimdLevel};
use crate::Register;

/// Entries with modulus at or below this are treated as structural zeros
/// during classification. Dropping them perturbs an output amplitude by
/// at most `block * 1e-14 <= 6.4e-13`, inside the 1e-12 parity budget.
pub const CLASSIFY_TOL: f64 = 1e-14;

/// Largest dense block applied through stack buffers; bigger blocks fall
/// back to a heap-allocating serial path (beyond any gate this workspace
/// compiles — three ququart operands give a block of 64).
pub(crate) const MAX_STACK_BLOCK: usize = 64;

/// Largest two-qudit dense block (two ququarts) — the dedicated
/// gather-once/apply-many path below uses scratch of exactly this size.
const MAX_TWO_QUDIT_BLOCK: usize = 16;

/// The historical parallel-sweep threshold, kept as the middle rung of
/// the calibration ladder and as the documented order of magnitude where
/// splitting *can* start to pay. The actual process-wide default is
/// **measured** once per process (see [`Workspace::par_min_amps`]);
/// override per host with the `WALTZ_PAR_MIN_AMPS` environment variable
/// or per workspace with [`Workspace::set_par_min_amps`].
pub const DEFAULT_PAR_MIN_AMPS: usize = 1 << 15;

/// The process-wide parallel-sweep threshold, resolved once:
/// `WALTZ_PAR_MIN_AMPS` wins when set to a valid count; a host without a
/// second core can never profit from splitting, so it pins the threshold
/// to `usize::MAX` without measuring; otherwise the threshold is
/// **calibrated** — the same measure-once-per-process pattern as the
/// fuse-cost constants — by timing a representative diagonal sweep
/// serial vs split at a ladder of state sizes and keeping the first size
/// where the split wins by ≥ 10%.
fn calibrated_par_min_amps() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Some(v) = std::env::var("WALTZ_PAR_MIN_AMPS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            // Clamp like `set_par_min_amps`: a zero threshold would split
            // every sweep.
            return v.max(1);
        }
        if sweep_threads() <= 1 {
            return usize::MAX;
        }
        measure_par_min_amps()
    })
}

/// Best-of-`reps` wall time per iteration of `f`, in nanoseconds.
fn best_time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min((start.elapsed().as_nanos() / iters.max(1) as u128) as u64);
    }
    best
}

/// Times a CZ-class diagonal sweep (the cheapest kernel per amplitude,
/// i.e. the hardest case for threading to win) serial vs split at a
/// ladder of qubit-register sizes around [`DEFAULT_PAR_MIN_AMPS`] and
/// returns the first size where the split is ≥ 10% faster — or
/// `usize::MAX` when threading never pays on this host, which is exactly
/// what single-core containers measure.
fn measure_par_min_amps() -> usize {
    let u = Matrix::from_diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE]);
    let kernel = GateKernel::classify(&u, 2);
    for shift in [13usize, 15, 17] {
        let reg = Register::qubits(shift);
        let mut amps = vec![C64::new(0.5, -0.5); 1 << shift];
        let iters = (1usize << (19 - shift)).clamp(2, 64);
        let mut ws_serial = Workspace::with_settings(false, 1);
        let serial = best_time_ns(3, iters, || {
            apply(&mut amps, &reg, &kernel, &u, &[0, 1], &mut ws_serial)
        });
        let mut ws_split = Workspace::with_settings(true, 1);
        let split = best_time_ns(3, iters, || {
            apply(&mut amps, &reg, &kernel, &u, &[0, 1], &mut ws_split)
        });
        if split.saturating_mul(10) <= serial.saturating_mul(9) {
            return 1 << shift;
        }
    }
    usize::MAX
}

/// The one guard for every threaded sweep: splitting pays off only when
/// the workspace allows it, the state is at least `min_amps` amplitudes,
/// and there are enough independent units to give each worker a few.
pub(crate) fn par_sweep_worthwhile(
    parallel: bool,
    total_amps: usize,
    units: usize,
    threads: usize,
    min_amps: usize,
) -> bool {
    parallel && threads > 1 && total_amps >= min_amps && units >= 4 * threads
}

/// The specialized apply strategy chosen for one gate matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum GateKernel {
    /// The matrix is the identity: applying it is a no-op.
    Identity,
    /// Diagonal matrix: amplitude `sub` is scaled by `phases[sub]`.
    Diagonal {
        /// Per-basis-state scale factor (the diagonal).
        phases: Vec<C64>,
    },
    /// Phased permutation: basis state `j` maps to `perm[j]` with weight
    /// `phases[j]`. `cycles` is the cycle decomposition of `perm`
    /// (fixed points with unit phase omitted), precomputed so the apply
    /// walks each cycle in place with one temporary.
    Permutation {
        /// Destination basis state per source state.
        perm: Vec<usize>,
        /// Weight per source state.
        phases: Vec<C64>,
        /// Cycle decomposition of `perm`.
        cycles: Vec<Vec<usize>>,
    },
    /// Dense matrix on one qudit: unrolled stride loops for d = 2 and 4.
    SingleQudit,
    /// Dense matrix on two qudits with a block of at most 16: gathered
    /// into a stack buffer per configuration.
    TwoQudit,
    /// No exploitable structure (or more than two operands): dense block
    /// matvec.
    GeneralDense,
}

impl GateKernel {
    /// Classifies a gate matrix for `n_operands` operand qudits.
    pub fn classify(u: &Matrix, n_operands: usize) -> GateKernel {
        match structure::classify(u, CLASSIFY_TOL) {
            MatrixStructure::Identity => GateKernel::Identity,
            MatrixStructure::Diagonal { phases } => GateKernel::Diagonal { phases },
            MatrixStructure::PhasedPermutation { perm, phases } => {
                let cycles = cycles_of(&perm, &phases);
                GateKernel::Permutation {
                    perm,
                    phases,
                    cycles,
                }
            }
            MatrixStructure::Dense => match n_operands {
                1 if u.rows() <= MAX_STACK_BLOCK => GateKernel::SingleQudit,
                2 if u.rows() <= MAX_TWO_QUDIT_BLOCK => GateKernel::TwoQudit,
                _ => GateKernel::GeneralDense,
            },
        }
    }

    /// Short class name, used in perf reports.
    pub fn name(&self) -> &'static str {
        match self {
            GateKernel::Identity => "identity",
            GateKernel::Diagonal { .. } => "diagonal",
            GateKernel::Permutation { .. } => "permutation",
            GateKernel::SingleQudit => "single-qudit",
            GateKernel::TwoQudit => "two-qudit",
            GateKernel::GeneralDense => "general-dense",
        }
    }
}

/// Cycle decomposition of a permutation. Fixed points are kept only when
/// their phase is not exactly 1 (they still need a scale).
fn cycles_of(perm: &[usize], phases: &[C64]) -> Vec<Vec<usize>> {
    let n = perm.len();
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut cycle = vec![start];
        seen[start] = true;
        let mut j = perm[start];
        while j != start {
            seen[j] = true;
            cycle.push(j);
            j = perm[j];
        }
        if cycle.len() > 1 || phases[start] != C64::ONE {
            cycles.push(cycle);
        }
    }
    cycles
}

/// Reusable scratch for the specialized apply paths and the trajectory
/// runner. Holding one per worker thread makes the per-gate hot path
/// allocation-free in steady state: every buffer is cleared and refilled
/// in place, never reallocated once it has reached its working size.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Amplitude offset of each operand-block configuration.
    pub(crate) offsets: Vec<usize>,
    /// Non-operand qudit indices of the current sweep.
    pub(crate) others: Vec<usize>,
    /// Per-level occupation probabilities (damping).
    pub(crate) level_p: Vec<f64>,
    /// Per-level decay weights (damping).
    pub(crate) lambdas: Vec<f64>,
    /// Per-level jump probabilities (damping).
    pub(crate) jump_p: Vec<f64>,
    /// Per-qudit busy-until times (trajectory runner).
    pub(crate) free_at: Vec<f64>,
    /// Whether sweeps over large registers may use threads. Off inside
    /// trajectory workers (already one per core), on for direct use.
    pub(crate) parallel: bool,
    /// Minimum amplitude count before a sweep is split across threads.
    pub(crate) par_min_amps: usize,
    /// The SIMD tier the sweep bodies run at.
    pub(crate) simd: SimdLevel,
    /// nnz/amps ratio above which an adaptive state switches sparse →
    /// dense (see [`crate::sparse::AdaptiveState`]).
    pub(crate) sparse_density_threshold: f64,
    /// Truncation epsilon for sparse entry rebuilds (`0.0` = lossless).
    pub(crate) sparse_epsilon: f64,
    /// Sparse gather-scatter scratch: (coset base, operand sub, amp).
    pub(crate) sparse_gather: Vec<(u64, u32, C64)>,
    /// Sparse rebuilt-entry scratch.
    pub(crate) sparse_out: Vec<(u64, C64)>,
}

impl Workspace {
    /// A workspace that parallelizes large sweeps. The first
    /// threading-capable workspace of the process calibrates the
    /// parallel-sweep threshold (see [`Workspace::par_min_amps`]).
    pub fn new() -> Self {
        Workspace::with_settings(true, calibrated_par_min_amps())
    }

    /// A workspace that never spawns threads — for use inside an outer
    /// parallel loop such as the trajectory runner. Never triggers the
    /// threshold calibration: a workspace that cannot split has no use
    /// for the measurement.
    pub fn serial() -> Self {
        Workspace::with_settings(false, usize::MAX)
    }

    /// Direct constructor bypassing the once-per-process calibration —
    /// used *by* the calibration itself (which would otherwise deadlock
    /// re-entering the `OnceLock`) and by [`Workspace::serial`].
    fn with_settings(parallel: bool, par_min_amps: usize) -> Self {
        Workspace {
            offsets: Vec::new(),
            others: Vec::new(),
            level_p: Vec::new(),
            lambdas: Vec::new(),
            jump_p: Vec::new(),
            free_at: Vec::new(),
            parallel,
            par_min_amps: par_min_amps.max(1),
            simd: SimdLevel::detect(),
            sparse_density_threshold: crate::sparse::DEFAULT_SPARSE_DENSITY_THRESHOLD,
            sparse_epsilon: 0.0,
            sparse_gather: Vec::new(),
            sparse_out: Vec::new(),
        }
    }

    /// The minimum amplitude count before this workspace's sweeps split
    /// across threads. Resolution order: `WALTZ_PAR_MIN_AMPS` if set,
    /// else a once-per-process measured calibration (`usize::MAX` on
    /// single-core hosts — splitting can never pay there), overridable
    /// per workspace with [`Workspace::set_par_min_amps`].
    pub fn par_min_amps(&self) -> usize {
        self.par_min_amps
    }

    /// Overrides the parallel-sweep threshold for this workspace — the
    /// re-tuning knob for many-core hosts, where smaller states may
    /// already profit from splitting.
    pub fn set_par_min_amps(&mut self, min_amps: usize) {
        self.par_min_amps = min_amps.max(1);
    }

    /// The SIMD tier this workspace's sweep bodies run at
    /// ([`SimdLevel::detect`] at construction).
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// Pins this workspace's sweep bodies to `level` — the knob the
    /// parity tests use to compare the vector arms against the scalar
    /// fallback in one process. Requests above what the host supports
    /// are clamped down to [`SimdLevel::detect`].
    pub fn set_simd_level(&mut self, level: SimdLevel) {
        self.simd = if level.accelerated() && !SimdLevel::detect().accelerated() {
            SimdLevel::Scalar
        } else {
            level
        };
    }

    /// The nnz/amps density above which an adaptive state through this
    /// workspace switches sparse → dense
    /// ([`crate::sparse::DEFAULT_SPARSE_DENSITY_THRESHOLD`] by default).
    pub fn sparse_density_threshold(&self) -> f64 {
        self.sparse_density_threshold
    }

    /// Overrides the sparse → dense density threshold (clamped to be
    /// non-negative; `0.0` densifies on first apply, anything above
    /// `1.0` never densifies).
    pub fn set_sparse_density_threshold(&mut self, threshold: f64) {
        self.sparse_density_threshold = threshold.max(0.0);
    }

    /// The truncation epsilon the sparse rebuild arms apply through
    /// this workspace (`0.0` by default — exact zeros only, lossless).
    pub fn sparse_epsilon(&self) -> f64 {
        self.sparse_epsilon
    }

    /// Overrides the sparse truncation epsilon (clamped to be
    /// non-negative).
    pub fn set_sparse_epsilon(&mut self, epsilon: f64) {
        self.sparse_epsilon = epsilon.max(0.0);
    }

    /// Whether [`crate::State::apply_op`] through this workspace would
    /// split its sweep across threads for a kernel on `operands` over
    /// `reg`. This is the bench's honesty guard: when the shape is
    /// rejected, a "parallel" measurement runs the *same* code path as
    /// the serial one and must be reported as such rather than as an
    /// independent sample of measurement noise.
    pub fn would_split_sweep(&self, reg: &Register, operands: &[usize]) -> bool {
        let mut units: usize = (0..reg.n_qudits())
            .filter(|q| !operands.contains(q))
            .map(|q| reg.dim(q))
            .product();
        // The vector arms sweep in two-configuration pairs.
        if self.simd.accelerated() {
            if let Some(innermost) = (0..reg.n_qudits()).rfind(|q| !operands.contains(q)) {
                if reg.stride(innermost) == 1 && reg.dim(innermost).is_multiple_of(2) {
                    units /= 2;
                }
            }
        }
        par_sweep_worthwhile(
            self.parallel,
            reg.total_dim(),
            units,
            sweep_threads(),
            self.par_min_amps,
        )
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

/// Fills `offsets` with the amplitude offset of every operand-block
/// configuration (last operand least significant) and returns the block
/// size.
pub(crate) fn compute_offsets(
    reg: &Register,
    operands: &[usize],
    offsets: &mut Vec<usize>,
) -> usize {
    let block: usize = operands.iter().map(|&q| reg.dim(q)).product();
    offsets.clear();
    offsets.resize(block, 0);
    for (sub, off) in offsets.iter_mut().enumerate() {
        let mut rem = sub;
        let mut acc = 0usize;
        for &q in operands.iter().rev() {
            let d = reg.dim(q);
            acc += (rem % d) * reg.stride(q);
            rem /= d;
        }
        *off = acc;
    }
    block
}

/// Largest register (in qudits) the sweep's stack-allocated mixed-radix
/// counters support; a 64-qubit register is already far past state-vector
/// reach.
pub(crate) const MAX_QUDITS: usize = 64;

/// Base amplitude offset of the `linear`-th configuration of `others`.
fn base_of(reg: &Register, others: &[usize], mut linear: usize) -> usize {
    let mut base = 0usize;
    for &q in others.iter().rev() {
        let d = reg.dim(q);
        base += (linear % d) * reg.stride(q);
        linear /= d;
    }
    base
}

/// Calls `f(base)` for positions `lo..hi` of a mixed-radix counter over
/// `dims` (last digit fastest) with per-digit strides, walking the bases
/// incrementally (amortized O(1) per step, no divisions in the loop).
/// Shared by the scalar sweep bodies and the vector arms in
/// [`crate::simd`], whose paired layouts substitute their own
/// dims/strides; `#[inline(always)]` so it specializes into the
/// `#[target_feature]` callers.
#[inline(always)]
pub(crate) fn walk_bases(
    dims: &[usize],
    strides: &[usize],
    lo: usize,
    hi: usize,
    mut f: impl FnMut(usize),
) {
    assert!(dims.len() <= MAX_QUDITS, "register too large for sweep");
    let mut counter = [0usize; MAX_QUDITS];
    // Seed the counter and base from `lo` (the only division site).
    let mut rem = lo;
    for slot in (0..dims.len()).rev() {
        counter[slot] = rem % dims[slot];
        rem /= dims[slot];
    }
    let mut base = counter[..dims.len()]
        .iter()
        .zip(strides)
        .map(|(&digit, &stride)| digit * stride)
        .sum::<usize>();
    for _ in lo..hi {
        f(base);
        let mut pos = dims.len();
        loop {
            if pos == 0 {
                break;
            }
            pos -= 1;
            counter[pos] += 1;
            base += strides[pos];
            if counter[pos] < dims[pos] {
                break;
            }
            counter[pos] = 0;
            base -= dims[pos] * strides[pos];
        }
    }
}

/// Runs `f(state, base)` for configurations `lo..hi` of `others` via
/// [`walk_bases`].
fn run_range<S, F: Fn(&mut S, usize)>(
    reg: &Register,
    others: &[usize],
    lo: usize,
    hi: usize,
    state: &mut S,
    f: &F,
) {
    assert!(others.len() <= MAX_QUDITS, "register too large for sweep");
    let mut dims = [0usize; MAX_QUDITS];
    let mut strides = [0usize; MAX_QUDITS];
    for (slot, &q) in others.iter().enumerate() {
        dims[slot] = reg.dim(q);
        strides[slot] = reg.stride(q);
    }
    let n = others.len();
    walk_bases(&dims[..n], &strides[..n], lo, hi, |base| f(state, base));
}

/// Shared mutable amplitude pointer for the threaded sweep. Soundness:
/// each worker visits a disjoint range of non-operand configurations, and
/// every amplitude index decomposes uniquely into (non-operand digits,
/// operand digits), so workers write disjoint index sets.
#[derive(Clone, Copy)]
pub(crate) struct SharedAmps(*mut C64);
unsafe impl Sync for SharedAmps {}
unsafe impl Send for SharedAmps {}

impl SharedAmps {
    /// Pointer to amplitude `idx`.
    ///
    /// # Safety
    ///
    /// `idx` must be in bounds and no other thread may access it
    /// concurrently. (Going through a method also makes closures capture
    /// the whole `Sync` wrapper rather than the raw pointer field.)
    pub(crate) unsafe fn at(self, idx: usize) -> *mut C64 {
        unsafe { self.0.add(idx) }
    }
}

/// Number of worker threads for a parallel sweep.
pub(crate) fn sweep_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Runs `f(per_worker_state, base_offset)` for every configuration of the
/// non-operand qudits, splitting across threads when allowed and
/// worthwhile.
fn sweep<S, I, F>(
    reg: &Register,
    others: &[usize],
    total_amps: usize,
    parallel: bool,
    min_amps: usize,
    init: I,
    f: F,
) where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let others_total: usize = others.iter().map(|&q| reg.dim(q)).product();
    let threads = sweep_threads();
    if !par_sweep_worthwhile(parallel, total_amps, others_total, threads, min_amps) {
        let mut state = init();
        run_range(reg, others, 0, others_total, &mut state, &f);
        return;
    }
    let chunk = others_total.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = (lo + chunk).min(others_total);
            if lo >= hi {
                break;
            }
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                run_range(reg, others, lo, hi, &mut state, f);
            });
        }
    });
}

/// Applies `kernel` (classified from `u`) to the operand qudits of a raw
/// amplitude vector. `u` must be the matrix the kernel was classified
/// from; the dense kernels read their coefficients from it.
///
/// # Panics
///
/// Panics if the matrix dimension does not match the operand dimensions
/// or an operand repeats.
pub(crate) fn apply(
    amps: &mut [C64],
    reg: &Register,
    kernel: &GateKernel,
    u: &Matrix,
    operands: &[usize],
    ws: &mut Workspace,
) {
    for (i, a) in operands.iter().enumerate() {
        for b in operands.iter().skip(i + 1) {
            assert_ne!(a, b, "operands must be distinct");
        }
    }
    let dims_product: usize = operands.iter().map(|&q| reg.dim(q)).product();
    assert_eq!(
        u.rows(),
        dims_product,
        "unitary does not match operand dims"
    );

    if matches!(kernel, GateKernel::Identity) {
        return;
    }

    // Fast path: diagonal on a single qudit is a contiguous slice scale.
    if let (GateKernel::Diagonal { phases }, [q]) = (kernel, operands) {
        return apply_diagonal_single(amps, reg, phases, *q, ws.parallel, ws.par_min_amps, ws.simd);
    }

    ws.others.clear();
    ws.others
        .extend((0..reg.n_qudits()).filter(|q| !operands.contains(q)));
    let block = compute_offsets(reg, operands, &mut ws.offsets);
    let total = amps.len();
    let shared = SharedAmps(amps.as_mut_ptr());
    let offsets: &[usize] = &ws.offsets;
    let others: &[usize] = &ws.others;
    let parallel = ws.parallel;
    let min_amps = ws.par_min_amps;
    let ctx = simd::SweepCtx {
        reg,
        others,
        offsets,
        shared,
        total_amps: total,
        parallel,
        min_amps,
        level: ws.simd,
    };

    match kernel {
        GateKernel::Identity => {}
        GateKernel::Diagonal { phases } => {
            if simd::diag_sweep(&ctx, phases) {
                return;
            }
            // SAFETY: disjoint bases per worker (see SharedAmps).
            sweep(
                reg,
                others,
                total,
                parallel,
                min_amps,
                || (),
                |(), base| unsafe {
                    for (sub, &off) in offsets.iter().enumerate() {
                        let p = shared.at(base + off);
                        *p *= phases[sub];
                    }
                },
            );
        }
        GateKernel::Permutation { cycles, phases, .. } => {
            if simd::perm_sweep(&ctx, cycles, phases) {
                return;
            }
            // SAFETY: disjoint bases per worker (see SharedAmps).
            sweep(
                reg,
                others,
                total,
                parallel,
                min_amps,
                || (),
                |(), base| unsafe {
                    for cycle in cycles {
                        walk_cycle(shared, base, offsets, cycle, phases);
                    }
                },
            );
        }
        GateKernel::SingleQudit if u.rows() == 2 => {
            if simd::dense_sweep(&ctx, u.as_slice(), false) {
                return;
            }
            let m = u.as_slice();
            let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);
            // SAFETY: disjoint bases per worker (see SharedAmps).
            sweep(
                reg,
                others,
                total,
                parallel,
                min_amps,
                || (),
                |(), base| unsafe {
                    let p0 = shared.at(base + offsets[0]);
                    let p1 = shared.at(base + offsets[1]);
                    let (a0, a1) = (*p0, *p1);
                    *p0 = m00 * a0 + m01 * a1;
                    *p1 = m10 * a0 + m11 * a1;
                },
            );
        }
        GateKernel::SingleQudit if u.rows() == 4 => {
            if simd::dense_sweep(&ctx, u.as_slice(), false) {
                return;
            }
            let mut m = [C64::ZERO; 16];
            m.copy_from_slice(u.as_slice());
            // SAFETY: disjoint bases per worker (see SharedAmps).
            sweep(
                reg,
                others,
                total,
                parallel,
                min_amps,
                || (),
                |(), base| unsafe {
                    let p0 = shared.at(base + offsets[0]);
                    let p1 = shared.at(base + offsets[1]);
                    let p2 = shared.at(base + offsets[2]);
                    let p3 = shared.at(base + offsets[3]);
                    let (a0, a1, a2, a3) = (*p0, *p1, *p2, *p3);
                    *p0 = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
                    *p1 = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
                    *p2 = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
                    *p3 = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
                },
            );
        }
        GateKernel::TwoQudit if block <= MAX_TWO_QUDIT_BLOCK => {
            // Gather-once/apply-many two-qudit path: the vector arm
            // cache-blocks pair-units into an L1-resident tile; the
            // scalar form is one shared dense sweep body with the stack
            // scratch sized to the 16-wide blocks the fusion layer
            // produces instead of the 64-wide general buffer.
            if simd::dense_sweep(&ctx, u.as_slice(), true) {
                return;
            }
            dense_block_sweep::<MAX_TWO_QUDIT_BLOCK>(
                reg, others, total, parallel, min_amps, shared, offsets, u,
            );
        }
        GateKernel::SingleQudit | GateKernel::TwoQudit | GateKernel::GeneralDense
            if block <= MAX_STACK_BLOCK =>
        {
            if simd::dense_sweep(&ctx, u.as_slice(), false) {
                return;
            }
            dense_block_sweep::<MAX_STACK_BLOCK>(
                reg, others, total, parallel, min_amps, shared, offsets, u,
            );
        }
        _ => {
            // Oversized dense block: serial heap-scratch fallback.
            let mut state = vec![C64::ZERO; block];
            let others_total: usize = others.iter().map(|&q| reg.dim(q)).product();
            for linear in 0..others_total {
                let base = base_of(reg, others, linear);
                for (sub, &off) in offsets.iter().enumerate() {
                    state[sub] = amps[base + off];
                }
                for (row, &off) in offsets.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (col, &amp) in state.iter().enumerate() {
                        let coeff = u[(row, col)];
                        if coeff != C64::ZERO {
                            acc += coeff * amp;
                        }
                    }
                    amps[base + off] = acc;
                }
            }
        }
    }
}

/// Dense block matvec through a `CAP`-sized stack buffer: each amplitude
/// group is gathered exactly once per sweep, the (often fused) dense
/// block applied from the buffer, and the results scattered back.
///
/// Two inner loops, chosen by one scan of the matrix per apply (256
/// comparisons, amortized over thousands of configurations): matrices
/// with structural zeros — embedded qubit gates on ququart pairs are
/// mostly zeros — keep the per-coefficient skip, while *fully dense*
/// blocks (Haar unitaries, fused products) run a branchless
/// multiply-accumulate chain. The branchless form is what fixed the
/// `gate_apply_4pow8.two-qudit` regression: the always-taken zero test
/// cost more than it saved and blocked FMA fusion, leaving the
/// specialized path slower than the generic dense reference (0.78x in
/// `BENCH_sim.json` v4); dropping it makes the two-qudit arm beat the
/// reference again on both plain and `target-cpu=native` builds.
#[allow(clippy::too_many_arguments)]
fn dense_block_sweep<const CAP: usize>(
    reg: &Register,
    others: &[usize],
    total: usize,
    parallel: bool,
    min_amps: usize,
    shared: SharedAmps,
    offsets: &[usize],
    u: &Matrix,
) {
    let block = offsets.len();
    debug_assert!(block <= CAP, "block exceeds scratch capacity");
    let m = u.as_slice();
    if m.iter().all(|&c| c != C64::ZERO) {
        // Fully dense: branchless multiply-accumulate.
        // SAFETY: disjoint bases per worker (see SharedAmps).
        sweep(
            reg,
            others,
            total,
            parallel,
            min_amps,
            || [C64::ZERO; CAP],
            |scratch, base| unsafe {
                for (s, &off) in scratch.iter_mut().zip(offsets) {
                    *s = *shared.at(base + off);
                }
                for (row_coeffs, &off) in m.chunks_exact(block).zip(offsets) {
                    let mut acc = C64::ZERO;
                    for (&coeff, &amp) in row_coeffs.iter().zip(&scratch[..block]) {
                        acc += coeff * amp;
                    }
                    *shared.at(base + off) = acc;
                }
            },
        );
        return;
    }
    // Sparse rows: skip structural zeros.
    // SAFETY: disjoint bases per worker (see SharedAmps).
    sweep(
        reg,
        others,
        total,
        parallel,
        min_amps,
        || [C64::ZERO; CAP],
        |scratch, base| unsafe {
            for (s, &off) in scratch.iter_mut().zip(offsets) {
                *s = *shared.at(base + off);
            }
            for (row_coeffs, &off) in m.chunks_exact(block).zip(offsets) {
                let mut acc = C64::ZERO;
                for (&coeff, &amp) in row_coeffs.iter().zip(&scratch[..block]) {
                    if coeff != C64::ZERO {
                        acc += coeff * amp;
                    }
                }
                *shared.at(base + off) = acc;
            }
        },
    );
}

/// Walks one permutation cycle in place:
/// `new[perm[j]] = phases[j] * old[j]` for the cycle's members.
///
/// # Safety
///
/// `base + offsets[c]` must be in bounds for every cycle member, and no
/// other thread may touch those indices concurrently.
unsafe fn walk_cycle(
    amps: SharedAmps,
    base: usize,
    offsets: &[usize],
    cycle: &[usize],
    phases: &[C64],
) {
    unsafe {
        if let [only] = cycle {
            let p = amps.at(base + offsets[*only]);
            *p *= phases[*only];
            return;
        }
        let last = cycle[cycle.len() - 1];
        let tmp = *amps.at(base + offsets[last]);
        for k in (1..cycle.len()).rev() {
            let from = cycle[k - 1];
            *amps.at(base + offsets[cycle[k]]) = phases[from] * *amps.at(base + offsets[from]);
        }
        *amps.at(base + offsets[cycle[0]]) = phases[last] * tmp;
    }
}

/// Diagonal gate on one qudit: scale contiguous level slices in place.
#[allow(clippy::too_many_arguments)]
fn apply_diagonal_single(
    amps: &mut [C64],
    reg: &Register,
    phases: &[C64],
    q: usize,
    parallel: bool,
    min_amps: usize,
    level: SimdLevel,
) {
    let stride = reg.stride(q);
    let dim = reg.dim(q);
    let span = stride * dim;
    let scale_block = |chunk: &mut [C64]| {
        if simd::scale_diag_chunk(level, chunk, phases, stride) {
            return;
        }
        for block in chunk.chunks_exact_mut(span) {
            for (lvl, &phase) in phases.iter().enumerate() {
                if phase == C64::ONE {
                    continue;
                }
                for a in &mut block[lvl * stride..(lvl + 1) * stride] {
                    *a *= phase;
                }
            }
        }
    };
    let threads = sweep_threads();
    let n_spans = amps.len() / span;
    if !par_sweep_worthwhile(parallel, amps.len(), n_spans, threads, min_amps) {
        scale_block(amps);
        return;
    }
    let per = n_spans.div_ceil(threads) * span;
    std::thread::scope(|scope| {
        let mut rest = amps;
        while !rest.is_empty() {
            let cut = per.min(rest.len());
            let (head, tail) = rest.split_at_mut(cut);
            rest = tail;
            let scale_block = &scale_block;
            scope.spawn(move || scale_block(head));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_names_every_class() {
        use waltz_math::C64;
        let id = Matrix::identity(4);
        assert_eq!(GateKernel::classify(&id, 1).name(), "identity");
        let cz = Matrix::from_diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE]);
        assert_eq!(GateKernel::classify(&cz, 2).name(), "diagonal");
        let x = Matrix::permutation(&[1, 0]);
        assert_eq!(GateKernel::classify(&x, 1).name(), "permutation");
        let h = Matrix::from_rows(&[
            vec![
                C64::real(std::f64::consts::FRAC_1_SQRT_2),
                C64::real(std::f64::consts::FRAC_1_SQRT_2),
            ],
            vec![
                C64::real(std::f64::consts::FRAC_1_SQRT_2),
                C64::real(-std::f64::consts::FRAC_1_SQRT_2),
            ],
        ]);
        assert_eq!(GateKernel::classify(&h, 1).name(), "single-qudit");
        let hh = h.kron(&h);
        assert_eq!(GateKernel::classify(&hh, 2).name(), "two-qudit");
        let hhh = hh.kron(&h);
        assert_eq!(GateKernel::classify(&hhh, 3).name(), "general-dense");
    }

    #[test]
    fn cycle_decomposition_skips_trivial_fixed_points() {
        // perm = [1, 0, 2] with unit phases: one 2-cycle, fixed point 2
        // dropped.
        let phases = vec![C64::ONE; 3];
        let cycles = cycles_of(&[1, 0, 2], &phases);
        assert_eq!(cycles, vec![vec![0, 1]]);
        // A phased fixed point is kept.
        let cycles = cycles_of(&[1, 0, 2], &[C64::ONE, C64::ONE, C64::I]);
        assert_eq!(cycles, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn par_guard_gates_on_every_condition() {
        // Serial workspaces, tiny states, too few units and single-thread
        // hosts all refuse to split; a big state with plenty of units on a
        // multi-core host splits.
        assert!(!par_sweep_worthwhile(false, 1 << 20, 1 << 16, 8, 1 << 15));
        assert!(!par_sweep_worthwhile(true, 1 << 10, 1 << 8, 8, 1 << 15));
        assert!(!par_sweep_worthwhile(true, 1 << 20, 8, 8, 1 << 15));
        assert!(!par_sweep_worthwhile(true, 1 << 20, 1 << 16, 1, 1 << 15));
        assert!(par_sweep_worthwhile(true, 1 << 20, 1 << 16, 8, 1 << 15));
        // Raising the threshold above the state size turns splitting off.
        assert!(!par_sweep_worthwhile(true, 1 << 20, 1 << 16, 8, 1 << 21));
    }

    #[test]
    fn workspace_threshold_knob_overrides_default() {
        let mut ws = Workspace::new();
        assert!(ws.par_min_amps() >= 1);
        ws.set_par_min_amps(1024);
        assert_eq!(ws.par_min_amps(), 1024);
        // Zero is clamped: a zero threshold would split every sweep.
        ws.set_par_min_amps(0);
        assert_eq!(ws.par_min_amps(), 1);
        // The knob survives cloning into per-worker workspaces.
        assert_eq!(ws.clone().par_min_amps(), 1);
    }

    #[test]
    fn tuned_threshold_still_matches_serial_results() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Force the parallel path on a small state by dropping the
        // threshold to 1, and pin it against the serial sweep.
        let reg = Register::ququarts(6);
        let mut rng = StdRng::seed_from_u64(17);
        let u = waltz_math::linalg::haar_unitary(16, &mut rng);
        let kernel = GateKernel::classify(&u, 2);
        assert_eq!(kernel.name(), "two-qudit");
        let amps = waltz_math::linalg::haar_state(reg.total_dim(), &mut rng);
        let mut serial_amps = amps.clone();
        let mut ws = Workspace::serial();
        apply(&mut serial_amps, &reg, &kernel, &u, &[1, 4], &mut ws);
        let mut par_amps = amps;
        let mut ws = Workspace::new();
        ws.set_par_min_amps(1);
        apply(&mut par_amps, &reg, &kernel, &u, &[1, 4], &mut ws);
        for (a, b) in par_amps.iter().zip(&serial_amps) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn offsets_enumerate_operand_configurations() {
        let reg = Register::new(vec![2, 4, 2]);
        let mut offsets = Vec::new();
        // Operands (2, 1): block = 2 * 4, offset = d2 * 4? No: operand
        // order (2, 1) means qudit 2 is the most significant digit.
        let block = compute_offsets(&reg, &[2, 1], &mut offsets);
        assert_eq!(block, 8);
        // sub = (digit2, digit1): offset = digit2 * stride(2) + digit1 * stride(1).
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[1], reg.stride(1));
        assert_eq!(offsets[4], reg.stride(2));
    }
}
