//! Mixed-dimension qudit registers and their index arithmetic.

/// A register of qudits with per-qudit dimensions (2 for bare qubits, 4
/// for ququarts), indexed row-major with qudit 0 most significant.
///
/// # Example
///
/// ```
/// use waltz_sim::Register;
/// let reg = Register::new(vec![4, 2, 4]);
/// assert_eq!(reg.total_dim(), 32);
/// assert_eq!(reg.stride(2), 1);
/// assert_eq!(reg.stride(1), 4);
/// assert_eq!(reg.stride(0), 8);
/// ```
#[derive(Debug, PartialEq, Eq)]
pub struct Register {
    dims: Vec<u8>,
    strides: Vec<usize>,
    total: usize,
}

impl Clone for Register {
    fn clone(&self) -> Self {
        Register {
            dims: self.dims.clone(),
            strides: self.strides.clone(),
            total: self.total,
        }
    }

    /// Reuses the destination's buffers (`Vec::clone_from`), so
    /// re-targeting a state buffer between same-width registers — the
    /// segmented simulation hot path ([`crate::State::remap`]) —
    /// allocates nothing in steady state.
    fn clone_from(&mut self, source: &Self) {
        self.dims.clone_from(&source.dims);
        self.strides.clone_from(&source.strides);
        self.total = source.total;
    }
}

impl Register {
    /// Creates a register from per-qudit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is < 2.
    pub fn new(dims: Vec<u8>) -> Self {
        assert!(!dims.is_empty(), "register needs at least one qudit");
        assert!(
            dims.iter().all(|&d| d >= 2),
            "qudit dimensions must be >= 2"
        );
        let n = dims.len();
        let mut strides = vec![1usize; n];
        for i in (0..n - 1).rev() {
            // Saturating: a register only a sparse state can represent
            // (≥ 2^63 amplitudes on 64-bit) must not wrap these into
            // small numbers that look affordable to byte budgets.
            strides[i] = strides[i + 1].saturating_mul(dims[i + 1] as usize);
        }
        let total = strides[0].saturating_mul(dims[0] as usize);
        Register {
            dims,
            strides,
            total,
        }
    }

    /// A register of `n` bare qubits.
    pub fn qubits(n: usize) -> Self {
        Register::new(vec![2; n])
    }

    /// A register of `n` ququarts.
    pub fn ququarts(n: usize) -> Self {
        Register::new(vec![4; n])
    }

    /// Number of qudits.
    pub fn n_qudits(&self) -> usize {
        self.dims.len()
    }

    /// Dimension of qudit `q`.
    pub fn dim(&self, q: usize) -> usize {
        self.dims[q] as usize
    }

    /// All dimensions.
    pub fn dims(&self) -> &[u8] {
        &self.dims
    }

    /// State-vector length: the product of all dimensions.
    pub fn total_dim(&self) -> usize {
        self.total
    }

    /// Bytes a state vector over this register occupies (16 bytes per
    /// complex amplitude) — the quantity simulation byte budgets are
    /// written against. Saturates: a register too large to even *size*
    /// in bytes (≥ 2^60 amplitudes) reports `usize::MAX`, not a wrapped
    /// small number a budget check would happily admit.
    pub fn state_bytes(&self) -> usize {
        self.total
            .saturating_mul(std::mem::size_of::<waltz_math::C64>())
    }

    /// Row-major stride of qudit `q`.
    pub fn stride(&self, q: usize) -> usize {
        self.strides[q]
    }

    /// The digit (level) of qudit `q` inside composite index `idx`.
    #[inline]
    pub fn digit(&self, idx: usize, q: usize) -> usize {
        (idx / self.strides[q]) % self.dims[q] as usize
    }

    /// Composite index built from per-qudit digits.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a digit exceeds its dimension.
    pub fn index_of(&self, digits: &[usize]) -> usize {
        debug_assert_eq!(digits.len(), self.dims.len());
        let mut idx = 0usize;
        for (q, &d) in digits.iter().enumerate() {
            debug_assert!(d < self.dims[q] as usize, "digit out of range");
            idx += d * self.strides[q];
        }
        idx
    }

    /// Decomposes a composite index into per-qudit digits, allocating a
    /// fresh `Vec`. Per-amplitude loops should use
    /// [`Register::digits_into`] with a reused buffer instead.
    pub fn digits_of(&self, idx: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.n_qudits()];
        self.digits_into(idx, &mut out);
        out
    }

    /// Writes the per-qudit digits of `idx` into a caller-owned buffer —
    /// the allocation-free [`Register::digits_of`] for hot loops that
    /// decompose one index per amplitude. Walks the digits from the least
    /// significant qudit with one running remainder, so no per-digit
    /// divisions against precomputed strides are needed.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the qudit count (extra space is
    /// ignored).
    #[inline]
    pub fn digits_into(&self, mut idx: usize, out: &mut [usize]) {
        let n = self.n_qudits();
        assert!(out.len() >= n, "digit buffer too short");
        for q in (0..n).rev() {
            let d = self.dims[q] as usize;
            out[q] = idx % d;
            idx /= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_qubit_register() {
        let r = Register::qubits(3);
        assert_eq!(r.total_dim(), 8);
        assert_eq!(r.index_of(&[1, 0, 1]), 5);
        assert_eq!(r.digits_of(5), vec![1, 0, 1]);
    }

    #[test]
    fn mixed_register_index_round_trip() {
        let r = Register::new(vec![4, 2, 3]);
        assert_eq!(r.total_dim(), 24);
        for idx in 0..24 {
            assert_eq!(r.index_of(&r.digits_of(idx)), idx);
        }
    }

    #[test]
    fn digit_extraction() {
        let r = Register::new(vec![4, 2]);
        // idx = 2 * level + q
        assert_eq!(r.digit(7, 0), 3);
        assert_eq!(r.digit(7, 1), 1);
        assert_eq!(r.digit(4, 0), 2);
        assert_eq!(r.digit(4, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one qudit")]
    fn empty_register_rejected() {
        let _ = Register::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be >= 2")]
    fn dimension_one_rejected() {
        let _ = Register::new(vec![2, 1]);
    }
}
