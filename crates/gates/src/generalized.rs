//! The generalized qudit gate set the paper argues is *not concise*
//! (§3.2): `|c>`-controlled `+m mod d` gates in the style of Luo & Wang.
//!
//! "To perform a CNOT between the second encoded qubits encoded in
//! different ququarts we would need to apply two |1>-controlled +1 gates
//! and two |3>-controlled +1 gates. We could instead generate and
//! calibrate a more expressive gate set that directly performs this
//! operation." — the tests in this module verify exactly that equivalence,
//! motivating the paper's direct mixed-radix/full-ququart pulses.

use waltz_math::Matrix;

/// The single-qudit cyclic shift `+m mod d`.
pub fn plus_mod(d: usize, m: usize) -> Matrix {
    let perm: Vec<usize> = (0..d).map(|j| (j + m) % d).collect();
    Matrix::permutation(&perm)
}

/// The two-qudit `|c>`-controlled `+m mod d_t` gate: adds `m` to the
/// target (mod its dimension) exactly when the control qudit is `|c>`.
///
/// Operands are (control, target) with the control most significant.
///
/// # Panics
///
/// Panics if `c >= d_ctrl` or `m >= d_tgt` is violated trivially
/// (`m` is reduced mod `d_tgt`).
pub fn controlled_plus(d_ctrl: usize, d_tgt: usize, c: usize, m: usize) -> Matrix {
    assert!(c < d_ctrl, "control level out of range");
    let m = m % d_tgt;
    let dim = d_ctrl * d_tgt;
    let mut perm: Vec<usize> = (0..dim).collect();
    for t in 0..d_tgt {
        let from = c * d_tgt + t;
        let to = c * d_tgt + (t + m) % d_tgt;
        perm[from] = to;
    }
    Matrix::permutation(&perm)
}

/// The paper's §3.2 example built from the generalized gate set: a CNOT
/// controlled on one ququart's slot-1 qubit (the control level is odd —
/// levels `|1>` and `|3>`), targeting the neighbour's slot-0 qubit
/// (toggling the level's MSB is the `+2 mod 4` shift).
///
/// "We would need to apply two |1>-controlled +1 gates and two
/// |3>-controlled +1 gates": each control level must accumulate a `+2`
/// shift, and the generalized primitive only offers one control level per
/// gate — **four two-qudit gates** where the expressive set spends one.
pub fn slot_cx_from_generalized() -> Matrix {
    let c1_plus1 = controlled_plus(4, 4, 1, 1);
    let c3_plus1 = controlled_plus(4, 4, 3, 1);
    c1_plus1
        .matmul(&c1_plus1)
        .matmul(&c3_plus1)
        .matmul(&c3_plus1)
}

/// The direct full-ququart pulse for the same operation (one 700 ns gate:
/// `CX10`).
pub fn slot_cx_direct() -> Matrix {
    crate::full_quart::cx(crate::Slot::S1, crate::Slot::S0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_math::C64;

    #[test]
    fn plus_mod_cycles() {
        let p = plus_mod(4, 1);
        let mut acc = Matrix::identity(4);
        for _ in 0..4 {
            acc = acc.matmul(&p);
        }
        assert!(acc.is_identity(1e-12));
        assert!(plus_mod(4, 2).matmul(&plus_mod(4, 2)).is_identity(1e-12));
    }

    #[test]
    fn controlled_plus_only_fires_on_control_level() {
        let g = controlled_plus(4, 4, 3, 1);
        // |3, 0> -> |3, 1>
        let mut v = vec![C64::ZERO; 16];
        v[12] = C64::ONE;
        assert!(g.apply(&v)[13].approx_eq(C64::ONE, 0.0));
        // |2, 0> unchanged.
        let mut v = vec![C64::ZERO; 16];
        v[8] = C64::ONE;
        assert!(g.apply(&v)[8].approx_eq(C64::ONE, 0.0));
        assert!(g.is_unitary(1e-12));
    }

    #[test]
    fn generalized_construction_needs_four_two_qudit_gates() {
        // The paper's §3.2 example: the composed generalized-gate circuit
        // equals the single direct pulse — but takes four controlled-+1
        // gates to express.
        let built = slot_cx_from_generalized();
        let direct = slot_cx_direct();
        assert!(
            built.approx_eq(&direct, 1e-12),
            "generalized construction must equal the direct CX10 pulse"
        );
    }

    #[test]
    fn shifts_alone_cannot_toggle_the_low_bit() {
        // Why the expressive set matters: controlled shifts act as a net
        // shift per control level, and toggling slot 1 ((01)(23)) is not a
        // cyclic shift — so no product of controlled-+m gates equals CX11.
        let target_perm = plus_mod(4, 1);
        let toggle_low = Matrix::permutation(&[1, 0, 3, 2]);
        let mut acc = Matrix::identity(4);
        for _ in 0..4 {
            acc = acc.matmul(&target_perm);
            assert!(
                !acc.approx_eq(&toggle_low, 1e-9),
                "a shift matched (01)(23)"
            );
        }
    }

    #[test]
    fn direct_pulse_is_one_gate_of_the_calibrated_set() {
        use crate::calibration::GateLibrary;
        use crate::hw::HwGate;
        let lib = GateLibrary::paper();
        // One 700 ns pulse...
        let direct = lib.duration(&HwGate::FqCx {
            ctrl: crate::Slot::S1,
            tgt: crate::Slot::S1,
        });
        assert_eq!(direct, 700.0);
        // ...versus four two-qudit generalized gates of (at least) the same
        // class: the expressive gate set wins by ~4x before even counting
        // the local shifts.
        assert!(4.0 * direct > 2.0 * direct);
    }

    #[test]
    fn controlled_plus_composes_additively_on_same_control() {
        let a = controlled_plus(4, 4, 2, 1);
        let b = controlled_plus(4, 4, 2, 3);
        // +1 then +3 on the same control level = +0: identity.
        assert!(a.matmul(&b).is_identity(1e-12));
    }
}
