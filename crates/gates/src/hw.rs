//! The hardware-gate vocabulary: every pulse the architecture can execute.
//!
//! [`HwGate`] is the interface between the compiler (`waltz-core`), the
//! calibration tables ([`crate::calibration`]) and the simulator
//! (`waltz-sim`). Each variant corresponds to one optimal-control pulse of
//! Tables 1–2 and knows its exact unitary and logical operand dimensions.

use waltz_math::Matrix;

use crate::{encoding, full_quart, mixed, standard};

pub use crate::full_quart::{FqCcxConfig, FqCswapConfig};
pub use crate::mixed::{MrCcxConfig, MrCswapConfig};

/// One of the two encoded-qubit slots inside a ququart.
///
/// Slot 0 is the most significant bit of the ququart level under the
/// encoding `|q0 q1> -> |2 q0 + q1>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// Encoded qubit 0 (level bit 1).
    S0,
    /// Encoded qubit 1 (level bit 0).
    S1,
}

impl Slot {
    /// Slot index, 0 or 1.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Slot::S0 => 0,
            Slot::S1 => 1,
        }
    }

    /// The other slot.
    #[inline]
    pub fn other(self) -> Slot {
        match self {
            Slot::S0 => Slot::S1,
            Slot::S1 => Slot::S0,
        }
    }

    /// Slot from an index.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    #[inline]
    pub fn from_index(i: usize) -> Slot {
        match i {
            0 => Slot::S0,
            1 => Slot::S1,
            _ => panic!("slot index must be 0 or 1, got {i}"),
        }
    }
}

/// A calibrated single-qubit gate (35 ns on a bare qubit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Q1Gate {
    /// Identity (used for explicit idles).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S.
    S,
    /// S†.
    Sdg,
    /// T gate.
    T,
    /// T†.
    Tdg,
    /// X rotation by an angle.
    Rx(f64),
    /// Y rotation by an angle.
    Ry(f64),
    /// Z rotation by an angle.
    Rz(f64),
}

impl Q1Gate {
    /// The 2x2 unitary.
    pub fn matrix(&self) -> Matrix {
        match self {
            Q1Gate::I => standard::id2(),
            Q1Gate::X => standard::x(),
            Q1Gate::Y => standard::y(),
            Q1Gate::Z => standard::z(),
            Q1Gate::H => standard::h(),
            Q1Gate::S => standard::s(),
            Q1Gate::Sdg => standard::sdg(),
            Q1Gate::T => standard::t(),
            Q1Gate::Tdg => standard::tdg(),
            Q1Gate::Rx(t) => standard::rx(*t),
            Q1Gate::Ry(t) => standard::ry(*t),
            Q1Gate::Rz(t) => standard::rz(*t),
        }
    }

    /// The inverse gate.
    pub fn dagger(&self) -> Q1Gate {
        match self {
            Q1Gate::S => Q1Gate::Sdg,
            Q1Gate::Sdg => Q1Gate::S,
            Q1Gate::T => Q1Gate::Tdg,
            Q1Gate::Tdg => Q1Gate::T,
            Q1Gate::Rx(t) => Q1Gate::Rx(-t),
            Q1Gate::Ry(t) => Q1Gate::Ry(-t),
            Q1Gate::Rz(t) => Q1Gate::Rz(-t),
            self_inverse => *self_inverse,
        }
    }
}

/// Coarse calibration class of a hardware gate, determining its fidelity
/// (§3.3: 0.999 single-qudit, 0.99 two-qudit; §6.2: iToffoli 0.99).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateClass {
    /// Single bare-qubit pulse.
    SingleQubit,
    /// Single-ququart pulse (encoded 1q gates and internal 2q gates).
    SingleQuart,
    /// Two-device pulse between bare qubits.
    TwoQubit,
    /// Two-device pulse involving at least one ququart (mixed-radix,
    /// full-ququart, ENC/DEC).
    TwoDeviceQuart,
    /// The three-qubit iToffoli pulse across three bare qubits.
    IToffoli,
}

/// A hardware gate: one calibrated pulse from the paper's gate set.
///
/// Operand order conventions (matching the unitary constructors):
/// mixed-radix gates list **(ququart, qubit)**; `Enc`/`Dec` list
/// **(host, source)**; full-ququart gates list **(A, B)** with the
/// control/pair side first as named in the configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum HwGate {
    /// Single-qubit gate on a bare qubit (35 ns).
    QubitU(Q1Gate),
    /// CNOT between bare qubits, control first (251 ns).
    QubitCx,
    /// CZ between bare qubits (236 ns).
    QubitCz,
    /// Controlled-S† between bare qubits (126 ns); iToffoli correction.
    QubitCsdg,
    /// SWAP between bare qubits (504 ns).
    QubitSwap,
    /// iToffoli across three bare qubits, controls first (912 ns).
    IToffoli,
    /// Single-qubit gate on one encoded slot (87 ns slot 0, 66 ns slot 1).
    QuartU {
        /// Which encoded qubit the gate acts on.
        slot: Slot,
        /// The gate applied.
        gate: Q1Gate,
    },
    /// Simultaneous single-qubit gates on both encoded slots (86 ns).
    QuartU2 {
        /// Gate on slot 0.
        g0: Q1Gate,
        /// Gate on slot 1.
        g1: Q1Gate,
    },
    /// Internal CNOT targeting slot 0 (swap levels 1↔3; 83 ns).
    QuartCx0,
    /// Internal CNOT targeting slot 1 (swap levels 2↔3; 84 ns).
    QuartCx1,
    /// Internal SWAP of the encoded pair (swap levels 1↔2; 78 ns).
    QuartSwapIn,
    /// Internal CZ between the encoded pair (83 ns; see DESIGN.md additions).
    QuartCzIn,
    /// Internal CS† between the encoded pair (83 ns; see DESIGN.md
    /// additions — any single-ququart unitary is one internal-class pulse).
    QuartCsdgIn,
    /// Mixed-radix CNOT, control on encoded `slot`, target bare qubit
    /// (560/632 ns).
    MrCxQuartCtrl {
        /// Control slot.
        slot: Slot,
    },
    /// Mixed-radix CNOT, control on the bare qubit, target encoded `slot`
    /// (880/812 ns).
    MrCxQubitCtrl {
        /// Target slot.
        slot: Slot,
    },
    /// Mixed-radix CZ between the bare qubit and encoded `slot` (384/404 ns).
    MrCz {
        /// Encoded slot participating in the CZ.
        slot: Slot,
    },
    /// Mixed-radix SWAP between the bare qubit and encoded `slot`
    /// (680/792 ns).
    MrSwap {
        /// Encoded slot being exchanged.
        slot: Slot,
    },
    /// Encode: compress the source device's qubit into the host ququart
    /// (608 ns). Operands (host, source).
    Enc,
    /// Decode: inverse of [`HwGate::Enc`] (608 ns).
    Dec,
    /// Mixed-radix Toffoli (412–697 ns depending on configuration).
    MrCcx(MrCcxConfig),
    /// Mixed-radix CCZ, target independent (264 ns).
    MrCcz,
    /// Mixed-radix CSWAP (444–762 ns depending on configuration).
    MrCswap(MrCswapConfig),
    /// Full-ququart CNOT, control slot in A, target slot in B (544–700 ns).
    FqCx {
        /// Control slot in ququart A.
        ctrl: Slot,
        /// Target slot in ququart B.
        tgt: Slot,
    },
    /// Full-ququart CZ (392–776 ns). Symmetric.
    FqCz {
        /// Slot in ququart A.
        a: Slot,
        /// Slot in ququart B.
        b: Slot,
    },
    /// Full-ququart SWAP (892–964 ns).
    FqSwap {
        /// Slot in ququart A.
        a: Slot,
        /// Slot in ququart B.
        b: Slot,
    },
    /// Full-ququart Toffoli (536–785 ns depending on configuration).
    FqCcx(FqCcxConfig),
    /// Full-ququart CCZ, pair in A, third operand in B (232/310 ns).
    FqCcz {
        /// Slot of the third operand in ququart B.
        tgt: Slot,
    },
    /// Full-ququart CSWAP (432–822 ns depending on configuration).
    FqCswap(FqCswapConfig),
}

impl HwGate {
    /// Logical dimensions of the operands, in operand-list order.
    pub fn logical_dims(&self) -> Vec<usize> {
        use HwGate::*;
        match self {
            QubitU(_) => vec![2],
            QubitCx | QubitCz | QubitCsdg | QubitSwap => vec![2, 2],
            IToffoli => vec![2, 2, 2],
            QuartU { .. }
            | QuartU2 { .. }
            | QuartCx0
            | QuartCx1
            | QuartSwapIn
            | QuartCzIn
            | QuartCsdgIn => vec![4],
            MrCxQuartCtrl { .. }
            | MrCxQubitCtrl { .. }
            | MrCz { .. }
            | MrSwap { .. }
            | MrCcx(_)
            | MrCcz
            | MrCswap(_) => vec![4, 2],
            Enc | Dec => vec![4, 4],
            FqCx { .. } | FqCz { .. } | FqSwap { .. } | FqCcx(_) | FqCcz { .. } | FqCswap(_) => {
                vec![4, 4]
            }
        }
    }

    /// Number of physical devices the pulse drives.
    pub fn arity(&self) -> usize {
        self.logical_dims().len()
    }

    /// The exact unitary on the logical operand space (see
    /// [`crate::embed`] for execution on larger simulated devices).
    pub fn unitary(&self) -> Matrix {
        use HwGate::*;
        match self {
            QubitU(g) => g.matrix(),
            QubitCx => standard::cx(),
            QubitCz => standard::cz(),
            QubitCsdg => standard::csdg(),
            QubitSwap => standard::swap(),
            IToffoli => standard::itoffoli(),
            QuartU {
                slot: Slot::S0,
                gate,
            } => encoding::lift_u0(&gate.matrix()),
            QuartU {
                slot: Slot::S1,
                gate,
            } => encoding::lift_u1(&gate.matrix()),
            QuartU2 { g0, g1 } => encoding::lift_u01(&g0.matrix(), &g1.matrix()),
            QuartCx0 => encoding::internal_cx0(),
            QuartCx1 => encoding::internal_cx1(),
            QuartSwapIn => encoding::internal_swap(),
            QuartCzIn => encoding::internal_cz(),
            QuartCsdgIn => encoding::internal_two_qubit(&standard::csdg()),
            MrCxQuartCtrl { slot } => mixed::cx_quart_ctrl(*slot),
            MrCxQubitCtrl { slot } => mixed::cx_qubit_ctrl(*slot),
            MrCz { slot } => mixed::cz(*slot),
            MrSwap { slot } => mixed::swap(*slot),
            Enc => mixed::enc(),
            Dec => mixed::dec(),
            MrCcx(cfg) => mixed::ccx(*cfg),
            MrCcz => mixed::ccz(),
            MrCswap(cfg) => mixed::cswap(*cfg),
            FqCx { ctrl, tgt } => full_quart::cx(*ctrl, *tgt),
            FqCz { a, b } => full_quart::cz(*a, *b),
            FqSwap { a, b } => full_quart::swap(*a, *b),
            FqCcx(cfg) => full_quart::ccx(*cfg),
            FqCcz { tgt } => full_quart::ccz(*tgt),
            FqCswap(cfg) => full_quart::cswap(*cfg),
        }
    }

    /// Calibration class (determines the fidelity bucket).
    pub fn class(&self) -> GateClass {
        use HwGate::*;
        match self {
            QubitU(_) => GateClass::SingleQubit,
            QubitCx | QubitCz | QubitCsdg | QubitSwap => GateClass::TwoQubit,
            IToffoli => GateClass::IToffoli,
            QuartU { .. }
            | QuartU2 { .. }
            | QuartCx0
            | QuartCx1
            | QuartSwapIn
            | QuartCzIn
            | QuartCsdgIn => GateClass::SingleQuart,
            _ => GateClass::TwoDeviceQuart,
        }
    }

    /// Whether the pulse manipulates ququart levels |2>/|3> — the gates
    /// whose error is scaled in the Fig. 9b sensitivity study.
    pub fn touches_ququart(&self) -> bool {
        matches!(
            self.class(),
            GateClass::SingleQuart | GateClass::TwoDeviceQuart
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gates() -> Vec<HwGate> {
        use HwGate::*;
        let mut gates = vec![
            QubitU(Q1Gate::H),
            QubitU(Q1Gate::Rz(0.3)),
            QubitCx,
            QubitCz,
            QubitCsdg,
            QubitSwap,
            IToffoli,
            QuartU {
                slot: Slot::S0,
                gate: Q1Gate::H,
            },
            QuartU {
                slot: Slot::S1,
                gate: Q1Gate::T,
            },
            QuartU2 {
                g0: Q1Gate::H,
                g1: Q1Gate::H,
            },
            QuartCx0,
            QuartCx1,
            QuartSwapIn,
            QuartCzIn,
            Enc,
            Dec,
            MrCcz,
        ];
        for slot in [Slot::S0, Slot::S1] {
            gates.push(MrCxQuartCtrl { slot });
            gates.push(MrCxQubitCtrl { slot });
            gates.push(MrCz { slot });
            gates.push(MrSwap { slot });
            gates.push(FqCcz { tgt: slot });
        }
        gates.push(MrCcx(MrCcxConfig::ControlsEncoded));
        gates.push(MrCcx(MrCcxConfig::CtrlQubitAndSlot0TargetSlot1));
        gates.push(MrCcx(MrCcxConfig::CtrlSlot1AndQubitTargetSlot0));
        gates.push(MrCswap(MrCswapConfig::TargetsEncoded));
        gates.push(MrCswap(MrCswapConfig::CtrlSlot0));
        gates.push(MrCswap(MrCswapConfig::CtrlSlot1));
        for a in [Slot::S0, Slot::S1] {
            for b in [Slot::S0, Slot::S1] {
                gates.push(FqCx { ctrl: a, tgt: b });
                gates.push(FqCz { a, b });
                gates.push(FqSwap { a, b });
                gates.push(FqCcx(FqCcxConfig::Split { actrl: a, bctrl: b }));
                gates.push(FqCswap(FqCswapConfig::Split { ctrl: a, btgt: b }));
            }
            gates.push(FqCcx(FqCcxConfig::ControlsPair { tgt: a }));
            gates.push(FqCswap(FqCswapConfig::TargetsPair { ctrl: a }));
        }
        gates
    }

    #[test]
    fn every_gate_unitary_matches_logical_dims() {
        for g in sample_gates() {
            let dims: usize = g.logical_dims().iter().product();
            let u = g.unitary();
            assert_eq!(u.rows(), dims, "{g:?}");
            assert!(u.is_unitary(1e-12), "{g:?}");
        }
    }

    #[test]
    fn arity_matches_dims() {
        assert_eq!(HwGate::IToffoli.arity(), 3);
        assert_eq!(HwGate::Enc.arity(), 2);
        assert_eq!(HwGate::QuartCx0.arity(), 1);
        assert_eq!(HwGate::QubitU(Q1Gate::X).arity(), 1);
    }

    #[test]
    fn classes_are_assigned_correctly() {
        assert_eq!(HwGate::QubitU(Q1Gate::X).class(), GateClass::SingleQubit);
        assert_eq!(HwGate::QuartSwapIn.class(), GateClass::SingleQuart);
        assert_eq!(HwGate::QubitCx.class(), GateClass::TwoQubit);
        assert_eq!(HwGate::Enc.class(), GateClass::TwoDeviceQuart);
        assert_eq!(
            HwGate::MrCcx(MrCcxConfig::ControlsEncoded).class(),
            GateClass::TwoDeviceQuart
        );
        assert_eq!(HwGate::IToffoli.class(), GateClass::IToffoli);
    }

    #[test]
    fn touches_ququart_flags() {
        assert!(!HwGate::QubitCx.touches_ququart());
        assert!(!HwGate::IToffoli.touches_ququart());
        assert!(HwGate::QuartCx0.touches_ququart());
        assert!(HwGate::MrCcz.touches_ququart());
        assert!(HwGate::FqCz {
            a: Slot::S0,
            b: Slot::S1
        }
        .touches_ququart());
    }

    #[test]
    fn q1_dagger_inverts() {
        for g in [
            Q1Gate::I,
            Q1Gate::X,
            Q1Gate::H,
            Q1Gate::S,
            Q1Gate::T,
            Q1Gate::Rx(0.7),
            Q1Gate::Rz(-1.1),
        ] {
            let prod = g.matrix().matmul(&g.dagger().matrix());
            assert!(prod.is_identity(1e-12), "{g:?}");
        }
    }

    #[test]
    fn slot_helpers() {
        assert_eq!(Slot::S0.other(), Slot::S1);
        assert_eq!(Slot::from_index(1), Slot::S1);
        assert_eq!(Slot::S1.index(), 1);
    }

    #[test]
    #[should_panic(expected = "slot index")]
    fn slot_from_bad_index_panics() {
        let _ = Slot::from_index(2);
    }
}
