//! Gate library for the Quantum Waltz reproduction.
//!
//! Implements every gate family the paper uses (§3.2–§3.4, §4.2):
//!
//! * [`standard`] — textbook qubit gate unitaries (1-, 2- and 3-qubit),
//!   including the iToffoli of the Kim et al. baseline.
//! * [`encoding`] — the two-qubits-per-ququart compression
//!   `|q0 q1> -> |2 q0 + q1>` and the lifting of qubit gates onto encoded
//!   ququarts (`U0`, `U1`, `U0,1`, internal `CX0`/`CX1`/`SWAP_in`).
//! * [`mixed`] — mixed-radix (ququart ⊗ qubit) two- and three-qubit gate
//!   unitaries plus the `ENC`/`DEC` compression permutations.
//! * [`full_quart`] — full-ququart (ququart ⊗ ququart) gates in every
//!   configuration tabulated by the paper.
//! * [`hw`] — the [`HwGate`] hardware-gate vocabulary the compiler emits and
//!   the simulator executes, with exact unitaries and logical dimensions.
//! * [`calibration`] — the calibrated durations of Tables 1–2 and fidelity
//!   classes (0.999 single-device, 0.99 two-device), with the sensitivity
//!   knobs used by the paper's Fig. 9 studies.
//!
//! # Example
//!
//! ```
//! use waltz_gates::hw::{HwGate, MrCcxConfig};
//! use waltz_gates::calibration::GateLibrary;
//!
//! let lib = GateLibrary::paper();
//! // The mixed-radix Toffoli with both controls encoded is the fast one.
//! let fast = HwGate::MrCcx(MrCcxConfig::ControlsEncoded);
//! assert_eq!(lib.duration(&fast), 412.0);
//! assert!(fast.unitary().is_unitary(1e-12));
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod encoding;
pub mod full_quart;
pub mod generalized;
pub mod hw;
pub mod mixed;
pub mod standard;

pub use calibration::GateLibrary;
pub use hw::{HwGate, Q1Gate, Slot};

use waltz_math::{Matrix, C64};

/// Embeds a gate acting on logical operand dimensions `op_dims` into devices
/// of (possibly larger) dimensions `dev_dims`, acting as the identity outside
/// the logical block.
///
/// This is how a qubit-calibrated gate (e.g. `CX2` with `op_dims = [2, 2]`)
/// is executed on transmons simulated with four levels each
/// (`dev_dims = [4, 4]`): amplitudes in levels `>= op_dim` are untouched.
///
/// # Panics
///
/// Panics if the dimension lists have different lengths, if any
/// `op_dims[k] > dev_dims[k]`, or if `u` does not match `prod(op_dims)`.
///
/// # Example
///
/// ```
/// use waltz_gates::embed;
/// let cx = waltz_gates::standard::cx();
/// let on_ququarts = embed(&cx, &[2, 2], &[4, 4]);
/// assert_eq!(on_ququarts.rows(), 16);
/// assert!(on_ququarts.is_unitary(1e-12));
/// ```
pub fn embed(u: &Matrix, op_dims: &[usize], dev_dims: &[usize]) -> Matrix {
    assert_eq!(
        op_dims.len(),
        dev_dims.len(),
        "operand/device dimension count mismatch"
    );
    assert!(
        op_dims.iter().zip(dev_dims).all(|(o, d)| o <= d),
        "logical dimension exceeds device dimension"
    );
    let op_total: usize = op_dims.iter().product();
    assert_eq!(u.rows(), op_total, "unitary does not match operand dims");
    let dev_total: usize = dev_dims.iter().product();
    if op_total == dev_total {
        return u.clone();
    }

    // Maps a device-space composite index to Some(op-space index) when all
    // digits are inside the logical block.
    let to_logical = |mut idx: usize| -> Option<usize> {
        let mut digits = vec![0usize; dev_dims.len()];
        for k in (0..dev_dims.len()).rev() {
            digits[k] = idx % dev_dims[k];
            idx /= dev_dims[k];
        }
        let mut out = 0usize;
        for (k, &dig) in digits.iter().enumerate() {
            if dig >= op_dims[k] {
                return None;
            }
            out = out * op_dims[k] + dig;
        }
        Some(out)
    };

    let logical_of: Vec<Option<usize>> = (0..dev_total).map(to_logical).collect();
    let mut out = Matrix::zeros(dev_total, dev_total);
    for col in 0..dev_total {
        match logical_of[col] {
            None => out[(col, col)] = C64::ONE,
            Some(lc) => {
                for (row, lr) in logical_of.iter().enumerate() {
                    if let Some(lr) = lr {
                        out[(row, col)] = u[(*lr, lc)];
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_identity_block_structure() {
        let x = standard::x();
        let e = embed(&x, &[2], &[4]);
        assert!(e.is_unitary(1e-12));
        // Levels 2,3 untouched.
        assert!(e[(2, 2)].approx_eq(C64::ONE, 0.0));
        assert!(e[(3, 3)].approx_eq(C64::ONE, 0.0));
        // X block on levels 0,1.
        assert!(e[(0, 1)].approx_eq(C64::ONE, 0.0));
        assert!(e[(1, 0)].approx_eq(C64::ONE, 0.0));
    }

    #[test]
    fn embed_two_qubit_gate_into_ququarts() {
        let cx = standard::cx();
        let e = embed(&cx, &[2, 2], &[4, 4]);
        assert!(e.is_unitary(1e-12));
        // |1,0> (device index 4) -> |1,1> (device index 5).
        let mut v = vec![C64::ZERO; 16];
        v[4] = C64::ONE;
        let out = e.apply(&v);
        assert!(out[5].approx_eq(C64::ONE, 1e-12));
        // |2,0> (index 8) untouched: outside logical block.
        let mut v = vec![C64::ZERO; 16];
        v[8] = C64::ONE;
        let out = e.apply(&v);
        assert!(out[8].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn embed_noop_when_dims_match() {
        let cx = standard::cx();
        assert!(embed(&cx, &[2, 2], &[2, 2]).approx_eq(&cx, 0.0));
    }

    #[test]
    #[should_panic(expected = "exceeds device dimension")]
    fn embed_rejects_shrinking() {
        let id4 = Matrix::identity(4);
        let _ = embed(&id4, &[4], &[2]);
    }

    #[test]
    fn embed_mixed_dims() {
        // 2x4 logical into 4x4 devices.
        let u = Matrix::identity(8);
        let e = embed(&u, &[2, 4], &[4, 4]);
        assert!(e.is_identity(0.0));
    }
}
