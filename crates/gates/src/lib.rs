//! Gate library for the Quantum Waltz reproduction.
//!
//! Implements every gate family the paper uses (§3.2–§3.4, §4.2):
//!
//! * [`standard`] — textbook qubit gate unitaries (1-, 2- and 3-qubit),
//!   including the iToffoli of the Kim et al. baseline.
//! * [`encoding`] — the two-qubits-per-ququart compression
//!   `|q0 q1> -> |2 q0 + q1>` and the lifting of qubit gates onto encoded
//!   ququarts (`U0`, `U1`, `U0,1`, internal `CX0`/`CX1`/`SWAP_in`).
//! * [`mixed`] — mixed-radix (ququart ⊗ qubit) two- and three-qubit gate
//!   unitaries plus the `ENC`/`DEC` compression permutations.
//! * [`full_quart`] — full-ququart (ququart ⊗ ququart) gates in every
//!   configuration tabulated by the paper.
//! * [`hw`] — the [`HwGate`] hardware-gate vocabulary the compiler emits and
//!   the simulator executes, with exact unitaries and logical dimensions.
//! * [`calibration`] — the calibrated durations of Tables 1–2 and fidelity
//!   classes (0.999 single-device, 0.99 two-device), with the sensitivity
//!   knobs used by the paper's Fig. 9 studies.
//!
//! # Example
//!
//! ```
//! use waltz_gates::hw::{HwGate, MrCcxConfig};
//! use waltz_gates::calibration::GateLibrary;
//!
//! let lib = GateLibrary::paper();
//! // The mixed-radix Toffoli with both controls encoded is the fast one.
//! let fast = HwGate::MrCcx(MrCcxConfig::ControlsEncoded);
//! assert_eq!(lib.duration(&fast), 412.0);
//! assert!(fast.unitary().is_unitary(1e-12));
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod encoding;
pub mod full_quart;
pub mod generalized;
pub mod hw;
pub mod mixed;
pub mod standard;

mod wire;

pub use calibration::GateLibrary;
pub use hw::{HwGate, Q1Gate, Slot};

use waltz_math::{Matrix, C64};

/// Embeds a gate acting on logical operand dimensions `op_dims` into devices
/// of (possibly larger) dimensions `dev_dims`, acting as the identity outside
/// the logical block.
///
/// This is how a qubit-calibrated gate (e.g. `CX2` with `op_dims = [2, 2]`)
/// is executed on transmons simulated with four levels each
/// (`dev_dims = [4, 4]`): amplitudes in levels `>= op_dim` are untouched.
///
/// # Panics
///
/// Panics if the dimension lists have different lengths, if any
/// `op_dims[k] > dev_dims[k]`, or if `u` does not match `prod(op_dims)`.
///
/// # Example
///
/// ```
/// use waltz_gates::embed;
/// let cx = waltz_gates::standard::cx();
/// let on_ququarts = embed(&cx, &[2, 2], &[4, 4]);
/// assert_eq!(on_ququarts.rows(), 16);
/// assert!(on_ququarts.is_unitary(1e-12));
/// ```
pub fn embed(u: &Matrix, op_dims: &[usize], dev_dims: &[usize]) -> Matrix {
    assert!(
        op_dims.iter().zip(dev_dims).all(|(o, d)| o <= d),
        "logical dimension exceeds device dimension"
    );
    embed_demoted(u, op_dims, dev_dims)
}

/// [`embed`] generalized to devices *smaller* than the gate's logical
/// dimensions: operands with `dev_dims[k] < op_dims[k]` are **restricted**
/// to the occupied subspace (levels `< dev_dims[k]`), while operands with
/// `dev_dims[k] > op_dims[k]` are embedded with identity padding as usual.
///
/// This is the demotion step of the occupancy analysis: a gate calibrated
/// on 4-level operands (e.g. `ENC` with `op_dims = [4, 4]`) executes on a
/// device the analysis proved never leaves its qubit subspace
/// (`dev_dims = [4, 2]`) through the sub-block on the occupied levels.
/// The caller must have established *closure* — the gate never maps the
/// kept subspace into the dropped levels (see [`restriction_closed`]) —
/// otherwise the restricted matrix is not unitary and this function
/// panics.
///
/// # Panics
///
/// Panics if the dimension lists have different lengths, if `u` does not
/// match `prod(op_dims)`, or if a restricted operand breaks closure (the
/// result would not be unitary).
pub fn embed_demoted(u: &Matrix, op_dims: &[usize], dev_dims: &[usize]) -> Matrix {
    assert_eq!(
        op_dims.len(),
        dev_dims.len(),
        "operand/device dimension count mismatch"
    );
    let op_total: usize = op_dims.iter().product();
    assert_eq!(u.rows(), op_total, "unitary does not match operand dims");
    let restricted = op_dims.iter().zip(dev_dims).any(|(o, d)| o > d);
    if restricted {
        let sub: Vec<usize> = op_dims
            .iter()
            .zip(dev_dims)
            .map(|(&o, &d)| o.min(d))
            .collect();
        assert!(
            restriction_closed(u, op_dims, &sub),
            "gate mixes the occupied subspace {sub:?} with dropped levels (dims {op_dims:?})"
        );
    }
    let dev_total: usize = dev_dims.iter().product();
    if op_dims == dev_dims {
        return u.clone();
    }

    // Maps a device-space composite index to Some(op-space index) when all
    // digits are inside the logical block.
    let to_logical = |mut idx: usize| -> Option<usize> {
        let mut digits = vec![0usize; dev_dims.len()];
        for k in (0..dev_dims.len()).rev() {
            digits[k] = idx % dev_dims[k];
            idx /= dev_dims[k];
        }
        let mut out = 0usize;
        for (k, &dig) in digits.iter().enumerate() {
            if dig >= op_dims[k] {
                return None;
            }
            out = out * op_dims[k] + dig;
        }
        Some(out)
    };

    let logical_of: Vec<Option<usize>> = (0..dev_total).map(to_logical).collect();
    let mut out = Matrix::zeros(dev_total, dev_total);
    for col in 0..dev_total {
        match logical_of[col] {
            None => out[(col, col)] = C64::ONE,
            Some(lc) => {
                for (row, lr) in logical_of.iter().enumerate() {
                    if let Some(lr) = lr {
                        out[(row, col)] = u[(*lr, lc)];
                    }
                }
            }
        }
    }
    out
}

/// Entries at or below this modulus count as structural zeros when
/// checking subspace closure ([`restriction_closed`], the occupancy
/// analysis in `waltz-core`); matches the simulator's kernel
/// classification tolerance.
pub const SUPPORT_TOL: f64 = 1e-14;

/// Whether `u` (on logical operand dimensions `op_dims`) keeps the
/// subspace with per-operand levels `< sub_dims[k]` closed: every column
/// inside the subspace maps only onto rows inside it. A unitary closed on
/// a subspace is also closed on the complement, so the sub-block
/// [`embed_demoted`] extracts is itself unitary.
///
/// # Panics
///
/// Panics if the dimension lists have different lengths, any
/// `sub_dims[k] > op_dims[k]`, or `u` does not match `prod(op_dims)`.
pub fn restriction_closed(u: &Matrix, op_dims: &[usize], sub_dims: &[usize]) -> bool {
    assert_eq!(
        op_dims.len(),
        sub_dims.len(),
        "operand/subspace dimension count mismatch"
    );
    assert!(
        sub_dims.iter().zip(op_dims).all(|(s, o)| s <= o),
        "subspace dimension exceeds operand dimension"
    );
    let op_total: usize = op_dims.iter().product();
    assert_eq!(u.rows(), op_total, "unitary does not match operand dims");
    let inside = |mut idx: usize| -> bool {
        for k in (0..op_dims.len()).rev() {
            if idx % op_dims[k] >= sub_dims[k] {
                return false;
            }
            idx /= op_dims[k];
        }
        true
    };
    let inside_of: Vec<bool> = (0..op_total).map(inside).collect();
    for col in 0..op_total {
        if !inside_of[col] {
            continue;
        }
        for row in 0..op_total {
            if !inside_of[row] && u[(row, col)].abs() > SUPPORT_TOL {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_identity_block_structure() {
        let x = standard::x();
        let e = embed(&x, &[2], &[4]);
        assert!(e.is_unitary(1e-12));
        // Levels 2,3 untouched.
        assert!(e[(2, 2)].approx_eq(C64::ONE, 0.0));
        assert!(e[(3, 3)].approx_eq(C64::ONE, 0.0));
        // X block on levels 0,1.
        assert!(e[(0, 1)].approx_eq(C64::ONE, 0.0));
        assert!(e[(1, 0)].approx_eq(C64::ONE, 0.0));
    }

    #[test]
    fn embed_two_qubit_gate_into_ququarts() {
        let cx = standard::cx();
        let e = embed(&cx, &[2, 2], &[4, 4]);
        assert!(e.is_unitary(1e-12));
        // |1,0> (device index 4) -> |1,1> (device index 5).
        let mut v = vec![C64::ZERO; 16];
        v[4] = C64::ONE;
        let out = e.apply(&v);
        assert!(out[5].approx_eq(C64::ONE, 1e-12));
        // |2,0> (index 8) untouched: outside logical block.
        let mut v = vec![C64::ZERO; 16];
        v[8] = C64::ONE;
        let out = e.apply(&v);
        assert!(out[8].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn embed_noop_when_dims_match() {
        let cx = standard::cx();
        assert!(embed(&cx, &[2, 2], &[2, 2]).approx_eq(&cx, 0.0));
    }

    #[test]
    fn embed_demoted_restricts_enc_partner_to_qubit_subspace() {
        // ENC is calibrated on [4, 4] but keeps the source's qubit
        // subspace closed: restricting to a (4, 2) device pair yields an
        // 8x8 permutation agreeing with the full map on b < 2.
        let enc = mixed::enc();
        assert!(restriction_closed(&enc, &[4, 4], &[4, 2]));
        let restricted = embed_demoted(&enc, &[4, 4], &[4, 2]);
        assert_eq!(restricted.rows(), 8);
        assert!(restricted.is_unitary(1e-12));
        // |1,1> -> |3,0>: full index 5 -> 12; restricted 2*1+1=3 -> 2*3+0=6.
        let mut v = vec![C64::ZERO; 8];
        v[3] = C64::ONE;
        assert!(restricted.apply(&v)[6].approx_eq(C64::ONE, 1e-12));
        // DEC (the dagger) is closed on the same subspace.
        assert!(restriction_closed(&mixed::dec(), &[4, 4], &[4, 2]));
        assert!(embed_demoted(&mixed::dec(), &[4, 4], &[4, 2]).is_unitary(1e-12));
    }

    #[test]
    fn embed_demoted_mixes_restriction_with_identity_padding() {
        // A qubit CX on a (dim 4, dim 2) pair: operand 0 pads up,
        // operand 1 is already at its logical dimension.
        let e = embed_demoted(&standard::cx(), &[2, 2], &[4, 2]);
        assert_eq!(e.rows(), 8);
        assert!(e.is_unitary(1e-12));
        assert!(e.approx_eq(&embed(&standard::cx(), &[2, 2], &[4, 2]), 0.0));
    }

    #[test]
    fn restriction_closed_rejects_subspace_mixing() {
        // X on a qubit maps level 0 <-> 1: the {0} "subspace" is not
        // closed — but on a diagonal it is.
        let x4 = embed(&standard::x(), &[2], &[4]);
        assert!(restriction_closed(&x4, &[4], &[2]));
        // SWAPq0 moves the bare qubit into slot 0 (levels 2/3): the
        // ququart's qubit subspace is NOT closed.
        assert!(!restriction_closed(
            &mixed::swap(Slot::S0),
            &[4, 2],
            &[2, 2]
        ));
    }

    #[test]
    #[should_panic(expected = "mixes the occupied subspace")]
    fn embed_demoted_panics_on_unclosed_restriction() {
        let _ = embed_demoted(&mixed::swap(Slot::S0), &[4, 2], &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds device dimension")]
    fn embed_rejects_shrinking() {
        let id4 = Matrix::identity(4);
        let _ = embed(&id4, &[4], &[2]);
    }

    #[test]
    fn embed_mixed_dims() {
        // 2x4 logical into 4x4 devices.
        let u = Matrix::identity(8);
        let e = embed(&u, &[2, 4], &[4, 4]);
        assert!(e.is_identity(0.0));
    }
}
