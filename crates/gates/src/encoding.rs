//! The two-qubits-per-ququart compression and qubit gates lifted onto
//! encoded ququarts (paper §3.1–§3.2).
//!
//! The encoding is `|q0 q1> -> |2 q0 + q1>`: slot 0 is the most significant
//! encoded qubit. Because the workspace orders composite indices row-major
//! with the first qudit most significant, the 2-qubit state-vector index
//! *equals* the ququart level — the compression is the identity on
//! amplitudes, which is exactly why it is information-preserving (§3.1).

use waltz_math::Matrix;

use crate::standard;

/// Ququart level storing the encoded pair `(q0, q1)`.
///
/// # Example
///
/// ```
/// assert_eq!(waltz_gates::encoding::encode_index(1, 0), 2);
/// ```
#[inline]
pub fn encode_index(q0: u8, q1: u8) -> usize {
    debug_assert!(q0 < 2 && q1 < 2);
    (2 * q0 + q1) as usize
}

/// Inverse of [`encode_index`]: the encoded pair stored at `level`.
#[inline]
pub fn decode_index(level: usize) -> (u8, u8) {
    debug_assert!(level < 4);
    ((level >> 1) as u8, (level & 1) as u8)
}

/// `U0 = U (x) I`: applies a single-qubit gate to encoded qubit 0 (87 ns).
pub fn lift_u0(u: &Matrix) -> Matrix {
    assert_eq!(u.rows(), 2, "lift_u0 expects a single-qubit gate");
    u.kron(&Matrix::identity(2))
}

/// `U1 = I (x) U`: applies a single-qubit gate to encoded qubit 1 (66 ns).
pub fn lift_u1(u: &Matrix) -> Matrix {
    assert_eq!(u.rows(), 2, "lift_u1 expects a single-qubit gate");
    Matrix::identity(2).kron(u)
}

/// `U0,1 = U (x) V`: applies gates to both encoded qubits at once (86 ns).
pub fn lift_u01(u: &Matrix, v: &Matrix) -> Matrix {
    assert_eq!(u.rows(), 2);
    assert_eq!(v.rows(), 2);
    u.kron(v)
}

/// Internal CNOT targeting encoded qubit 0 (control = encoded qubit 1):
/// the single-ququart gate swapping levels `|1>` and `|3>` (§3.2; 83 ns).
pub fn internal_cx0() -> Matrix {
    Matrix::permutation(&[0, 3, 2, 1])
}

/// Internal CNOT targeting encoded qubit 1 (control = encoded qubit 0):
/// swaps levels `|2>` and `|3>` (84 ns).
pub fn internal_cx1() -> Matrix {
    Matrix::permutation(&[0, 1, 3, 2])
}

/// Internal SWAP of the encoded pair: exchanges levels `|1>` and `|2>`
/// (78 ns). `SWAP |q1 q2> = |q2 q1>`.
pub fn internal_swap() -> Matrix {
    Matrix::permutation(&[0, 2, 1, 3])
}

/// Internal controlled-Z between the encoded pair: `diag(1, 1, 1, -1)`.
///
/// Not tabulated by the paper but any single-ququart unitary is one pulse of
/// the internal-gate class; see DESIGN.md ("Additions").
pub fn internal_cz() -> Matrix {
    standard::cz()
}

/// An arbitrary two-qubit unitary applied to the encoded pair. Because the
/// encoding equals the composite index, the matrix is used verbatim.
pub fn internal_two_qubit(u: &Matrix) -> Matrix {
    assert_eq!(u.rows(), 4, "internal_two_qubit expects a 4x4 unitary");
    u.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_math::C64;

    #[test]
    fn encode_decode_round_trip() {
        for q0 in 0..2u8 {
            for q1 in 0..2u8 {
                let l = encode_index(q0, q1);
                assert_eq!(decode_index(l), (q0, q1));
            }
        }
        assert_eq!(encode_index(0, 0), 0);
        assert_eq!(encode_index(0, 1), 1);
        assert_eq!(encode_index(1, 0), 2);
        assert_eq!(encode_index(1, 1), 3);
    }

    #[test]
    fn internal_cx0_swaps_1_and_3() {
        // Paper §3.2: CX0 is controlled on the *second* qubit, targeting the
        // first, equivalent to swapping |1> and |3>.
        let m = internal_cx0();
        let mut v = vec![C64::ZERO; 4];
        v[1] = C64::ONE;
        assert!(m.apply(&v)[3].approx_eq(C64::ONE, 0.0));
        // As a 2-qubit operation it is CX(control=q1, target=q0).
        let sw = standard::swap();
        let expected = sw.matmul(&standard::cx()).matmul(&sw);
        assert!(m.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn internal_cx1_swaps_2_and_3() {
        let m = internal_cx1();
        let mut v = vec![C64::ZERO; 4];
        v[2] = C64::ONE;
        assert!(m.apply(&v)[3].approx_eq(C64::ONE, 0.0));
        // CX(control=q0, target=q1) in the encoded basis is plain CX.
        assert!(m.approx_eq(&standard::cx(), 1e-12));
    }

    #[test]
    fn internal_swap_exchanges_encoded_qubits() {
        assert!(internal_swap().approx_eq(&standard::swap(), 1e-12));
    }

    #[test]
    fn lifts_act_on_correct_slot() {
        let x0 = lift_u0(&standard::x());
        // X on q0: |00> (level 0) -> |10> (level 2).
        let mut v = vec![C64::ZERO; 4];
        v[0] = C64::ONE;
        assert!(x0.apply(&v)[2].approx_eq(C64::ONE, 0.0));

        let x1 = lift_u1(&standard::x());
        // X on q1: level 0 -> level 1.
        assert!(x1.apply(&v)[1].approx_eq(C64::ONE, 0.0));

        let xx = lift_u01(&standard::x(), &standard::x());
        // X on both: level 0 -> level 3.
        assert!(xx.apply(&v)[3].approx_eq(C64::ONE, 0.0));
    }

    #[test]
    fn lifted_gates_commute_across_slots() {
        let a = lift_u0(&standard::h());
        let b = lift_u1(&standard::t());
        assert!(a.matmul(&b).approx_eq(&b.matmul(&a), 1e-12));
        assert!(a
            .matmul(&b)
            .approx_eq(&lift_u01(&standard::h(), &standard::t()), 1e-12));
    }

    #[test]
    fn internal_cz_is_symmetric_under_swap() {
        let sw = internal_swap();
        let cz = internal_cz();
        assert!(sw.matmul(&cz).matmul(&sw).approx_eq(&cz, 1e-12));
    }

    #[test]
    fn all_internal_gates_unitary() {
        for m in [
            internal_cx0(),
            internal_cx1(),
            internal_swap(),
            internal_cz(),
        ] {
            assert!(m.is_unitary(1e-12));
        }
    }
}
