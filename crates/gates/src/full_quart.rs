//! Full-ququart gates: two adjacent ququarts, four encoded qubits
//! (paper §3.2, Tables 1d and 2b).
//!
//! All matrices act on the composite space **(ququart A, ququart B)** —
//! dimension 16, index `4 * level_A + level_B` — with A as the most
//! significant digit. Encoded qubits are `(a0, a1)` in A and `(b0, b1)` in
//! B, slot 0 being the most significant bit of the level.

use waltz_math::{Matrix, C64};

use crate::Slot;

/// Bit layout of the 4 encoded qubits inside a 16-dim composite index.
#[inline]
fn bits_of(idx: usize) -> [usize; 4] {
    let la = idx >> 2;
    let lb = idx & 3;
    [la >> 1, la & 1, lb >> 1, lb & 1] // [a0, a1, b0, b1]
}

#[inline]
fn idx_of(bits: [usize; 4]) -> usize {
    ((bits[0] << 1 | bits[1]) << 2) | (bits[2] << 1 | bits[3])
}

/// Builds a 16-dim permutation from a map on the 4 encoded-qubit bits.
fn perm_from(f: impl Fn([usize; 4]) -> [usize; 4]) -> Matrix {
    let mut perm = vec![0usize; 16];
    for (i, p) in perm.iter_mut().enumerate() {
        *p = idx_of(f(bits_of(i)));
    }
    Matrix::permutation(&perm)
}

/// Builds a 16-dim diagonal gate from a phase predicate on the bits.
fn diag_from(f: impl Fn([usize; 4]) -> bool) -> Matrix {
    let d: Vec<C64> = (0..16)
        .map(|i| if f(bits_of(i)) { -C64::ONE } else { C64::ONE })
        .collect();
    Matrix::from_diag(&d)
}

#[inline]
fn a_bit(slot: Slot) -> usize {
    match slot {
        Slot::S0 => 0,
        Slot::S1 => 1,
    }
}

#[inline]
fn b_bit(slot: Slot) -> usize {
    match slot {
        Slot::S0 => 2,
        Slot::S1 => 3,
    }
}

/// `CX{c}{t}`: CNOT with control in slot `ctrl` of ququart A and target in
/// slot `tgt` of ququart B (544/544/700/700 ns for 00/01/10/11).
pub fn cx(ctrl: Slot, tgt: Slot) -> Matrix {
    perm_from(|mut b| {
        if b[a_bit(ctrl)] == 1 {
            b[b_bit(tgt)] ^= 1;
        }
        b
    })
}

/// `CZ{s}{t}`: controlled-Z between slot `a` of ququart A and slot `b` of
/// ququart B (392/488/776 ns for 00/01 or 10/11). Symmetric in its operands.
pub fn cz(a: Slot, b: Slot) -> Matrix {
    diag_from(|bits| bits[a_bit(a)] == 1 && bits[b_bit(b)] == 1)
}

/// `SWAP{s}{t}`: exchanges slot `a` of ququart A with slot `b` of ququart B
/// (916/892/964 ns for 00/01 or 10/11).
pub fn swap(a: Slot, b: Slot) -> Matrix {
    perm_from(|mut bits| {
        bits.swap(a_bit(a), b_bit(b));
        bits
    })
}

/// Configuration of a full-ququart Toffoli (Table 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FqCcxConfig {
    /// `CCX01,t` (536/552 ns): both controls encoded together in ququart A,
    /// target in slot `t` of ququart B — the fast configuration (§4.2.1).
    ControlsPair {
        /// Target slot in ququart B.
        tgt: Slot,
    },
    /// `CCX{a},{c}{t}` (680–785 ns): controls split across the ququarts —
    /// slot `actrl` of A and slot `bctrl` of B — with the target in the
    /// remaining slot of B.
    Split {
        /// Control slot in ququart A.
        actrl: Slot,
        /// Control slot in ququart B (the target is B's other slot).
        bctrl: Slot,
    },
}

/// Full-ququart Toffoli unitary for `config`.
pub fn ccx(config: FqCcxConfig) -> Matrix {
    match config {
        FqCcxConfig::ControlsPair { tgt } => perm_from(|mut b| {
            if b[0] == 1 && b[1] == 1 {
                b[b_bit(tgt)] ^= 1;
            }
            b
        }),
        FqCcxConfig::Split { actrl, bctrl } => {
            let btgt = bctrl.other();
            perm_from(move |mut b| {
                if b[a_bit(actrl)] == 1 && b[b_bit(bctrl)] == 1 {
                    b[b_bit(btgt)] ^= 1;
                }
                b
            })
        }
    }
}

/// `CCZ01,t` (232/310 ns): doubly-controlled Z with the "pair" in ququart A
/// and the third operand in slot `t` of B. Target-independent (§4.2.2).
pub fn ccz(t: Slot) -> Matrix {
    diag_from(|b| b[0] == 1 && b[1] == 1 && b[b_bit(t)] == 1)
}

/// Configuration of a full-ququart CSWAP (Table 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FqCswapConfig {
    /// `CSWAP{c},01` (510/432 ns): control in slot `ctrl` of A, both targets
    /// encoded together in B — the fast "targets together" configuration.
    TargetsPair {
        /// Control slot in ququart A.
        ctrl: Slot,
    },
    /// `CSWAP{c}{a},{t}` (680–822 ns): control in slot `ctrl` of A, targets
    /// split between A's other slot and slot `btgt` of B.
    Split {
        /// Control slot in ququart A (the A-side target is the other slot).
        ctrl: Slot,
        /// Target slot in ququart B.
        btgt: Slot,
    },
}

/// Full-ququart CSWAP unitary for `config`.
pub fn cswap(config: FqCswapConfig) -> Matrix {
    match config {
        FqCswapConfig::TargetsPair { ctrl } => perm_from(move |mut b| {
            if b[a_bit(ctrl)] == 1 {
                b.swap(2, 3);
            }
            b
        }),
        FqCswapConfig::Split { ctrl, btgt } => {
            let atgt = ctrl.other();
            perm_from(move |mut b| {
                if b[a_bit(ctrl)] == 1 {
                    b.swap(a_bit(atgt), b_bit(btgt));
                }
                b
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard;

    /// Expected 16-dim unitary from a k-qubit gate and the bit positions of
    /// its operands (0=a0, 1=a1, 2=b0, 3=b1).
    fn from_k_qubit(u: &Matrix, layout: &[usize]) -> Matrix {
        let k = layout.len();
        assert_eq!(u.rows(), 1 << k);
        let mut m = Matrix::zeros(16, 16);
        for col in 0..16usize {
            let cb = bits_of(col);
            let lc = layout.iter().fold(0usize, |acc, &pos| (acc << 1) | cb[pos]);
            for lr in 0..(1 << k) {
                let amp = u[(lr, lc)];
                if amp == C64::ZERO {
                    continue;
                }
                // Write logical row bits back into the fixed bits of col.
                let mut rb = cb;
                for (j, &pos) in layout.iter().enumerate() {
                    rb[pos] = (lr >> (k - 1 - j)) & 1;
                }
                m[(idx_of(rb), col)] = m[(idx_of(rb), col)] + amp;
            }
        }
        m
    }

    #[test]
    fn all_full_ququart_gates_are_unitary() {
        let mut all = vec![];
        for a in [Slot::S0, Slot::S1] {
            for b in [Slot::S0, Slot::S1] {
                all.push(cx(a, b));
                all.push(cz(a, b));
                all.push(swap(a, b));
                all.push(ccx(FqCcxConfig::Split { actrl: a, bctrl: b }));
                all.push(cswap(FqCswapConfig::Split { ctrl: a, btgt: b }));
            }
            all.push(ccx(FqCcxConfig::ControlsPair { tgt: a }));
            all.push(ccz(a));
            all.push(cswap(FqCswapConfig::TargetsPair { ctrl: a }));
        }
        for m in all {
            assert!(m.is_unitary(1e-12));
        }
    }

    #[test]
    fn cx_matches_logical_layouts() {
        // control a0 (bit 0), target b1 (bit 3).
        let expected = from_k_qubit(&standard::cx(), &[0, 3]);
        assert!(cx(Slot::S0, Slot::S1).approx_eq(&expected, 1e-12));
        let expected = from_k_qubit(&standard::cx(), &[1, 2]);
        assert!(cx(Slot::S1, Slot::S0).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn cz_is_symmetric() {
        let expected = from_k_qubit(&standard::cz(), &[1, 3]);
        assert!(cz(Slot::S1, Slot::S1).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn swap_exchanges_cross_device_qubits() {
        let expected = from_k_qubit(&standard::swap(), &[0, 2]);
        assert!(swap(Slot::S0, Slot::S0).approx_eq(&expected, 1e-12));
        // |a0=1, rest 0> = idx 8 -> |b0=1, rest 0> = idx 2.
        let m = swap(Slot::S0, Slot::S0);
        let mut v = vec![C64::ZERO; 16];
        v[8] = C64::ONE;
        assert!(m.apply(&v)[2].approx_eq(C64::ONE, 0.0));
    }

    #[test]
    fn ccx_controls_pair_matches_toffoli() {
        let expected = from_k_qubit(&standard::ccx(), &[0, 1, 2]);
        assert!(ccx(FqCcxConfig::ControlsPair { tgt: Slot::S0 }).approx_eq(&expected, 1e-12));
        let expected = from_k_qubit(&standard::ccx(), &[0, 1, 3]);
        assert!(ccx(FqCcxConfig::ControlsPair { tgt: Slot::S1 }).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn ccx_split_matches_toffoli() {
        // controls a0, b0; target b1.
        let expected = from_k_qubit(&standard::ccx(), &[0, 2, 3]);
        assert!(ccx(FqCcxConfig::Split {
            actrl: Slot::S0,
            bctrl: Slot::S0
        })
        .approx_eq(&expected, 1e-12));
        // controls a1, b0; target b1.
        let expected = from_k_qubit(&standard::ccx(), &[1, 2, 3]);
        assert!(ccx(FqCcxConfig::Split {
            actrl: Slot::S1,
            bctrl: Slot::S0
        })
        .approx_eq(&expected, 1e-12));
    }

    #[test]
    fn ccz_matches_and_is_layout_independent() {
        for t in [Slot::S0, Slot::S1] {
            let bit = match t {
                Slot::S0 => 2,
                Slot::S1 => 3,
            };
            for layout in [[0, 1, bit], [bit, 0, 1], [1, bit, 0]] {
                let expected = from_k_qubit(&standard::ccz(), &layout);
                assert!(ccz(t).approx_eq(&expected, 1e-12));
            }
        }
    }

    #[test]
    fn cswap_targets_pair_swaps_b_slots() {
        let expected = from_k_qubit(&standard::cswap(), &[0, 2, 3]);
        assert!(cswap(FqCswapConfig::TargetsPair { ctrl: Slot::S0 }).approx_eq(&expected, 1e-12));
        let expected = from_k_qubit(&standard::cswap(), &[1, 2, 3]);
        assert!(cswap(FqCswapConfig::TargetsPair { ctrl: Slot::S1 }).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn cswap_split_matches_fredkin() {
        // control a0, targets a1 and b1.
        let expected = from_k_qubit(&standard::cswap(), &[0, 1, 3]);
        assert!(cswap(FqCswapConfig::Split {
            ctrl: Slot::S0,
            btgt: Slot::S1
        })
        .approx_eq(&expected, 1e-12));
        // control a1, targets a0 and b0.
        let expected = from_k_qubit(&standard::cswap(), &[1, 0, 2]);
        assert!(cswap(FqCswapConfig::Split {
            ctrl: Slot::S1,
            btgt: Slot::S0
        })
        .approx_eq(&expected, 1e-12));
    }

    #[test]
    fn ccx_equals_h_conjugated_ccz() {
        // H on b0 converts CCZ01,0 into CCX01,0.
        let h_b0 = Matrix::identity(4).kron(&crate::encoding::lift_u0(&standard::h()));
        let built = h_b0.matmul(&ccz(Slot::S0)).matmul(&h_b0);
        assert!(built.approx_eq(&ccx(FqCcxConfig::ControlsPair { tgt: Slot::S0 }), 1e-12));
    }
}
