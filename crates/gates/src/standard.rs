//! Textbook qubit gate unitaries.
//!
//! Conventions: states are indexed row-major with the **first operand as the
//! most significant digit**; multi-qubit controlled gates list controls
//! before targets, e.g. [`cx`] is `CX(control, target)` and [`ccx`] is
//! `CCX(control, control, target)`.

use std::f64::consts::FRAC_1_SQRT_2;

use waltz_math::{Matrix, C64};

/// 2x2 identity.
pub fn id2() -> Matrix {
    Matrix::identity(2)
}

/// Pauli X.
pub fn x() -> Matrix {
    Matrix::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]])
}

/// Pauli Y.
pub fn y() -> Matrix {
    Matrix::from_rows(&[vec![C64::ZERO, -C64::I], vec![C64::I, C64::ZERO]])
}

/// Pauli Z.
pub fn z() -> Matrix {
    Matrix::from_diag(&[C64::ONE, -C64::ONE])
}

/// Hadamard.
pub fn h() -> Matrix {
    let c = C64::real(FRAC_1_SQRT_2);
    Matrix::from_rows(&[vec![c, c], vec![c, -c]])
}

/// Phase gate S = diag(1, i).
pub fn s() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::I])
}

/// Inverse phase gate S† = diag(1, -i).
pub fn sdg() -> Matrix {
    Matrix::from_diag(&[C64::ONE, -C64::I])
}

/// T gate = diag(1, e^{i pi/4}).
pub fn t() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::cis(std::f64::consts::FRAC_PI_4)])
}

/// T† gate.
pub fn tdg() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::cis(-std::f64::consts::FRAC_PI_4)])
}

/// Rotation about X: `exp(-i theta X / 2)`.
pub fn rx(theta: f64) -> Matrix {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::new(0.0, -(theta / 2.0).sin());
    Matrix::from_rows(&[vec![c, s], vec![s, c]])
}

/// Rotation about Y: `exp(-i theta Y / 2)`.
pub fn ry(theta: f64) -> Matrix {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::real((theta / 2.0).sin());
    Matrix::from_rows(&[vec![c, -s], vec![s, c]])
}

/// Rotation about Z: `exp(-i theta Z / 2)`.
pub fn rz(theta: f64) -> Matrix {
    Matrix::from_diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)])
}

/// CNOT with the first operand as control: `CX |c t> = |c, t xor c>`.
pub fn cx() -> Matrix {
    Matrix::permutation(&[0, 1, 3, 2])
}

/// Controlled-Z (symmetric): phase -1 on `|11>`.
pub fn cz() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE])
}

/// Controlled-S: phase i on `|11>`.
pub fn cs() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::ONE, C64::ONE, C64::I])
}

/// Controlled-S†: phase -i on `|11>`. Needed by the iToffoli decomposition
/// (paper Fig. 6d).
pub fn csdg() -> Matrix {
    Matrix::from_diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::I])
}

/// Two-qubit SWAP.
pub fn swap() -> Matrix {
    Matrix::permutation(&[0, 2, 1, 3])
}

/// Toffoli `CCX(control, control, target)`.
pub fn ccx() -> Matrix {
    Matrix::permutation(&[0, 1, 2, 3, 4, 5, 7, 6])
}

/// Doubly-controlled Z: phase -1 on `|111>`. Target-independent (§4.2.2).
pub fn ccz() -> Matrix {
    let mut d = vec![C64::ONE; 8];
    d[7] = -C64::ONE;
    Matrix::from_diag(&d)
}

/// Fredkin `CSWAP(control, target, target)`.
pub fn cswap() -> Matrix {
    Matrix::permutation(&[0, 1, 2, 3, 4, 6, 5, 7])
}

/// The iToffoli gate of Kim et al.: acts as `i X` on the target when both
/// controls are `|1>` (off-diagonal block `[[0, i], [i, 0]]` on
/// `|110>, |111>`).
pub fn itoffoli() -> Matrix {
    let mut m = Matrix::identity(8);
    m[(6, 6)] = C64::ZERO;
    m[(7, 7)] = C64::ZERO;
    m[(6, 7)] = C64::I;
    m[(7, 6)] = C64::I;
    m
}

/// Generic controlled-`u` on two qubits (control first).
pub fn controlled(u: &Matrix) -> Matrix {
    assert_eq!(u.rows(), 2, "controlled() expects a single-qubit gate");
    let mut m = Matrix::identity(4);
    for i in 0..2 {
        for j in 0..2 {
            m[(2 + i, 2 + j)] = u[(i, j)];
        }
    }
    m
}

/// Generalized qudit shift `X_d : |j> -> |j+1 mod d>`.
pub fn shift_d(d: usize) -> Matrix {
    let perm: Vec<usize> = (0..d).map(|j| (j + 1) % d).collect();
    Matrix::permutation(&perm)
}

/// Generalized qudit clock `Z_d = diag(1, w, w^2, ...)` with `w = e^{2 pi i/d}`.
pub fn clock_d(d: usize) -> Matrix {
    let w = 2.0 * std::f64::consts::PI / d as f64;
    let diag: Vec<C64> = (0..d).map(|j| C64::cis(w * j as f64)).collect();
    Matrix::from_diag(&diag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_math::metrics::gate_fidelity;

    #[test]
    fn all_standard_gates_are_unitary() {
        for (name, m) in [
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("h", h()),
            ("s", s()),
            ("sdg", sdg()),
            ("t", t()),
            ("tdg", tdg()),
            ("rx", rx(0.7)),
            ("ry", ry(-1.2)),
            ("rz", rz(2.5)),
            ("cx", cx()),
            ("cz", cz()),
            ("cs", cs()),
            ("csdg", csdg()),
            ("swap", swap()),
            ("ccx", ccx()),
            ("ccz", ccz()),
            ("cswap", cswap()),
            ("itoffoli", itoffoli()),
        ] {
            assert!(m.is_unitary(1e-12), "{name} is not unitary");
        }
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let hxh = h().matmul(&x()).matmul(&h());
        assert!(hxh.approx_eq(&z(), 1e-12));
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        assert!(s().matmul(&s()).approx_eq(&z(), 1e-12));
        assert!(t().matmul(&t()).approx_eq(&s(), 1e-12));
        assert!(s().matmul(&sdg()).is_identity(1e-12));
        assert!(t().matmul(&tdg()).is_identity(1e-12));
    }

    #[test]
    fn rotations_at_pi_match_paulis_up_to_phase() {
        use std::f64::consts::PI;
        assert!(rx(PI).approx_eq_up_to_phase(&x(), 1e-12));
        assert!(ry(PI).approx_eq_up_to_phase(&y(), 1e-12));
        assert!(rz(PI).approx_eq_up_to_phase(&z(), 1e-12));
    }

    #[test]
    fn cx_truth_table() {
        let m = cx();
        // |10> -> |11>
        let mut v = vec![C64::ZERO; 4];
        v[2] = C64::ONE;
        assert!(m.apply(&v)[3].approx_eq(C64::ONE, 0.0));
        // |01> -> |01>
        let mut v = vec![C64::ZERO; 4];
        v[1] = C64::ONE;
        assert!(m.apply(&v)[1].approx_eq(C64::ONE, 0.0));
    }

    #[test]
    fn ccx_only_flips_when_both_controls_set() {
        let m = ccx();
        for c in 0..8usize {
            let mut v = vec![C64::ZERO; 8];
            v[c] = C64::ONE;
            let out = m.apply(&v);
            let expect = if c >= 6 { c ^ 1 } else { c };
            assert!(out[expect].approx_eq(C64::ONE, 0.0), "input {c}");
        }
    }

    #[test]
    fn ccz_is_target_independent() {
        // CCZ = (I (x) I (x) H) CCX (I (x) I (x) H), and symmetric under any
        // qubit permutation.
        let h3 = Matrix::identity(4).kron(&h());
        let built = h3.matmul(&ccx()).matmul(&h3);
        assert!(built.approx_eq(&ccz(), 1e-12));
    }

    #[test]
    fn itoffoli_decomposition_fig6d() {
        // CCX = CS†(c1, c2) . iToffoli  (paper Fig. 6d, §5.1.1).
        let csdg_on_controls = csdg().kron(&id2());
        let built = csdg_on_controls.matmul(&itoffoli());
        assert!(built.approx_eq(&ccx(), 1e-12));
    }

    #[test]
    fn cswap_swaps_targets_iff_control() {
        let m = cswap();
        // |1 0 1> (index 5) -> |1 1 0> (index 6)
        let mut v = vec![C64::ZERO; 8];
        v[5] = C64::ONE;
        assert!(m.apply(&v)[6].approx_eq(C64::ONE, 0.0));
        // |0 0 1> (index 1) unchanged
        let mut v = vec![C64::ZERO; 8];
        v[1] = C64::ONE;
        assert!(m.apply(&v)[1].approx_eq(C64::ONE, 0.0));
    }

    #[test]
    fn controlled_builder_matches_cx_and_cz() {
        assert!(controlled(&x()).approx_eq(&cx(), 0.0));
        assert!(controlled(&z()).approx_eq(&cz(), 0.0));
        assert!(controlled(&sdg()).approx_eq(&csdg(), 0.0));
    }

    #[test]
    fn generalized_paulis() {
        let x4 = shift_d(4);
        let z4 = clock_d(4);
        assert!(x4.is_unitary(1e-12));
        assert!(z4.is_unitary(1e-12));
        // X_d^d = I, Z_d^d = I
        let mut xp = Matrix::identity(4);
        let mut zp = Matrix::identity(4);
        for _ in 0..4 {
            xp = xp.matmul(&x4);
            zp = zp.matmul(&z4);
        }
        assert!(xp.is_identity(1e-12));
        assert!(zp.is_identity(1e-12));
        // Weyl commutation: Z X = w X Z
        let w = C64::cis(std::f64::consts::FRAC_PI_2);
        let lhs = z4.matmul(&x4);
        let rhs = x4.matmul(&z4).scale(w);
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn swap_decomposes_into_three_cnots() {
        let cx_ab = cx();
        let cx_ba = {
            // CX with control second, target first = SWAP . CX . SWAP
            let sw = swap();
            sw.matmul(&cx()).matmul(&sw)
        };
        let built = cx_ab.matmul(&cx_ba).matmul(&cx_ab);
        assert!(built.approx_eq(&swap(), 1e-12));
    }

    #[test]
    fn gate_fidelity_of_x_vs_rx_pi() {
        // Process fidelity is phase-insensitive.
        let f = gate_fidelity(&rx(std::f64::consts::PI), &x());
        assert!((f - 1.0).abs() < 1e-12);
    }
}
