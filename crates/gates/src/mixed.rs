//! Mixed-radix gates: one ququart interacting with one bare qubit
//! (paper §3.2, §4.2, Tables 1c and 2a).
//!
//! All matrices act on the composite space **(ququart, qubit)** — dimension
//! 8, index `2 * level + q` — with the ququart as the most significant
//! digit. The compiler always lists the ququart first when emitting these
//! gates, so the simulator can use the matrices verbatim.

use waltz_math::{Matrix, C64};

use crate::Slot;

/// Builds an 8-dimensional permutation gate from a map on `(level, q)`.
fn perm_from(f: impl Fn(usize, usize) -> (usize, usize)) -> Matrix {
    let mut perm = vec![0usize; 8];
    for l in 0..4 {
        for q in 0..2 {
            let (l2, q2) = f(l, q);
            debug_assert!(l2 < 4 && q2 < 2);
            perm[2 * l + q] = 2 * l2 + q2;
        }
    }
    Matrix::permutation(&perm)
}

/// Value of the encoded qubit stored in `slot` for ququart `level`.
#[inline]
fn slot_val(level: usize, slot: Slot) -> usize {
    match slot {
        Slot::S0 => level >> 1,
        Slot::S1 => level & 1,
    }
}

/// Ququart level after flipping the encoded qubit in `slot`.
#[inline]
fn flip_slot(level: usize, slot: Slot) -> usize {
    match slot {
        Slot::S0 => level ^ 0b10,
        Slot::S1 => level ^ 0b01,
    }
}

/// Ququart level after writing `v` into `slot`.
#[inline]
fn set_slot(level: usize, slot: Slot, v: usize) -> usize {
    match slot {
        Slot::S0 => (level & 0b01) | (v << 1),
        Slot::S1 => (level & 0b10) | v,
    }
}

/// `CX{slot}q`: CNOT controlled on encoded qubit `slot`, targeting the bare
/// qubit (560 ns for slot 0, 632 ns for slot 1).
pub fn cx_quart_ctrl(slot: Slot) -> Matrix {
    perm_from(|l, q| {
        if slot_val(l, slot) == 1 {
            (l, q ^ 1)
        } else {
            (l, q)
        }
    })
}

/// `CXq{slot}`: CNOT controlled on the bare qubit, targeting encoded qubit
/// `slot` (880 ns for slot 0, 812 ns for slot 1).
pub fn cx_qubit_ctrl(slot: Slot) -> Matrix {
    perm_from(|l, q| {
        if q == 1 {
            (flip_slot(l, slot), q)
        } else {
            (l, q)
        }
    })
}

/// `CZq{slot}`: controlled-Z between the bare qubit and encoded qubit `slot`
/// (384 ns for slot 0, 404 ns for slot 1). Symmetric in its operands.
pub fn cz(slot: Slot) -> Matrix {
    let mut d = vec![C64::ONE; 8];
    for l in 0..4 {
        if slot_val(l, slot) == 1 {
            d[2 * l + 1] = -C64::ONE;
        }
    }
    Matrix::from_diag(&d)
}

/// `SWAPq{slot}`: exchanges the bare qubit with encoded qubit `slot`
/// (680 ns for slot 0, 792 ns for slot 1).
pub fn swap(slot: Slot) -> Matrix {
    perm_from(|l, q| {
        let s = slot_val(l, slot);
        (set_slot(l, slot, q), s)
    })
}

/// Configuration of a mixed-radix Toffoli (Table 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrCcxConfig {
    /// `CCX01q` (412 ns): both controls encoded in the ququart, target is
    /// the bare qubit — the fast "controls together" configuration (§4.2.1).
    ControlsEncoded,
    /// `CCXq01` (619 ns): controls are the bare qubit and encoded qubit 0,
    /// target is encoded qubit 1 (split controls).
    CtrlQubitAndSlot0TargetSlot1,
    /// `CCX1q0` (697 ns): controls are encoded qubit 1 and the bare qubit,
    /// target is encoded qubit 0 (split controls).
    CtrlSlot1AndQubitTargetSlot0,
}

/// Mixed-radix Toffoli unitary for `config`.
pub fn ccx(config: MrCcxConfig) -> Matrix {
    match config {
        MrCcxConfig::ControlsEncoded => {
            // Flip the qubit iff the ququart is |3> (both encoded qubits 1).
            perm_from(|l, q| if l == 3 { (l, q ^ 1) } else { (l, q) })
        }
        MrCcxConfig::CtrlQubitAndSlot0TargetSlot1 => perm_from(|l, q| {
            if q == 1 && slot_val(l, Slot::S0) == 1 {
                (flip_slot(l, Slot::S1), q)
            } else {
                (l, q)
            }
        }),
        MrCcxConfig::CtrlSlot1AndQubitTargetSlot0 => perm_from(|l, q| {
            if q == 1 && slot_val(l, Slot::S1) == 1 {
                (flip_slot(l, Slot::S0), q)
            } else {
                (l, q)
            }
        }),
    }
}

/// `CCZ01q` (264 ns): target-independent doubly-controlled Z — phase `-1`
/// exactly when all three qubits are `|1>`, i.e. ququart `|3>` and qubit
/// `|1>` (§4.2.2).
pub fn ccz() -> Matrix {
    let mut d = vec![C64::ONE; 8];
    d[2 * 3 + 1] = -C64::ONE;
    Matrix::from_diag(&d)
}

/// Configuration of a mixed-radix Fredkin / CSWAP (Table 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrCswapConfig {
    /// `CSWAPq01` (444 ns): control on the bare qubit, both targets encoded
    /// — the fast "targets together" configuration (state changes confined
    /// to levels |1> and |2>, §4.2.3).
    TargetsEncoded,
    /// `CSWAP01q` (684 ns): control on encoded qubit 0, targets encoded
    /// qubit 1 and the bare qubit.
    CtrlSlot0,
    /// `CSWAP10q` (762 ns): control on encoded qubit 1, targets encoded
    /// qubit 0 and the bare qubit.
    CtrlSlot1,
}

/// Mixed-radix CSWAP unitary for `config`.
pub fn cswap(config: MrCswapConfig) -> Matrix {
    match config {
        MrCswapConfig::TargetsEncoded => perm_from(|l, q| {
            if q == 1 {
                // Swap the encoded pair: levels 1 <-> 2.
                let l2 = match l {
                    1 => 2,
                    2 => 1,
                    other => other,
                };
                (l2, q)
            } else {
                (l, q)
            }
        }),
        MrCswapConfig::CtrlSlot0 => perm_from(|l, q| {
            if slot_val(l, Slot::S0) == 1 {
                let s1 = slot_val(l, Slot::S1);
                (set_slot(l, Slot::S1, q), s1)
            } else {
                (l, q)
            }
        }),
        MrCswapConfig::CtrlSlot1 => perm_from(|l, q| {
            if slot_val(l, Slot::S1) == 1 {
                let s0 = slot_val(l, Slot::S0);
                (set_slot(l, Slot::S0, q), s0)
            } else {
                (l, q)
            }
        }),
    }
}

/// `ENC` (608 ns): compresses the qubit held in device B into the host
/// ququart A: `|a>_A |b>_B -> |2a + b>_A |0>_B` on the logical subspace.
///
/// Operands are **(host, source)**, both modeled as 4-level devices. The
/// unitary is a 16-dimensional permutation completing the logical map
/// bijectively (the completion is irrelevant for logical inputs; see
/// DESIGN.md §4).
pub fn enc() -> Matrix {
    // index = 4 * level_A + level_B.
    let mut perm: Vec<usize> = (0..16).collect();
    // Logical block: a, b in {0,1}.
    perm[0] = 0; // |0,0> -> |0,0>
    perm[1] = 4; // |0,1> -> |1,0>
    perm[4] = 8; // |1,0> -> |2,0>
    perm[5] = 12; // |1,1> -> |3,0>
                  // Completion: images 4, 8, 12 were vacated by inputs 8, 12 (a >= 2, b < 2).
    perm[8] = 1;
    perm[12] = 5;
    Matrix::permutation(&perm)
}

/// `DEC = ENC†` (608 ns): decodes the ququart back into two devices.
pub fn dec() -> Matrix {
    enc().dagger()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard;

    /// Builds the expected 8-dim unitary from a 3-qubit gate and an operand
    /// layout: `layout[k]` says where logical qubit `k` of `u3` lives
    /// (0 = slot0, 1 = slot1, 2 = bare qubit).
    fn from_three_qubit(u3: &Matrix, layout: [usize; 3]) -> Matrix {
        let mut m = Matrix::zeros(8, 8);
        // Composite index: (s0, s1, q) -> 2*(2*s0+s1)+q; logical index of u3:
        // bits in operand order.
        let phys_of = |bits: [usize; 3]| -> usize {
            // bits[k] = value of logical qubit k; place into its physical home.
            let mut s = [0usize; 3]; // s0, s1, q
            for k in 0..3 {
                s[layout[k]] = bits[k];
            }
            2 * (2 * s[0] + s[1]) + s[2]
        };
        for col in 0..8 {
            let cb = [(col >> 2) & 1, (col >> 1) & 1, col & 1];
            for row in 0..8 {
                let rb = [(row >> 2) & 1, (row >> 1) & 1, row & 1];
                m[(phys_of(rb), phys_of(cb))] = u3[(row, col)];
            }
        }
        m
    }

    #[test]
    fn all_mixed_gates_are_unitary() {
        for m in [
            cx_quart_ctrl(Slot::S0),
            cx_quart_ctrl(Slot::S1),
            cx_qubit_ctrl(Slot::S0),
            cx_qubit_ctrl(Slot::S1),
            cz(Slot::S0),
            cz(Slot::S1),
            swap(Slot::S0),
            swap(Slot::S1),
            ccx(MrCcxConfig::ControlsEncoded),
            ccx(MrCcxConfig::CtrlQubitAndSlot0TargetSlot1),
            ccx(MrCcxConfig::CtrlSlot1AndQubitTargetSlot0),
            ccz(),
            cswap(MrCswapConfig::TargetsEncoded),
            cswap(MrCswapConfig::CtrlSlot0),
            cswap(MrCswapConfig::CtrlSlot1),
            enc(),
            dec(),
        ] {
            assert!(m.is_unitary(1e-12));
        }
    }

    #[test]
    fn cx_quart_ctrl_matches_logical_cx() {
        // Control slot0, target bare qubit: logical CX(q0_enc, qubit).
        let expected = from_three_qubit(&Matrix::identity(2).kron(&standard::cx()), [1, 0, 2]);
        // The identity factor acts on slot1; CX acts on (slot0, qubit).
        assert!(cx_quart_ctrl(Slot::S0).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn cx_qubit_ctrl_flips_correct_slot() {
        // Control qubit, target slot1: |L0, q1> -> |L1, q1>.
        let m = cx_qubit_ctrl(Slot::S1);
        let mut v = vec![waltz_math::C64::ZERO; 8];
        v[1] = waltz_math::C64::ONE; // level 0, q=1
        assert!(m.apply(&v)[3].approx_eq(waltz_math::C64::ONE, 0.0)); // level 1, q=1
    }

    #[test]
    fn ccx_controls_encoded_equals_toffoli_on_layout() {
        // CCX(controls = s0, s1; target = qubit).
        let expected = from_three_qubit(&standard::ccx(), [0, 1, 2]);
        assert!(ccx(MrCcxConfig::ControlsEncoded).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn ccx_split_controls_match_layouts() {
        // CCXq01: controls (qubit, s0), target s1.
        let expected = from_three_qubit(&standard::ccx(), [2, 0, 1]);
        assert!(ccx(MrCcxConfig::CtrlQubitAndSlot0TargetSlot1).approx_eq(&expected, 1e-12));
        // CCX1q0: controls (s1, qubit), target s0.
        let expected = from_three_qubit(&standard::ccx(), [1, 2, 0]);
        assert!(ccx(MrCcxConfig::CtrlSlot1AndQubitTargetSlot0).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn ccz_matches_three_qubit_ccz_any_layout() {
        // CCZ is target independent: all layouts give the same matrix.
        for layout in [[0, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let expected = from_three_qubit(&standard::ccz(), layout);
            assert!(ccz().approx_eq(&expected, 1e-12), "layout {layout:?}");
        }
    }

    #[test]
    fn cswap_configs_match_layouts() {
        // Control qubit, targets (s0, s1).
        let expected = from_three_qubit(&standard::cswap(), [2, 0, 1]);
        assert!(cswap(MrCswapConfig::TargetsEncoded).approx_eq(&expected, 1e-12));
        // Control s0, targets (s1, qubit).
        let expected = from_three_qubit(&standard::cswap(), [0, 1, 2]);
        assert!(cswap(MrCswapConfig::CtrlSlot0).approx_eq(&expected, 1e-12));
        // Control s1, targets (s0, qubit).
        let expected = from_three_qubit(&standard::cswap(), [1, 0, 2]);
        assert!(cswap(MrCswapConfig::CtrlSlot1).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn ccx_is_ccz_conjugated_by_hadamard_on_target() {
        // H on the bare qubit (target) converts CCZ01q into CCX01q (Fig. 6c).
        let h_on_qubit = Matrix::identity(4).kron(&standard::h());
        let built = h_on_qubit.matmul(&ccz()).matmul(&h_on_qubit);
        assert!(built.approx_eq(&ccx(MrCcxConfig::ControlsEncoded), 1e-12));
    }

    #[test]
    fn enc_maps_logical_states() {
        let m = enc();
        // |a=1>_A |b=0>_B = index 4 -> |2>_A |0>_B = index 8.
        let mut v = vec![waltz_math::C64::ZERO; 16];
        v[4] = waltz_math::C64::ONE;
        assert!(m.apply(&v)[8].approx_eq(waltz_math::C64::ONE, 0.0));
        // |1,1> = index 5 -> |3,0> = index 12.
        let mut v = vec![waltz_math::C64::ZERO; 16];
        v[5] = waltz_math::C64::ONE;
        assert!(m.apply(&v)[12].approx_eq(waltz_math::C64::ONE, 0.0));
    }

    #[test]
    fn enc_dec_round_trip() {
        assert!(enc().matmul(&dec()).is_identity(1e-12));
        assert!(dec().matmul(&enc()).is_identity(1e-12));
    }

    #[test]
    fn enc_then_internal_gate_equals_two_qubit_gate_then_enc() {
        // ENC . (CX2 on A,B) == (internal CX1) . ENC on the logical subspace:
        // CX(control = a, target = b) becomes internal CX with control slot0.
        let cx_ab = crate::embed(&standard::cx(), &[2, 2], &[4, 4]);
        let internal = crate::encoding::internal_cx1().kron(&Matrix::identity(4));
        let lhs = enc().matmul(&cx_ab);
        let rhs = internal.matmul(&enc());
        // Compare action on the logical subspace only.
        for a in 0..2usize {
            for b in 0..2usize {
                let mut v = vec![waltz_math::C64::ZERO; 16];
                v[4 * a + b] = waltz_math::C64::ONE;
                let l = lhs.apply(&v);
                let r = rhs.apply(&v);
                for k in 0..16 {
                    assert!(l[k].approx_eq(r[k], 1e-12), "a={a} b={b} k={k}");
                }
            }
        }
    }

    #[test]
    fn mixed_swap_moves_qubit_into_slot() {
        // SWAPq0: |L0, q1> <-> |L2, q0>.
        let m = swap(Slot::S0);
        let mut v = vec![waltz_math::C64::ZERO; 8];
        v[1] = waltz_math::C64::ONE;
        assert!(m.apply(&v)[4].approx_eq(waltz_math::C64::ONE, 0.0));
    }
}
