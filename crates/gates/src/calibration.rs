//! Calibrated gate durations (Tables 1–2) and fidelity classes, with the
//! sensitivity knobs of the paper's Fig. 9 studies.

use crate::hw::{FqCcxConfig, FqCswapConfig, GateClass, HwGate, MrCcxConfig, MrCswapConfig, Slot};

/// Calibration database: pulse durations and fidelity classes.
///
/// [`GateLibrary::paper`] loads the exact numbers published in Tables 1–2
/// with the §3.3 fidelity targets (0.999 single-qudit, 0.99 two-qudit) and
/// the §6.2 iToffoli baseline (0.99, 912 ns).
///
/// The Fig. 9b sensitivity study is driven by
/// [`GateLibrary::with_ququart_error_scale`], which multiplies the *error*
/// (1 − F) of every gate touching ququart levels.
///
/// # Example
///
/// ```
/// use waltz_gates::{GateLibrary, HwGate};
///
/// let lib = GateLibrary::paper();
/// assert_eq!(lib.duration(&HwGate::QubitCx), 251.0);
/// assert!((lib.fidelity(&HwGate::QubitCx) - 0.99).abs() < 1e-12);
///
/// // Three-times-worse ququart gates (Fig. 9b x-axis point 3):
/// let degraded = GateLibrary::paper().with_ququart_error_scale(3.0);
/// assert!((degraded.fidelity(&HwGate::MrCcz) - 0.97).abs() < 1e-12);
/// assert_eq!(degraded.fidelity(&HwGate::QubitCx), lib.fidelity(&HwGate::QubitCx));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GateLibrary {
    single_qubit_fidelity: f64,
    single_quart_fidelity: f64,
    two_qubit_fidelity: f64,
    two_device_quart_fidelity: f64,
    itoffoli_fidelity: f64,
    ququart_error_scale: f64,
}

impl GateLibrary {
    /// The paper's calibration: §3.3 fidelity targets and Table 1–2
    /// durations.
    pub fn paper() -> Self {
        GateLibrary {
            single_qubit_fidelity: 0.999,
            single_quart_fidelity: 0.999,
            two_qubit_fidelity: 0.99,
            two_device_quart_fidelity: 0.99,
            itoffoli_fidelity: 0.99,
            ququart_error_scale: 1.0,
        }
    }

    /// Scales the error `(1 - F)` of every ququart-touching gate by
    /// `scale` (Fig. 9b sensitivity study).
    #[must_use]
    pub fn with_ququart_error_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0, "error scale must be non-negative");
        self.ququart_error_scale = scale;
        self
    }

    /// Overrides the base fidelity of a calibration class.
    #[must_use]
    pub fn with_class_fidelity(mut self, class: GateClass, fidelity: f64) -> Self {
        assert!((0.0..=1.0).contains(&fidelity), "fidelity must be in [0,1]");
        match class {
            GateClass::SingleQubit => self.single_qubit_fidelity = fidelity,
            GateClass::SingleQuart => self.single_quart_fidelity = fidelity,
            GateClass::TwoQubit => self.two_qubit_fidelity = fidelity,
            GateClass::TwoDeviceQuart => self.two_device_quart_fidelity = fidelity,
            GateClass::IToffoli => self.itoffoli_fidelity = fidelity,
        }
        self
    }

    /// Current ququart error scale.
    pub fn ququart_error_scale(&self) -> f64 {
        self.ququart_error_scale
    }

    /// Pulse duration in nanoseconds (Tables 1–2).
    pub fn duration(&self, gate: &HwGate) -> f64 {
        use HwGate::*;
        match gate {
            QubitU(_) => 35.0,
            QubitCx => 251.0,
            QubitCz => 236.0,
            QubitCsdg => 126.0,
            QubitSwap => 504.0,
            IToffoli => 912.0,
            QuartU { slot: Slot::S0, .. } => 87.0,
            QuartU { slot: Slot::S1, .. } => 66.0,
            QuartU2 { .. } => 86.0,
            QuartCx0 => 83.0,
            QuartCx1 => 84.0,
            QuartSwapIn => 78.0,
            // Internal CZ / CS† are not tabulated; same class/complexity as
            // the internal CX pulses (see DESIGN.md additions).
            QuartCzIn | QuartCsdgIn => 83.0,
            MrCxQuartCtrl { slot: Slot::S0 } => 560.0,
            MrCxQuartCtrl { slot: Slot::S1 } => 632.0,
            MrCxQubitCtrl { slot: Slot::S0 } => 880.0,
            MrCxQubitCtrl { slot: Slot::S1 } => 812.0,
            MrCz { slot: Slot::S0 } => 384.0,
            MrCz { slot: Slot::S1 } => 404.0,
            MrSwap { slot: Slot::S0 } => 680.0,
            MrSwap { slot: Slot::S1 } => 792.0,
            Enc | Dec => 608.0,
            MrCcx(MrCcxConfig::ControlsEncoded) => 412.0,
            MrCcx(MrCcxConfig::CtrlQubitAndSlot0TargetSlot1) => 619.0,
            MrCcx(MrCcxConfig::CtrlSlot1AndQubitTargetSlot0) => 697.0,
            MrCcz => 264.0,
            MrCswap(MrCswapConfig::TargetsEncoded) => 444.0,
            MrCswap(MrCswapConfig::CtrlSlot0) => 684.0,
            MrCswap(MrCswapConfig::CtrlSlot1) => 762.0,
            FqCx { ctrl: Slot::S0, .. } => 544.0,
            FqCx { ctrl: Slot::S1, .. } => 700.0,
            FqCz {
                a: Slot::S0,
                b: Slot::S0,
            } => 392.0,
            FqCz {
                a: Slot::S1,
                b: Slot::S1,
            } => 776.0,
            FqCz { .. } => 488.0,
            FqSwap {
                a: Slot::S0,
                b: Slot::S0,
            } => 916.0,
            FqSwap {
                a: Slot::S1,
                b: Slot::S1,
            } => 964.0,
            FqSwap { .. } => 892.0,
            FqCcx(FqCcxConfig::ControlsPair { tgt: Slot::S0 }) => 536.0,
            FqCcx(FqCcxConfig::ControlsPair { tgt: Slot::S1 }) => 552.0,
            FqCcx(FqCcxConfig::Split {
                actrl: Slot::S1,
                bctrl: Slot::S0,
            }) => 680.0,
            FqCcx(FqCcxConfig::Split { .. }) => 785.0,
            FqCcz { tgt: Slot::S0 } => 232.0,
            FqCcz { tgt: Slot::S1 } => 310.0,
            FqCswap(FqCswapConfig::TargetsPair { ctrl: Slot::S0 }) => 510.0,
            FqCswap(FqCswapConfig::TargetsPair { ctrl: Slot::S1 }) => 432.0,
            FqCswap(FqCswapConfig::Split {
                ctrl: Slot::S0,
                btgt: Slot::S0,
            }) => 680.0,
            FqCswap(FqCswapConfig::Split {
                ctrl: Slot::S0,
                btgt: Slot::S1,
            }) => 744.0,
            FqCswap(FqCswapConfig::Split {
                ctrl: Slot::S1,
                btgt: Slot::S0,
            }) => 758.0,
            FqCswap(FqCswapConfig::Split {
                ctrl: Slot::S1,
                btgt: Slot::S1,
            }) => 822.0,
        }
    }

    /// Gate success probability, with the ququart error scale applied to
    /// ququart-touching classes.
    pub fn fidelity(&self, gate: &HwGate) -> f64 {
        let base = match gate.class() {
            GateClass::SingleQubit => self.single_qubit_fidelity,
            GateClass::SingleQuart => self.single_quart_fidelity,
            GateClass::TwoQubit => self.two_qubit_fidelity,
            GateClass::TwoDeviceQuart => self.two_device_quart_fidelity,
            GateClass::IToffoli => self.itoffoli_fidelity,
        };
        if gate.touches_ququart() {
            (1.0 - self.ququart_error_scale * (1.0 - base)).max(0.0)
        } else {
            base
        }
    }
}

impl Default for GateLibrary {
    fn default() -> Self {
        GateLibrary::paper()
    }
}

// The wire-format impls live here rather than in `wire.rs` because the
// calibration fields are module-private: the codec is the one consumer
// allowed to see all six knobs at once (target fingerprints hash them).
impl waltz_codec::Encode for GateLibrary {
    fn encode(&self, w: &mut waltz_codec::ByteWriter) {
        w.put_f64(self.single_qubit_fidelity);
        w.put_f64(self.single_quart_fidelity);
        w.put_f64(self.two_qubit_fidelity);
        w.put_f64(self.two_device_quart_fidelity);
        w.put_f64(self.itoffoli_fidelity);
        w.put_f64(self.ququart_error_scale);
    }
}

impl waltz_codec::Decode for GateLibrary {
    fn decode(r: &mut waltz_codec::ByteReader<'_>) -> Result<Self, waltz_codec::DecodeError> {
        let lib = GateLibrary {
            single_qubit_fidelity: r.get_f64()?,
            single_quart_fidelity: r.get_f64()?,
            two_qubit_fidelity: r.get_f64()?,
            two_device_quart_fidelity: r.get_f64()?,
            itoffoli_fidelity: r.get_f64()?,
            ququart_error_scale: r.get_f64()?,
        };
        let fidelities = [
            lib.single_qubit_fidelity,
            lib.single_quart_fidelity,
            lib.two_qubit_fidelity,
            lib.two_device_quart_fidelity,
            lib.itoffoli_fidelity,
        ];
        if !fidelities.iter().all(|f| (0.0..=1.0).contains(f)) {
            return Err(waltz_codec::DecodeError::Invalid(
                "gate fidelity outside [0, 1]",
            ));
        }
        if lib.ququart_error_scale.is_nan() || lib.ququart_error_scale < 0.0 {
            return Err(waltz_codec::DecodeError::Invalid(
                "negative ququart error scale",
            ));
        }
        Ok(lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_qubit_only_durations() {
        let lib = GateLibrary::paper();
        assert_eq!(lib.duration(&HwGate::QubitU(crate::Q1Gate::X)), 35.0);
        assert_eq!(lib.duration(&HwGate::QubitCx), 251.0);
        assert_eq!(lib.duration(&HwGate::QubitCz), 236.0);
        assert_eq!(lib.duration(&HwGate::QubitCsdg), 126.0);
        assert_eq!(lib.duration(&HwGate::QubitSwap), 504.0);
        assert_eq!(lib.duration(&HwGate::IToffoli), 912.0);
    }

    #[test]
    fn table1_qudit_internal_durations() {
        let lib = GateLibrary::paper();
        assert_eq!(
            lib.duration(&HwGate::QuartU {
                slot: Slot::S0,
                gate: crate::Q1Gate::H
            }),
            87.0
        );
        assert_eq!(
            lib.duration(&HwGate::QuartU {
                slot: Slot::S1,
                gate: crate::Q1Gate::H
            }),
            66.0
        );
        assert_eq!(
            lib.duration(&HwGate::QuartU2 {
                g0: crate::Q1Gate::H,
                g1: crate::Q1Gate::H
            }),
            86.0
        );
        assert_eq!(lib.duration(&HwGate::QuartCx0), 83.0);
        assert_eq!(lib.duration(&HwGate::QuartCx1), 84.0);
        assert_eq!(lib.duration(&HwGate::QuartSwapIn), 78.0);
    }

    #[test]
    fn table1_mixed_radix_durations() {
        let lib = GateLibrary::paper();
        assert_eq!(
            lib.duration(&HwGate::MrCxQuartCtrl { slot: Slot::S0 }),
            560.0
        );
        assert_eq!(
            lib.duration(&HwGate::MrCxQuartCtrl { slot: Slot::S1 }),
            632.0
        );
        assert_eq!(
            lib.duration(&HwGate::MrCxQubitCtrl { slot: Slot::S0 }),
            880.0
        );
        assert_eq!(
            lib.duration(&HwGate::MrCxQubitCtrl { slot: Slot::S1 }),
            812.0
        );
        assert_eq!(lib.duration(&HwGate::MrCz { slot: Slot::S0 }), 384.0);
        assert_eq!(lib.duration(&HwGate::MrCz { slot: Slot::S1 }), 404.0);
        assert_eq!(lib.duration(&HwGate::MrSwap { slot: Slot::S0 }), 680.0);
        assert_eq!(lib.duration(&HwGate::MrSwap { slot: Slot::S1 }), 792.0);
        assert_eq!(lib.duration(&HwGate::Enc), 608.0);
    }

    #[test]
    fn table1_full_ququart_durations() {
        let lib = GateLibrary::paper();
        assert_eq!(
            lib.duration(&HwGate::FqCx {
                ctrl: Slot::S0,
                tgt: Slot::S0
            }),
            544.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCx {
                ctrl: Slot::S0,
                tgt: Slot::S1
            }),
            544.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCx {
                ctrl: Slot::S1,
                tgt: Slot::S0
            }),
            700.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCx {
                ctrl: Slot::S1,
                tgt: Slot::S1
            }),
            700.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCz {
                a: Slot::S0,
                b: Slot::S0
            }),
            392.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCz {
                a: Slot::S0,
                b: Slot::S1
            }),
            488.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCz {
                a: Slot::S1,
                b: Slot::S1
            }),
            776.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqSwap {
                a: Slot::S0,
                b: Slot::S0
            }),
            916.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqSwap {
                a: Slot::S0,
                b: Slot::S1
            }),
            892.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqSwap {
                a: Slot::S1,
                b: Slot::S1
            }),
            964.0
        );
    }

    #[test]
    fn table2_mixed_radix_three_qubit_durations() {
        let lib = GateLibrary::paper();
        assert_eq!(
            lib.duration(&HwGate::MrCcx(MrCcxConfig::ControlsEncoded)),
            412.0
        );
        assert_eq!(
            lib.duration(&HwGate::MrCcx(MrCcxConfig::CtrlQubitAndSlot0TargetSlot1)),
            619.0
        );
        assert_eq!(
            lib.duration(&HwGate::MrCcx(MrCcxConfig::CtrlSlot1AndQubitTargetSlot0)),
            697.0
        );
        assert_eq!(lib.duration(&HwGate::MrCcz), 264.0);
        assert_eq!(
            lib.duration(&HwGate::MrCswap(MrCswapConfig::TargetsEncoded)),
            444.0
        );
        assert_eq!(
            lib.duration(&HwGate::MrCswap(MrCswapConfig::CtrlSlot0)),
            684.0
        );
        assert_eq!(
            lib.duration(&HwGate::MrCswap(MrCswapConfig::CtrlSlot1)),
            762.0
        );
    }

    #[test]
    fn table2_full_ququart_three_qubit_durations() {
        let lib = GateLibrary::paper();
        assert_eq!(
            lib.duration(&HwGate::FqCcx(FqCcxConfig::ControlsPair { tgt: Slot::S0 })),
            536.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCcx(FqCcxConfig::ControlsPair { tgt: Slot::S1 })),
            552.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCcx(FqCcxConfig::Split {
                actrl: Slot::S0,
                bctrl: Slot::S0
            })),
            785.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCcx(FqCcxConfig::Split {
                actrl: Slot::S1,
                bctrl: Slot::S0
            })),
            680.0
        );
        assert_eq!(lib.duration(&HwGate::FqCcz { tgt: Slot::S0 }), 232.0);
        assert_eq!(lib.duration(&HwGate::FqCcz { tgt: Slot::S1 }), 310.0);
        assert_eq!(
            lib.duration(&HwGate::FqCswap(FqCswapConfig::TargetsPair {
                ctrl: Slot::S0
            })),
            510.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCswap(FqCswapConfig::TargetsPair {
                ctrl: Slot::S1
            })),
            432.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCswap(FqCswapConfig::Split {
                ctrl: Slot::S0,
                btgt: Slot::S0
            })),
            680.0
        );
        assert_eq!(
            lib.duration(&HwGate::FqCswap(FqCswapConfig::Split {
                ctrl: Slot::S1,
                btgt: Slot::S1
            })),
            822.0
        );
    }

    #[test]
    fn fidelity_classes_match_paper_targets() {
        let lib = GateLibrary::paper();
        assert!((lib.fidelity(&HwGate::QubitU(crate::Q1Gate::X)) - 0.999).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::QuartCx0) - 0.999).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::QubitCx) - 0.99).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::MrCcz) - 0.99).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::IToffoli) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn error_scale_only_touches_ququart_gates() {
        let lib = GateLibrary::paper().with_ququart_error_scale(4.0);
        assert!((lib.fidelity(&HwGate::MrCcz) - 0.96).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::QuartCx0) - 0.996).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::QubitCx) - 0.99).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::IToffoli) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn fidelity_clamped_at_zero() {
        let lib = GateLibrary::paper().with_ququart_error_scale(1000.0);
        assert_eq!(lib.fidelity(&HwGate::MrCcz), 0.0);
    }

    #[test]
    fn class_fidelity_override() {
        let lib = GateLibrary::paper().with_class_fidelity(GateClass::TwoQubit, 0.95);
        assert!((lib.fidelity(&HwGate::QubitCx) - 0.95).abs() < 1e-12);
        assert!((lib.fidelity(&HwGate::MrCcz) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn internal_gates_are_faster_and_better_than_qubit_cx() {
        // Paper §3.4: encoded-pair gates are faster and higher fidelity than
        // two-device qubit gates.
        let lib = GateLibrary::paper();
        assert!(lib.duration(&HwGate::QuartCx0) < lib.duration(&HwGate::QubitCx));
        assert!(lib.fidelity(&HwGate::QuartCx0) > lib.fidelity(&HwGate::QubitCx));
        assert!(lib.duration(&HwGate::QuartSwapIn) * 5.0 < lib.duration(&HwGate::QubitSwap) * 1.01);
    }

    #[test]
    fn ccz_configurations_are_fastest_three_qubit_gates() {
        // §4.2.2: CCZ pulses are remarkably fast — on par with 2q gates.
        let lib = GateLibrary::paper();
        assert!(
            lib.duration(&HwGate::MrCcz)
                < lib.duration(&HwGate::MrCcx(MrCcxConfig::ControlsEncoded))
        );
        assert!(
            lib.duration(&HwGate::FqCcz { tgt: Slot::S0 })
                < lib.duration(&HwGate::FqCcx(FqCcxConfig::ControlsPair { tgt: Slot::S0 }))
        );
    }
}
