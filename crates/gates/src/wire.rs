//! Wire-format ([`waltz_codec`]) implementation for [`Q1Gate`].
//!
//! Variants travel as a one-byte tag; the parameterized rotations append
//! their angle as an IEEE-754 bit pattern so round trips are bit-exact.

use waltz_codec::{ByteReader, ByteWriter, Decode, DecodeError, Encode};

use crate::Q1Gate;

impl Encode for Q1Gate {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Q1Gate::I => w.put_u8(0),
            Q1Gate::X => w.put_u8(1),
            Q1Gate::Y => w.put_u8(2),
            Q1Gate::Z => w.put_u8(3),
            Q1Gate::H => w.put_u8(4),
            Q1Gate::S => w.put_u8(5),
            Q1Gate::Sdg => w.put_u8(6),
            Q1Gate::T => w.put_u8(7),
            Q1Gate::Tdg => w.put_u8(8),
            Q1Gate::Rx(theta) => {
                w.put_u8(9);
                w.put_f64(*theta);
            }
            Q1Gate::Ry(theta) => {
                w.put_u8(10);
                w.put_f64(*theta);
            }
            Q1Gate::Rz(theta) => {
                w.put_u8(11);
                w.put_f64(*theta);
            }
        }
    }
}

impl Decode for Q1Gate {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => Q1Gate::I,
            1 => Q1Gate::X,
            2 => Q1Gate::Y,
            3 => Q1Gate::Z,
            4 => Q1Gate::H,
            5 => Q1Gate::S,
            6 => Q1Gate::Sdg,
            7 => Q1Gate::T,
            8 => Q1Gate::Tdg,
            9 => Q1Gate::Rx(r.get_f64()?),
            10 => Q1Gate::Ry(r.get_f64()?),
            11 => Q1Gate::Rz(r.get_f64()?),
            tag => return Err(DecodeError::BadTag { ty: "Q1Gate", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use waltz_codec::{decode_from_slice, encode_to_vec};

    use super::*;

    #[test]
    fn every_variant_round_trips() {
        for g in [
            Q1Gate::I,
            Q1Gate::X,
            Q1Gate::Y,
            Q1Gate::Z,
            Q1Gate::H,
            Q1Gate::S,
            Q1Gate::Sdg,
            Q1Gate::T,
            Q1Gate::Tdg,
            Q1Gate::Rx(0.5),
            Q1Gate::Ry(-1.25),
            Q1Gate::Rz(std::f64::consts::PI),
        ] {
            let bytes = encode_to_vec(&g);
            let back: Q1Gate = decode_from_slice(&bytes).unwrap();
            assert_eq!(back, g);
            assert_eq!(encode_to_vec(&back), bytes);
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(matches!(
            decode_from_slice::<Q1Gate>(&[99]).unwrap_err(),
            DecodeError::BadTag { ty: "Q1Gate", .. }
        ));
    }
}
