//! Expected-probability-of-success estimation (§6.3).
//!
//! Two multiplicative factors:
//!
//! * **Gate EPS** — the product of all gate success rates.
//! * **Coherence EPS** — `prod_qudits exp(-sum_k k * t_k / T1)` where `t_k`
//!   is the time the qudit spends with maximum occupied level `k`: weight 1
//!   while in the qubit regime (`|1>` highest), weight 3 while encoded
//!   (`|3>` highest).

use waltz_noise::CoherenceModel;
use waltz_sim::TimedCircuit;

/// A window during which a device's maximum occupied level is `level`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceSpan {
    /// Physical device.
    pub device: usize,
    /// Maximum occupied level during the span (1 = qubit regime, 3 =
    /// encoded ququart).
    pub level: usize,
    /// Span start (ns).
    pub start_ns: f64,
    /// Span end (ns).
    pub end_ns: f64,
}

impl CoherenceSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        (self.end_ns - self.start_ns).max(0.0)
    }
}

/// The EPS estimate, factored as the paper's Fig. 8 reports it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsBreakdown {
    /// Product of gate success rates.
    pub gate: f64,
    /// Probability of no decoherence event.
    pub coherence: f64,
}

impl EpsBreakdown {
    /// Total EPS: gate x coherence.
    pub fn total(&self) -> f64 {
        self.gate * self.coherence
    }
}

/// Computes the EPS of a scheduled circuit given its coherence timeline.
pub fn eps(timed: &TimedCircuit, spans: &[CoherenceSpan], model: &CoherenceModel) -> EpsBreakdown {
    let gate = timed.gate_eps();
    let mut log_coherence = 0.0f64;
    for span in spans {
        // survival = exp(-rate(level) * duration)
        let s = model.survival(span.level, span.duration_ns());
        log_coherence += s.ln();
    }
    EpsBreakdown {
        gate,
        coherence: log_coherence.exp(),
    }
}

/// Builds a constant-level timeline: every device holds `level` for the
/// whole circuit duration (used by the qubit-only and full-ququart
/// regimes).
pub fn uniform_spans(
    n_devices: usize,
    level_per_device: &[usize],
    total_ns: f64,
) -> Vec<CoherenceSpan> {
    assert_eq!(level_per_device.len(), n_devices);
    (0..n_devices)
        .map(|d| CoherenceSpan {
            device: d,
            level: level_per_device[d],
            start_ns: 0.0,
            end_ns: total_ns,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_sim::Register;

    #[test]
    fn eps_combines_gate_and_coherence() {
        let reg = Register::qubits(2);
        let mut tc = TimedCircuit::new(reg);
        tc.ops.push(waltz_sim::TimedOp::new(
            "cx",
            waltz_gates::standard::cx(),
            vec![0, 1],
            vec![2, 2],
            0.0,
            251.0,
            0.99,
        ));
        tc.total_duration_ns = 251.0;
        let model = CoherenceModel::paper();
        let spans = uniform_spans(2, &[1, 1], 251.0);
        let e = eps(&tc, &spans, &model);
        assert!((e.gate - 0.99).abs() < 1e-12);
        let expected_coh = (-2.0 * 251.0 / 163_450.0f64).exp();
        assert!((e.coherence - expected_coh).abs() < 1e-12);
        assert!((e.total() - e.gate * e.coherence).abs() < 1e-15);
    }

    #[test]
    fn encoded_spans_decay_three_times_faster() {
        let model = CoherenceModel::paper();
        let qubit_span = [CoherenceSpan {
            device: 0,
            level: 1,
            start_ns: 0.0,
            end_ns: 1000.0,
        }];
        let quart_span = [CoherenceSpan {
            device: 0,
            level: 3,
            start_ns: 0.0,
            end_ns: 1000.0,
        }];
        let tc = TimedCircuit::new(Register::qubits(1));
        let a = eps(&tc, &qubit_span, &model).coherence;
        let b = eps(&tc, &quart_span, &model).coherence;
        assert!((b - a.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_has_unit_eps() {
        let tc = TimedCircuit::new(Register::qubits(1));
        let e = eps(&tc, &[], &CoherenceModel::paper());
        assert_eq!(e.gate, 1.0);
        assert_eq!(e.coherence, 1.0);
    }

    #[test]
    fn negative_duration_spans_are_clamped() {
        let s = CoherenceSpan {
            device: 0,
            level: 3,
            start_ns: 10.0,
            end_ns: 5.0,
        };
        assert_eq!(s.duration_ns(), 0.0);
    }
}
