//! The unscheduled hardware program and its ASAP scheduler.

use waltz_gates::{embed, GateLibrary, HwGate};
use waltz_sim::{Register, TimedCircuit, TimedOp};

/// One hardware gate bound to physical devices.
#[derive(Debug, Clone, PartialEq)]
pub struct HwOp {
    /// The pulse.
    pub gate: HwGate,
    /// Operand devices, in the gate's conventional order.
    pub devices: Vec<usize>,
}

/// An ordered hardware program over a device register, prior to
/// scheduling.
#[derive(Debug, Clone)]
pub struct HwProgram {
    dims: Vec<u8>,
    ops: Vec<HwOp>,
}

impl HwProgram {
    /// An empty program over devices with the given simulated dimensions.
    pub fn new(dims: Vec<u8>) -> Self {
        HwProgram {
            dims,
            ops: Vec::new(),
        }
    }

    /// Device dimensions.
    pub fn dims(&self) -> &[u8] {
        &self.dims
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[HwOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a gate on the given devices.
    ///
    /// # Panics
    ///
    /// Panics if the operand count mismatches the gate arity, a device
    /// repeats or is out of range, or a logical dimension exceeds the
    /// device dimension.
    pub fn push(&mut self, gate: HwGate, devices: Vec<usize>) {
        let dims = gate.logical_dims();
        assert_eq!(
            devices.len(),
            dims.len(),
            "operand count mismatch for {gate:?}"
        );
        for (i, &d) in devices.iter().enumerate() {
            assert!(d < self.dims.len(), "device {d} out of range");
            assert!(
                dims[i] <= self.dims[d] as usize,
                "gate {gate:?} needs a {}-level device at operand {i}, device {d} has {}",
                dims[i],
                self.dims[d]
            );
            for &other in devices.iter().skip(i + 1) {
                assert_ne!(d, other, "repeated device operand in {gate:?}");
            }
        }
        self.ops.push(HwOp { gate, devices });
    }

    /// Counts ops per hardware-gate label.
    pub fn histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut h = std::collections::BTreeMap::new();
        for op in &self.ops {
            *h.entry(label_of(&op.gate)).or_insert(0) += 1;
        }
        h
    }

    /// ASAP-schedules the program with the library's calibrated durations,
    /// embedding each unitary to the device dimensions.
    pub fn schedule(&self, lib: &GateLibrary) -> TimedCircuit {
        let register = Register::new(self.dims.clone());
        let mut free_at = vec![0.0f64; self.dims.len()];
        let mut timed = TimedCircuit::new(register);
        let mut total: f64 = 0.0;
        for op in &self.ops {
            let logical_dims = op.gate.logical_dims();
            let dev_dims: Vec<usize> = op.devices.iter().map(|&d| self.dims[d] as usize).collect();
            let unitary = embed(&op.gate.unitary(), &logical_dims, &dev_dims);
            let start = op
                .devices
                .iter()
                .map(|&d| free_at[d])
                .fold(0.0f64, f64::max);
            let duration = lib.duration(&op.gate);
            for &d in &op.devices {
                free_at[d] = start + duration;
            }
            total = total.max(start + duration);
            // TimedOp::new classifies the embedded unitary into its
            // GateKernel here, once per compile, so every simulation of
            // the schedule reuses the specialized apply path.
            timed.ops.push(TimedOp::new(
                label_of(&op.gate),
                unitary,
                op.devices.clone(),
                logical_dims.iter().map(|&d| d as u8).collect(),
                start,
                duration,
                lib.fidelity(&op.gate),
            ));
        }
        timed.total_duration_ns = total;
        timed
    }
}

/// Short display label for a hardware gate.
pub fn label_of(gate: &HwGate) -> String {
    match gate {
        HwGate::QubitU(g) => format!("U({g:?})"),
        HwGate::QuartU { slot, gate } => format!("QuartU{}({gate:?})", slot.index()),
        HwGate::QuartU2 { .. } => "QuartU01".into(),
        HwGate::MrCcx(c) => format!("MrCcx::{c:?}"),
        HwGate::MrCswap(c) => format!("MrCswap::{c:?}"),
        HwGate::FqCcx(c) => format!("FqCcx::{c:?}"),
        HwGate::FqCswap(c) => format!("FqCswap::{c:?}"),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_gates::Q1Gate;

    #[test]
    fn schedule_is_asap_and_valid() {
        let mut p = HwProgram::new(vec![2, 2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![1, 2]);
        let lib = GateLibrary::paper();
        let tc = p.schedule(&lib);
        assert!(tc.validate().is_ok());
        // H gates run in parallel at t=0.
        assert_eq!(tc.ops[0].start_ns, 0.0);
        assert_eq!(tc.ops[1].start_ns, 0.0);
        // First CX waits for H on 0.
        assert_eq!(tc.ops[2].start_ns, 35.0);
        // Second CX waits for first (shares device 1) and H(2).
        assert_eq!(tc.ops[3].start_ns, 35.0 + 251.0);
        assert_eq!(tc.total_duration_ns, 35.0 + 251.0 + 251.0);
    }

    #[test]
    fn schedule_embeds_to_device_dims() {
        let mut p = HwProgram::new(vec![4, 4]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        let tc = p.schedule(&GateLibrary::paper());
        assert_eq!(tc.ops[0].unitary.rows(), 16);
        assert_eq!(tc.ops[0].error_dims, vec![2, 2]);
        assert!(tc.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "needs a 4-level device")]
    fn quart_gate_on_qubit_device_rejected() {
        let mut p = HwProgram::new(vec![2]);
        p.push(HwGate::QuartCx0, vec![0]);
    }

    #[test]
    #[should_panic(expected = "repeated device")]
    fn repeated_operand_rejected() {
        let mut p = HwProgram::new(vec![2, 2]);
        p.push(HwGate::QubitCx, vec![1, 1]);
    }

    #[test]
    fn histogram_counts_labels() {
        let mut p = HwProgram::new(vec![2, 2]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        let h = p.histogram();
        assert_eq!(h["QubitCx"], 2);
        assert_eq!(h["U(H)"], 1);
    }
}
