//! The unscheduled hardware program, its level-occupancy analysis
//! (whole-program *and* time-sliced) and its ASAP scheduler.
//!
//! Occupancy: every [`HwProgram::push`] advances a forward support
//! analysis that bounds, per device, the highest level the program can
//! ever populate (starting from a caller-declared entry occupancy — the
//! qubit subspace for bare-device regimes). The paper's mixed-radix
//! strategy only *temporarily* excites ENC hosts into ququart states, so
//! most devices provably never leave their lowest two levels;
//! [`HwProgram::demote_to_occupancy`] shrinks the simulated register to
//! exactly the occupied dimensions, and [`HwProgram::schedule`] restricts
//! each embedded unitary to the occupied subspace
//! ([`waltz_gates::embed_demoted`]).
//!
//! The analysis also keeps the full *occupancy profile* (the per-device
//! bound after every push), which is what makes the whole-program maximum
//! refinable in time: [`HwProgram::window_registers`] cuts the program at
//! the points where any device's occupied dimension changes (the
//! `ENC`/`DEC` window boundaries) and assigns each resulting segment its
//! own register, merging adjacent segments back whenever a cost model
//! says the state-copy at the boundary would cost more sweep-bytes than
//! the smaller register saves. [`HwProgram::schedule_windowed`] then
//! emits a [`waltz_sim::SegmentedCircuit`] whose segments share one ASAP
//! timeline (identical timing to [`HwProgram::schedule`]) but carry
//! per-segment registers.

use std::ops::Range;

use waltz_gates::{embed_demoted, GateLibrary, HwGate, SUPPORT_TOL};
use waltz_math::Matrix;
use waltz_sim::{Register, SegmentedCircuit, TimedCircuit, TimedOp};

/// One hardware gate bound to physical devices.
#[derive(Debug, Clone, PartialEq)]
pub struct HwOp {
    /// The pulse.
    pub gate: HwGate,
    /// Operand devices, in the gate's conventional order.
    pub devices: Vec<usize>,
}

/// An ordered hardware program over a device register, prior to
/// scheduling.
#[derive(Debug, Clone)]
pub struct HwProgram {
    dims: Vec<u8>,
    ops: Vec<HwOp>,
    /// Upper bound on the levels each device currently populates (forward
    /// support analysis, updated per push).
    cur_occ: Vec<u8>,
    /// Highest `cur_occ` each device ever reached, clamped at 2 (a
    /// register dimension cannot shrink below a qubit) — the dimensions a
    /// demoted register must provide.
    peak_occ: Vec<u8>,
    /// The declared pre-program occupancy (what `cur_occ` started as).
    entry_occ: Vec<u8>,
    /// Occupancy profile: the `cur_occ` snapshot after each push — the
    /// time-indexed data the windowed analysis cuts segments from.
    occ_after: Vec<Vec<u8>>,
}

/// Per-operand output support of `u` (on logical dims `ld`) when its
/// inputs are confined to levels `< in_dims[i]`: the smallest dimensions
/// containing every row reachable from an in-support column. Entries at
/// or below [`SUPPORT_TOL`] count as structural zeros.
fn support_after(u: &Matrix, ld: &[usize], in_dims: &[usize]) -> Vec<usize> {
    let total = u.rows();
    let digits = |mut idx: usize, out: &mut [usize]| {
        for k in (0..ld.len()).rev() {
            out[k] = idx % ld[k];
            idx /= ld[k];
        }
    };
    let mut need = vec![1usize; ld.len()];
    let mut col_digits = vec![0usize; ld.len()];
    let mut row_digits = vec![0usize; ld.len()];
    for col in 0..total {
        digits(col, &mut col_digits);
        if col_digits.iter().zip(in_dims).any(|(&dig, &m)| dig >= m) {
            continue;
        }
        for row in 0..total {
            if u[(row, col)].abs() <= SUPPORT_TOL {
                continue;
            }
            digits(row, &mut row_digits);
            for (n, &dig) in need.iter_mut().zip(&row_digits) {
                *n = (*n).max(dig + 1);
            }
        }
    }
    need
}

impl HwProgram {
    /// An empty program over devices with the given simulated dimensions.
    ///
    /// Entry occupancy defaults to the full device dimensions (sound for
    /// any initial state); regimes whose devices start in the qubit
    /// subspace should call [`HwProgram::set_entry_occupancy`] before
    /// pushing gates so the occupancy analysis can prove demotions.
    pub fn new(dims: Vec<u8>) -> Self {
        let cur_occ = dims.clone();
        let peak_occ = dims.iter().map(|&d| d.max(2)).collect();
        let entry_occ = dims.clone();
        HwProgram {
            dims,
            ops: Vec::new(),
            cur_occ,
            peak_occ,
            entry_occ,
            occ_after: Vec::new(),
        }
    }

    /// Declares the levels each device may populate *before the first
    /// gate* (e.g. `2` everywhere for bare-device regimes whose inputs
    /// are qubit products, §6.4). Tightening the entry support is what
    /// lets the analysis prove most mixed-radix devices never leave the
    /// qubit subspace.
    ///
    /// # Panics
    ///
    /// Panics if gates were already pushed, the length mismatches, or an
    /// entry exceeds its device dimension.
    pub fn set_entry_occupancy(&mut self, occ: Vec<u8>) {
        assert!(
            self.ops.is_empty(),
            "entry occupancy must be set before the first gate"
        );
        assert_eq!(occ.len(), self.dims.len(), "occupancy length mismatch");
        for (o, d) in occ.iter().zip(&self.dims) {
            assert!(*o >= 1 && o <= d, "entry occupancy out of range");
        }
        self.cur_occ.clone_from(&occ);
        self.peak_occ = occ.iter().map(|&o| o.max(2)).collect();
        self.entry_occ = occ;
    }

    /// Device dimensions.
    pub fn dims(&self) -> &[u8] {
        &self.dims
    }

    /// The occupancy analysis result so far: per device, the highest
    /// level bound the program ever populates (at least 2 — a register
    /// dimension cannot shrink below a qubit). Borrowed from the
    /// analysis state: no allocation per call.
    pub fn occupancy(&self) -> &[u8] {
        &self.peak_occ
    }

    /// The demotion step: shrinks the device dimensions to the occupancy
    /// analysis result, so scheduling embeds every unitary into the
    /// smallest register that holds the program's reachable states.
    ///
    /// Devices whose demoted dimension is smaller than some gate's
    /// logical dimension (mixed-radix `ENC`/`DEC` partners) are kept only
    /// when every such gate leaves the occupied subspace closed
    /// ([`waltz_gates::restriction_closed`]); otherwise the offending
    /// operands are promoted back and the check reruns to a fixpoint.
    /// Dimensions never grow past the physical dimensions, so this is a
    /// no-op for programs that genuinely use their full register.
    pub fn demote_to_occupancy(&mut self) {
        let dims: Vec<u8> = self
            .peak_occ
            .iter()
            .zip(&self.dims)
            .map(|(&p, &d)| p.min(d))
            .collect();
        let cap = self.dims.clone();
        self.dims = self.closed_dims(0..self.ops.len(), dims, &cap);
    }

    /// Closure fixpoint of candidate register dimensions against the ops
    /// in `range`: any gate whose restriction to the candidate subspace
    /// would not stay unitary ([`waltz_gates::restriction_closed`])
    /// promotes its operands toward their logical dimensions, capped at
    /// `cap` (the physical — or already-demoted — dimensions). Rescans
    /// until no op forces a promotion: promoting a device can break
    /// closure of an op checked earlier (closure is not monotone in the
    /// subspace).
    fn closed_dims(&self, range: Range<usize>, mut dims: Vec<u8>, cap: &[u8]) -> Vec<u8> {
        loop {
            let mut changed = false;
            for op in &self.ops[range.clone()] {
                let ld = op.gate.logical_dims();
                if op
                    .devices
                    .iter()
                    .zip(&ld)
                    .all(|(&d, &l)| dims[d] as usize >= l)
                {
                    continue;
                }
                let sub: Vec<usize> = op
                    .devices
                    .iter()
                    .zip(&ld)
                    .map(|(&d, &l)| l.min(dims[d] as usize))
                    .collect();
                if !waltz_gates::restriction_closed(&op.gate.unitary(), &ld, &sub) {
                    for (i, &d) in op.devices.iter().enumerate() {
                        let l = (ld[i].min(cap[d] as usize)) as u8;
                        if dims[d] < l {
                            dims[d] = l;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return dims;
            }
        }
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[HwOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a gate on the given devices.
    ///
    /// # Panics
    ///
    /// Panics if the operand count mismatches the gate arity, a device
    /// repeats or is out of range, or a logical dimension exceeds the
    /// device dimension.
    pub fn push(&mut self, gate: HwGate, devices: Vec<usize>) {
        let logical = gate.logical_dims();
        assert_eq!(
            devices.len(),
            logical.len(),
            "operand count mismatch for {gate:?}"
        );
        for (i, &d) in devices.iter().enumerate() {
            assert!(d < self.dims.len(), "device {d} out of range");
            assert!(
                logical[i] <= self.dims[d] as usize,
                "gate {gate:?} needs a {}-level device at operand {i}, device {d} has {}",
                logical[i],
                self.dims[d]
            );
            for &other in devices.iter().skip(i + 1) {
                assert_ne!(d, other, "repeated device operand in {gate:?}");
            }
        }
        // Occupancy transfer: propagate each operand's current support
        // through the gate's unitary. Levels at or above the gate's
        // logical dimension are untouched by the (identity-padded)
        // embedding, so support already present there persists.
        let in_dims: Vec<usize> = devices
            .iter()
            .zip(&logical)
            .map(|(&d, &l)| l.min(self.cur_occ[d] as usize))
            .collect();
        let out = support_after(&gate.unitary(), &logical, &in_dims);
        for (i, &d) in devices.iter().enumerate() {
            let keep = if (self.cur_occ[d] as usize) > logical[i] {
                self.cur_occ[d] as usize
            } else {
                0
            };
            let new = out[i].max(keep).min(self.dims[d] as usize) as u8;
            self.cur_occ[d] = new;
            self.peak_occ[d] = self.peak_occ[d].max(new);
        }
        self.occ_after.push(self.cur_occ.clone());
        self.ops.push(HwOp { gate, devices });
    }

    /// Counts ops per hardware-gate label.
    pub fn histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut h = std::collections::BTreeMap::new();
        for op in &self.ops {
            *h.entry(label_of(&op.gate)).or_insert(0) += 1;
        }
        h
    }

    /// ASAP-schedules the program with the library's calibrated durations,
    /// embedding each unitary to the device dimensions. On a demoted
    /// register ([`HwProgram::demote_to_occupancy`]) a gate whose logical
    /// dimension exceeds an operand's device dimension is *restricted* to
    /// the occupied subspace instead — sound because demotion verified the
    /// gate keeps that subspace closed.
    pub fn schedule(&self, lib: &GateLibrary) -> TimedCircuit {
        let register = Register::new(self.dims.clone());
        let mut free_at = vec![0.0f64; self.dims.len()];
        let mut timed = TimedCircuit::new(register);
        let mut total: f64 = 0.0;
        for op in &self.ops {
            timed
                .ops
                .push(schedule_op(op, &self.dims, lib, &mut free_at, &mut total));
        }
        timed.total_duration_ns = total;
        timed
    }

    /// The per-op required dimensions of the windowed analysis: during op
    /// `i`, device `d` must provide the larger of its occupancy bound
    /// entering and leaving the op (an `ENC` needs its host at dimension
    /// 4 the moment it fires, a `DEC` until the moment it completes),
    /// clamped to at least a qubit and at most the current register
    /// dimensions.
    fn required_dims(&self, i: usize) -> Vec<u8> {
        let before = if i == 0 {
            &self.entry_occ
        } else {
            &self.occ_after[i - 1]
        };
        before
            .iter()
            .zip(&self.occ_after[i])
            .zip(&self.dims)
            .map(|((&b, &a), &cap)| b.max(a).clamp(2, cap))
            .collect()
    }

    /// The time-sliced occupancy analysis: cuts the program wherever any
    /// device's occupied dimension changes (the `ENC`/`DEC` window
    /// boundaries) and assigns each segment the smallest register that
    /// holds its ops (closure-checked like
    /// [`HwProgram::demote_to_occupancy`], promotions capped at the
    /// current register dimensions so a segment never exceeds the
    /// whole-program register).
    ///
    /// A reshape at a segment boundary costs one state copy, so adjacent
    /// segments are greedily merged back whenever the copy costs more
    /// than the smaller registers save: with each op priced as one sweep
    /// over its segment's state and the copy as one read of the left
    /// state plus one write of the right, a boundary survives only when
    /// `ops_l * amps_l + ops_r * amps_r + amps_l + amps_r` undercuts
    /// `(ops_l + ops_r) * amps_merged` — the byte-seconds balance of the
    /// ROADMAP follow-up. Merging is re-evaluated to a fixpoint (best
    /// gain first), so chains of short windows collapse into one segment
    /// while genuinely disjoint windows stay split.
    ///
    /// Call after [`HwProgram::demote_to_occupancy`]: the segment
    /// registers are then elementwise bounded by the demoted register,
    /// making the windowed peak state size at most the whole-program one.
    /// Returns one window covering the whole program when nothing is
    /// worth splitting (or the program is empty).
    ///
    /// This entry point prices sweeps by amplitude count alone
    /// (`sweep_fixed = 0`); the compiler calls
    /// [`HwProgram::window_registers_with`] with the fusion cost model's
    /// calibrated fixed per-sweep term.
    pub fn window_registers(&self) -> Vec<RegisterWindow> {
        self.window_registers_with(0)
    }

    /// [`HwProgram::window_registers`] with an explicit fixed per-sweep
    /// cost (in amplitude-multiply units, the same quantity as
    /// [`waltz_sim::FuseOptions::sweep_fixed`]): each sweep over the
    /// state — one per op, plus the reshape's read and write at every
    /// boundary — costs `sweep_fixed` on top of its amplitude count. The
    /// per-op fixed terms are identical split or merged and cancel, so
    /// the knob's whole effect is `2 * sweep_fixed` added to every
    /// boundary's split cost: short windows whose byte savings cannot
    /// cover two fixed sweep costs merge back instead of splitting.
    pub fn window_registers_with(&self, sweep_fixed: usize) -> Vec<RegisterWindow> {
        if self.ops.is_empty() {
            return vec![RegisterWindow {
                ops: 0..0,
                dims: self.dims.clone(),
            }];
        }
        // Finest candidate segmentation: maximal runs of equal required
        // dims. Each run's register is the closure fixpoint of its
        // requirement.
        let mut windows: Vec<RegisterWindow> = Vec::new();
        let mut start = 0usize;
        let mut run_req = self.required_dims(0);
        for i in 1..self.ops.len() {
            let req = self.required_dims(i);
            if req != run_req {
                windows.push(RegisterWindow {
                    ops: start..i,
                    dims: std::mem::take(&mut run_req),
                });
                start = i;
                run_req = req;
            }
        }
        windows.push(RegisterWindow {
            ops: start..self.ops.len(),
            dims: run_req,
        });
        for w in &mut windows {
            w.dims = self.closed_dims(w.ops.clone(), std::mem::take(&mut w.dims), &self.dims);
        }
        // Cost-model merge to a fixpoint: take the best-gain merge first
        // so cheap boundaries disappear before their neighbours are
        // priced. Each adjacent pair's evaluation (closure fixpoint +
        // costs) is memoized and a merge invalidates only the two pairs
        // that now touch the merged window, so the loop performs O(1)
        // closure scans per merge after the initial pass instead of
        // re-scanning every pair each round.
        let amps = |dims: &[u8]| -> f64 { dims.iter().map(|&d| d as f64).product() };
        let evaluate = |l: &RegisterWindow, r: &RegisterWindow| -> (f64, Vec<u8>) {
            let merged_req: Vec<u8> = l
                .dims
                .iter()
                .zip(&r.dims)
                .map(|(&a, &b)| a.max(b))
                .collect();
            let merged_dims = self.closed_dims(l.ops.start..r.ops.end, merged_req, &self.dims);
            let (amps_l, amps_r, amps_m) = (amps(&l.dims), amps(&r.dims), amps(&merged_dims));
            let (ops_l, ops_r) = (l.ops.len() as f64, r.ops.len() as f64);
            let cost_split =
                ops_l * amps_l + ops_r * amps_r + amps_l + amps_r + 2.0 * sweep_fixed as f64;
            let cost_merged = (ops_l + ops_r) * amps_m;
            (cost_split - cost_merged, merged_dims)
        };
        // pair_eval[i] prices merging windows[i] with windows[i + 1].
        let mut pair_eval: Vec<Option<(f64, Vec<u8>)>> =
            vec![None; windows.len().saturating_sub(1)];
        loop {
            for i in 0..pair_eval.len() {
                if pair_eval[i].is_none() {
                    pair_eval[i] = Some(evaluate(&windows[i], &windows[i + 1]));
                }
            }
            // First-of-equal-gains wins (strict `>`), keeping the merge
            // order identical to the unmemoized scan.
            let mut best: Option<(usize, f64)> = None;
            for (i, e) in pair_eval.iter().enumerate() {
                let (gain, _) = e.as_ref().expect("pair evaluated above");
                if *gain >= 0.0 && best.map(|(_, g)| *gain > g).unwrap_or(true) {
                    best = Some((i, *gain));
                }
            }
            match best {
                Some((i, _)) => {
                    let (_, merged_dims) = pair_eval.remove(i).expect("pair evaluated above");
                    let right = windows.remove(i + 1);
                    windows[i].ops = windows[i].ops.start..right.ops.end;
                    windows[i].dims = merged_dims;
                    // Only the pairs now adjacent to the merged window
                    // changed.
                    if i > 0 {
                        pair_eval[i - 1] = None;
                    }
                    if i < pair_eval.len() {
                        pair_eval[i] = None;
                    }
                }
                None => return windows,
            }
        }
    }

    /// Schedules the program into one segment per [`RegisterWindow`]
    /// (see [`HwProgram::window_registers`]): one global ASAP timeline —
    /// start times, durations and the total wall-clock are identical to
    /// [`HwProgram::schedule`] — with each op embedded to *its segment's*
    /// register and its error channel clipped to the segment dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the windows do not tile the program contiguously.
    pub fn schedule_windowed(
        &self,
        lib: &GateLibrary,
        windows: &[RegisterWindow],
    ) -> SegmentedCircuit {
        let mut free_at = vec![0.0f64; self.dims.len()];
        let mut total: f64 = 0.0;
        let mut segments: Vec<TimedCircuit> = Vec::with_capacity(windows.len());
        let mut cursor = 0usize;
        for w in windows {
            assert_eq!(w.ops.start, cursor, "windows must tile the program");
            cursor = w.ops.end;
            let mut segment = TimedCircuit::new(Register::new(w.dims.clone()));
            for op in &self.ops[w.ops.clone()] {
                segment
                    .ops
                    .push(schedule_op(op, &w.dims, lib, &mut free_at, &mut total));
            }
            segments.push(segment);
        }
        assert_eq!(cursor, self.ops.len(), "windows must cover every op");
        for segment in &mut segments {
            segment.total_duration_ns = total;
        }
        SegmentedCircuit::new(segments, total)
    }
}

/// One segment of the time-sliced occupancy analysis
/// ([`HwProgram::window_registers`]): a contiguous op range and the
/// per-device register dimensions it simulates on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterWindow {
    /// The ops this window covers (contiguous, in program order).
    pub ops: Range<usize>,
    /// Per-device register dimensions while the window is active.
    pub dims: Vec<u8>,
}

impl RegisterWindow {
    /// State-vector amplitudes of this window's register.
    pub fn amplitudes(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// State-vector bytes of this window's register (16 per amplitude).
    pub fn state_bytes(&self) -> usize {
        self.amplitudes() * std::mem::size_of::<waltz_math::C64>()
    }
}

/// ASAP-schedules one op against the given register dimensions, advancing
/// the shared per-device `free_at` timeline and the running `total` —
/// the single scheduling body behind [`HwProgram::schedule`] (whole
/// register) and [`HwProgram::schedule_windowed`] (per-segment
/// registers, one global timeline).
fn schedule_op(
    op: &HwOp,
    dims: &[u8],
    lib: &GateLibrary,
    free_at: &mut [f64],
    total: &mut f64,
) -> TimedOp {
    let logical_dims = op.gate.logical_dims();
    let dev_dims: Vec<usize> = op.devices.iter().map(|&d| dims[d] as usize).collect();
    let unitary = embed_demoted(&op.gate.unitary(), &logical_dims, &dev_dims);
    let start = op
        .devices
        .iter()
        .map(|&d| free_at[d])
        .fold(0.0f64, f64::max);
    let duration = lib.duration(&op.gate);
    for &d in &op.devices {
        free_at[d] = start + duration;
    }
    *total = total.max(start + duration);
    // The error channel is drawn on the gate's calibrated logical
    // dimensions, clipped to the device: a demoted device's errors
    // are confined to the subspace it can actually populate.
    let error_dims: Vec<u8> = logical_dims
        .iter()
        .zip(&dev_dims)
        .map(|(&l, &d)| l.min(d) as u8)
        .collect();
    // TimedOp::new classifies the embedded unitary into its
    // GateKernel here, once per compile, so every simulation of
    // the schedule reuses the specialized apply path.
    TimedOp::new(
        label_of(&op.gate),
        unitary,
        op.devices.clone(),
        error_dims,
        start,
        duration,
        lib.fidelity(&op.gate),
    )
}

/// Short display label for a hardware gate.
pub fn label_of(gate: &HwGate) -> String {
    match gate {
        HwGate::QubitU(g) => format!("U({g:?})"),
        HwGate::QuartU { slot, gate } => format!("QuartU{}({gate:?})", slot.index()),
        HwGate::QuartU2 { .. } => "QuartU01".into(),
        HwGate::MrCcx(c) => format!("MrCcx::{c:?}"),
        HwGate::MrCswap(c) => format!("MrCswap::{c:?}"),
        HwGate::FqCcx(c) => format!("FqCcx::{c:?}"),
        HwGate::FqCswap(c) => format!("FqCswap::{c:?}"),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_gates::Q1Gate;

    #[test]
    fn schedule_is_asap_and_valid() {
        let mut p = HwProgram::new(vec![2, 2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![1, 2]);
        let lib = GateLibrary::paper();
        let tc = p.schedule(&lib);
        assert!(tc.validate().is_ok());
        // H gates run in parallel at t=0.
        assert_eq!(tc.ops[0].start_ns, 0.0);
        assert_eq!(tc.ops[1].start_ns, 0.0);
        // First CX waits for H on 0.
        assert_eq!(tc.ops[2].start_ns, 35.0);
        // Second CX waits for first (shares device 1) and H(2).
        assert_eq!(tc.ops[3].start_ns, 35.0 + 251.0);
        assert_eq!(tc.total_duration_ns, 35.0 + 251.0 + 251.0);
    }

    #[test]
    fn schedule_embeds_to_device_dims() {
        let mut p = HwProgram::new(vec![4, 4]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        let tc = p.schedule(&GateLibrary::paper());
        assert_eq!(tc.ops[0].unitary.rows(), 16);
        assert_eq!(tc.ops[0].error_dims, vec![2, 2]);
        assert!(tc.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "needs a 4-level device")]
    fn quart_gate_on_qubit_device_rejected() {
        let mut p = HwProgram::new(vec![2]);
        p.push(HwGate::QuartCx0, vec![0]);
    }

    #[test]
    #[should_panic(expected = "repeated device")]
    fn repeated_operand_rejected() {
        let mut p = HwProgram::new(vec![2, 2]);
        p.push(HwGate::QubitCx, vec![1, 1]);
    }

    #[test]
    fn occupancy_tracks_enc_windows_and_demotes_bystanders() {
        // Three 4-level devices, entry-confined to the qubit subspace:
        // an ENC window on (0, 1) with an MrCcz against device 2.
        let mut p = HwProgram::new(vec![4, 4, 4]);
        p.set_entry_occupancy(vec![2, 2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
        p.push(HwGate::Enc, vec![0, 1]);
        p.push(HwGate::MrCcz, vec![0, 2]);
        p.push(HwGate::Dec, vec![0, 1]);
        // Host 0 reached level 3; partner 1 and third 2 never left {0,1}.
        assert_eq!(p.occupancy(), vec![4, 2, 2]);
        p.demote_to_occupancy();
        assert_eq!(p.dims(), &[4, 2, 2]);
        let tc = p.schedule(&GateLibrary::paper());
        assert!(tc.validate().is_ok(), "{:?}", tc.validate());
        // ENC on (4, 2): restricted to an 8x8 block, still unitary.
        assert_eq!(tc.ops[1].unitary.rows(), 8);
        for op in &tc.ops {
            assert!(op.unitary.is_unitary(1e-12), "{}", op.label);
            for (&e, &q) in op.error_dims.iter().zip(&op.operands) {
                assert!(e as usize <= tc.register.dim(q), "{}", op.label);
            }
        }
    }

    #[test]
    fn occupancy_is_conservative_without_entry_declaration() {
        // Without the qubit-subspace entry declaration the analysis must
        // assume full occupancy: nothing demotes.
        let mut p = HwProgram::new(vec![4, 4]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        assert_eq!(p.occupancy(), vec![4, 4]);
        p.demote_to_occupancy();
        assert_eq!(p.dims(), &[4, 4]);
    }

    #[test]
    fn qubit_gates_never_promote_bare_entry() {
        let mut p = HwProgram::new(vec![4, 4]);
        p.set_entry_occupancy(vec![2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitSwap, vec![0, 1]);
        assert_eq!(p.occupancy(), vec![2, 2]);
        p.demote_to_occupancy();
        assert_eq!(p.dims(), &[2, 2]);
        let tc = p.schedule(&GateLibrary::paper());
        assert_eq!(tc.register.total_dim(), 4);
        assert!(tc.validate().is_ok());
    }

    #[test]
    fn demoted_schedule_matches_padded_amplitudes() {
        use waltz_math::C64;
        use waltz_sim::State;
        // ENC window program simulated on demoted vs padded registers:
        // amplitudes must agree index-by-index on the occupied subspace.
        let build = || {
            let mut p = HwProgram::new(vec![4, 4, 4]);
            p.set_entry_occupancy(vec![2, 2, 2]);
            p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
            p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
            p.push(HwGate::Enc, vec![0, 1]);
            p.push(HwGate::MrCcz, vec![0, 2]);
            p.push(HwGate::Dec, vec![0, 1]);
            p.push(HwGate::QubitCx, vec![0, 2]);
            p
        };
        let lib = GateLibrary::paper();
        let padded = build().schedule(&lib);
        let mut demoted_prog = build();
        demoted_prog.demote_to_occupancy();
        let demoted = demoted_prog.schedule(&lib);
        assert!(demoted.register.total_dim() < padded.register.total_dim());
        let out_p = waltz_sim::ideal::run(&padded, &State::zero(&padded.register));
        let out_d = waltz_sim::ideal::run(&demoted, &State::zero(&demoted.register));
        let mut digits = vec![0usize; 3];
        for idx in 0..padded.register.total_dim() {
            padded.register.digits_into(idx, &mut digits);
            let inside = digits
                .iter()
                .enumerate()
                .all(|(q, &dig)| dig < demoted.register.dim(q));
            let got = out_p.amplitudes()[idx];
            if inside {
                let want = out_d.amplitudes()[demoted.register.index_of(&digits)];
                assert!(got.approx_eq(want, 1e-12), "idx {idx}");
            } else {
                assert!(got.approx_eq(C64::ZERO, 1e-12), "leak at {idx}");
            }
        }
    }

    /// Two disjoint ENC windows on different hosts with qubit work
    /// between them — the shape the windowed analysis exists for.
    fn two_window_program() -> HwProgram {
        let mut p = HwProgram::new(vec![4, 4, 4, 4]);
        p.set_entry_occupancy(vec![2, 2, 2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![2, 3]);
        p.push(HwGate::Enc, vec![0, 1]);
        p.push(HwGate::MrCcz, vec![0, 2]);
        p.push(HwGate::Dec, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![0, 2]);
        p.push(HwGate::QubitCx, vec![1, 3]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::Enc, vec![2, 3]);
        p.push(HwGate::MrCcz, vec![2, 0]);
        p.push(HwGate::Dec, vec![2, 3]);
        p.push(HwGate::QubitCx, vec![2, 3]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![1, 2]);
        p
    }

    #[test]
    fn window_registers_shrink_hosts_outside_their_windows() {
        let mut p = two_window_program();
        p.demote_to_occupancy();
        // Whole-program demotion keeps BOTH hosts at dim 4...
        assert_eq!(p.dims(), &[4, 2, 4, 2]);
        let windows = p.window_registers();
        // ...but the windowed analysis opens each host only inside its
        // own window: no segment carries both dim-4 hosts at once.
        assert!(windows.len() > 1, "two disjoint windows must split");
        let mut covered = 0usize;
        for w in &windows {
            assert_eq!(w.ops.start, covered, "windows must tile the program");
            covered = w.ops.end;
            assert!(
                w.amplitudes() < 4 * 4 * 2 * 2,
                "no segment may need the whole-program register, got {:?}",
                w.dims
            );
            for (d, (&wd, &pd)) in w.dims.iter().zip(p.dims()).enumerate() {
                assert!(wd <= pd, "segment dim exceeds demoted dim on device {d}");
            }
        }
        assert_eq!(covered, p.len());
        let peak = windows
            .iter()
            .map(RegisterWindow::amplitudes)
            .max()
            .unwrap();
        assert!(
            peak < 4 * 4 * 2 * 2,
            "windowed peak ({peak} amps) must undercut the whole-program register"
        );
    }

    #[test]
    fn schedule_windowed_keeps_the_asap_timeline() {
        let mut p = two_window_program();
        p.demote_to_occupancy();
        let lib = GateLibrary::paper();
        let whole = p.schedule(&lib);
        let windows = p.window_registers();
        let segmented = p.schedule_windowed(&lib, &windows);
        assert!(segmented.validate().is_ok(), "{:?}", segmented.validate());
        assert_eq!(segmented.len(), whole.len());
        assert_eq!(segmented.total_duration_ns, whole.total_duration_ns);
        // Op-for-op identical timing and calibration; only the embedding
        // register differs.
        let seg_ops: Vec<_> = segmented
            .segments
            .iter()
            .flat_map(|s| s.ops.iter())
            .collect();
        for (a, b) in seg_ops.iter().zip(&whole.ops) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.start_ns, b.start_ns);
            assert_eq!(a.duration_ns, b.duration_ns);
            assert_eq!(a.operands, b.operands);
            assert_eq!(a.fidelity, b.fidelity);
        }
        assert!((segmented.gate_eps() - whole.gate_eps()).abs() < 1e-12);
        assert!(segmented.peak_state_bytes() < whole.register.state_bytes());
        assert!(segmented.mean_state_bytes() < whole.register.state_bytes() as f64);
    }

    #[test]
    fn single_window_when_occupancy_never_changes() {
        let mut p = HwProgram::new(vec![2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.demote_to_occupancy();
        let windows = p.window_registers();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].ops, 0..2);
        assert_eq!(windows[0].dims, vec![2, 2]);
    }

    #[test]
    fn occupancy_borrow_reflects_analysis_state() {
        // The slice-returning accessor stays clamped at 2 and tracks
        // pushes without allocating.
        let mut p = HwProgram::new(vec![4, 4]);
        p.set_entry_occupancy(vec![2, 2]);
        assert_eq!(p.occupancy(), &[2u8, 2][..]);
        p.push(HwGate::Enc, vec![0, 1]);
        assert_eq!(p.occupancy(), &[4u8, 2][..]);
    }

    #[test]
    fn histogram_counts_labels() {
        let mut p = HwProgram::new(vec![2, 2]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        let h = p.histogram();
        assert_eq!(h["QubitCx"], 2);
        assert_eq!(h["U(H)"], 1);
    }
}
