//! The unscheduled hardware program, its level-occupancy analysis and its
//! ASAP scheduler.
//!
//! Occupancy: every [`HwProgram::push`] advances a forward support
//! analysis that bounds, per device, the highest level the program can
//! ever populate (starting from a caller-declared entry occupancy — the
//! qubit subspace for bare-device regimes). The paper's mixed-radix
//! strategy only *temporarily* excites ENC hosts into ququart states, so
//! most devices provably never leave their lowest two levels;
//! [`HwProgram::demote_to_occupancy`] shrinks the simulated register to
//! exactly the occupied dimensions, and [`HwProgram::schedule`] restricts
//! each embedded unitary to the occupied subspace
//! ([`waltz_gates::embed_demoted`]).

use waltz_gates::{embed_demoted, GateLibrary, HwGate, SUPPORT_TOL};
use waltz_math::Matrix;
use waltz_sim::{Register, TimedCircuit, TimedOp};

/// One hardware gate bound to physical devices.
#[derive(Debug, Clone, PartialEq)]
pub struct HwOp {
    /// The pulse.
    pub gate: HwGate,
    /// Operand devices, in the gate's conventional order.
    pub devices: Vec<usize>,
}

/// An ordered hardware program over a device register, prior to
/// scheduling.
#[derive(Debug, Clone)]
pub struct HwProgram {
    dims: Vec<u8>,
    ops: Vec<HwOp>,
    /// Upper bound on the levels each device currently populates (forward
    /// support analysis, updated per push).
    cur_occ: Vec<u8>,
    /// Highest `cur_occ` each device ever reached — the dimensions a
    /// demoted register must provide.
    peak_occ: Vec<u8>,
}

/// Per-operand output support of `u` (on logical dims `ld`) when its
/// inputs are confined to levels `< in_dims[i]`: the smallest dimensions
/// containing every row reachable from an in-support column. Entries at
/// or below [`SUPPORT_TOL`] count as structural zeros.
fn support_after(u: &Matrix, ld: &[usize], in_dims: &[usize]) -> Vec<usize> {
    let total = u.rows();
    let digits = |mut idx: usize, out: &mut [usize]| {
        for k in (0..ld.len()).rev() {
            out[k] = idx % ld[k];
            idx /= ld[k];
        }
    };
    let mut need = vec![1usize; ld.len()];
    let mut col_digits = vec![0usize; ld.len()];
    let mut row_digits = vec![0usize; ld.len()];
    for col in 0..total {
        digits(col, &mut col_digits);
        if col_digits.iter().zip(in_dims).any(|(&dig, &m)| dig >= m) {
            continue;
        }
        for row in 0..total {
            if u[(row, col)].abs() <= SUPPORT_TOL {
                continue;
            }
            digits(row, &mut row_digits);
            for (n, &dig) in need.iter_mut().zip(&row_digits) {
                *n = (*n).max(dig + 1);
            }
        }
    }
    need
}

impl HwProgram {
    /// An empty program over devices with the given simulated dimensions.
    ///
    /// Entry occupancy defaults to the full device dimensions (sound for
    /// any initial state); regimes whose devices start in the qubit
    /// subspace should call [`HwProgram::set_entry_occupancy`] before
    /// pushing gates so the occupancy analysis can prove demotions.
    pub fn new(dims: Vec<u8>) -> Self {
        let cur_occ = dims.clone();
        let peak_occ = dims.clone();
        HwProgram {
            dims,
            ops: Vec::new(),
            cur_occ,
            peak_occ,
        }
    }

    /// Declares the levels each device may populate *before the first
    /// gate* (e.g. `2` everywhere for bare-device regimes whose inputs
    /// are qubit products, §6.4). Tightening the entry support is what
    /// lets the analysis prove most mixed-radix devices never leave the
    /// qubit subspace.
    ///
    /// # Panics
    ///
    /// Panics if gates were already pushed, the length mismatches, or an
    /// entry exceeds its device dimension.
    pub fn set_entry_occupancy(&mut self, occ: Vec<u8>) {
        assert!(
            self.ops.is_empty(),
            "entry occupancy must be set before the first gate"
        );
        assert_eq!(occ.len(), self.dims.len(), "occupancy length mismatch");
        for (o, d) in occ.iter().zip(&self.dims) {
            assert!(*o >= 1 && o <= d, "entry occupancy out of range");
        }
        self.cur_occ.clone_from(&occ);
        self.peak_occ = occ;
    }

    /// Device dimensions.
    pub fn dims(&self) -> &[u8] {
        &self.dims
    }

    /// The occupancy analysis result so far: per device, the highest
    /// level bound the program ever populates (at least 2 — a register
    /// dimension cannot shrink below a qubit).
    pub fn occupancy(&self) -> Vec<u8> {
        self.peak_occ.iter().map(|&p| p.max(2)).collect()
    }

    /// The demotion step: shrinks the device dimensions to the occupancy
    /// analysis result, so scheduling embeds every unitary into the
    /// smallest register that holds the program's reachable states.
    ///
    /// Devices whose demoted dimension is smaller than some gate's
    /// logical dimension (mixed-radix `ENC`/`DEC` partners) are kept only
    /// when every such gate leaves the occupied subspace closed
    /// ([`waltz_gates::restriction_closed`]); otherwise the offending
    /// operands are promoted back and the check reruns to a fixpoint.
    /// Dimensions never grow past the physical dimensions, so this is a
    /// no-op for programs that genuinely use their full register.
    pub fn demote_to_occupancy(&mut self) {
        let mut dims: Vec<u8> = self
            .peak_occ
            .iter()
            .zip(&self.dims)
            .map(|(&p, &d)| p.max(2).min(d))
            .collect();
        // Closure fixpoint: promoting a device can break closure of an
        // op checked earlier (closure is not monotone in the subspace),
        // so rescan until no op forces a promotion.
        loop {
            let mut changed = false;
            for op in &self.ops {
                let ld = op.gate.logical_dims();
                if op
                    .devices
                    .iter()
                    .zip(&ld)
                    .all(|(&d, &l)| dims[d] as usize >= l)
                {
                    continue;
                }
                let sub: Vec<usize> = op
                    .devices
                    .iter()
                    .zip(&ld)
                    .map(|(&d, &l)| l.min(dims[d] as usize))
                    .collect();
                if !waltz_gates::restriction_closed(&op.gate.unitary(), &ld, &sub) {
                    for (i, &d) in op.devices.iter().enumerate() {
                        let l = (ld[i].min(self.dims[d] as usize)) as u8;
                        if dims[d] < l {
                            dims[d] = l;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.dims = dims;
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[HwOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a gate on the given devices.
    ///
    /// # Panics
    ///
    /// Panics if the operand count mismatches the gate arity, a device
    /// repeats or is out of range, or a logical dimension exceeds the
    /// device dimension.
    pub fn push(&mut self, gate: HwGate, devices: Vec<usize>) {
        let logical = gate.logical_dims();
        assert_eq!(
            devices.len(),
            logical.len(),
            "operand count mismatch for {gate:?}"
        );
        for (i, &d) in devices.iter().enumerate() {
            assert!(d < self.dims.len(), "device {d} out of range");
            assert!(
                logical[i] <= self.dims[d] as usize,
                "gate {gate:?} needs a {}-level device at operand {i}, device {d} has {}",
                logical[i],
                self.dims[d]
            );
            for &other in devices.iter().skip(i + 1) {
                assert_ne!(d, other, "repeated device operand in {gate:?}");
            }
        }
        // Occupancy transfer: propagate each operand's current support
        // through the gate's unitary. Levels at or above the gate's
        // logical dimension are untouched by the (identity-padded)
        // embedding, so support already present there persists.
        let in_dims: Vec<usize> = devices
            .iter()
            .zip(&logical)
            .map(|(&d, &l)| l.min(self.cur_occ[d] as usize))
            .collect();
        let out = support_after(&gate.unitary(), &logical, &in_dims);
        for (i, &d) in devices.iter().enumerate() {
            let keep = if (self.cur_occ[d] as usize) > logical[i] {
                self.cur_occ[d] as usize
            } else {
                0
            };
            let new = out[i].max(keep).min(self.dims[d] as usize) as u8;
            self.cur_occ[d] = new;
            self.peak_occ[d] = self.peak_occ[d].max(new);
        }
        self.ops.push(HwOp { gate, devices });
    }

    /// Counts ops per hardware-gate label.
    pub fn histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut h = std::collections::BTreeMap::new();
        for op in &self.ops {
            *h.entry(label_of(&op.gate)).or_insert(0) += 1;
        }
        h
    }

    /// ASAP-schedules the program with the library's calibrated durations,
    /// embedding each unitary to the device dimensions. On a demoted
    /// register ([`HwProgram::demote_to_occupancy`]) a gate whose logical
    /// dimension exceeds an operand's device dimension is *restricted* to
    /// the occupied subspace instead — sound because demotion verified the
    /// gate keeps that subspace closed.
    pub fn schedule(&self, lib: &GateLibrary) -> TimedCircuit {
        let register = Register::new(self.dims.clone());
        let mut free_at = vec![0.0f64; self.dims.len()];
        let mut timed = TimedCircuit::new(register);
        let mut total: f64 = 0.0;
        for op in &self.ops {
            let logical_dims = op.gate.logical_dims();
            let dev_dims: Vec<usize> = op.devices.iter().map(|&d| self.dims[d] as usize).collect();
            let unitary = embed_demoted(&op.gate.unitary(), &logical_dims, &dev_dims);
            let start = op
                .devices
                .iter()
                .map(|&d| free_at[d])
                .fold(0.0f64, f64::max);
            let duration = lib.duration(&op.gate);
            for &d in &op.devices {
                free_at[d] = start + duration;
            }
            total = total.max(start + duration);
            // The error channel is drawn on the gate's calibrated logical
            // dimensions, clipped to the device: a demoted device's errors
            // are confined to the subspace it can actually populate.
            let error_dims: Vec<u8> = logical_dims
                .iter()
                .zip(&dev_dims)
                .map(|(&l, &d)| l.min(d) as u8)
                .collect();
            // TimedOp::new classifies the embedded unitary into its
            // GateKernel here, once per compile, so every simulation of
            // the schedule reuses the specialized apply path.
            timed.ops.push(TimedOp::new(
                label_of(&op.gate),
                unitary,
                op.devices.clone(),
                error_dims,
                start,
                duration,
                lib.fidelity(&op.gate),
            ));
        }
        timed.total_duration_ns = total;
        timed
    }
}

/// Short display label for a hardware gate.
pub fn label_of(gate: &HwGate) -> String {
    match gate {
        HwGate::QubitU(g) => format!("U({g:?})"),
        HwGate::QuartU { slot, gate } => format!("QuartU{}({gate:?})", slot.index()),
        HwGate::QuartU2 { .. } => "QuartU01".into(),
        HwGate::MrCcx(c) => format!("MrCcx::{c:?}"),
        HwGate::MrCswap(c) => format!("MrCswap::{c:?}"),
        HwGate::FqCcx(c) => format!("FqCcx::{c:?}"),
        HwGate::FqCswap(c) => format!("FqCswap::{c:?}"),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_gates::Q1Gate;

    #[test]
    fn schedule_is_asap_and_valid() {
        let mut p = HwProgram::new(vec![2, 2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![1, 2]);
        let lib = GateLibrary::paper();
        let tc = p.schedule(&lib);
        assert!(tc.validate().is_ok());
        // H gates run in parallel at t=0.
        assert_eq!(tc.ops[0].start_ns, 0.0);
        assert_eq!(tc.ops[1].start_ns, 0.0);
        // First CX waits for H on 0.
        assert_eq!(tc.ops[2].start_ns, 35.0);
        // Second CX waits for first (shares device 1) and H(2).
        assert_eq!(tc.ops[3].start_ns, 35.0 + 251.0);
        assert_eq!(tc.total_duration_ns, 35.0 + 251.0 + 251.0);
    }

    #[test]
    fn schedule_embeds_to_device_dims() {
        let mut p = HwProgram::new(vec![4, 4]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        let tc = p.schedule(&GateLibrary::paper());
        assert_eq!(tc.ops[0].unitary.rows(), 16);
        assert_eq!(tc.ops[0].error_dims, vec![2, 2]);
        assert!(tc.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "needs a 4-level device")]
    fn quart_gate_on_qubit_device_rejected() {
        let mut p = HwProgram::new(vec![2]);
        p.push(HwGate::QuartCx0, vec![0]);
    }

    #[test]
    #[should_panic(expected = "repeated device")]
    fn repeated_operand_rejected() {
        let mut p = HwProgram::new(vec![2, 2]);
        p.push(HwGate::QubitCx, vec![1, 1]);
    }

    #[test]
    fn occupancy_tracks_enc_windows_and_demotes_bystanders() {
        // Three 4-level devices, entry-confined to the qubit subspace:
        // an ENC window on (0, 1) with an MrCcz against device 2.
        let mut p = HwProgram::new(vec![4, 4, 4]);
        p.set_entry_occupancy(vec![2, 2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
        p.push(HwGate::Enc, vec![0, 1]);
        p.push(HwGate::MrCcz, vec![0, 2]);
        p.push(HwGate::Dec, vec![0, 1]);
        // Host 0 reached level 3; partner 1 and third 2 never left {0,1}.
        assert_eq!(p.occupancy(), vec![4, 2, 2]);
        p.demote_to_occupancy();
        assert_eq!(p.dims(), &[4, 2, 2]);
        let tc = p.schedule(&GateLibrary::paper());
        assert!(tc.validate().is_ok(), "{:?}", tc.validate());
        // ENC on (4, 2): restricted to an 8x8 block, still unitary.
        assert_eq!(tc.ops[1].unitary.rows(), 8);
        for op in &tc.ops {
            assert!(op.unitary.is_unitary(1e-12), "{}", op.label);
            for (&e, &q) in op.error_dims.iter().zip(&op.operands) {
                assert!(e as usize <= tc.register.dim(q), "{}", op.label);
            }
        }
    }

    #[test]
    fn occupancy_is_conservative_without_entry_declaration() {
        // Without the qubit-subspace entry declaration the analysis must
        // assume full occupancy: nothing demotes.
        let mut p = HwProgram::new(vec![4, 4]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        assert_eq!(p.occupancy(), vec![4, 4]);
        p.demote_to_occupancy();
        assert_eq!(p.dims(), &[4, 4]);
    }

    #[test]
    fn qubit_gates_never_promote_bare_entry() {
        let mut p = HwProgram::new(vec![4, 4]);
        p.set_entry_occupancy(vec![2, 2]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitSwap, vec![0, 1]);
        assert_eq!(p.occupancy(), vec![2, 2]);
        p.demote_to_occupancy();
        assert_eq!(p.dims(), &[2, 2]);
        let tc = p.schedule(&GateLibrary::paper());
        assert_eq!(tc.register.total_dim(), 4);
        assert!(tc.validate().is_ok());
    }

    #[test]
    fn demoted_schedule_matches_padded_amplitudes() {
        use waltz_math::C64;
        use waltz_sim::State;
        // ENC window program simulated on demoted vs padded registers:
        // amplitudes must agree index-by-index on the occupied subspace.
        let build = || {
            let mut p = HwProgram::new(vec![4, 4, 4]);
            p.set_entry_occupancy(vec![2, 2, 2]);
            p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
            p.push(HwGate::QubitU(Q1Gate::H), vec![2]);
            p.push(HwGate::Enc, vec![0, 1]);
            p.push(HwGate::MrCcz, vec![0, 2]);
            p.push(HwGate::Dec, vec![0, 1]);
            p.push(HwGate::QubitCx, vec![0, 2]);
            p
        };
        let lib = GateLibrary::paper();
        let padded = build().schedule(&lib);
        let mut demoted_prog = build();
        demoted_prog.demote_to_occupancy();
        let demoted = demoted_prog.schedule(&lib);
        assert!(demoted.register.total_dim() < padded.register.total_dim());
        let out_p = waltz_sim::ideal::run(&padded, &State::zero(&padded.register));
        let out_d = waltz_sim::ideal::run(&demoted, &State::zero(&demoted.register));
        let mut digits = vec![0usize; 3];
        for idx in 0..padded.register.total_dim() {
            padded.register.digits_into(idx, &mut digits);
            let inside = digits
                .iter()
                .enumerate()
                .all(|(q, &dig)| dig < demoted.register.dim(q));
            let got = out_p.amplitudes()[idx];
            if inside {
                let want = out_d.amplitudes()[demoted.register.index_of(&digits)];
                assert!(got.approx_eq(want, 1e-12), "idx {idx}");
            } else {
                assert!(got.approx_eq(C64::ZERO, 1e-12), "leak at {idx}");
            }
        }
    }

    #[test]
    fn histogram_counts_labels() {
        let mut p = HwProgram::new(vec![2, 2]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitCx, vec![0, 1]);
        p.push(HwGate::QubitU(Q1Gate::H), vec![0]);
        let h = p.histogram();
        assert_eq!(h["QubitCx"], 2);
        assert_eq!(h["U(H)"], 1);
    }
}
