//! Compilation strategies: the paper's comparison points (§5.1, §6.2),
//! plus the lowering options that are orthogonal to the strategy choice
//! ([`Fusion`], [`CompileOptions`]).

/// Whether the compiler batches the scheduled pulse stream for the
/// simulator with the gate-fusion pass
/// ([`waltz_sim::TimedCircuit::fuse`]).
///
/// Fusion multiplies runs of adjacent pulses supported on the same
/// ≤2-qudit operand set into single dense blocks at schedule time
/// (gather-once/apply-many, SU(4) block compilation in the spirit of
/// Zulehner & Wille), then re-classifies each block through the
/// [`waltz_sim::GateKernel`] probes so structured runs keep their cheap
/// apply paths. The fused schedule lives in
/// [`crate::CompiledCircuit::fused`] next to the untouched hardware
/// schedule: gate EPS, pulse statistics and the coherence timeline are
/// always computed from the real pulses, while trajectory simulation
/// picks the fused program up through
/// [`crate::CompiledCircuit::sim_circuit`]. Fused blocks replay their
/// constituents' error channels per pulse
/// ([`waltz_sim::NoiseEvent`]), so noiseless outputs are bit-compatible
/// (pinned at 1e-12 by the fusion parity suite) and noisy estimates are
/// statistically equivalent: per-pulse error probabilities and
/// per-device damping times are preserved exactly, while individual
/// trajectory draws differ because the engines consume the RNG in
/// different orders and a block's interior noise is replayed around one
/// unitary apply. (Measured on cnu-6q at 4000 trajectories, fused and
/// unfused means agree within one standard error for all three
/// strategies.)
///
/// Fusing is the default: it is a simulation-side optimization only.
/// Turn it off to benchmark the unfused engine or to force exact
/// pulse-by-pulse noise interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fusion {
    /// Simulate the schedule pulse by pulse.
    Off,
    /// Fuse adjacent ops into ≤2-qudit dense blocks (the default).
    #[default]
    TwoQudit,
}

/// Lowering options orthogonal to the [`Strategy`] choice, consumed by
/// [`crate::Compiler::with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    /// Gate-fusion mode for the simulation schedule.
    pub fusion: Fusion,
    /// Override for the fusion cost model's per-amplitude sweep-overhead
    /// constant ([`waltz_sim::FuseOptions::sweep_overhead`]). `None` uses
    /// the value the compiler calibrates from a one-shot measured sweep
    /// timing at [`crate::Compiler`] construction.
    pub fuse_sweep_overhead: Option<usize>,
    /// Override for the fusion cost model's fixed per-sweep constant
    /// ([`waltz_sim::FuseOptions::sweep_fixed`]). `None` uses the
    /// calibrated value.
    pub fuse_sweep_fixed: Option<usize>,
    /// Cap on the number of constituent pulses a fused block may absorb
    /// ([`waltz_sim::FuseOptions::max_block_span`]), for workloads that
    /// need tighter noise interleaving than whole-run replay. `None`
    /// leaves the span unbounded; `Some(1)` disables fusion's merging
    /// while keeping the pass in the pipeline.
    pub max_fused_span: Option<usize>,
    /// Skip the occupancy demotion of the analyze pass and model every
    /// device at its full physical dimension (the pre-occupancy
    /// behaviour: mixed-radix registers allocate `4^n` amplitudes even
    /// when most devices never leave the qubit subspace). The default,
    /// `false`, shrinks the simulated register to the occupied
    /// dimensions — noiselessly bit-identical, exponentially smaller
    /// (pinned by the `radix_parity` suite).
    pub padded_registers: bool,
    /// Time-slice the occupancy analysis: cut the program at the points
    /// where a device's occupied dimension changes (`ENC`/`DEC` window
    /// boundaries) and simulate each segment on its own register,
    /// reshaping the state in flight at each boundary
    /// ([`waltz_sim::SegmentedCircuit`]). On by default — a cost model
    /// only keeps boundaries whose smaller registers save more
    /// sweep-bytes than the reshape copy costs, so programs without
    /// worthwhile windows fall back to the whole-program register
    /// automatically. Disable via
    /// [`CompileOptions::with_windowed_registers`] to pin the PR 4
    /// whole-program-demotion behaviour (parity pinned by the
    /// `window_parity` suite); [`CompileOptions::padded_registers`]
    /// implies no windowing.
    pub windowed_registers: bool,
    /// Override for the windowed-register cost model's fixed per-sweep
    /// term: splitting the program costs two extra sweeps per boundary
    /// (the reshape's read and write), each priced at this many
    /// amplitude-multiplies on top of its amplitude count. `None` (the
    /// default) reuses the fusion cost model's calibrated
    /// [`waltz_sim::FuseOptions::sweep_fixed`] — per-sweep overhead is
    /// the same quantity in both models — which stops short windows
    /// (e.g. cnu-6q's) from splitting when the reshape's fixed costs
    /// outweigh the byte savings. `Some(0)` restores the pure
    /// byte-seconds balance.
    pub window_sweep_fixed: Option<usize>,
    /// Override for the sparse → dense density threshold the simulation
    /// layer's adaptive states switch at
    /// ([`waltz_sim::DEFAULT_SPARSE_DENSITY_THRESHOLD`] when `None`).
    /// Stored as the `f64`'s IEEE-754 bit pattern so the options stay
    /// `Eq + Hash` (compile-cache keys); use
    /// [`CompileOptions::with_sparse_density_threshold`] /
    /// [`CompileOptions::sparse_density_threshold`] to set/read the
    /// float. The analyze pass records the effective value in its
    /// diagnostics so simulation hosts configure their workspaces from
    /// the artifact.
    pub sparse_density_threshold_bits: Option<u64>,
    /// Override for the sparse truncation epsilon (`0.0`, lossless, when
    /// `None`). Same bit-pattern encoding as
    /// [`CompileOptions::sparse_density_threshold_bits`].
    pub sparse_epsilon_bits: Option<u64>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            fusion: Fusion::default(),
            fuse_sweep_overhead: None,
            fuse_sweep_fixed: None,
            max_fused_span: None,
            padded_registers: false,
            windowed_registers: true,
            window_sweep_fixed: None,
            sparse_density_threshold_bits: None,
            sparse_epsilon_bits: None,
        }
    }
}

impl CompileOptions {
    /// Options with fusion disabled — the PR 1 pulse-by-pulse behaviour.
    pub fn unfused() -> Self {
        CompileOptions {
            fusion: Fusion::Off,
            ..CompileOptions::default()
        }
    }

    /// Pins the fusion cost-model constants instead of calibrating them at
    /// [`crate::Compiler`] construction.
    pub fn with_fuse_constants(mut self, sweep_overhead: usize, sweep_fixed: usize) -> Self {
        self.fuse_sweep_overhead = Some(sweep_overhead);
        self.fuse_sweep_fixed = Some(sweep_fixed);
        self
    }

    /// Caps fused-block span at `span` constituent pulses.
    pub fn with_max_fused_span(mut self, span: usize) -> Self {
        self.max_fused_span = Some(span);
        self
    }

    /// Keeps every device at its full physical dimension instead of
    /// demoting to the occupancy analysis result — for benchmarking the
    /// padded engine or pinning parity against it. Implies no windowed
    /// registers.
    pub fn with_padded_registers(mut self) -> Self {
        self.padded_registers = true;
        self
    }

    /// Enables (`true`, the default) or disables (`false`) the windowed
    /// register analysis. Disabled, the simulated register is the PR 4
    /// whole-program demotion: one register sized to each device's
    /// lifetime-maximum occupancy, no in-flight reshapes.
    pub fn with_windowed_registers(mut self, enabled: bool) -> Self {
        self.windowed_registers = enabled;
        self
    }

    /// Pins the windowed-register cost model's fixed per-sweep term
    /// instead of reusing the fusion calibration (see
    /// [`CompileOptions::window_sweep_fixed`]); `0` restores the pure
    /// byte-seconds balance with no fixed reshape cost.
    pub fn with_window_sweep_fixed(mut self, fixed: usize) -> Self {
        self.window_sweep_fixed = Some(fixed);
        self
    }

    /// Pins the sparse → dense density threshold adaptive simulation of
    /// this artifact should switch at (clamped to be non-negative; `0.0`
    /// forces dense from the first apply, above `1.0` never densifies).
    pub fn with_sparse_density_threshold(mut self, threshold: f64) -> Self {
        self.sparse_density_threshold_bits = Some(threshold.max(0.0).to_bits());
        self
    }

    /// The pinned sparse density threshold, if any.
    pub fn sparse_density_threshold(&self) -> Option<f64> {
        self.sparse_density_threshold_bits.map(f64::from_bits)
    }

    /// Pins the sparse truncation epsilon (clamped to be non-negative;
    /// nonzero values trade norm for entry count and are not lossless).
    pub fn with_sparse_epsilon(mut self, epsilon: f64) -> Self {
        self.sparse_epsilon_bits = Some(epsilon.max(0.0).to_bits());
        self
    }

    /// The pinned sparse truncation epsilon, if any.
    pub fn sparse_epsilon(&self) -> Option<f64> {
        self.sparse_epsilon_bits.map(f64::from_bits)
    }
}

/// How a qubit-only compilation executes Toffolis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QubitCcxMode {
    /// Decompose every three-qubit gate into the 8-CX nearest-neighbour
    /// expansion (the paper's primary baseline, §5.1.1).
    EightCx,
    /// Execute a native three-qubit iToffoli pulse (912 ns, 99 %) with the
    /// CS† correction of Fig. 6d, retargeting so the target sits between
    /// the controls (§6.2).
    IToffoli,
}

/// How a mixed-radix compilation prepares Toffolis (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MrCcxMode {
    /// Use whichever tabulated CCX configuration the routed layout offers.
    Raw,
    /// Hadamard-retarget so both controls encode together (Fig. 6b).
    Retarget,
    /// Transform CCX into the target-independent CCZ (Fig. 6c) — the
    /// paper's best mixed-radix strategy.
    CczTransform,
}

/// How full-ququart compilation handles CSWAP gates (§7.1, Fig. 9a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FqCswapMode {
    /// Expand CSWAP through CCX/CCZ like any other gate.
    Decompose,
    /// Keep native CSWAP pulses, using whatever configuration the layout
    /// offers ("basic").
    Native,
    /// Keep native CSWAP pulses and spend internal swaps to co-locate the
    /// two targets — the paper's best variant ("targets together").
    NativeOriented,
}

/// A complete compilation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Two-level devices only.
    QubitOnly {
        /// Toffoli handling.
        ccx: QubitCcxMode,
    },
    /// Bare devices with temporary ENC/DEC windows around three-qubit
    /// gates (§5.1.2).
    MixedRadix {
        /// Toffoli handling.
        ccx: MrCcxMode,
        /// Keep CSWAPs as native mixed-radix pulses instead of expanding
        /// them (the §7.1 case study).
        native_cswap: bool,
    },
    /// Two qubits per ququart at all times (§5.1.3).
    FullQuquart {
        /// Replace CCX with the fast target-independent CCZ.
        use_ccz: bool,
        /// CSWAP handling (Fig. 9a).
        cswap: FqCswapMode,
    },
}

impl Strategy {
    /// Qubit-only with the 8-CX Toffoli expansion.
    pub fn qubit_only() -> Self {
        Strategy::QubitOnly {
            ccx: QubitCcxMode::EightCx,
        }
    }

    /// Qubit-only with the native iToffoli pulse.
    pub fn qubit_only_itoffoli() -> Self {
        Strategy::QubitOnly {
            ccx: QubitCcxMode::IToffoli,
        }
    }

    /// Mixed-radix, raw CCX configurations.
    pub fn mixed_radix_raw() -> Self {
        Strategy::MixedRadix {
            ccx: MrCcxMode::Raw,
            native_cswap: false,
        }
    }

    /// Mixed-radix with Hadamard retargeting.
    pub fn mixed_radix_retarget() -> Self {
        Strategy::MixedRadix {
            ccx: MrCcxMode::Retarget,
            native_cswap: false,
        }
    }

    /// Mixed-radix with the CCZ transform — the paper's best mixed-radix
    /// compilation.
    pub fn mixed_radix_ccz() -> Self {
        Strategy::MixedRadix {
            ccx: MrCcxMode::CczTransform,
            native_cswap: false,
        }
    }

    /// Full-ququart with the CCZ transform — the paper's best strategy.
    pub fn full_ququart() -> Self {
        Strategy::FullQuquart {
            use_ccz: true,
            cswap: FqCswapMode::Decompose,
        }
    }

    /// Human-readable name used by the benchmark harness.
    pub fn name(&self) -> String {
        match self {
            Strategy::QubitOnly {
                ccx: QubitCcxMode::EightCx,
            } => "Qubit-Only (8CX)".into(),
            Strategy::QubitOnly {
                ccx: QubitCcxMode::IToffoli,
            } => "Qubit-Only iToffoli".into(),
            Strategy::MixedRadix { ccx, native_cswap } => {
                let base = match ccx {
                    MrCcxMode::Raw => "Mixed-Radix (raw CCX)",
                    MrCcxMode::Retarget => "Mixed-Radix (H-retarget)",
                    MrCcxMode::CczTransform => "Mixed-Radix (CCZ)",
                };
                if *native_cswap {
                    format!("{base} + native CSWAP")
                } else {
                    base.into()
                }
            }
            Strategy::FullQuquart { use_ccz, cswap } => {
                let base = if *use_ccz {
                    "Full-Ququart (CCZ)"
                } else {
                    "Full-Ququart (CCX)"
                };
                match cswap {
                    FqCswapMode::Decompose => base.into(),
                    FqCswapMode::Native => format!("{base} + native CSWAP"),
                    FqCswapMode::NativeOriented => format!("{base} + oriented CSWAP"),
                }
            }
        }
    }

    /// Whether devices are simulated as 4-level transmons (§6.4: mixed
    /// radix "must be modeled as if entirely on ququarts").
    pub fn uses_ququarts(&self) -> bool {
        !matches!(self, Strategy::QubitOnly { .. })
    }

    /// Number of physical devices needed for `n_qubits` logical qubits.
    pub fn device_count(&self, n_qubits: usize) -> usize {
        match self {
            Strategy::FullQuquart { .. } => n_qubits.div_ceil(2),
            _ => n_qubits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counts() {
        assert_eq!(Strategy::qubit_only().device_count(7), 7);
        assert_eq!(Strategy::mixed_radix_ccz().device_count(7), 7);
        assert_eq!(Strategy::full_ququart().device_count(7), 4);
        assert_eq!(Strategy::full_ququart().device_count(8), 4);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = [
            Strategy::qubit_only(),
            Strategy::qubit_only_itoffoli(),
            Strategy::mixed_radix_raw(),
            Strategy::mixed_radix_retarget(),
            Strategy::mixed_radix_ccz(),
            Strategy::full_ququart(),
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn simulation_radix() {
        assert!(!Strategy::qubit_only().uses_ququarts());
        assert!(Strategy::mixed_radix_ccz().uses_ququarts());
        assert!(Strategy::full_ququart().uses_ququarts());
    }
}
