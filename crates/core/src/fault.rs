//! Deterministic fault injection for the supervised batch engine
//! (`fault-inject` feature only — the default build compiles none of
//! this).
//!
//! A test arms a process-wide [`FaultPlan`] with [`arm`], runs a batch
//! through a [`crate::Supervisor`] or a trajectory sweep through the
//! supervised estimators, and observes exactly the failures the plan
//! describes:
//!
//! * a panic raised at the entry of a chosen pass, in a chosen job —
//!   exercising the supervisor's `catch_unwind` isolation;
//! * a NaN-poisoned amplitude at a chosen op index of a chosen
//!   trajectory (forwarded to [`waltz_sim::fault`]) — exercising the
//!   trajectory health guards;
//! * a state-byte budget shrink after a chosen number of completed
//!   batch jobs — exercising mid-batch backpressure.
//!
//! The plan is global state: tests that arm it must serialize themselves
//! (a shared `Mutex` guard) and [`disarm`] on exit.

use std::cell::Cell;
use std::sync::{Mutex, PoisonError};

use crate::pipeline::Pass;

/// One deterministic fault schedule. `Default` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Panic at the entry of this pass, in the batch job with this index
    /// (`(pass, job_index)`).
    pub panic_in_pass: Option<(Pass, usize)>,
    /// Fire the pass panic only on the first matching attempt (the plan
    /// drops it after firing) — models a transient fault, so the
    /// supervisor's retry-with-degradation succeeds. `false` models a
    /// deterministic bug the retry re-hits.
    pub transient: bool,
    /// Overwrite the first amplitude with NaN after this op of this
    /// trajectory (`(global_trajectory_index, op_index)`).
    pub poison: Option<(usize, usize)>,
    /// After this many batch jobs complete, shrink the supervisor's
    /// state-byte budget to this limit (`(completed_jobs, budget_bytes)`).
    pub shrink_budget: Option<(usize, usize)>,
}

static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

thread_local! {
    /// The batch job index running on this thread (`usize::MAX` outside
    /// a supervised job).
    static CURRENT_JOB: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn plan() -> Option<FaultPlan> {
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms the process-wide fault plan (replacing any previous one) and
/// forwards its poison schedule to the simulator's hook.
pub fn arm(plan: FaultPlan) {
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    waltz_sim::fault::set_poison(plan.poison.map(|(trajectory, op_index)| {
        waltz_sim::fault::PoisonPlan {
            trajectory,
            op_index,
        }
    }));
}

/// Clears the fault plan everywhere (compiler and simulator hooks).
pub fn disarm() {
    *PLAN.lock().unwrap_or_else(PoisonError::into_inner) = None;
    waltz_sim::fault::set_poison(None);
}

/// Marks which batch job the current thread is about to run (called by
/// the supervisor before each attempt).
pub(crate) fn set_job(index: usize) {
    CURRENT_JOB.with(|c| c.set(index));
}

/// Panics iff the armed plan schedules a panic for this pass in the
/// current job (called by the pipeline at every pass entry).
pub(crate) fn maybe_panic(pass: Pass) {
    let mut guard = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(p) = guard.as_mut() else { return };
    let Some((target_pass, target_job)) = p.panic_in_pass else {
        return;
    };
    if target_pass == pass && target_job == CURRENT_JOB.with(Cell::get) {
        if p.transient {
            p.panic_in_pass = None;
        }
        drop(guard);
        panic!("injected fault: panic in the {} pass", pass.name());
    }
}

/// The budget (in state bytes) the supervisor should shrink to once
/// `completed` jobs have finished, per the armed plan.
pub(crate) fn budget_after(completed: usize) -> Option<usize> {
    plan().and_then(|p| {
        p.shrink_budget
            .and_then(|(after, bytes)| (completed == after).then_some(bytes))
    })
}
