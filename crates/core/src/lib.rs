//! **The Quantum Waltz compiler** — the paper's primary contribution (§5).
//!
//! Pipeline (driven by [`compile`]):
//!
//! 1. **Decompose** the logical circuit to the native set — `CX`, `CZ`,
//!    `SWAP`, single-qubit rotations, and the three-qubit `CCX`/`CCZ`/
//!    `CSWAP` — applying the strategy's transform (8-CX expansion,
//!    CCX→CCZ, CSWAP orientation, Hadamard retargeting).
//! 2. **Map** logical qubits onto the strategy's interaction graph using
//!    the §5.2 lookahead weights (`w(i,j) = Σ_t o(i,j,t)/t`): heaviest
//!    qubit at the centre device, greedy weighted placement after.
//! 3. **Route & select gates**: bring operands into an executable
//!    configuration with the cheapest swaps (internal swaps ≪ inter-device
//!    swaps), then emit the best calibrated pulse configuration — controls
//!    together for `CCX`, targets together for `CSWAP`, target-independent
//!    `CCZ` whenever allowed (§4.2, §5.1).
//! 4. **Schedule** ASAP, tracking per-device busy/idle windows, producing a
//!    [`waltz_sim::TimedCircuit`] plus the coherence-span timeline the EPS
//!    model consumes (§6.3).
//!
//! Three regimes are supported, matching the paper's comparison points:
//! qubit-only (8-CX or iToffoli baselines), intermediate mixed-radix
//! (temporary `ENC`/`DEC` around each three-qubit gate) and full-ququart
//! (two qubits per device at all times).
//!
//! # Example
//!
//! ```
//! use waltz_core::{compile, Strategy};
//! use waltz_circuit::Circuit;
//! use waltz_gates::GateLibrary;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).ccx(0, 1, 2);
//! let out = compile(&c, &Strategy::mixed_radix_ccz(), &GateLibrary::paper()).unwrap();
//! assert!(out.timed.validate().is_ok());
//! assert!(out.timed.gate_eps() > 0.9);
//! ```

#![warn(missing_docs)]

mod compile;
mod hwprog;
mod layout;
mod lower;
mod mapping;

pub mod eps;
pub mod verify;

pub use compile::{
    compile, compile_on, compile_on_with_options, compile_with_options, CompileError, CompileStats,
    CompiledCircuit,
};
pub use eps::{CoherenceSpan, EpsBreakdown};
pub use hwprog::HwProgram;
pub use layout::Layout;
pub use strategy::{CompileOptions, FqCswapMode, Fusion, MrCcxMode, QubitCcxMode, Strategy};

mod strategy;
