//! **The Quantum Waltz compiler** — the paper's primary contribution (§5).
//!
//! The public API is two owning types:
//!
//! * [`Target`] bundles the machine — a [`Strategy`], a calibrated
//!   [`waltz_gates::GateLibrary`], a [`waltz_arch::Topology`] (auto-sized
//!   to the paper's 2D mesh by default, §6.2) and the noise environment.
//! * [`Compiler`] is built once from a `Target` + [`CompileOptions`] and
//!   reused: [`Compiler::compile`] drives the explicit pass pipeline,
//!   [`Compiler::compile_batch`] fans a workload of circuits across
//!   threads.
//!
//! The pipeline (one [`PassReport`] recorded per stage):
//!
//! 1. [`Pass::Decompose`] — expand the logical circuit to the native set —
//!    `CX`, `CZ`, `SWAP`, single-qubit rotations, and the three-qubit
//!    `CCX`/`CCZ`/`CSWAP` — applying the strategy's transform (8-CX
//!    expansion, CCX→CCZ, CSWAP orientation, Hadamard retargeting).
//! 2. [`Pass::Map`] — place logical qubits onto the strategy's
//!    interaction graph using the §5.2 lookahead weights
//!    (`w(i,j) = Σ_t o(i,j,t)/t`): heaviest qubit at the centre device,
//!    greedy weighted placement after.
//! 3. [`Pass::Route`] — bring operands into an executable configuration
//!    with the cheapest swaps (internal swaps ≪ inter-device swaps), then
//!    emit the best calibrated pulse configuration — controls together
//!    for `CCX`, targets together for `CSWAP`, target-independent `CCZ`
//!    whenever allowed (§4.2, §5.1).
//! 4. [`Pass::Analyze`] — level-occupancy analysis of the routed
//!    program: a forward support analysis bounds the highest level each
//!    device ever populates and demotes devices that provably never
//!    leave their qubit subspace to dimension 2 (gates calibrated on a
//!    larger space are restricted to the occupied sub-block, verified
//!    closed and unitary). The paper pinned every mixed-radix device to
//!    four levels and hit a 12-qubit simulation wall; with demotion only
//!    ENC hosts stay four-dimensional, so a cnu-6q mixed-radix register
//!    shrinks 4096 → 256 amplitudes and larger sizes open up whenever
//!    the heterogeneous register fits the byte budget. The analysis is
//!    then **time-sliced** ([`HwProgram::window_registers`]): the
//!    program is cut wherever a device's occupied dimension changes
//!    (the ENC/DEC window boundaries), each segment gets its own
//!    register, and the state is reshaped in flight at each boundary —
//!    so a host is four-dimensional only *while its window is open*,
//!    compounding the demotion win on programs with disjoint windows. A
//!    cost model keeps a boundary only when the smaller registers save
//!    more sweep-bytes than the reshape copy costs. The [`PassReport`]
//!    records the per-device dims (`dims`, `dim2_devices`,
//!    `dim4_devices`), the state bytes with and without demotion
//!    (`state_bytes`, `state_bytes_padded`), and the windowed
//!    segmentation (`windowed`, `segments`, `reshapes`, `segment_dims`,
//!    `state_bytes_peak`, `state_bytes_mean`). Opt out per compile with
//!    [`CompileOptions::with_padded_registers`] /
//!    [`CompileOptions::with_windowed_registers`]; the `radix_parity`
//!    and `window_parity` suites pin both refinements at 1e-12
//!    noiselessly and within one standard error under the trajectory
//!    noise model.
//! 5. [`Pass::Schedule`] — ASAP, tracking per-device busy/idle windows,
//!    producing a [`waltz_sim::TimedCircuit`] over the (possibly
//!    heterogeneous) register — plus, when the analysis split the
//!    program, a [`waltz_sim::SegmentedCircuit`] whose segments share
//!    the same timeline but carry per-window registers
//!    ([`CompiledCircuit::sim_segments`]; batch fidelity estimation
//!    runs it automatically).
//! 6. [`Pass::Fuse`] — batch the simulation schedule with the gate-fusion
//!    pass (host-calibrated cost constants, optional block-span cap);
//!    block products are memoized in a compiler-wide
//!    [`waltz_sim::FuseCache`], so batches of structurally similar
//!    circuits multiply each repeated block shape once.
//! 7. [`Pass::Lower`] — the coherence-span timeline the EPS model
//!    consumes (§6.3) and aggregate statistics, assembled into a
//!    [`CompileArtifact`].
//!
//! Three regimes are supported, matching the paper's comparison points:
//! qubit-only (8-CX or iToffoli baselines), intermediate mixed-radix
//! (temporary `ENC`/`DEC` around each three-qubit gate) and full-ququart
//! (two qubits per device at all times).
//!
//! # Supervised batches
//!
//! For workloads where one bad circuit must not cost the other
//! thousand, wrap the compiler in a [`Supervisor`]: every job runs under
//! `catch_unwind` (a panic in any pass becomes
//! [`CompileError::Internal`] for that job alone), an optional per-job
//! deadline turns runaways into [`CompileError::DeadlineExceeded`], and
//! a live state-byte budget walks over-large registers down a
//! degradation ladder — forced windowing, then the whole-program demoted
//! register — before rejecting with [`CompileError::OverBudget`]. Each
//! job yields a [`JobReport`] with a [`JobStatus`], the
//! [`Degradation`] rung that produced its artifact, and wall-clock time;
//! see `examples/supervised_batch.rs` for the batch-submission idiom.
//! The matching simulation-side guards (NaN/norm quarantine and
//! early-stop, [`waltz_sim::trajectory::HealthPolicy`]) are reachable
//! via [`CompiledCircuit::estimate_average_fidelity_supervised`] and
//! [`Simulation::average_fidelity_supervised`]. The whole failure
//! surface is exercised deterministically by the `fault-inject` feature
//! (the `fault` module, compiled out entirely when disabled).
//!
//! # Example
//!
//! ```
//! use waltz_core::{Compiler, Strategy, Target};
//! use waltz_circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).ccx(0, 1, 2);
//! let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
//! let out = compiler.compile(&c).unwrap();
//! assert!(out.timed.validate().is_ok());
//! assert!(out.timed.gate_eps() > 0.9);
//! // End-to-end: simulated fidelity in one chain.
//! let estimate = out.simulate().average_fidelity(20);
//! assert!(estimate.mean > 0.5);
//! ```
//!
//! # Persistence & caching
//!
//! Every artifact in the chain — [`waltz_circuit::Circuit`],
//! [`waltz_sim::TimedCircuit`], [`CompiledCircuit`], [`PassReport`], the
//! full [`CompileArtifact`] — implements the [`waltz_codec`] wire format:
//! a self-contained, versioned binary encoding
//! ([`waltz_codec::encode_versioned`] /
//! [`waltz_codec::decode_versioned`]) with a stable 64-bit content hash
//! ([`waltz_codec::content_hash`]) over the canonical bytes. Derived
//! state (gate kernels, register strides) is recomputed on decode, never
//! stored, and encode→decode→re-encode is byte-identical — pinned by the
//! `codec_roundtrip` suite.
//!
//! **Format versioning policy.** The format carries a magic and
//! [`waltz_codec::CODEC_VERSION`]; decoding rejects any other version
//! rather than guessing. Any change to an encoding — field order, a new
//! field, a widened type — must bump `CODEC_VERSION` and regenerate the
//! matching `tests/golden/codec_v<N>.bin` fixture (CI gates on the pair
//! moving together). There is no in-place migration: a store written by
//! an older version simply misses and recompiles.
//!
//! **Fingerprints.** [`Target::fingerprint`] hashes the strategy, gate
//! library, topology spec and noise model over their wire encodings;
//! [`Compiler::fingerprint`] folds in the compile options and the
//! *resolved* cost-model constants (host-calibrated fuse constants,
//! window pricing), so two processes with different calibrations never
//! mistake each other's artifacts for their own. Stability rules: a
//! fingerprint is a pure function of wire bytes — stable across process
//! restarts and rebuilds, changed exactly when a compilation-relevant
//! field (or `CODEC_VERSION` itself) changes.
//!
//! **The artifact cache.** [`ArtifactCache`] stores versioned artifact
//! bytes keyed on `(circuit content hash, compiler fingerprint)` in an
//! in-memory LRU tier plus an optional one-file-per-key on-disk store
//! ([`ArtifactCache::with_disk_dir`]). Attach one via
//! [`Compiler::with_artifact_cache`] and repeat compilations replay the
//! stored artifact — skipping all seven passes, marked via
//! [`CompileArtifact::is_cached`] / [`JobReport::cached`] — while still
//! passing the supervisor's live byte-budget gate. Every hit decodes
//! from bytes, so a cache-loaded artifact simulates bit-identically to a
//! fresh compile (1e-12, pinned by `tests/artifact_cache.rs`) and the
//! same guarantee holds for a store written by another process.
//!
//! # Serving
//!
//! Everything above also runs across a network boundary: the
//! `waltz_serve` crate frames the wire format over TCP and fronts the
//! [`Supervisor`] remotely — batches submitted by a client are compiled
//! by the same worker pool, share one [`ArtifactCache`] across every
//! connection, and stream back [`JobReport`]s element-wise identical
//! to an in-process [`Compiler::compile_batch`]. Failed jobs surface
//! as typed error frames carrying the original [`CompileError`], so
//! remote callers keep the full supervised-failure vocabulary
//! (deadline, budget, panic isolation) without linking the compiler.

#![warn(missing_docs)]

mod artifact;
mod cache;
mod compile;
mod hwprog;
mod layout;
mod lower;
mod mapping;
mod pipeline;
mod strategy;
mod supervisor;
mod target;
mod wire;

pub mod eps;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod verify;

pub use artifact::{CompileArtifact, Simulation};
pub use cache::{ArtifactCache, CacheStats};
pub use compile::{CompileError, CompileStats, CompiledCircuit};
pub use eps::{CoherenceSpan, EpsBreakdown};
pub use hwprog::{HwProgram, RegisterWindow};
pub use layout::Layout;
pub use pipeline::{Compiler, Pass, PassReport};
pub use strategy::{CompileOptions, FqCswapMode, Fusion, MrCcxMode, QubitCcxMode, Strategy};
pub use supervisor::{Degradation, JobReport, JobStatus, Supervisor, SupervisorPolicy};
pub use target::{Target, TopologySpec};
