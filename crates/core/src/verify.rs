//! End-to-end correctness checking: a compiled circuit must implement the
//! same operator as its logical source.
//!
//! The check embeds a random logical state through the compiler's initial
//! placement, ideal-simulates the scheduled hardware circuit, and compares
//! against the logical reference state embedded through the *final*
//! placement (routing permutes qubits). Exponential in qubit count — used
//! by tests on small circuits.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use waltz_circuit::{unitary, Circuit};
use waltz_math::C64;
use waltz_sim::ideal;

use crate::CompiledCircuit;

/// Result of a randomized equivalence check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyReport {
    /// Minimum state fidelity observed across trials.
    pub min_fidelity: f64,
    /// Number of random-state trials.
    pub trials: usize,
}

impl VerifyReport {
    /// Whether every trial reached fidelity `1 - tol`.
    pub fn passed(&self, tol: f64) -> bool {
        self.min_fidelity >= 1.0 - tol
    }
}

/// Checks `compiled` against `logical` on `trials` random product states
/// plus one fully random (entangled) state.
///
/// # Panics
///
/// Panics if the circuit widths disagree.
pub fn check(
    logical: &Circuit,
    compiled: &CompiledCircuit,
    trials: usize,
    seed: u64,
) -> VerifyReport {
    let n = logical.n_qubits();
    assert_eq!(compiled.initial_sites.len(), n, "width mismatch");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut min_fidelity = f64::INFINITY;
    for trial in 0..trials.max(1) {
        let logical_in = if trial == 0 {
            waltz_math::linalg::haar_state(1 << n, &mut rng)
        } else {
            random_product_state(n, &mut rng)
        };
        let mut logical_out = logical_in.clone();
        unitary::apply_circuit(&mut logical_out, logical);

        let physical_in = compiled.embed_logical_state(&logical_in, &compiled.initial_sites);
        let physical_out = ideal::run(&compiled.timed, &physical_in);
        let expected = compiled.embed_logical_state(&logical_out, &compiled.final_sites);
        let f = physical_out.fidelity(&expected);
        min_fidelity = min_fidelity.min(f);
    }
    VerifyReport {
        min_fidelity,
        trials: trials.max(1),
    }
}

/// A random product state over `n` qubits.
fn random_product_state<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<C64> {
    let mut amps = vec![C64::ONE];
    for _ in 0..n {
        let q = waltz_math::linalg::haar_state(2, rng);
        let mut next = Vec::with_capacity(amps.len() * 2);
        for a in &amps {
            next.push(*a * q[0]);
            next.push(*a * q[1]);
        }
        amps = next;
    }
    amps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, Strategy, Target};

    fn verify_strategy(circuit: &Circuit, strategy: Strategy) {
        let compiled = Compiler::new(Target::paper(strategy))
            .compile(circuit)
            .expect("compiles");
        assert!(compiled.timed.validate().is_ok(), "{}", strategy.name());
        let report = check(circuit, &compiled, 3, 1234);
        assert!(
            report.passed(1e-9),
            "{} min fidelity {}",
            strategy.name(),
            report.min_fidelity
        );
    }

    fn all_strategies() -> Vec<Strategy> {
        vec![
            Strategy::qubit_only(),
            Strategy::qubit_only_itoffoli(),
            Strategy::mixed_radix_raw(),
            Strategy::mixed_radix_retarget(),
            Strategy::mixed_radix_ccz(),
            Strategy::MixedRadix {
                ccx: crate::MrCcxMode::CczTransform,
                native_cswap: true,
            },
            Strategy::full_ququart(),
            Strategy::FullQuquart {
                use_ccz: false,
                cswap: crate::FqCswapMode::Native,
            },
            Strategy::FullQuquart {
                use_ccz: true,
                cswap: crate::FqCswapMode::NativeOriented,
            },
        ]
    }

    #[test]
    fn single_toffoli_compiles_correctly_under_all_strategies() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        for s in all_strategies() {
            verify_strategy(&c, s);
        }
    }

    #[test]
    fn toffoli_with_scrambled_operands() {
        let mut c = Circuit::new(4);
        c.ccx(3, 1, 0).ccx(0, 2, 3);
        for s in all_strategies() {
            verify_strategy(&c, s);
        }
    }

    #[test]
    fn ccz_and_cswap_compile_correctly() {
        let mut c = Circuit::new(4);
        c.ccz(0, 1, 2).cswap(3, 0, 2);
        for s in all_strategies() {
            verify_strategy(&c, s);
        }
    }

    #[test]
    fn mixed_gate_soup_compiles_correctly() {
        let mut c = Circuit::new(5);
        c.h(0)
            .cx(0, 4)
            .ccx(0, 1, 2)
            .t(3)
            .cz(2, 3)
            .cswap(4, 1, 3)
            .ccz(2, 3, 4)
            .swap(0, 3)
            .cx(3, 1);
        for s in all_strategies() {
            verify_strategy(&c, s);
        }
    }

    #[test]
    fn two_qubit_only_circuit_compiles_everywhere() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1).cx(1, 0);
        for s in all_strategies() {
            verify_strategy(&c, s);
        }
    }
}
