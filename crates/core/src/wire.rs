//! Wire-format ([`waltz_codec`]) implementations for the compiler's
//! artifact chain: strategies and options, per-pass reports, the
//! [`CompiledCircuit`] and the full [`CompileArtifact`].
//!
//! Provenance never enters the format: the artifact's `cached` marker is
//! set by the [`crate::ArtifactCache`] on load, not serialized, so an
//! artifact's content hash is the same whether it was compiled fresh or
//! replayed from a store.

use waltz_codec::{ByteReader, ByteWriter, Decode, DecodeError, Encode};

use crate::artifact::CompileArtifact;
use crate::cache::CacheStats;
use crate::compile::{CompileError, CompileStats, CompiledCircuit};
use crate::eps::CoherenceSpan;
use crate::pipeline::{Pass, PassReport};
use crate::strategy::{CompileOptions, FqCswapMode, Fusion, MrCcxMode, QubitCcxMode, Strategy};
use crate::supervisor::{Degradation, JobReport, JobStatus};
use crate::target::TopologySpec;

impl Encode for Fusion {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            Fusion::Off => 0,
            Fusion::TwoQudit => 1,
        });
    }
}

impl Decode for Fusion {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(Fusion::Off),
            1 => Ok(Fusion::TwoQudit),
            tag => Err(DecodeError::BadTag { ty: "Fusion", tag }),
        }
    }
}

impl Encode for QubitCcxMode {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            QubitCcxMode::EightCx => 0,
            QubitCcxMode::IToffoli => 1,
        });
    }
}

impl Decode for QubitCcxMode {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(QubitCcxMode::EightCx),
            1 => Ok(QubitCcxMode::IToffoli),
            tag => Err(DecodeError::BadTag {
                ty: "QubitCcxMode",
                tag,
            }),
        }
    }
}

impl Encode for MrCcxMode {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            MrCcxMode::Raw => 0,
            MrCcxMode::Retarget => 1,
            MrCcxMode::CczTransform => 2,
        });
    }
}

impl Decode for MrCcxMode {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(MrCcxMode::Raw),
            1 => Ok(MrCcxMode::Retarget),
            2 => Ok(MrCcxMode::CczTransform),
            tag => Err(DecodeError::BadTag {
                ty: "MrCcxMode",
                tag,
            }),
        }
    }
}

impl Encode for FqCswapMode {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            FqCswapMode::Decompose => 0,
            FqCswapMode::Native => 1,
            FqCswapMode::NativeOriented => 2,
        });
    }
}

impl Decode for FqCswapMode {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(FqCswapMode::Decompose),
            1 => Ok(FqCswapMode::Native),
            2 => Ok(FqCswapMode::NativeOriented),
            tag => Err(DecodeError::BadTag {
                ty: "FqCswapMode",
                tag,
            }),
        }
    }
}

impl Encode for Strategy {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Strategy::QubitOnly { ccx } => {
                w.put_u8(0);
                ccx.encode(w);
            }
            Strategy::MixedRadix { ccx, native_cswap } => {
                w.put_u8(1);
                ccx.encode(w);
                w.put_bool(*native_cswap);
            }
            Strategy::FullQuquart { use_ccz, cswap } => {
                w.put_u8(2);
                w.put_bool(*use_ccz);
                cswap.encode(w);
            }
        }
    }
}

impl Decode for Strategy {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(Strategy::QubitOnly {
                ccx: QubitCcxMode::decode(r)?,
            }),
            1 => Ok(Strategy::MixedRadix {
                ccx: MrCcxMode::decode(r)?,
                native_cswap: r.get_bool()?,
            }),
            2 => Ok(Strategy::FullQuquart {
                use_ccz: r.get_bool()?,
                cswap: FqCswapMode::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                ty: "Strategy",
                tag,
            }),
        }
    }
}

impl Encode for CompileOptions {
    fn encode(&self, w: &mut ByteWriter) {
        self.fusion.encode(w);
        self.fuse_sweep_overhead.encode(w);
        self.fuse_sweep_fixed.encode(w);
        self.max_fused_span.encode(w);
        w.put_bool(self.padded_registers);
        w.put_bool(self.windowed_registers);
        self.window_sweep_fixed.encode(w);
        self.sparse_density_threshold_bits.encode(w);
        self.sparse_epsilon_bits.encode(w);
    }
}

impl Decode for CompileOptions {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CompileOptions {
            fusion: Fusion::decode(r)?,
            fuse_sweep_overhead: Option::decode(r)?,
            fuse_sweep_fixed: Option::decode(r)?,
            max_fused_span: Option::decode(r)?,
            padded_registers: r.get_bool()?,
            windowed_registers: r.get_bool()?,
            window_sweep_fixed: Option::decode(r)?,
            sparse_density_threshold_bits: Option::decode(r)?,
            sparse_epsilon_bits: Option::decode(r)?,
        })
    }
}

impl Encode for CompileStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.routing_swaps);
        w.put_usize(self.enc_windows);
        w.put_usize(self.hw_ops);
        w.put_f64(self.total_duration_ns);
    }
}

impl Decode for CompileStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CompileStats {
            routing_swaps: r.get_usize()?,
            enc_windows: r.get_usize()?,
            hw_ops: r.get_usize()?,
            total_duration_ns: r.get_f64()?,
        })
    }
}

impl Encode for CoherenceSpan {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.device);
        w.put_usize(self.level);
        w.put_f64(self.start_ns);
        w.put_f64(self.end_ns);
    }
}

impl Decode for CoherenceSpan {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CoherenceSpan {
            device: r.get_usize()?,
            level: r.get_usize()?,
            start_ns: r.get_f64()?,
            end_ns: r.get_f64()?,
        })
    }
}

impl Encode for Pass {
    fn encode(&self, w: &mut ByteWriter) {
        // Tag = position in execution order (Pass::ALL).
        let tag = Pass::ALL
            .iter()
            .position(|p| p == self)
            .expect("every pass is in Pass::ALL") as u8;
        w.put_u8(tag);
    }
}

impl Decode for Pass {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let tag = r.get_u8()?;
        Pass::ALL
            .get(tag as usize)
            .copied()
            .ok_or(DecodeError::BadTag { ty: "Pass", tag })
    }
}

impl Encode for PassReport {
    fn encode(&self, w: &mut ByteWriter) {
        self.pass.encode(w);
        w.put_f64(self.wall_ms);
        w.put_usize(self.ops_in);
        w.put_usize(self.ops_out);
        w.put_usize(self.depth_in);
        w.put_usize(self.depth_out);
        self.diagnostics.encode(w);
    }
}

impl Decode for PassReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(PassReport {
            pass: Pass::decode(r)?,
            wall_ms: r.get_f64()?,
            ops_in: r.get_usize()?,
            ops_out: r.get_usize()?,
            depth_in: r.get_usize()?,
            depth_out: r.get_usize()?,
            diagnostics: Vec::decode(r)?,
        })
    }
}

impl Encode for TopologySpec {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            TopologySpec::Auto => w.put_u8(0),
            TopologySpec::Fixed(t) => {
                w.put_u8(1);
                t.encode(w);
            }
        }
    }
}

impl Decode for TopologySpec {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(TopologySpec::Auto),
            1 => Ok(TopologySpec::Fixed(waltz_arch::Topology::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                ty: "TopologySpec",
                tag,
            }),
        }
    }
}

impl Encode for CompiledCircuit {
    fn encode(&self, w: &mut ByteWriter) {
        self.timed.encode(w);
        self.fused.encode(w);
        self.windowed.encode(w);
        self.strategy.encode(w);
        self.initial_sites.encode(w);
        self.final_sites.encode(w);
        self.coherence_spans.encode(w);
        self.stats.encode(w);
        w.put_usize(self.slots_per_device);
    }
}

impl Decode for CompiledCircuit {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let compiled = CompiledCircuit {
            timed: Decode::decode(r)?,
            fused: Option::decode(r)?,
            windowed: Option::decode(r)?,
            strategy: Strategy::decode(r)?,
            initial_sites: Vec::decode(r)?,
            final_sites: Vec::decode(r)?,
            coherence_spans: Vec::decode(r)?,
            stats: CompileStats::decode(r)?,
            slots_per_device: r.get_usize()?,
        };
        let n_devices = compiled.timed.register.n_qudits();
        if compiled
            .initial_sites
            .iter()
            .chain(&compiled.final_sites)
            .any(|s| s.device >= n_devices)
        {
            return Err(DecodeError::Invalid("site names a device out of range"));
        }
        if !(1..=2).contains(&compiled.slots_per_device) {
            return Err(DecodeError::Invalid("slots per device must be 1 or 2"));
        }
        Ok(compiled)
    }
}

impl Encode for CompileArtifact {
    fn encode(&self, w: &mut ByteWriter) {
        self.compiled().encode(w);
        w.put_usize(self.reports().len());
        for report in self.reports() {
            report.encode(w);
        }
        self.noise().encode(w);
        // `cached` is provenance, not content: deliberately not encoded.
    }
}

impl Decode for CompileArtifact {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let compiled = CompiledCircuit::decode(r)?;
        let reports: Vec<PassReport> = Vec::decode(r)?;
        let noise = waltz_noise::NoiseModel::decode(r)?;
        Ok(CompileArtifact::new(compiled, reports, noise))
    }
}

impl Encode for CompileError {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            CompileError::EmptyCircuit => w.put_u8(0),
            CompileError::TopologyTooSmall { needed, available } => {
                w.put_u8(1);
                w.put_usize(*needed);
                w.put_usize(*available);
            }
            CompileError::DuplicateOperands { gate_index, qubit } => {
                w.put_u8(2);
                w.put_usize(*gate_index);
                w.put_usize(*qubit);
            }
            CompileError::WrongOperandCount {
                gate_index,
                expected,
                got,
            } => {
                w.put_u8(3);
                w.put_usize(*gate_index);
                w.put_usize(*expected);
                w.put_usize(*got);
            }
            CompileError::NonFiniteAngle { gate_index } => {
                w.put_u8(4);
                w.put_usize(*gate_index);
            }
            CompileError::DisconnectedTopology { devices } => {
                w.put_u8(5);
                w.put_usize(*devices);
            }
            CompileError::QubitOutOfRange {
                gate_index,
                qubit,
                n_qubits,
            } => {
                w.put_u8(6);
                w.put_usize(*gate_index);
                w.put_usize(*qubit);
                w.put_usize(*n_qubits);
            }
            CompileError::Internal { pass, payload } => {
                w.put_u8(7);
                pass.encode(w);
                w.put_str(payload);
            }
            CompileError::DeadlineExceeded { pass, budget_ms } => {
                w.put_u8(8);
                pass.encode(w);
                w.put_u64(*budget_ms);
            }
            CompileError::OverBudget { needed, limit } => {
                w.put_u8(9);
                w.put_usize(*needed);
                w.put_usize(*limit);
            }
        }
    }
}

impl Decode for CompileError {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => CompileError::EmptyCircuit,
            1 => CompileError::TopologyTooSmall {
                needed: r.get_usize()?,
                available: r.get_usize()?,
            },
            2 => CompileError::DuplicateOperands {
                gate_index: r.get_usize()?,
                qubit: r.get_usize()?,
            },
            3 => CompileError::WrongOperandCount {
                gate_index: r.get_usize()?,
                expected: r.get_usize()?,
                got: r.get_usize()?,
            },
            4 => CompileError::NonFiniteAngle {
                gate_index: r.get_usize()?,
            },
            5 => CompileError::DisconnectedTopology {
                devices: r.get_usize()?,
            },
            6 => CompileError::QubitOutOfRange {
                gate_index: r.get_usize()?,
                qubit: r.get_usize()?,
                n_qubits: r.get_usize()?,
            },
            7 => CompileError::Internal {
                pass: Pass::decode(r)?,
                payload: r.get_str()?,
            },
            8 => CompileError::DeadlineExceeded {
                pass: Pass::decode(r)?,
                budget_ms: r.get_u64()?,
            },
            9 => CompileError::OverBudget {
                needed: r.get_usize()?,
                limit: r.get_usize()?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    ty: "CompileError",
                    tag,
                })
            }
        })
    }
}

impl Encode for JobStatus {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            JobStatus::Ok => 0,
            JobStatus::Err => 1,
            JobStatus::Panicked => 2,
            JobStatus::TimedOut => 3,
            JobStatus::OverBudget => 4,
        });
    }
}

impl Decode for JobStatus {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => JobStatus::Ok,
            1 => JobStatus::Err,
            2 => JobStatus::Panicked,
            3 => JobStatus::TimedOut,
            4 => JobStatus::OverBudget,
            tag => {
                return Err(DecodeError::BadTag {
                    ty: "JobStatus",
                    tag,
                })
            }
        })
    }
}

impl Encode for Degradation {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            Degradation::None => 0,
            Degradation::SafePipeline => 1,
            Degradation::Windowed => 2,
            Degradation::WholeDemoted => 3,
            Degradation::Sparse => 4,
        });
    }
}

impl Decode for Degradation {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => Degradation::None,
            1 => Degradation::SafePipeline,
            2 => Degradation::Windowed,
            3 => Degradation::WholeDemoted,
            4 => Degradation::Sparse,
            tag => {
                return Err(DecodeError::BadTag {
                    ty: "Degradation",
                    tag,
                })
            }
        })
    }
}

impl Encode for JobReport {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.index);
        match &self.result {
            Ok(artifact) => {
                w.put_u8(0);
                artifact.encode(w);
            }
            Err(error) => {
                w.put_u8(1);
                error.encode(w);
            }
        }
        self.status.encode(w);
        self.degradation.encode(w);
        w.put_bool(self.retried);
        // `cached` is provenance on the artifact side but *content* on a
        // job report: the whole point of shipping a report across a
        // process boundary is telling the submitter whether the shared
        // cache answered.
        w.put_bool(self.cached);
        w.put_f64(self.wall_ms);
    }
}

impl Decode for JobReport {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let index = r.get_usize()?;
        let result = match r.get_u8()? {
            0 => Ok(CompileArtifact::decode(r)?),
            1 => Err(CompileError::decode(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    ty: "JobReport.result",
                    tag,
                })
            }
        };
        let status = JobStatus::decode(r)?;
        if status != JobStatus::classify(&result) {
            return Err(DecodeError::Invalid("job status contradicts its result"));
        }
        let degradation = Degradation::decode(r)?;
        let retried = r.get_bool()?;
        let cached = r.get_bool()?;
        if cached && result.is_err() {
            return Err(DecodeError::Invalid("a failed job cannot be cached"));
        }
        let wall_ms = r.get_f64()?;
        if !wall_ms.is_finite() || wall_ms < 0.0 {
            return Err(DecodeError::Invalid("job wall_ms must be finite and >= 0"));
        }
        let mut result = result;
        if cached {
            if let Ok(artifact) = &mut result {
                artifact.set_cached(true);
            }
        }
        Ok(JobReport {
            index,
            result,
            status,
            degradation,
            retried,
            cached,
            wall_ms,
        })
    }
}

impl Encode for CacheStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.evictions_memory);
        w.put_u64(self.evictions_disk);
        w.put_usize(self.memory_entries);
    }
}

impl Decode for CacheStats {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            evictions_memory: r.get_u64()?,
            evictions_disk: r.get_u64()?,
            memory_entries: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use waltz_circuit::Circuit;
    use waltz_codec::{content_hash, decode_from_slice, encode_to_vec};

    use super::*;
    use crate::{Compiler, Target};

    fn cnu_artifact(strategy: Strategy) -> CompileArtifact {
        let mut c = Circuit::new(6);
        c.ccx(0, 1, 3).ccx(2, 3, 4).ccx(2, 4, 5);
        Compiler::new(Target::paper(strategy)).compile(&c).unwrap()
    }

    #[test]
    fn strategies_and_options_round_trip() {
        for strategy in [
            Strategy::qubit_only(),
            Strategy::qubit_only_itoffoli(),
            Strategy::mixed_radix_raw(),
            Strategy::mixed_radix_retarget(),
            Strategy::mixed_radix_ccz(),
            Strategy::full_ququart(),
            Strategy::MixedRadix {
                ccx: MrCcxMode::Retarget,
                native_cswap: true,
            },
            Strategy::FullQuquart {
                use_ccz: false,
                cswap: FqCswapMode::NativeOriented,
            },
        ] {
            let bytes = encode_to_vec(&strategy);
            let back: Strategy = decode_from_slice(&bytes).unwrap();
            assert_eq!(back, strategy);
        }
        for options in [
            CompileOptions::default(),
            CompileOptions::unfused(),
            CompileOptions::default()
                .with_fuse_constants(7, 1234)
                .with_max_fused_span(3)
                .with_window_sweep_fixed(0),
            CompileOptions::default()
                .with_sparse_density_threshold(0.125)
                .with_sparse_epsilon(1e-10),
        ] {
            let bytes = encode_to_vec(&options);
            let back: CompileOptions = decode_from_slice(&bytes).unwrap();
            assert_eq!(back, options);
        }
    }

    #[test]
    fn every_pass_round_trips() {
        for pass in Pass::ALL {
            let bytes = encode_to_vec(&pass);
            assert_eq!(decode_from_slice::<Pass>(&bytes).unwrap(), pass);
        }
        let bytes = encode_to_vec(&7u8);
        assert!(decode_from_slice::<Pass>(&bytes).is_err());
    }

    #[test]
    fn compiled_artifact_round_trips_byte_identical() {
        for strategy in [
            Strategy::qubit_only(),
            Strategy::mixed_radix_ccz(),
            Strategy::full_ququart(),
        ] {
            let artifact = cnu_artifact(strategy);
            let bytes = encode_to_vec(&artifact);
            let back: CompileArtifact = decode_from_slice(&bytes).unwrap();
            assert_eq!(encode_to_vec(&back), bytes, "{}", strategy.name());
            assert_eq!(content_hash(&back), content_hash(&artifact));
            assert_eq!(back.stats, artifact.stats);
            assert_eq!(back.reports().len(), artifact.reports().len());
            assert!(!back.is_cached(), "cached is provenance, not content");
        }
    }

    #[test]
    fn cached_marker_does_not_change_the_encoding() {
        let artifact = cnu_artifact(Strategy::mixed_radix_ccz());
        let bytes = encode_to_vec(&artifact);
        let mut marked = artifact.clone();
        marked.set_cached(true);
        assert!(marked.is_cached());
        assert_eq!(encode_to_vec(&marked), bytes);
    }

    #[test]
    fn compile_errors_round_trip() {
        let errors = [
            CompileError::EmptyCircuit,
            CompileError::TopologyTooSmall {
                needed: 9,
                available: 4,
            },
            CompileError::DuplicateOperands {
                gate_index: 3,
                qubit: 1,
            },
            CompileError::WrongOperandCount {
                gate_index: 0,
                expected: 3,
                got: 2,
            },
            CompileError::NonFiniteAngle { gate_index: 7 },
            CompileError::DisconnectedTopology { devices: 5 },
            CompileError::QubitOutOfRange {
                gate_index: 2,
                qubit: 9,
                n_qubits: 4,
            },
            CompileError::Internal {
                pass: Pass::Route,
                payload: "injected".into(),
            },
            CompileError::DeadlineExceeded {
                pass: Pass::Fuse,
                budget_ms: 250,
            },
            CompileError::OverBudget {
                needed: 4096,
                limit: 1024,
            },
        ];
        for error in errors {
            let bytes = encode_to_vec(&error);
            assert_eq!(decode_from_slice::<CompileError>(&bytes).unwrap(), error);
        }
        let bytes = encode_to_vec(&200u8);
        assert!(decode_from_slice::<CompileError>(&bytes).is_err());
    }

    #[test]
    fn job_reports_round_trip_ok_and_err() {
        use crate::{Degradation, JobStatus, Supervisor};

        let mut c = Circuit::new(6);
        c.ccx(0, 1, 3).ccx(2, 3, 4).ccx(2, 4, 5);
        let supervisor = Supervisor::new(Compiler::new(Target::paper(Strategy::mixed_radix_ccz())));
        let ok = supervisor.compile_one(&c);
        assert_eq!(ok.status, JobStatus::Ok);
        let bytes = encode_to_vec(&ok);
        let back: crate::JobReport = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.index, ok.index);
        assert_eq!(back.status, ok.status);
        assert_eq!(back.degradation, ok.degradation);
        assert_eq!(back.retried, ok.retried);
        assert_eq!(back.cached, ok.cached);
        assert_eq!(back.wall_ms.to_bits(), ok.wall_ms.to_bits());
        assert_eq!(
            encode_to_vec(back.result.as_ref().unwrap()),
            encode_to_vec(ok.result.as_ref().unwrap()),
            "artifact bytes survive the report round trip"
        );
        // Re-encode of the whole report is byte-identical.
        assert_eq!(encode_to_vec(&back), bytes);

        let err = supervisor.compile_one(&Circuit::new(0));
        assert_eq!(err.status, JobStatus::Err);
        let bytes = encode_to_vec(&err);
        let back: crate::JobReport = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.status, JobStatus::Err);
        assert_eq!(back.degradation, Degradation::None);
        assert_eq!(
            back.result.as_ref().unwrap_err(),
            &CompileError::EmptyCircuit
        );
        assert_eq!(encode_to_vec(&back), bytes);
    }

    #[test]
    fn job_report_decode_rejects_contradictory_status() {
        use crate::{Degradation, JobStatus};
        let mut w = ByteWriter::new();
        w.put_usize(0);
        w.put_u8(1); // Err
        CompileError::EmptyCircuit.encode(&mut w);
        JobStatus::Panicked.encode(&mut w); // contradicts EmptyCircuit
        Degradation::None.encode(&mut w);
        w.put_bool(false);
        w.put_bool(false);
        w.put_f64(1.0);
        assert!(matches!(
            decode_from_slice::<crate::JobReport>(w.as_bytes()),
            Err(waltz_codec::DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn cache_stats_round_trip() {
        let stats = CacheStats {
            hits: 10,
            misses: 3,
            evictions_memory: 2,
            evictions_disk: 5,
            memory_entries: 7,
        };
        let bytes = encode_to_vec(&stats);
        assert_eq!(decode_from_slice::<CacheStats>(&bytes).unwrap(), stats);
    }

    #[test]
    fn corrupt_artifact_bytes_are_rejected_not_panicked() {
        let artifact = cnu_artifact(Strategy::qubit_only());
        let bytes = encode_to_vec(&artifact);
        // Truncation at every eighth cut must error cleanly.
        for cut in (0..bytes.len()).step_by(8) {
            assert!(decode_from_slice::<CompileArtifact>(&bytes[..cut]).is_err());
        }
    }
}
