//! Tracking where logical qubits live on the interaction graph.

use waltz_arch::{InteractionGraph, Site};

/// A bijective (partial) assignment of logical qubits to sites.
///
/// The router mutates the layout as it inserts physical swaps; the final
/// layout tells the verifier (and the measurement decoder) where each
/// logical qubit ended up.
#[derive(Debug, Clone)]
pub struct Layout {
    graph: InteractionGraph,
    site_of: Vec<Option<usize>>,
    qubit_at: Vec<Option<usize>>,
}

impl Layout {
    /// An empty layout for `n_qubits` over `graph`.
    pub fn new(graph: InteractionGraph, n_qubits: usize) -> Self {
        let sites = graph.n_sites();
        Layout {
            graph,
            site_of: vec![None; n_qubits],
            qubit_at: vec![None; sites],
        }
    }

    /// The interaction graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// Number of logical qubits.
    pub fn n_qubits(&self) -> usize {
        self.site_of.len()
    }

    /// Places `qubit` at `site`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is already placed or the site is occupied.
    pub fn place(&mut self, qubit: usize, site: Site) {
        let idx = self.graph.index_of(site);
        assert!(
            self.site_of[qubit].is_none(),
            "qubit {qubit} already placed"
        );
        assert!(self.qubit_at[idx].is_none(), "site {site:?} occupied");
        self.site_of[qubit] = Some(idx);
        self.qubit_at[idx] = Some(qubit);
    }

    /// Site of a placed qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is unplaced.
    pub fn site_of(&self, qubit: usize) -> Site {
        let idx = self.site_of[qubit].expect("qubit not placed");
        self.graph.site_at(idx)
    }

    /// Device of a placed qubit.
    pub fn device_of(&self, qubit: usize) -> usize {
        self.site_of(qubit).device
    }

    /// Logical qubit at `site`, if any.
    pub fn qubit_at(&self, site: Site) -> Option<usize> {
        self.qubit_at[self.graph.index_of(site)]
    }

    /// Exchanges whatever occupies the two sites (either may be empty).
    pub fn swap_sites(&mut self, a: Site, b: Site) {
        let ia = self.graph.index_of(a);
        let ib = self.graph.index_of(b);
        let qa = self.qubit_at[ia];
        let qb = self.qubit_at[ib];
        self.qubit_at[ia] = qb;
        self.qubit_at[ib] = qa;
        if let Some(q) = qa {
            self.site_of[q] = Some(ib);
        }
        if let Some(q) = qb {
            self.site_of[q] = Some(ia);
        }
    }

    /// Relabels two logical qubits in place (a zero-cost virtual SWAP).
    pub fn relabel(&mut self, a: usize, b: usize) {
        let sa = self.site_of[a];
        let sb = self.site_of[b];
        self.site_of[a] = sb;
        self.site_of[b] = sa;
        if let Some(idx) = sa {
            self.qubit_at[idx] = Some(b);
        }
        if let Some(idx) = sb {
            self.qubit_at[idx] = Some(a);
        }
    }

    /// Number of logical qubits on a device.
    pub fn device_occupancy(&self, device: usize) -> usize {
        (0..self.graph.slots_per_device())
            .filter(|&s| self.qubit_at[self.graph.index_of(Site::new(device, s))].is_some())
            .count()
    }

    /// The logical qubits on a device, by slot order.
    pub fn qubits_on_device(&self, device: usize) -> Vec<usize> {
        (0..self.graph.slots_per_device())
            .filter_map(|s| self.qubit_at[self.graph.index_of(Site::new(device, s))])
            .collect()
    }

    /// An empty slot on `device`, if any.
    pub fn empty_slot(&self, device: usize) -> Option<Site> {
        (0..self.graph.slots_per_device())
            .map(|s| Site::new(device, s))
            .find(|&s| self.qubit_at[self.graph.index_of(s)].is_none())
    }

    /// The full assignment (qubit -> site), failing if any qubit is
    /// unplaced.
    ///
    /// # Panics
    ///
    /// Panics if a qubit has no site.
    pub fn assignment(&self) -> Vec<Site> {
        (0..self.n_qubits()).map(|q| self.site_of(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_arch::Topology;

    fn graph() -> InteractionGraph {
        InteractionGraph::encoded(Topology::line(3))
    }

    #[test]
    fn place_and_lookup() {
        let mut l = Layout::new(graph(), 2);
        l.place(0, Site::new(1, 0));
        l.place(1, Site::new(1, 1));
        assert_eq!(l.site_of(0), Site::new(1, 0));
        assert_eq!(l.qubit_at(Site::new(1, 1)), Some(1));
        assert_eq!(l.device_occupancy(1), 2);
        assert_eq!(l.device_occupancy(0), 0);
        assert_eq!(l.qubits_on_device(1), vec![0, 1]);
    }

    #[test]
    fn swap_with_empty_site_moves_qubit() {
        let mut l = Layout::new(graph(), 1);
        l.place(0, Site::new(0, 0));
        l.swap_sites(Site::new(0, 0), Site::new(2, 1));
        assert_eq!(l.site_of(0), Site::new(2, 1));
        assert_eq!(l.qubit_at(Site::new(0, 0)), None);
    }

    #[test]
    fn swap_two_occupied_sites() {
        let mut l = Layout::new(graph(), 2);
        l.place(0, Site::new(0, 0));
        l.place(1, Site::new(1, 0));
        l.swap_sites(Site::new(0, 0), Site::new(1, 0));
        assert_eq!(l.site_of(0), Site::new(1, 0));
        assert_eq!(l.site_of(1), Site::new(0, 0));
    }

    #[test]
    fn relabel_is_virtual() {
        let mut l = Layout::new(graph(), 2);
        l.place(0, Site::new(0, 0));
        l.place(1, Site::new(2, 1));
        l.relabel(0, 1);
        assert_eq!(l.site_of(0), Site::new(2, 1));
        assert_eq!(l.site_of(1), Site::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn double_placement_rejected() {
        let mut l = Layout::new(graph(), 2);
        l.place(0, Site::new(0, 0));
        l.place(1, Site::new(0, 0));
    }

    #[test]
    fn empty_slot_lookup() {
        let mut l = Layout::new(graph(), 1);
        l.place(0, Site::new(0, 0));
        assert_eq!(l.empty_slot(0), Some(Site::new(0, 1)));
        assert_eq!(l.empty_slot(1), Some(Site::new(1, 0)));
    }
}
