//! The supervised batch engine: panic isolation, per-job deadlines and a
//! state-byte admission budget with a degradation ladder — the layer that
//! lets one poisoned job in a thousand-job sweep fail alone instead of
//! tearing down the batch (ROADMAP item 2, compile-and-simulate as a
//! service).
//!
//! A [`Supervisor`] wraps a [`Compiler`] with a [`SupervisorPolicy`] and
//! runs jobs through [`Supervisor::compile_one`] /
//! [`Supervisor::compile_batch`], producing one [`JobReport`] per job:
//!
//! * **Panic isolation** — each job runs under `catch_unwind`; a panic
//!   anywhere in the pipeline becomes [`CompileError::Internal`]
//!   attributed to the pass that raised it (every pass boundary marks
//!   itself in thread-local state via [`begin_pass`]), and every sibling
//!   job completes normally. When
//!   [`SupervisorPolicy::retry_degraded`] is on, a panicked job is
//!   retried once through a conservative pipeline (fusion and windowing
//!   off) before the error is accepted.
//! * **Deadlines** — [`SupervisorPolicy::deadline_ms`] bounds each job's
//!   wall clock; the pipeline checks it at every pass boundary and a job
//!   that runs over reports [`CompileError::DeadlineExceeded`].
//! * **Budget backpressure** — [`SupervisorPolicy::state_budget_bytes`]
//!   is an admission limit on the artifact's peak simulation state size
//!   ([`crate::CompiledCircuit::sim_state_bytes_peak`]). An over-budget
//!   job walks the degradation ladder — forced windowed registers, then
//!   the whole-program demoted register, then sparse admission of the
//!   original artifact when the analyze pass predicts its
//!   density-adaptive state fits ([`Degradation::Sparse`]) — and only
//!   when no rung fits does it reject with [`CompileError::OverBudget`]
//!   carrying the smallest dense peak any rung achieved. The budget is a live knob
//!   ([`Supervisor::set_budget_bytes`]): shrinking it mid-batch applies
//!   to every job admitted after the change.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use waltz_circuit::Circuit;

use crate::artifact::CompileArtifact;
use crate::compile::CompileError;
use crate::pipeline::{Compiler, Pass};
use crate::strategy::{CompileOptions, Fusion};

thread_local! {
    /// The pass currently running on this thread, so a supervisor's
    /// `catch_unwind` can attribute a caught panic.
    static CURRENT_PASS: Cell<Option<Pass>> = const { Cell::new(None) };
}

/// Pass-boundary hook of the pipeline ([`Compiler::compile`] routes every
/// pass through this): enforces the deadline, marks the pass as running
/// for panic attribution, and (under `fault-inject`) gives the fault plan
/// its chance to panic.
pub(crate) fn begin_pass(
    pass: Pass,
    deadline: Option<Instant>,
    budget_ms: u64,
) -> Result<(), CompileError> {
    if let Some(d) = deadline {
        if Instant::now() > d {
            return Err(CompileError::DeadlineExceeded { pass, budget_ms });
        }
    }
    CURRENT_PASS.with(|c| c.set(Some(pass)));
    #[cfg(feature = "fault-inject")]
    crate::fault::maybe_panic(pass);
    Ok(())
}

/// Clears and returns the running-pass marker (after a job attempt).
fn take_pass() -> Option<Pass> {
    CURRENT_PASS.with(Cell::take)
}

/// Renders a caught panic payload for [`CompileError::Internal`].
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-job supervision policy (see the module docs for the semantics of
/// each knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Wall-clock budget per job, in milliseconds; `None` leaves jobs
    /// unbounded. Enforced at pass boundaries, so the overshoot is at
    /// most one pass.
    pub deadline_ms: Option<u64>,
    /// Admission limit on the artifact's peak simulation state bytes;
    /// `None` admits everything. The starting value of the supervisor's
    /// live budget ([`Supervisor::set_budget_bytes`]).
    pub state_budget_bytes: Option<usize>,
    /// Retry a *panicked* job once through a conservative pipeline
    /// (fusion and windowed registers off) before accepting the error.
    /// On by default.
    pub retry_degraded: bool,
    /// Worker threads for [`Supervisor::compile_batch`]; `None` uses the
    /// machine's available parallelism. `Some(1)` makes batch order (and
    /// therefore mid-batch budget shrinks) deterministic.
    pub threads: Option<usize>,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            deadline_ms: None,
            state_budget_bytes: None,
            retry_degraded: true,
            threads: None,
        }
    }
}

impl SupervisorPolicy {
    /// Sets the per-job wall-clock budget in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the state-byte admission budget.
    pub fn with_state_budget_bytes(mut self, bytes: usize) -> Self {
        self.state_budget_bytes = Some(bytes);
        self
    }

    /// Enables or disables the retry-once-with-degradation of panicked
    /// jobs (on by default).
    pub fn with_retry_degraded(mut self, enabled: bool) -> Self {
        self.retry_degraded = enabled;
        self
    }

    /// Pins the batch worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// How a supervised job ended — the coarse outcome classification derived
/// from [`JobReport::result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Compiled (possibly after degradation — see
    /// [`JobReport::degradation`]).
    Ok,
    /// A typed input/validation failure ([`CompileError`] other than the
    /// supervision variants).
    Err,
    /// A pass panicked ([`CompileError::Internal`]).
    Panicked,
    /// The job ran past its deadline
    /// ([`CompileError::DeadlineExceeded`]).
    TimedOut,
    /// No degradation rung fit the state-byte budget
    /// ([`CompileError::OverBudget`]).
    OverBudget,
}

impl JobStatus {
    /// The coarse outcome classification of a job result — the one
    /// mapping [`JobReport::status`] is derived from, exposed so remote
    /// fronts reconstructing reports from typed error frames classify
    /// identically.
    pub fn classify(result: &Result<CompileArtifact, CompileError>) -> JobStatus {
        match result {
            Ok(_) => JobStatus::Ok,
            Err(CompileError::Internal { .. }) => JobStatus::Panicked,
            Err(CompileError::DeadlineExceeded { .. }) => JobStatus::TimedOut,
            Err(CompileError::OverBudget { .. }) => JobStatus::OverBudget,
            Err(_) => JobStatus::Err,
        }
    }
}

/// Which rung of the ladder produced a job's artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// The supervisor's own compiler options, untouched.
    None,
    /// The conservative retry pipeline after a panic (fusion and
    /// windowing off).
    SafePipeline,
    /// Forced windowed registers (maximal splitting) to fit the budget.
    Windowed,
    /// The whole-program demoted register to fit the budget.
    WholeDemoted,
    /// No register shape fit densely, but the analyze pass's sparse
    /// state-size prediction
    /// ([`crate::CompileArtifact::sparse_state_bytes_pred`]) does: the
    /// *original* artifact is admitted on the promise that a
    /// density-adaptive simulation (basis inputs, sparse amplitude map)
    /// stays within the budget. Dense random-input sweeps must not be
    /// run against such an artifact.
    Sparse,
}

/// The per-job outcome of a supervised compilation.
#[derive(Debug)]
pub struct JobReport {
    /// The job's index in the submitted batch.
    pub index: usize,
    /// The artifact, or the typed error that stopped the job.
    pub result: Result<CompileArtifact, CompileError>,
    /// Coarse outcome classification of `result`.
    pub status: JobStatus,
    /// The ladder rung that produced the artifact ([`Degradation::None`]
    /// for errors and undegraded successes).
    pub degradation: Degradation,
    /// Whether the job ran more than one pipeline attempt (panic retry or
    /// budget ladder).
    pub retried: bool,
    /// Whether the artifact was replayed from the compiler's
    /// [`crate::ArtifactCache`] instead of compiled fresh
    /// ([`CompileArtifact::is_cached`]). Cached artifacts still pass the
    /// live state-byte budget gate like any other. Always `false` for
    /// errors.
    pub cached: bool,
    /// Wall-clock time the job took, across all attempts, in
    /// milliseconds.
    pub wall_ms: f64,
}

impl JobReport {
    fn new(index: usize, result: Result<CompileArtifact, CompileError>) -> Self {
        let status = JobStatus::classify(&result);
        let cached = matches!(&result, Ok(artifact) if artifact.is_cached());
        JobReport {
            index,
            result,
            status,
            degradation: Degradation::None,
            retried: false,
            cached,
            wall_ms: 0.0,
        }
    }
}

/// A [`Compiler`] wrapped with per-job supervision (see the module docs).
///
/// # Example
///
/// ```
/// use waltz_core::{Compiler, JobStatus, Strategy, Supervisor, SupervisorPolicy, Target};
/// use waltz_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).ccx(0, 1, 2);
/// let supervisor = Supervisor::with_policy(
///     Compiler::new(Target::paper(Strategy::mixed_radix_ccz())),
///     SupervisorPolicy::default().with_state_budget_bytes(1 << 20),
/// );
/// for job in supervisor.compile_batch(&[c]) {
///     assert_eq!(job.status, JobStatus::Ok);
///     assert!(job.result.unwrap().timed.validate().is_ok());
/// }
/// ```
#[derive(Debug)]
pub struct Supervisor {
    compiler: Compiler,
    policy: SupervisorPolicy,
    /// The live state-byte budget; `usize::MAX` means unlimited. Jobs
    /// snapshot it at admission, so shrinking it mid-batch
    /// ([`Supervisor::set_budget_bytes`]) applies to every later job.
    budget: AtomicUsize,
    /// Pool that simulation work driven from this supervisor's jobs runs
    /// on (the serve layer's estimate requests); compile jobs themselves
    /// use the batch worker threads.
    traj_pool: std::sync::Arc<waltz_sim::TrajectoryPool>,
}

impl Supervisor {
    /// A supervisor with the default policy (no deadline, no budget,
    /// panic retry on).
    pub fn new(compiler: Compiler) -> Self {
        Supervisor::with_policy(compiler, SupervisorPolicy::default())
    }

    /// A supervisor with an explicit policy.
    pub fn with_policy(compiler: Compiler, policy: SupervisorPolicy) -> Self {
        let budget = AtomicUsize::new(policy.state_budget_bytes.unwrap_or(usize::MAX));
        Supervisor {
            compiler,
            policy,
            budget,
            traj_pool: waltz_sim::TrajectoryPool::global(),
        }
    }

    /// Replaces the [`waltz_sim::TrajectoryPool`] that simulation work
    /// attached to this supervisor runs on (defaults to the process-wide
    /// pool).
    pub fn with_trajectory_pool(mut self, pool: std::sync::Arc<waltz_sim::TrajectoryPool>) -> Self {
        self.traj_pool = pool;
        self
    }

    /// The pool simulation work attached to this supervisor runs on.
    pub fn trajectory_pool(&self) -> &std::sync::Arc<waltz_sim::TrajectoryPool> {
        &self.traj_pool
    }

    /// The wrapped compiler.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// The supervision policy.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// The current state-byte budget (`None` = unlimited).
    pub fn budget_bytes(&self) -> Option<usize> {
        let b = self.budget.load(Ordering::Relaxed);
        (b != usize::MAX).then_some(b)
    }

    /// Replaces the state-byte budget, mid-batch if needed: jobs admitted
    /// after the store see the new limit (backpressure under memory
    /// pressure), jobs already past admission keep their snapshot.
    pub fn set_budget_bytes(&self, bytes: Option<usize>) {
        self.budget
            .store(bytes.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// Aggregated counters of the wrapped compiler's
    /// [`crate::ArtifactCache`] (`None` when no cache is attached) — the
    /// sanctioned way to read cache effectiveness, instead of digging
    /// `artifact_cache_*` counters out of per-job Lower-pass diagnostics.
    pub fn cache_stats(&self) -> Option<crate::CacheStats> {
        self.compiler.artifact_cache().map(|c| c.stats())
    }

    /// Runs one job under full supervision.
    pub fn compile_one(&self, circuit: &Circuit) -> JobReport {
        self.run_job(0, circuit)
    }

    /// Runs one job under full supervision, reported as batch index
    /// `index` — the entry point for external batch fronts (a network
    /// service managing its own queue) that want per-job supervision and
    /// fault attribution identical to [`Supervisor::compile_batch`]'s.
    pub fn compile_indexed(&self, index: usize, circuit: &Circuit) -> JobReport {
        self.run_job(index, circuit)
    }

    /// Runs a batch of jobs across worker threads with the atomic-counter
    /// work-stealing loop (each worker repeatedly claims the next
    /// unclaimed circuit), one [`JobReport`] per circuit in submission
    /// order. Supervision is per job: panics, deadline overruns and
    /// budget rejections cost only their own job.
    pub fn compile_batch(&self, circuits: &[Circuit]) -> Vec<JobReport> {
        if circuits.is_empty() {
            return Vec::new();
        }
        let threads = self
            .policy
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(circuits.len())
            .max(1);
        // Completed-job counter driving the fault plan's mid-batch budget
        // shrink; kept (cheaply) in the default build to avoid divergent
        // loop shapes between the two configurations.
        let completed = AtomicUsize::new(0);
        let finish = |report: JobReport| -> JobReport {
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            #[cfg(feature = "fault-inject")]
            if let Some(bytes) = crate::fault::budget_after(done) {
                self.set_budget_bytes(Some(bytes));
            }
            #[cfg(not(feature = "fault-inject"))]
            let _ = done;
            report
        };
        if threads == 1 {
            return circuits
                .iter()
                .enumerate()
                .map(|(i, c)| finish(self.run_job(i, c)))
                .collect();
        }
        let mut results: Vec<Option<JobReport>> = (0..circuits.len()).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (next, finish) = (&next, &finish);
                    scope.spawn(move || {
                        let mut done: Vec<JobReport> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= circuits.len() {
                                return done;
                            }
                            done.push(finish(self.run_job(i, &circuits[i])));
                        }
                    })
                })
                .collect();
            for handle in handles {
                // Worker closures never panic — every job attempt runs
                // under catch_unwind inside run_job — so join() failing
                // would be a supervisor bug, not a job fault.
                for report in handle.join().expect("supervisor worker panicked") {
                    let slot = report.index;
                    results[slot] = Some(report);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every batch slot filled"))
            .collect()
    }

    /// One pipeline attempt under `catch_unwind`: a panic becomes
    /// [`CompileError::Internal`] attributed to the pass marked by
    /// [`begin_pass`].
    fn attempt(
        &self,
        compiler: &Compiler,
        circuit: &Circuit,
        deadline: Option<Instant>,
        budget_ms: u64,
    ) -> Result<CompileArtifact, CompileError> {
        // AssertUnwindSafe: the closure only borrows the compiler and the
        // circuit; the one cross-attempt structure a panic could leave
        // mid-update is the fuse cache, whose lock is poison-tolerant and
        // whose entries are only ever inserted whole.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            compiler.compile_until(circuit, deadline, budget_ms)
        }));
        match outcome {
            Ok(result) => {
                take_pass();
                result
            }
            Err(payload) => Err(CompileError::Internal {
                pass: take_pass().unwrap_or(Pass::Decompose),
                payload: payload_string(payload),
            }),
        }
    }

    /// The full per-job supervision sequence: attempt, panic retry,
    /// budget admission and the degradation ladder.
    fn run_job(&self, index: usize, circuit: &Circuit) -> JobReport {
        let t0 = Instant::now();
        // One deadline for the whole job: retries and ladder rungs spend
        // the same budget, not a fresh one each.
        let deadline = self
            .policy
            .deadline_ms
            .map(|ms| t0 + Duration::from_millis(ms));
        let budget_ms = self.policy.deadline_ms.unwrap_or(0);
        #[cfg(feature = "fault-inject")]
        crate::fault::set_job(index);

        let mut result = self.attempt(&self.compiler, circuit, deadline, budget_ms);
        let mut degradation = Degradation::None;
        let mut retried = false;

        // Panic retry: once, through a conservative pipeline. The retry
        // keeps the *first* error when it fails too.
        if self.policy.retry_degraded && matches!(result, Err(CompileError::Internal { .. })) {
            let safe = self.compiler.reoptioned(
                CompileOptions::unfused()
                    .with_windowed_registers(false)
                    .with_fuse_constants(
                        self.compiler.fuse_options().sweep_overhead,
                        self.compiler.fuse_options().sweep_fixed,
                    ),
            );
            retried = true;
            if let Ok(artifact) = self.attempt(&safe, circuit, deadline, budget_ms) {
                result = Ok(artifact);
                degradation = Degradation::SafePipeline;
            }
        }

        // Budget admission: a successful artifact over the limit walks
        // the degradation ladder before rejecting.
        let limit = self.budget.load(Ordering::Relaxed);
        if limit != usize::MAX {
            if let Ok(artifact) = &result {
                let mut needed = artifact.sim_state_bytes_peak();
                let sparse_pred = artifact.sparse_state_bytes_pred();
                if needed > limit {
                    let base = *self.compiler.options();
                    let ladder = [
                        // Maximal windowing: splitting costs nothing
                        // fixed, so every worthwhile boundary survives
                        // and the peak is as small as the analysis can
                        // make it.
                        (Degradation::Windowed, {
                            let mut o = base;
                            o.padded_registers = false;
                            o.windowed_registers = true;
                            o.window_sweep_fixed = Some(0);
                            o
                        }),
                        // The PR 4 fallback: one whole-program demoted
                        // register, no reshapes.
                        (Degradation::WholeDemoted, {
                            let mut o = base;
                            o.padded_registers = false;
                            o.windowed_registers = false;
                            o
                        }),
                    ];
                    let mut admitted = None;
                    for (rung, options) in ladder {
                        if options == base {
                            continue; // identical to the attempt already made
                        }
                        retried = true;
                        match self.attempt(
                            &self.compiler.reoptioned(options),
                            circuit,
                            deadline,
                            budget_ms,
                        ) {
                            Ok(candidate) => {
                                let peak = candidate.sim_state_bytes_peak();
                                needed = needed.min(peak);
                                if peak <= limit {
                                    admitted = Some((rung, candidate));
                                    break;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                    match admitted {
                        Some((rung, candidate)) => {
                            result = Ok(candidate);
                            degradation = rung;
                        }
                        // Last rung: no dense register shape fits, but
                        // the sparse state-size prediction does — admit
                        // the *original* artifact for density-adaptive
                        // simulation. `needed` keeps reporting the dense
                        // requirement so a rejection (prediction also
                        // over budget) stays honest about what a dense
                        // run would take. `WALTZ_SPARSE=0` closes this
                        // rung: forced-dense simulation of such an
                        // artifact would blow the very budget it was
                        // admitted under.
                        None if waltz_sim::sparse_enabled()
                            && sparse_pred.is_some_and(|bytes| bytes <= limit) =>
                        {
                            degradation = Degradation::Sparse;
                        }
                        None => result = Err(CompileError::OverBudget { needed, limit }),
                    }
                }
            }
        }

        let mut report = JobReport::new(index, result);
        report.degradation = if report.result.is_ok() {
            degradation
        } else {
            Degradation::None
        };
        report.retried = retried;
        report.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        report
    }
}

// Degradation rungs disable fusion only on the safe pipeline; keep the
// import used in all configurations.
const _: Fusion = Fusion::Off;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::target::Target;

    fn ladder_circuit() -> Circuit {
        // cnu-6q's compute half: disjoint ENC windows, so the windowed
        // and whole-demoted registers genuinely differ.
        let mut c = Circuit::new(6);
        c.ccx(0, 1, 3).ccx(2, 3, 4).ccx(2, 4, 5);
        c
    }

    #[test]
    fn unsupervised_defaults_match_plain_compile() {
        let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
        let supervisor = Supervisor::new(compiler.clone());
        let circuit = ladder_circuit();
        let job = supervisor.compile_one(&circuit);
        assert_eq!(job.status, JobStatus::Ok);
        assert_eq!(job.degradation, Degradation::None);
        assert!(!job.retried);
        assert!(job.wall_ms >= 0.0);
        let plain = compiler.compile(&circuit).unwrap();
        let supervised = job.result.unwrap();
        assert_eq!(supervised.timed.len(), plain.timed.len());
        assert_eq!(
            supervised.timed.register.dims(),
            plain.timed.register.dims()
        );
    }

    #[test]
    fn typed_errors_report_as_err_not_panic() {
        let supervisor = Supervisor::new(Compiler::new(Target::paper(Strategy::qubit_only())));
        let job = supervisor.compile_one(&Circuit::new(0));
        assert_eq!(job.status, JobStatus::Err);
        assert_eq!(job.result.unwrap_err(), CompileError::EmptyCircuit);
    }

    #[test]
    fn deadline_zero_times_out_before_the_first_pass() {
        let supervisor = Supervisor::with_policy(
            Compiler::new(Target::paper(Strategy::mixed_radix_ccz())),
            SupervisorPolicy::default().with_deadline_ms(0),
        );
        // A zero deadline is already expired at the first boundary check.
        std::thread::sleep(Duration::from_millis(2));
        let job = supervisor.compile_one(&ladder_circuit());
        assert_eq!(job.status, JobStatus::TimedOut);
        assert_eq!(
            job.result.unwrap_err(),
            CompileError::DeadlineExceeded {
                pass: Pass::Decompose,
                budget_ms: 0
            }
        );
    }

    #[test]
    fn generous_budget_admits_without_degradation() {
        let supervisor = Supervisor::with_policy(
            Compiler::new(Target::paper(Strategy::mixed_radix_ccz())),
            SupervisorPolicy::default().with_state_budget_bytes(1 << 28),
        );
        let job = supervisor.compile_one(&ladder_circuit());
        assert_eq!(job.status, JobStatus::Ok);
        assert_eq!(job.degradation, Degradation::None);
    }

    #[test]
    fn impossible_budget_rejects_with_the_ladder_minimum() {
        let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
        let circuit = ladder_circuit();
        // The windowed rung's peak is the smallest any rung achieves.
        let windowed_peak = compiler
            .reoptioned(crate::CompileOptions::default().with_window_sweep_fixed(0))
            .compile(&circuit)
            .unwrap()
            .sim_state_bytes_peak();
        let supervisor = Supervisor::with_policy(
            compiler,
            SupervisorPolicy::default().with_state_budget_bytes(1),
        );
        let job = supervisor.compile_one(&circuit);
        assert_eq!(job.status, JobStatus::OverBudget);
        assert!(job.retried);
        assert_eq!(
            job.result.unwrap_err(),
            CompileError::OverBudget {
                needed: windowed_peak,
                limit: 1
            }
        );
    }

    #[test]
    fn tight_budget_degrades_to_windowed() {
        // A compiler pinned to whole-program registers: its own compile
        // busts the budget, and the ladder's windowed rung rescues it.
        let compiler = Compiler::with_options(
            Target::paper(Strategy::mixed_radix_ccz()),
            crate::CompileOptions::default().with_windowed_registers(false),
        );
        let circuit = ladder_circuit();
        let whole_peak = compiler.compile(&circuit).unwrap().sim_state_bytes_peak();
        let windowed_peak = compiler
            .reoptioned(crate::CompileOptions::default().with_window_sweep_fixed(0))
            .compile(&circuit)
            .unwrap()
            .sim_state_bytes_peak();
        assert!(
            windowed_peak < whole_peak,
            "ladder test needs a circuit whose windowed peak ({windowed_peak}) \
             beats the whole-program one ({whole_peak})"
        );
        let supervisor = Supervisor::with_policy(
            compiler,
            SupervisorPolicy::default().with_state_budget_bytes(windowed_peak),
        );
        let job = supervisor.compile_one(&circuit);
        assert_eq!(job.status, JobStatus::Ok);
        assert_eq!(job.degradation, Degradation::Windowed);
        assert!(job.retried);
        assert!(job.result.unwrap().sim_state_bytes_peak() <= windowed_peak);
    }

    #[test]
    fn sparse_rung_admits_the_original_artifact() {
        // A permutation-only circuit: X/CX pulses never grow the
        // basis-input support, so the analyze pass predicts a one-entry
        // sparse state no matter how large the dense register is.
        let mut circuit = Circuit::new(6);
        circuit.x(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cx(4, 5);
        let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
        let artifact = compiler.compile(&circuit).unwrap();
        let pred = artifact
            .sparse_state_bytes_pred()
            .expect("analyze records the sparse prediction");
        let dense_peak = artifact.sim_state_bytes_peak();
        assert!(
            pred < dense_peak,
            "sparse-rung test needs a circuit whose sparse prediction ({pred}) \
             beats the dense peak ({dense_peak})"
        );
        // A budget below every dense rung but above the prediction: only
        // the sparse rung can admit.
        let windowed_opts = crate::CompileOptions::default()
            .with_windowed_registers(true)
            .with_window_sweep_fixed(0);
        let whole_opts = crate::CompileOptions::default().with_windowed_registers(false);
        let rung_min = [windowed_opts, whole_opts]
            .into_iter()
            .map(|o| {
                compiler
                    .reoptioned(o)
                    .compile(&circuit)
                    .unwrap()
                    .sim_state_bytes_peak()
            })
            .min()
            .unwrap()
            .min(dense_peak);
        let budget = rung_min - 1;
        assert!(pred <= budget);
        let supervisor = Supervisor::with_policy(
            compiler,
            SupervisorPolicy::default().with_state_budget_bytes(budget),
        );
        let job = supervisor.compile_one(&circuit);
        if waltz_sim::sparse_enabled() {
            assert_eq!(job.status, JobStatus::Ok);
            assert_eq!(job.degradation, Degradation::Sparse);
            assert!(job.retried);
            // The rung admits the *original* artifact: its dense peak
            // still exceeds the budget — only the adaptive engine fits.
            let admitted = job.result.unwrap();
            assert!(admitted.sim_state_bytes_peak() > budget);
            assert_eq!(admitted.sparse_state_bytes_pred(), Some(pred));
        } else {
            // WALTZ_SPARSE=0 closes the rung: forced-dense simulation
            // cannot honor a sparse admission.
            assert_eq!(job.status, JobStatus::OverBudget);
        }
    }

    #[test]
    fn live_budget_knob_applies_to_later_jobs() {
        let supervisor = Supervisor::with_policy(
            Compiler::new(Target::paper(Strategy::mixed_radix_ccz())),
            SupervisorPolicy::default().with_threads(1),
        );
        assert_eq!(supervisor.budget_bytes(), None);
        let first = supervisor.compile_one(&ladder_circuit());
        assert_eq!(first.status, JobStatus::Ok);
        supervisor.set_budget_bytes(Some(1));
        assert_eq!(supervisor.budget_bytes(), Some(1));
        let second = supervisor.compile_one(&ladder_circuit());
        assert_eq!(second.status, JobStatus::OverBudget);
        supervisor.set_budget_bytes(None);
        let third = supervisor.compile_one(&ladder_circuit());
        assert_eq!(third.status, JobStatus::Ok);
    }

    #[test]
    fn batch_reports_keep_submission_order() {
        let mut circuits = Vec::new();
        for n in 2..6 {
            let mut c = Circuit::new(n);
            c.h(0);
            for q in 1..n {
                c.cx(q - 1, q);
            }
            circuits.push(c);
        }
        circuits.push(Circuit::new(0)); // one poisoned job
        let supervisor = Supervisor::new(Compiler::new(Target::paper(Strategy::qubit_only())));
        let reports = supervisor.compile_batch(&circuits);
        assert_eq!(reports.len(), circuits.len());
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.index, i);
        }
        assert!(reports[..4].iter().all(|r| r.status == JobStatus::Ok));
        assert_eq!(reports[4].status, JobStatus::Err);
        assert!(supervisor.compile_batch(&[]).is_empty());
    }
}
