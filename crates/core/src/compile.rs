//! The compiled-circuit artifact and compilation errors.

use std::error::Error;
use std::fmt;

use waltz_arch::Site;
use waltz_math::C64;
use waltz_noise::CoherenceModel;
use waltz_sim::{Register, SegmentedCircuit, State, TimedCircuit};

use crate::eps::{self, CoherenceSpan, EpsBreakdown};
use crate::lower::LowerOutput;
use crate::strategy::Strategy;

/// Compilation failure, surfaced through the pipeline's entry validation
/// so malformed user input never panics deep inside a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit has no qubits.
    EmptyCircuit,
    /// The device topology cannot host the circuit (too few devices, or a
    /// three-qubit gate on a degree-deficient graph).
    TopologyTooSmall {
        /// Devices needed.
        needed: usize,
        /// Devices available.
        available: usize,
    },
    /// A gate lists the same qubit twice (e.g. `ccx(0, 0, 1)`).
    DuplicateOperands {
        /// Index of the offending gate in the circuit.
        gate_index: usize,
        /// The repeated qubit.
        qubit: usize,
    },
    /// A gate's operand list does not match its kind's arity (possible
    /// when constructing [`waltz_circuit::Gate`] values directly).
    WrongOperandCount {
        /// Index of the offending gate in the circuit.
        gate_index: usize,
        /// Operands the gate kind requires.
        expected: usize,
        /// Operands the gate actually lists.
        got: usize,
    },
    /// A rotation gate carries a NaN or infinite angle, which would
    /// poison every downstream unitary.
    NonFiniteAngle {
        /// Index of the offending gate in the circuit.
        gate_index: usize,
    },
    /// The device topology is not connected, so routing cannot bring
    /// arbitrary operands together.
    DisconnectedTopology {
        /// Devices in the graph.
        devices: usize,
    },
    /// A gate names a qubit outside the circuit's declared range
    /// (possible when constructing [`waltz_circuit::Gate`] values
    /// directly).
    QubitOutOfRange {
        /// Index of the offending gate in the circuit.
        gate_index: usize,
        /// The out-of-range qubit.
        qubit: usize,
        /// Qubits the circuit declares.
        n_qubits: usize,
    },
    /// A pass panicked. Only produced by the supervised entry points
    /// ([`crate::Supervisor`]), whose `catch_unwind` isolation converts
    /// the panic into this error for the one affected job instead of
    /// tearing down the batch.
    Internal {
        /// The pass that panicked.
        pass: crate::Pass,
        /// The panic payload (message), when it was a string.
        payload: String,
    },
    /// Compilation ran past its wall-clock deadline
    /// ([`crate::Compiler::compile_with_deadline`],
    /// [`crate::SupervisorPolicy::deadline_ms`]). Checked at every pass
    /// boundary, so `pass` is the first pass that did not start in time.
    DeadlineExceeded {
        /// The pass that would have run next.
        pass: crate::Pass,
        /// The deadline the job was given, in milliseconds.
        budget_ms: u64,
    },
    /// The compiled register needs more state bytes than the supervisor's
    /// budget allows, even after walking the degradation ladder
    /// (windowed → whole-program-demoted → sparse admission) — the
    /// structured rejection that replaces silently skipping the job.
    OverBudget {
        /// Peak state bytes of the smallest artifact any degradation rung
        /// produced.
        needed: usize,
        /// The supervisor's budget, in bytes.
        limit: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyCircuit => write!(f, "circuit has no qubits"),
            CompileError::TopologyTooSmall { needed, available } => write!(
                f,
                "topology provides {available} devices but the strategy needs {needed}"
            ),
            CompileError::DuplicateOperands { gate_index, qubit } => {
                write!(f, "gate {gate_index} lists duplicate operand qubit {qubit}")
            }
            CompileError::WrongOperandCount {
                gate_index,
                expected,
                got,
            } => write!(
                f,
                "gate {gate_index} lists {got} operands but its kind takes {expected}"
            ),
            CompileError::NonFiniteAngle { gate_index } => {
                write!(f, "gate {gate_index} has a non-finite rotation angle")
            }
            CompileError::DisconnectedTopology { devices } => {
                write!(f, "topology with {devices} devices is not connected")
            }
            CompileError::QubitOutOfRange {
                gate_index,
                qubit,
                n_qubits,
            } => write!(
                f,
                "gate {gate_index} names qubit {qubit} but the circuit has {n_qubits} qubits"
            ),
            CompileError::Internal { pass, payload } => {
                write!(f, "internal error in the {} pass: {payload}", pass.name())
            }
            CompileError::DeadlineExceeded { pass, budget_ms } => write!(
                f,
                "compilation exceeded its {budget_ms} ms deadline before the {} pass",
                pass.name()
            ),
            CompileError::OverBudget { needed, limit } => write!(
                f,
                "register needs {needed} state bytes but the budget allows {limit}"
            ),
        }
    }
}

impl Error for CompileError {}

/// Aggregate compilation statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileStats {
    /// Routing swaps inserted (all flavours).
    pub routing_swaps: usize,
    /// ENC/DEC windows emitted (mixed radix only).
    pub enc_windows: usize,
    /// Total hardware pulses.
    pub hw_ops: usize,
    /// Scheduled wall-clock duration (ns).
    pub total_duration_ns: f64,
}

/// The compiler's output: a scheduled circuit plus everything needed to
/// simulate, estimate and verify it.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// The scheduled hardware circuit.
    pub timed: TimedCircuit,
    /// The fused simulation schedule ([`TimedCircuit::fuse`]) when the
    /// [`crate::Fusion`] option is on: the same circuit with adjacent-op
    /// runs
    /// multiplied into dense blocks. All pulse statistics and EPS
    /// estimates still come from `timed`; simulation should go through
    /// [`CompiledCircuit::sim_circuit`].
    pub fused: Option<TimedCircuit>,
    /// The windowed-register simulation schedule when the analysis found
    /// more than one worthwhile segment
    /// ([`crate::CompileOptions::with_windowed_registers`], on by
    /// default): the same pulses cut at the points where a device's
    /// occupied dimension changes, each segment on its own register with
    /// the state reshaped in flight at the boundaries. Fused per segment
    /// when fusion is on. Batch fidelity estimation
    /// ([`crate::Simulation::average_fidelity`]) runs this schedule when
    /// present; `None` means the whole-program register is already
    /// optimal (or windowing was disabled) and simulation falls back to
    /// [`CompiledCircuit::sim_circuit`].
    pub windowed: Option<SegmentedCircuit>,
    /// The strategy that produced it.
    pub strategy: Strategy,
    /// Logical-qubit sites at circuit start.
    pub initial_sites: Vec<Site>,
    /// Logical-qubit sites at circuit end (after routing permutations).
    pub final_sites: Vec<Site>,
    /// Per-device maximum-level timeline for the coherence EPS (§6.3).
    pub coherence_spans: Vec<CoherenceSpan>,
    /// Aggregate statistics.
    pub stats: CompileStats,
    pub(crate) slots_per_device: usize,
}

impl CompiledCircuit {
    /// EPS estimate under a coherence model (§6.3).
    pub fn eps(&self, model: &CoherenceModel) -> EpsBreakdown {
        eps::eps(&self.timed, &self.coherence_spans, model)
    }

    /// The schedule the simulator should run: the fused program when the
    /// compile options requested fusion, the raw hardware schedule
    /// otherwise. Both produce identical noiseless outputs (1e-12
    /// parity). Noisy trajectory estimates are *statistically*
    /// equivalent — per-pulse error probabilities and per-device
    /// idle/busy damping times are preserved exactly — but individual
    /// draws differ (the engines consume the RNG in different orders,
    /// and noise inside a block is replayed around one unitary apply
    /// rather than interleaved), so same-seed means differ by sampling
    /// noise. Use [`crate::CompileOptions::unfused`] when exact
    /// pulse-by-pulse noise interleaving matters.
    pub fn sim_circuit(&self) -> &TimedCircuit {
        self.fused.as_ref().unwrap_or(&self.timed)
    }

    /// The windowed (segmented) simulation schedule, when the occupancy
    /// analysis found more than one worthwhile segment. Segmented
    /// simulation starts on the first segment's register and ends on the
    /// last segment's — use [`SegmentedCircuit::first_register`] /
    /// [`SegmentedCircuit::last_register`] for buffer setup.
    pub fn sim_segments(&self) -> Option<&SegmentedCircuit> {
        self.windowed.as_ref()
    }

    /// Peak state-vector bytes a simulation of this artifact sizes its
    /// buffers by: the maximum over segments of the windowed schedule
    /// when present (a segmented run rolls two buffers of at most this
    /// size), the whole-program register otherwise — the quantity
    /// simulation byte budgets gate on (`waltz_bench::runner`).
    pub fn sim_state_bytes_peak(&self) -> usize {
        self.windowed
            .as_ref()
            .map(SegmentedCircuit::peak_state_bytes)
            .unwrap_or_else(|| self.timed.register.state_bytes())
    }

    /// Trajectory-method average fidelity over random logical product
    /// inputs embedded at the compiler's placement (§6.4), dispatched to
    /// the windowed segmented engine when the compiler produced one and
    /// the fused whole-program schedule otherwise — the single
    /// implementation behind [`crate::Simulation::average_fidelity`] and
    /// the bench runner, so the dispatch rule cannot drift between them.
    pub fn estimate_average_fidelity(
        &self,
        noise: &waltz_noise::NoiseModel,
        trajectories: usize,
        seed: u64,
    ) -> waltz_sim::trajectory::FidelityEstimate {
        self.estimate_average_fidelity_on(
            &waltz_sim::TrajectoryPool::global(),
            noise,
            trajectories,
            seed,
        )
    }

    /// [`CompiledCircuit::estimate_average_fidelity`] on a caller-chosen
    /// [`waltz_sim::TrajectoryPool`].
    pub fn estimate_average_fidelity_on(
        &self,
        pool: &waltz_sim::TrajectoryPool,
        noise: &waltz_noise::NoiseModel,
        trajectories: usize,
        seed: u64,
    ) -> waltz_sim::trajectory::FidelityEstimate {
        use waltz_sim::trajectory;
        let write = |_: &Register, rng: &mut rand::rngs::StdRng, out: &mut State| {
            self.write_random_product_initial_state(rng, out)
        };
        match self.sim_segments() {
            Some(segments) => trajectory::average_fidelity_segmented_with_on(
                pool,
                segments,
                noise,
                trajectories,
                seed,
                write,
            ),
            None => trajectory::average_fidelity_with_on(
                pool,
                self.sim_circuit(),
                noise,
                trajectories,
                seed,
                write,
            ),
        }
    }

    /// The raw per-trajectory fidelity samples behind
    /// [`CompiledCircuit::estimate_average_fidelity_on`]: `samples[g]` is
    /// the fidelity of the trajectory with global index `g`, whose seed
    /// depends only on `(seed, g)` — bit-identical for any pool width and
    /// the same engine dispatch (windowed vs. whole-program) as the
    /// estimator.
    pub fn sample_fidelities_on(
        &self,
        pool: &waltz_sim::TrajectoryPool,
        noise: &waltz_noise::NoiseModel,
        trajectories: usize,
        seed: u64,
    ) -> Vec<f64> {
        use waltz_sim::trajectory;
        let write = |_: &Register, rng: &mut rand::rngs::StdRng, out: &mut State| {
            self.write_random_product_initial_state(rng, out)
        };
        match self.sim_segments() {
            Some(segments) => trajectory::fidelity_samples_segmented_with_on(
                pool,
                segments,
                noise,
                trajectories,
                seed,
                write,
            ),
            None => trajectory::fidelity_samples_with_on(
                pool,
                self.sim_circuit(),
                noise,
                trajectories,
                seed,
                write,
            ),
        }
    }

    /// [`CompiledCircuit::estimate_average_fidelity`] under trajectory
    /// health supervision: unhealthy trajectories (NaN/Inf fidelity,
    /// out-of-range fidelity, norm growth) are quarantined instead of
    /// poisoning the mean, and the run stops early once the standard
    /// error reaches [`waltz_sim::trajectory::HealthPolicy`]'s target.
    /// Same engine dispatch and seed stream as the unsupervised
    /// estimator, so a fully healthy run reproduces it exactly.
    pub fn estimate_average_fidelity_supervised(
        &self,
        noise: &waltz_noise::NoiseModel,
        trajectories: usize,
        seed: u64,
        policy: &waltz_sim::trajectory::HealthPolicy,
    ) -> (
        waltz_sim::trajectory::FidelityEstimate,
        waltz_sim::trajectory::RunHealth,
    ) {
        self.estimate_average_fidelity_supervised_on(
            &waltz_sim::TrajectoryPool::global(),
            noise,
            trajectories,
            seed,
            policy,
        )
    }

    /// [`CompiledCircuit::estimate_average_fidelity_supervised`] on a
    /// caller-chosen [`waltz_sim::TrajectoryPool`].
    pub fn estimate_average_fidelity_supervised_on(
        &self,
        pool: &waltz_sim::TrajectoryPool,
        noise: &waltz_noise::NoiseModel,
        trajectories: usize,
        seed: u64,
        policy: &waltz_sim::trajectory::HealthPolicy,
    ) -> (
        waltz_sim::trajectory::FidelityEstimate,
        waltz_sim::trajectory::RunHealth,
    ) {
        use waltz_sim::trajectory;
        let write = |_: &Register, rng: &mut rand::rngs::StdRng, out: &mut State| {
            self.write_random_product_initial_state(rng, out)
        };
        match self.sim_segments() {
            Some(segments) => trajectory::average_fidelity_segmented_supervised_with_on(
                pool,
                segments,
                noise,
                trajectories,
                seed,
                policy,
                write,
            ),
            None => trajectory::average_fidelity_supervised_with_on(
                pool,
                self.sim_circuit(),
                noise,
                trajectories,
                seed,
                policy,
                write,
            ),
        }
    }

    /// Encoded-basis weight of a logical qubit sitting at `site`: its bit
    /// contributes `weight * bit` to the device's level.
    fn site_weight(&self, site: Site) -> usize {
        if self.slots_per_device == 2 && site.slot == 0 {
            2
        } else {
            1
        }
    }

    /// A product of Haar-random single-qubit states over the *logical*
    /// qubits, embedded at the compiler's initial placement — the random
    /// inputs of the paper's §6.4 simulations.
    pub fn random_product_initial_state<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> State {
        let mut out = State::zero(&self.timed.register);
        self.write_random_product_initial_state(rng, &mut out);
        out
    }

    /// In-place [`CompiledCircuit::random_product_initial_state`]: draws a
    /// fresh random logical input directly into a caller-owned state
    /// buffer, touching no heap at all — the per-trajectory initial-state
    /// factory of the steady-state fidelity loop
    /// ([`waltz_sim::trajectory::average_fidelity_with`]).
    ///
    /// `out` may live on any register spanning the same devices as the
    /// compiled circuit — in particular the *first segment's* register of
    /// the windowed schedule ([`CompiledCircuit::sim_segments`]), whose
    /// dimensions the occupancy analysis guarantees cover every level the
    /// initial placement populates. The RNG is consumed identically
    /// regardless of the register, so the same seed draws the same
    /// logical input on the whole-program and windowed engines.
    ///
    /// # Panics
    ///
    /// Panics if `out` spans a different device count than the compiled
    /// circuit, or its register clips a level the initial placement
    /// populates (impossible for registers the compiler produced).
    pub fn write_random_product_initial_state<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
        out: &mut State,
    ) {
        const MAX_DEVICES: usize = 64;
        const MAX_LEVELS: usize = 4;
        // Snapshot the register geometry onto the stack so the immutable
        // borrow of `out` ends before the mutable fill: the factory runs
        // once per trajectory and must not touch the heap.
        let n = out.register().n_qudits();
        assert_eq!(
            n,
            self.timed.register.n_qudits(),
            "state register does not span the compiled circuit's devices"
        );
        assert!(n <= MAX_DEVICES, "register too large for stack factors");
        let mut reg_dims = [0usize; MAX_DEVICES];
        for (d, rd) in reg_dims.iter_mut().enumerate().take(n) {
            *rd = out.register().dim(d);
            assert!(*rd <= MAX_LEVELS, "device dimension above 4");
        }
        let mut factors = [[C64::ZERO; MAX_LEVELS]; MAX_DEVICES];
        for f in factors.iter_mut().take(n) {
            f[0] = C64::ONE;
        }
        for &site in &self.initial_sites {
            let qs = waltz_math::linalg::haar_qubit(rng);
            let weight = self.site_weight(site);
            let old = factors[site.device];
            let f = &mut factors[site.device];
            for (level, amp) in f.iter_mut().enumerate().take(MAX_LEVELS) {
                let bit = (level / weight) % 2;
                let rest = level - bit * weight;
                *amp = old[rest] * qs[bit];
            }
        }
        for (d, f) in factors.iter().enumerate().take(n) {
            for &amp in &f[reg_dims[d]..] {
                assert!(
                    amp == C64::ZERO,
                    "register clips level(s) the initial placement populates on device {d}"
                );
            }
        }
        out.fill_product_with(|q, level| factors[q][level]);
    }

    /// Decodes a measured device-register basis index into the logical
    /// bitstring (qubit 0 = most significant bit), reading each qubit out
    /// of its *final* site — "the measured state would be decoded
    /// according to the compression strategy" (§5.2). Reads the
    /// whole-program register; for states produced by the windowed
    /// (segmented) engine use [`CompiledCircuit::decode_index_on`] with
    /// the last segment's register.
    pub fn decode_device_index(&self, device_index: usize) -> usize {
        self.decode_index_on(&self.timed.register, device_index)
    }

    /// [`CompiledCircuit::decode_device_index`] on an explicit register
    /// spanning the same devices — in particular the **last segment's**
    /// register of the windowed schedule
    /// ([`waltz_sim::SegmentedCircuit::last_register`]), whose dimensions
    /// bound every level a final state populates; final sites address
    /// devices, not amplitudes, so the decode is register-agnostic.
    ///
    /// # Panics
    ///
    /// Panics if `register` spans a different device count than the
    /// compiled circuit.
    pub fn decode_index_on(&self, register: &Register, device_index: usize) -> usize {
        assert_eq!(
            register.n_qudits(),
            self.timed.register.n_qudits(),
            "register does not span the compiled circuit's devices"
        );
        let n = self.final_sites.len();
        let mut out = 0usize;
        for (q, &site) in self.final_sites.iter().enumerate() {
            let digit = register.digit(device_index, site.device);
            let bit = (digit / self.site_weight(site)) % 2;
            out |= bit << (n - 1 - q);
        }
        out
    }

    /// Samples `shots` measurement outcomes from a final device state and
    /// returns decoded logical bitstring counts. Decodes against the
    /// *state's own* register, so final states from either engine work:
    /// the whole-program schedule's ([`CompiledCircuit::sim_circuit`])
    /// and the windowed schedule's last segment
    /// ([`CompiledCircuit::sim_segments`]).
    pub fn sample_decoded<R: rand::Rng + ?Sized>(
        &self,
        state: &State,
        shots: usize,
        rng: &mut R,
    ) -> std::collections::BTreeMap<usize, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..shots {
            let raw = state.sample_basis(rng);
            *counts
                .entry(self.decode_index_on(state.register(), raw))
                .or_insert(0) += 1;
        }
        counts
    }

    /// Embeds an `n`-qubit logical state into the device register using the
    /// given per-qubit sites (use [`CompiledCircuit::initial_sites`] to
    /// prepare inputs, [`CompiledCircuit::final_sites`] to decode outputs).
    ///
    /// # Panics
    ///
    /// Panics if `amps.len() != 2^n` with `n = sites.len()`.
    pub fn embed_logical_state(&self, amps: &[C64], sites: &[Site]) -> State {
        let n = sites.len();
        assert_eq!(amps.len(), 1usize << n, "logical amplitude count mismatch");
        let register: Register = self.timed.register.clone();
        let mut out = vec![C64::ZERO; register.total_dim()];
        // One digit buffer reused across the whole amplitude loop.
        let mut digits = vec![0usize; register.n_qudits()];
        for (logical_idx, &amp) in amps.iter().enumerate() {
            if amp == C64::ZERO {
                continue;
            }
            digits.fill(0);
            for (q, &site) in sites.iter().enumerate() {
                let bit = (logical_idx >> (n - 1 - q)) & 1;
                digits[site.device] += bit * self.site_weight(site);
            }
            out[register.index_of(&digits)] = amp;
        }
        State::from_amplitudes(&register, out)
    }
}

/// Builds the per-device maximum-level timeline (§6.3): weight 1 in the
/// qubit regime, 3 while encoded.
pub(crate) fn build_spans(
    strategy: &Strategy,
    out: &LowerOutput,
    timed: &TimedCircuit,
) -> Vec<CoherenceSpan> {
    let n_devices = out.graph.topology().n_devices();
    let total = timed.total_duration_ns;
    match strategy {
        Strategy::QubitOnly { .. } => eps::uniform_spans(n_devices, &vec![1; n_devices], total),
        Strategy::FullQuquart { .. } => {
            // Devices holding two qubits live at level 3; half-filled
            // devices stay in the qubit regime (level <= slot weight).
            let mut level = vec![0usize; n_devices];
            for site in &out.initial_sites {
                level[site.device] += if site.slot == 0 { 2 } else { 1 };
            }
            for l in &mut level {
                *l = (*l).clamp(1, 3);
            }
            eps::uniform_spans(n_devices, &level, total)
        }
        Strategy::MixedRadix { .. } => {
            // Level 1 everywhere, lifted to level 3 on the host inside each
            // ENC..DEC window.
            let mut spans = Vec::new();
            let mut windows_per_device: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_devices];
            for w in &out.enc_windows {
                let start = timed.ops[w.enc_idx].start_ns;
                let end = timed.ops[w.dec_idx].end_ns();
                windows_per_device[w.host].push((start, end));
            }
            for (device, windows) in windows_per_device.iter_mut().enumerate() {
                windows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let mut cursor = 0.0f64;
                for &(start, end) in windows.iter() {
                    if start > cursor {
                        spans.push(CoherenceSpan {
                            device,
                            level: 1,
                            start_ns: cursor,
                            end_ns: start,
                        });
                    }
                    spans.push(CoherenceSpan {
                        device,
                        level: 3,
                        start_ns: start,
                        end_ns: end,
                    });
                    cursor = end;
                }
                if cursor < total {
                    spans.push(CoherenceSpan {
                        device,
                        level: 1,
                        start_ns: cursor,
                        end_ns: total,
                    });
                }
            }
            spans
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Target;
    use crate::{CompileArtifact, Compiler, Strategy};
    use waltz_arch::Topology;
    use waltz_circuit::Circuit;

    /// Builder-path compile with the paper library.
    fn build(c: &Circuit, strategy: &Strategy) -> CompileArtifact {
        Compiler::new(Target::paper(*strategy)).compile(c).unwrap()
    }

    #[test]
    fn decode_inverts_embed_for_basis_states() {
        let mut c = Circuit::new(4);
        c.ccx(0, 1, 2).cx(2, 3).cswap(3, 0, 1);
        for strategy in [
            Strategy::qubit_only(),
            Strategy::mixed_radix_ccz(),
            Strategy::full_ququart(),
        ] {
            let compiled = build(&c, &strategy);
            for logical in 0..16usize {
                let mut amps = vec![C64::ZERO; 16];
                amps[logical] = C64::ONE;
                // Embed at the FINAL sites, then decode: must round-trip.
                let state = compiled.embed_logical_state(&amps, &compiled.final_sites);
                let raw = state
                    .amplitudes()
                    .iter()
                    .position(|a| a.abs() > 0.999)
                    .expect("basis state stays basis");
                assert_eq!(
                    compiled.decode_device_index(raw),
                    logical,
                    "{} logical {logical}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn random_product_states_are_normalized_for_every_strategy() {
        use rand::SeedableRng;
        let mut c = Circuit::new(5);
        c.ccz(0, 1, 2).ccx(2, 3, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for strategy in [
            Strategy::qubit_only(),
            Strategy::mixed_radix_ccz(),
            Strategy::full_ququart(),
        ] {
            let compiled = build(&c, &strategy);
            let s = compiled.random_product_initial_state(&mut rng);
            assert!((s.norm() - 1.0).abs() < 1e-10, "{}", strategy.name());
        }
    }

    #[test]
    fn fusion_option_controls_the_sim_schedule() {
        let mut c = Circuit::new(4);
        c.h(0).ccx(0, 1, 2).cx(2, 3).ccz(1, 2, 3);
        for strategy in [
            Strategy::qubit_only(),
            Strategy::mixed_radix_ccz(),
            Strategy::full_ququart(),
        ] {
            let fused = build(&c, &strategy);
            let unfused =
                Compiler::with_options(Target::paper(strategy), crate::CompileOptions::unfused())
                    .compile(&c)
                    .unwrap();
            assert!(unfused.fused.is_none());
            assert!(std::ptr::eq(unfused.sim_circuit(), &unfused.timed));
            let sim = fused.sim_circuit();
            assert!(
                sim.len() < fused.timed.len(),
                "{}: fusion should shrink {} ops",
                strategy.name(),
                fused.timed.len()
            );
            assert!(sim.validate().is_ok(), "{}", strategy.name());
            // Hardware-side artifacts are identical either way.
            assert_eq!(fused.stats.hw_ops, unfused.stats.hw_ops);
            assert!((fused.timed.gate_eps() - sim.gate_eps()).abs() < 1e-12);
            // And the fused program is noiselessly equivalent.
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let init = fused.random_product_initial_state(&mut rng);
            let a = waltz_sim::ideal::run(&fused.timed, &init);
            let b = waltz_sim::ideal::run(sim, &init);
            assert!(
                (a.fidelity(&b) - 1.0).abs() < 1e-12,
                "{} fused parity",
                strategy.name()
            );
        }
    }

    #[test]
    fn write_random_initial_state_matches_allocating_factory() {
        use rand::SeedableRng;
        let mut c = Circuit::new(4);
        c.ccx(0, 1, 2).cswap(1, 2, 3);
        for strategy in [
            Strategy::qubit_only(),
            Strategy::mixed_radix_ccz(),
            Strategy::full_ququart(),
        ] {
            let compiled = build(&c, &strategy);
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(31);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(31);
            let fresh = compiled.random_product_initial_state(&mut rng_a);
            let mut out = State::zero(&compiled.timed.register);
            // Fill twice from the same seed stream start: the second call
            // must fully overwrite the first.
            compiled.write_random_product_initial_state(&mut rng_b, &mut out);
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(31);
            compiled.write_random_product_initial_state(&mut rng_b, &mut out);
            assert!(
                (fresh.fidelity(&out) - 1.0).abs() < 1e-12,
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn topology_too_small_is_reported() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let err =
            Compiler::new(Target::paper(Strategy::qubit_only()).with_topology(Topology::grid(2)))
                .compile(&c)
                .unwrap_err();
        assert!(matches!(
            err,
            CompileError::TopologyTooSmall {
                needed: 4,
                available: 2
            }
        ));
        assert!(err.to_string().contains("2 devices"));
    }

    #[test]
    fn mixed_radix_coherence_spans_partition_the_timeline() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).ccz(0, 1, 2);
        let compiled = build(&c, &Strategy::mixed_radix_ccz());
        // For each device, spans must tile [0, total] without overlap.
        let total = compiled.stats.total_duration_ns;
        for device in 0..compiled.timed.register.n_qudits() {
            let mut spans: Vec<_> = compiled
                .coherence_spans
                .iter()
                .filter(|s| s.device == device)
                .collect();
            spans.sort_by(|a, b| a.start_ns.partial_cmp(&b.start_ns).unwrap());
            let mut cursor = 0.0;
            for s in &spans {
                assert!(
                    (s.start_ns - cursor).abs() < 1e-6,
                    "gap/overlap at device {device}"
                );
                cursor = s.end_ns;
            }
            assert!(
                (cursor - total).abs() < 1e-6,
                "device {device} timeline incomplete"
            );
        }
    }
}
