//! The compiler's output artifact: the compiled circuit plus per-pass
//! reports, and the [`Simulation`] session handle that runs it.

use std::ops::Deref;
use std::sync::Arc;

use rand::Rng;

use waltz_noise::NoiseModel;
use waltz_sim::trajectory::{FidelityEstimate, HealthPolicy, RunHealth};
use waltz_sim::{SegmentedSession, Session, State, TrajectoryPool};

use crate::compile::CompiledCircuit;
use crate::eps::EpsBreakdown;
use crate::pipeline::{Pass, PassReport};

/// Default seed of [`Simulation::average_fidelity`] — override with
/// [`Simulation::with_seed`].
const DEFAULT_SEED: u64 = 20230617;

/// What one [`crate::Compiler::compile`] run produced: the
/// [`CompiledCircuit`] plus one [`PassReport`] per pipeline stage and the
/// target's noise environment, so EPS estimation and simulation need no
/// further plumbing.
///
/// Dereferences to the wrapped [`CompiledCircuit`], so all of its
/// accessors (`stats`, `sim_circuit()`, `sample_decoded()`, …) are
/// available directly on the artifact.
#[derive(Debug, Clone)]
pub struct CompileArtifact {
    compiled: CompiledCircuit,
    reports: Vec<PassReport>,
    noise: NoiseModel,
    /// Provenance marker: `true` when this artifact was replayed from an
    /// [`crate::ArtifactCache`] instead of compiled fresh. Never enters
    /// the wire format, so the content hash is load-path independent.
    cached: bool,
}

impl Deref for CompileArtifact {
    type Target = CompiledCircuit;

    fn deref(&self) -> &CompiledCircuit {
        &self.compiled
    }
}

impl CompileArtifact {
    pub(crate) fn new(
        compiled: CompiledCircuit,
        reports: Vec<PassReport>,
        noise: NoiseModel,
    ) -> Self {
        CompileArtifact {
            compiled,
            reports,
            noise,
            cached: false,
        }
    }

    /// Whether this artifact came out of an [`crate::ArtifactCache`]
    /// (memory or disk tier) rather than a fresh pipeline run. Cached
    /// artifacts carry the pass reports of the compilation that produced
    /// them; the flag is the only difference.
    pub fn is_cached(&self) -> bool {
        self.cached
    }

    /// Marks the artifact's provenance (set by the cache on load).
    pub(crate) fn set_cached(&mut self, cached: bool) {
        self.cached = cached;
    }

    /// The wrapped compiled circuit.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// Unwraps into the bare [`CompiledCircuit`], dropping the reports.
    pub fn into_compiled(self) -> CompiledCircuit {
        self.compiled
    }

    /// One report per pipeline stage, in execution order.
    pub fn reports(&self) -> &[PassReport] {
        &self.reports
    }

    /// The report of one pass (every pipeline run records all of
    /// [`Pass::ALL`]).
    ///
    /// # Panics
    ///
    /// Panics if the pass is missing — impossible for artifacts built by
    /// [`crate::Compiler::compile`].
    pub fn report(&self, pass: Pass) -> &PassReport {
        self.reports
            .iter()
            .find(|r| r.pass == pass)
            .expect("pipeline records every pass")
    }

    /// The analyze pass's predicted peak sparse state size in bytes
    /// (the `sparse_state_bytes_pred` diagnostic): the basis-input
    /// support bound walked over the simulation schedule, times the
    /// bytes one sparse amplitude-map entry occupies. `None` for
    /// artifacts whose analyze report predates the sparse predictor
    /// (e.g. decoded from an old wire frame). The supervisor's budget
    /// ladder uses this as its last rung: an otherwise over-budget
    /// artifact is admitted as [`crate::Degradation::Sparse`] when this
    /// prediction fits.
    pub fn sparse_state_bytes_pred(&self) -> Option<usize> {
        self.reports
            .iter()
            .find(|r| r.pass == Pass::Analyze)?
            .diagnostic("sparse_state_bytes_pred")?
            .parse()
            .ok()
    }

    /// Total wall-clock compile time across all passes, in milliseconds.
    pub fn total_wall_ms(&self) -> f64 {
        self.reports.iter().map(|r| r.wall_ms).sum()
    }

    /// The noise model simulations of this artifact default to (the
    /// target's).
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// EPS estimate under the target's coherence model (§6.3).
    pub fn eps(&self) -> EpsBreakdown {
        self.compiled.eps(&self.noise.coherence)
    }

    /// A simulation session over this artifact: owns the kernel workspace
    /// and state buffers, defaults to the target's noise model, and runs
    /// the fused simulation schedule
    /// ([`CompiledCircuit::sim_circuit`]).
    pub fn simulate(&self) -> Simulation<'_> {
        Simulation {
            compiled: &self.compiled,
            noise: self.noise.clone(),
            seed: DEFAULT_SEED,
            pool: None,
            session: None,
        }
    }
}

/// A simulation session bound to one compiled circuit: owns the
/// [`waltz_sim::Workspace`] and the state buffers that previously had to
/// be hand-threaded through `run_trajectory_into` and the initial-state
/// factory closures.
///
/// Batch estimation ([`Simulation::average_fidelity`]) fans trajectories
/// across threads with per-worker buffer reuse; the serial entry points
/// ([`Simulation::run_trajectory`], [`Simulation::run_ideal`]) reuse this
/// session's own buffers, so shot-by-shot loops allocate nothing per
/// shot.
#[derive(Debug)]
pub struct Simulation<'a> {
    compiled: &'a CompiledCircuit,
    noise: NoiseModel,
    seed: u64,
    /// Batch estimates run here; `None` means the process-wide
    /// [`TrajectoryPool::global`].
    pool: Option<Arc<TrajectoryPool>>,
    /// Created on the first serial run — the batched estimator manages
    /// its own per-worker buffers, so a pure `average_fidelity` call
    /// never allocates a session.
    session: Option<SessionState>,
}

/// Which serial engine the session's buffers belong to: the fused
/// whole-program schedule or the windowed (segmented) one. A
/// [`Simulation`] lazily builds whichever the next run needs and swaps if
/// the caller alternates register shapes.
#[derive(Debug)]
enum SessionState {
    Whole(Session),
    Segmented(SegmentedSession),
}

impl<'a> Simulation<'a> {
    /// Replaces the noise model (defaults to the target's).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the RNG seed of [`Simulation::average_fidelity`].
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs batch estimates on `pool` instead of the process-wide
    /// [`TrajectoryPool::global`]. Seeds are per-trajectory-index, so the
    /// estimate itself is bit-identical for any pool width.
    pub fn with_pool(mut self, pool: Arc<TrajectoryPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pool batch estimates run on.
    fn active_pool(&self) -> Arc<TrajectoryPool> {
        self.pool.clone().unwrap_or_else(TrajectoryPool::global)
    }

    /// The active noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Trajectory-method average fidelity over random logical product
    /// inputs embedded at the compiler's placement (§6.4): the paper's
    /// headline simulation, with per-worker buffer reuse. Runs the
    /// windowed (segmented) schedule when the compiler produced one —
    /// statistically equivalent to the whole-program engine, pinned by
    /// the `window_parity` suite — and the fused whole-program schedule
    /// ([`CompiledCircuit::sim_circuit`]) otherwise
    /// ([`CompiledCircuit::estimate_average_fidelity`]).
    pub fn average_fidelity(&self, trajectories: usize) -> FidelityEstimate {
        self.compiled.estimate_average_fidelity_on(
            &self.active_pool(),
            &self.noise,
            trajectories,
            self.seed,
        )
    }

    /// The raw per-trajectory fidelity samples behind
    /// [`Simulation::average_fidelity`] — `samples[g]` depends only on
    /// the session seed and the global index `g`, never on the pool
    /// width ([`CompiledCircuit::sample_fidelities_on`]).
    pub fn fidelity_samples(&self, trajectories: usize) -> Vec<f64> {
        self.compiled.sample_fidelities_on(
            &self.active_pool(),
            &self.noise,
            trajectories,
            self.seed,
        )
    }

    /// [`Simulation::average_fidelity`] under trajectory health
    /// supervision ([`HealthPolicy`]): NaN/Inf and norm-growth
    /// trajectories are quarantined instead of poisoning the mean, and
    /// the run stops early once the standard error reaches the policy's
    /// target. The [`RunHealth`] report says how many trajectories
    /// completed, were quarantined, and whether the early-stop fired.
    pub fn average_fidelity_supervised(
        &self,
        trajectories: usize,
        policy: &HealthPolicy,
    ) -> (FidelityEstimate, RunHealth) {
        self.compiled.estimate_average_fidelity_supervised_on(
            &self.active_pool(),
            &self.noise,
            trajectories,
            self.seed,
            policy,
        )
    }

    /// Runs one noisy trajectory from `initial` into the session's output
    /// buffer and returns it.
    ///
    /// Dispatches like the batch estimator: when the compiler produced a
    /// windowed schedule and `initial` lives on its first segment's
    /// register (which is what [`Simulation::random_initial_state`]
    /// returns), the shot runs the segmented engine and the output state
    /// lives on the **last segment's** register — the measurement decode
    /// paths ([`CompiledCircuit::sample_decoded`],
    /// [`CompiledCircuit::decode_index_on`]) read any register, so
    /// shot-sampling loops run segmented end to end. An `initial` on the
    /// whole-program register always runs the fused whole-program
    /// schedule ([`CompiledCircuit::sim_circuit`]).
    ///
    /// # Panics
    ///
    /// Panics if `initial` lives on neither the compiled circuit's
    /// whole-program register nor the windowed schedule's first-segment
    /// register.
    pub fn run_trajectory<R: Rng + ?Sized>(&mut self, initial: &State, rng: &mut R) -> &State {
        let Simulation {
            compiled,
            noise,
            session,
            ..
        } = self;
        if let Some(segments) = compiled.sim_segments() {
            if initial.register() == segments.first_register() {
                return segmented_session(session, segments)
                    .run_trajectory(segments, initial, noise, rng);
            }
        }
        let circuit = compiled.sim_circuit();
        whole_session(session, circuit).run_trajectory(circuit, initial, noise, rng)
    }

    /// Runs the circuit noiselessly from `initial` into the session's
    /// output buffer and returns it, with the same engine dispatch as
    /// [`Simulation::run_trajectory`].
    ///
    /// # Panics
    ///
    /// Panics if `initial` lives on neither the compiled circuit's
    /// whole-program register nor the windowed schedule's first-segment
    /// register.
    pub fn run_ideal(&mut self, initial: &State) -> &State {
        let Simulation {
            compiled, session, ..
        } = self;
        if let Some(segments) = compiled.sim_segments() {
            if initial.register() == segments.first_register() {
                return segmented_session(session, segments).run_ideal(segments, initial);
            }
        }
        let circuit = compiled.sim_circuit();
        whole_session(session, circuit).run_ideal(circuit, initial)
    }

    /// A fresh random logical product input at the compiler's placement
    /// (§6.4) — the matching initial state for
    /// [`Simulation::run_trajectory`]: on the windowed schedule's
    /// first-segment register when the compiler produced one, the
    /// whole-program register otherwise.
    pub fn random_initial_state<R: Rng + ?Sized>(&self, rng: &mut R) -> State {
        match self.compiled.sim_segments() {
            Some(segments) => {
                let mut out = State::zero(segments.first_register());
                self.compiled
                    .write_random_product_initial_state(rng, &mut out);
                out
            }
            None => self.compiled.random_product_initial_state(rng),
        }
    }
}

/// The cached segmented session, (re)built when the cache holds the
/// other engine's buffers.
fn segmented_session<'s>(
    session: &'s mut Option<SessionState>,
    segments: &waltz_sim::SegmentedCircuit,
) -> &'s mut SegmentedSession {
    if !matches!(session, Some(SessionState::Segmented(_))) {
        *session = Some(SessionState::Segmented(SegmentedSession::new(segments)));
    }
    match session.as_mut() {
        Some(SessionState::Segmented(s)) => s,
        _ => unreachable!("just installed the segmented session"),
    }
}

/// The cached whole-program session, (re)built when the cache holds the
/// other engine's buffers.
fn whole_session<'s>(
    session: &'s mut Option<SessionState>,
    circuit: &waltz_sim::TimedCircuit,
) -> &'s mut Session {
    if !matches!(session, Some(SessionState::Whole(_))) {
        *session = Some(SessionState::Whole(Session::new(&circuit.register)));
    }
    match session.as_mut() {
        Some(SessionState::Whole(s)) => s,
        _ => unreachable!("just installed the whole-program session"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Compiler, Strategy, Target};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waltz_circuit::Circuit;

    fn artifact() -> CompileArtifact {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2);
        Compiler::new(Target::paper(Strategy::full_ququart()))
            .compile(&c)
            .unwrap()
    }

    #[test]
    fn artifact_derefs_to_compiled_circuit() {
        let a = artifact();
        assert_eq!(a.stats.hw_ops, a.compiled().timed.len());
        assert!(a.total_wall_ms() >= 0.0);
        assert!(a.eps().total() > 0.0);
    }

    #[test]
    fn session_trajectory_matches_free_function() {
        let a = artifact();
        let mut sim = a.simulate();
        let mut rng = StdRng::seed_from_u64(3);
        let initial = sim.random_initial_state(&mut rng);
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let out = sim.run_trajectory(&initial, &mut rng_a).clone();
        let reference =
            waltz_sim::trajectory::run_trajectory(a.sim_circuit(), &initial, a.noise(), &mut rng_b);
        assert!((out.fidelity(&reference) - 1.0).abs() < 1e-12);
        let ideal = sim.run_ideal(&initial).clone();
        let reference = waltz_sim::ideal::run(a.sim_circuit(), &initial);
        assert!((ideal.fidelity(&reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serial_shots_run_segmented_and_decode_from_the_last_register() {
        // mixed-radix cnu-6q under pure byte pricing (the calibrated
        // default fixed term is build-profile dependent and may merge
        // the split): the compiler windows this program, so the serial
        // path must start on the first segment's register and end on the
        // last segment's.
        let mut c = Circuit::new(6);
        c.ccx(0, 1, 3).ccx(2, 3, 4).ccx(2, 4, 5);
        let a = Compiler::with_options(
            Target::paper(Strategy::mixed_radix_ccz()),
            CompileOptions::default().with_window_sweep_fixed(0),
        )
        .compile(&c)
        .unwrap();
        let segments = a.sim_segments().expect("cnu-6q windows");
        let mut sim = a.simulate();
        let mut rng = StdRng::seed_from_u64(11);
        let initial = sim.random_initial_state(&mut rng);
        assert_eq!(initial.register(), segments.first_register());
        let ideal = sim.run_ideal(&initial).clone();
        assert_eq!(ideal.register(), segments.last_register());
        let reference = waltz_sim::ideal::run(
            a.sim_circuit(),
            &a.random_product_initial_state(&mut StdRng::seed_from_u64(11)),
        );
        // Same logical input (identical RNG consumption), same unitary:
        // the decoded shot distributions must agree exactly.
        let counts_seg = a.sample_decoded(&ideal, 64, &mut StdRng::seed_from_u64(7));
        let counts_whole = a.sample_decoded(&reference, 64, &mut StdRng::seed_from_u64(7));
        assert_eq!(counts_seg, counts_whole);
        // And a noisy shot decodes without panicking.
        let noisy = sim.run_trajectory(&initial, &mut rng).clone();
        assert_eq!(noisy.register(), segments.last_register());
        let shots = a.sample_decoded(&noisy, 16, &mut rng);
        assert_eq!(shots.values().sum::<usize>(), 16);
        // The whole-program register still takes the fallback path.
        let whole_initial = a.random_product_initial_state(&mut rng);
        assert_eq!(
            sim.run_ideal(&whole_initial).register(),
            &a.sim_circuit().register
        );
    }

    #[test]
    fn supervised_estimate_matches_plain_on_healthy_runs() {
        let a = artifact();
        let plain = a.simulate().average_fidelity(24);
        let (supervised, health) = a
            .simulate()
            .average_fidelity_supervised(24, &Default::default());
        assert_eq!(supervised.mean, plain.mean);
        assert_eq!(health.requested, 24);
        assert_eq!(health.completed, 24);
        assert_eq!(health.quarantined, 0);
        assert!(!health.early_stopped);
    }

    #[test]
    fn average_fidelity_respects_seed_and_noise_overrides() {
        let a = artifact();
        let x = a.simulate().with_seed(5).average_fidelity(20);
        let y = a.simulate().with_seed(5).average_fidelity(20);
        assert_eq!(x.mean, y.mean);
        let noiseless = a
            .simulate()
            .with_noise(NoiseModel::noiseless())
            .average_fidelity(5);
        assert!((noiseless.mean - 1.0).abs() < 1e-9);
    }
}
