//! The compiler's output artifact: the compiled circuit plus per-pass
//! reports, and the [`Simulation`] session handle that runs it.

use std::ops::Deref;

use rand::Rng;

use waltz_noise::NoiseModel;
use waltz_sim::trajectory::FidelityEstimate;
use waltz_sim::{Session, State};

use crate::compile::CompiledCircuit;
use crate::eps::EpsBreakdown;
use crate::pipeline::{Pass, PassReport};

/// Default seed of [`Simulation::average_fidelity`] — override with
/// [`Simulation::with_seed`].
const DEFAULT_SEED: u64 = 20230617;

/// What one [`crate::Compiler::compile`] run produced: the
/// [`CompiledCircuit`] plus one [`PassReport`] per pipeline stage and the
/// target's noise environment, so EPS estimation and simulation need no
/// further plumbing.
///
/// Dereferences to the wrapped [`CompiledCircuit`], so all of its
/// accessors (`stats`, `sim_circuit()`, `sample_decoded()`, …) are
/// available directly on the artifact.
#[derive(Debug, Clone)]
pub struct CompileArtifact {
    compiled: CompiledCircuit,
    reports: Vec<PassReport>,
    noise: NoiseModel,
}

impl Deref for CompileArtifact {
    type Target = CompiledCircuit;

    fn deref(&self) -> &CompiledCircuit {
        &self.compiled
    }
}

impl CompileArtifact {
    pub(crate) fn new(
        compiled: CompiledCircuit,
        reports: Vec<PassReport>,
        noise: NoiseModel,
    ) -> Self {
        CompileArtifact {
            compiled,
            reports,
            noise,
        }
    }

    /// The wrapped compiled circuit.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// Unwraps into the bare [`CompiledCircuit`], dropping the reports.
    pub fn into_compiled(self) -> CompiledCircuit {
        self.compiled
    }

    /// One report per pipeline stage, in execution order.
    pub fn reports(&self) -> &[PassReport] {
        &self.reports
    }

    /// The report of one pass (every pipeline run records all of
    /// [`Pass::ALL`]).
    ///
    /// # Panics
    ///
    /// Panics if the pass is missing — impossible for artifacts built by
    /// [`crate::Compiler::compile`].
    pub fn report(&self, pass: Pass) -> &PassReport {
        self.reports
            .iter()
            .find(|r| r.pass == pass)
            .expect("pipeline records every pass")
    }

    /// Total wall-clock compile time across all passes, in milliseconds.
    pub fn total_wall_ms(&self) -> f64 {
        self.reports.iter().map(|r| r.wall_ms).sum()
    }

    /// The noise model simulations of this artifact default to (the
    /// target's).
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// EPS estimate under the target's coherence model (§6.3).
    pub fn eps(&self) -> EpsBreakdown {
        self.compiled.eps(&self.noise.coherence)
    }

    /// A simulation session over this artifact: owns the kernel workspace
    /// and state buffers, defaults to the target's noise model, and runs
    /// the fused simulation schedule
    /// ([`CompiledCircuit::sim_circuit`]).
    pub fn simulate(&self) -> Simulation<'_> {
        Simulation {
            compiled: &self.compiled,
            noise: self.noise.clone(),
            seed: DEFAULT_SEED,
            session: None,
        }
    }
}

/// A simulation session bound to one compiled circuit: owns the
/// [`waltz_sim::Workspace`] and the state buffers that previously had to
/// be hand-threaded through `run_trajectory_into` and the initial-state
/// factory closures.
///
/// Batch estimation ([`Simulation::average_fidelity`]) fans trajectories
/// across threads with per-worker buffer reuse; the serial entry points
/// ([`Simulation::run_trajectory`], [`Simulation::run_ideal`]) reuse this
/// session's own buffers, so shot-by-shot loops allocate nothing per
/// shot.
#[derive(Debug)]
pub struct Simulation<'a> {
    compiled: &'a CompiledCircuit,
    noise: NoiseModel,
    seed: u64,
    /// Created on the first serial run — the batched estimator manages
    /// its own per-worker buffers, so a pure `average_fidelity` call
    /// never allocates a session.
    session: Option<Session>,
}

impl<'a> Simulation<'a> {
    /// Replaces the noise model (defaults to the target's).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the RNG seed of [`Simulation::average_fidelity`].
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The active noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Trajectory-method average fidelity over random logical product
    /// inputs embedded at the compiler's placement (§6.4): the paper's
    /// headline simulation, with per-worker buffer reuse. Runs the
    /// windowed (segmented) schedule when the compiler produced one —
    /// statistically equivalent to the whole-program engine, pinned by
    /// the `window_parity` suite — and the fused whole-program schedule
    /// ([`CompiledCircuit::sim_circuit`]) otherwise
    /// ([`CompiledCircuit::estimate_average_fidelity`]).
    pub fn average_fidelity(&self, trajectories: usize) -> FidelityEstimate {
        self.compiled
            .estimate_average_fidelity(&self.noise, trajectories, self.seed)
    }

    /// Runs one noisy trajectory from `initial` into the session's output
    /// buffer and returns it.
    ///
    /// Serial shots always run the **whole-program** schedule
    /// ([`CompiledCircuit::sim_circuit`]), never the windowed one: their
    /// output state lives on the whole-program register, which is what
    /// the measurement decode paths
    /// ([`CompiledCircuit::decode_device_index`],
    /// [`CompiledCircuit::sample_decoded`]) read. Only the batch
    /// estimator ([`Simulation::average_fidelity`]) dispatches to the
    /// segmented engine, where both the ideal and noisy runs share the
    /// last segment's register.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lives on a different register than the
    /// compiled circuit.
    pub fn run_trajectory<R: Rng + ?Sized>(&mut self, initial: &State, rng: &mut R) -> &State {
        let circuit = self.compiled.sim_circuit();
        self.session
            .get_or_insert_with(|| Session::new(&circuit.register))
            .run_trajectory(circuit, initial, &self.noise, rng)
    }

    /// Runs the circuit noiselessly from `initial` into the session's
    /// output buffer and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `initial` lives on a different register than the
    /// compiled circuit.
    pub fn run_ideal(&mut self, initial: &State) -> &State {
        let circuit = self.compiled.sim_circuit();
        self.session
            .get_or_insert_with(|| Session::new(&circuit.register))
            .run_ideal(circuit, initial)
    }

    /// A fresh random logical product input at the compiler's placement
    /// (§6.4) — the matching initial state for
    /// [`Simulation::run_trajectory`].
    pub fn random_initial_state<R: Rng + ?Sized>(&self, rng: &mut R) -> State {
        self.compiled.random_product_initial_state(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, Strategy, Target};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use waltz_circuit::Circuit;

    fn artifact() -> CompileArtifact {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2);
        Compiler::new(Target::paper(Strategy::full_ququart()))
            .compile(&c)
            .unwrap()
    }

    #[test]
    fn artifact_derefs_to_compiled_circuit() {
        let a = artifact();
        assert_eq!(a.stats.hw_ops, a.compiled().timed.len());
        assert!(a.total_wall_ms() >= 0.0);
        assert!(a.eps().total() > 0.0);
    }

    #[test]
    fn session_trajectory_matches_free_function() {
        let a = artifact();
        let mut sim = a.simulate();
        let mut rng = StdRng::seed_from_u64(3);
        let initial = sim.random_initial_state(&mut rng);
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let out = sim.run_trajectory(&initial, &mut rng_a).clone();
        let reference =
            waltz_sim::trajectory::run_trajectory(a.sim_circuit(), &initial, a.noise(), &mut rng_b);
        assert!((out.fidelity(&reference) - 1.0).abs() < 1e-12);
        let ideal = sim.run_ideal(&initial).clone();
        let reference = waltz_sim::ideal::run(a.sim_circuit(), &initial);
        assert!((ideal.fidelity(&reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_fidelity_respects_seed_and_noise_overrides() {
        let a = artifact();
        let x = a.simulate().with_seed(5).average_fidelity(20);
        let y = a.simulate().with_seed(5).average_fidelity(20);
        assert_eq!(x.mean, y.mean);
        let noiseless = a
            .simulate()
            .with_noise(NoiseModel::noiseless())
            .average_fidelity(5);
        assert!((noiseless.mean - 1.0).abs() < 1e-9);
    }
}
