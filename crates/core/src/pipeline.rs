//! The pass-structured compiler: one reusable [`Compiler`] built from a
//! [`Target`] + [`CompileOptions`] drives an explicit pipeline —
//! [`Pass::Decompose`] → [`Pass::Map`] → [`Pass::Route`] →
//! [`Pass::Analyze`] → [`Pass::Schedule`] → [`Pass::Fuse`] →
//! [`Pass::Lower`] — recording a [`PassReport`] (wall time, op/depth
//! deltas, diagnostics) per stage into the returned [`CompileArtifact`].

use std::sync::OnceLock;
use std::time::Instant;

use waltz_arch::InteractionGraph;
use waltz_circuit::{Circuit, GateKind};
use waltz_gates::Q1Gate;
use waltz_sim::{FuseCache, FuseOptions, GateKernel, Register, State, TimedCircuit, Workspace};

use crate::artifact::CompileArtifact;
use crate::cache::ArtifactCache;
use crate::compile::{build_spans, CompileError, CompileStats, CompiledCircuit};
use crate::lower::{self, LowerOutput};
use crate::mapping;
use crate::strategy::{CompileOptions, Fusion, Strategy};
use crate::target::Target;

/// One stage of the compilation pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Strategy-specific expansion of the logical circuit to the regime's
    /// native set (8-CX expansion, CCX→CCZ, CSWAP orientation, §5.1).
    Decompose,
    /// Initial placement of logical qubits onto the interaction graph
    /// using the §5.2 lookahead weights.
    Map,
    /// Routing and pulse-configuration selection: the decomposed circuit
    /// becomes an ordered hardware program (§5.1, §4.2).
    Route,
    /// Level-occupancy analysis of the routed program: bounds the highest
    /// level each device ever populates and (unless
    /// [`CompileOptions::padded_registers`] is set) demotes devices that
    /// never leave their qubit subspace to dimension 2, shrinking the
    /// simulated register; then (unless
    /// [`CompileOptions::with_windowed_registers`] opted out) time-slices
    /// the result into per-segment registers at the `ENC`/`DEC` window
    /// boundaries ([`crate::HwProgram::window_registers`]). The report
    /// records the per-device dimensions, the state bytes saved, and the
    /// windowed segmentation: `segments`, `reshapes`, per-segment
    /// `segment_dims`, and peak vs. mean state bytes
    /// (`state_bytes_peak`, `state_bytes_mean`).
    Analyze,
    /// ASAP scheduling with calibrated durations, embedding each unitary
    /// to device dimensions and classifying its [`waltz_sim::GateKernel`].
    Schedule,
    /// Gate fusion of the simulation schedule
    /// ([`waltz_sim::TimedCircuit::fuse_with`]); a no-op pass when the
    /// options disable fusion.
    Fuse,
    /// Final lowering into the simulation-ready artifact: the coherence
    /// timeline (§6.3) and aggregate statistics.
    Lower,
}

impl Pass {
    /// Every pass, in execution order.
    pub const ALL: [Pass; 7] = [
        Pass::Decompose,
        Pass::Map,
        Pass::Route,
        Pass::Analyze,
        Pass::Schedule,
        Pass::Fuse,
        Pass::Lower,
    ];

    /// Stable display name (also the key used in `BENCH_sim.json`).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Decompose => "decompose",
            Pass::Map => "map",
            Pass::Route => "route",
            Pass::Analyze => "analyze",
            Pass::Schedule => "schedule",
            Pass::Fuse => "fuse",
            Pass::Lower => "lower",
        }
    }
}

/// What one pipeline stage did: wall time, op/depth deltas and per-pass
/// diagnostics, recorded into the [`CompileArtifact`].
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// Which pass ran.
    pub pass: Pass,
    /// Wall-clock time the pass took, in milliseconds.
    pub wall_ms: f64,
    /// Operation count entering the pass (logical gates for circuit-level
    /// passes, scheduled pulses/blocks for schedule-level passes).
    pub ops_in: usize,
    /// Operation count leaving the pass.
    pub ops_out: usize,
    /// Depth entering the pass (logical circuit depth, or distinct pulse
    /// start times once scheduled).
    pub depth_in: usize,
    /// Depth leaving the pass.
    pub depth_out: usize,
    /// Per-pass key/value diagnostics (routing swaps, ENC windows, …).
    pub diagnostics: Vec<(String, String)>,
}

impl PassReport {
    /// Signed op-count delta (`ops_out - ops_in`).
    pub fn ops_delta(&self) -> isize {
        self.ops_out as isize - self.ops_in as isize
    }

    /// Looks up a diagnostic by key.
    pub fn diagnostic(&self, key: &str) -> Option<&str> {
        self.diagnostics
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Bytes one state-vector amplitude occupies — the unit of the analyze
/// pass's state-size diagnostics, kept identical to
/// [`Register::state_bytes`] by construction.
const STATE_BYTES_PER_AMP: usize = std::mem::size_of::<waltz_math::C64>();

/// Bytes one sparse amplitude-map entry occupies (packed basis index
/// plus amplitude) — the unit of the analyze pass's sparse-size
/// prediction, kept identical to `SparseState::state_bytes` by
/// construction.
const SPARSE_BYTES_PER_ENTRY: usize = std::mem::size_of::<(u64, waltz_math::C64)>();

/// Predicted peak sparse support (nonzero amplitude count) of the
/// compiled simulation schedule, assuming a classical basis input
/// (support 1). Identity, diagonal and permutation kernels preserve the
/// support exactly; dense kernels multiply it by the gate's block
/// dimension; the (segment) register size caps it. Windowed schedules
/// walk each segment in order with the support carried across reshape
/// boundaries (a reshape never grows the support).
fn predict_sparse_peak_nnz(compiled: &crate::compile::CompiledCircuit) -> usize {
    fn walk(ops: &[waltz_sim::TimedOp], total: u128, nnz: &mut u128, peak: &mut u128) {
        *nnz = (*nnz).min(total.max(1));
        *peak = (*peak).max(*nnz);
        for op in ops {
            match &op.kernel {
                GateKernel::Identity
                | GateKernel::Diagonal { .. }
                | GateKernel::Permutation { .. } => {}
                _ => *nnz = (*nnz * op.unitary.rows() as u128).min(total.max(1)),
            }
            *peak = (*peak).max(*nnz);
        }
    }
    let mut nnz: u128 = 1;
    let mut peak: u128 = 1;
    if let Some(segmented) = compiled.sim_segments() {
        for segment in &segmented.segments {
            walk(
                &segment.ops,
                segment.register.total_dim() as u128,
                &mut nnz,
                &mut peak,
            );
        }
    } else {
        let circuit = compiled.sim_circuit();
        walk(
            &circuit.ops,
            circuit.register.total_dim() as u128,
            &mut nnz,
            &mut peak,
        );
    }
    peak.min(usize::MAX as u128) as usize
}

/// Number of distinct pulse start times — the scheduled analogue of
/// circuit depth.
fn schedule_depth(timed: &TimedCircuit) -> usize {
    let mut starts: Vec<u64> = timed.ops.iter().map(|op| op.start_ns.to_bits()).collect();
    starts.sort_unstable();
    starts.dedup();
    starts.len()
}

/// A reusable compiler for one [`Target`]: drives the pass pipeline and
/// records per-pass reports.
///
/// Construction resolves the gate-fusion cost-model constants — from the
/// [`CompileOptions`] overrides when given, otherwise from a one-shot
/// sweep-timing calibration measured once per process — so every
/// compilation through the same `Compiler` uses identical constants.
///
/// # Example
///
/// ```
/// use waltz_core::{Compiler, Strategy, Target};
/// use waltz_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).ccx(0, 1, 2);
/// let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
/// let artifact = compiler.compile(&c).unwrap();
/// assert!(artifact.timed.validate().is_ok());
/// let fidelity = artifact.simulate().average_fidelity(10);
/// assert!(fidelity.mean > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    target: Target,
    options: CompileOptions,
    fuse: FuseOptions,
    /// Memoized fused-block products, shared by every compilation through
    /// this compiler (and its clones — the store is behind an `Arc`):
    /// batches of structurally similar circuits multiply each repeated
    /// block shape once instead of once per circuit.
    fuse_cache: FuseCache,
    /// Content-addressed artifact cache
    /// ([`Compiler::with_artifact_cache`]): repeat compilations of the
    /// same circuit against the same target replay the stored artifact
    /// instead of running the pipeline. `None` (the default) compiles
    /// every call.
    artifact_cache: Option<ArtifactCache>,
}

impl Compiler {
    /// A compiler for `target` with default [`CompileOptions`] (gate
    /// fusion on, calibrated cost constants, unbounded block span).
    pub fn new(target: Target) -> Self {
        Compiler::with_options(target, CompileOptions::default())
    }

    /// A compiler with explicit options.
    pub fn with_options(target: Target, options: CompileOptions) -> Self {
        let fuse = resolve_fuse_options(&options);
        Compiler {
            target,
            options,
            fuse,
            fuse_cache: FuseCache::new(),
            artifact_cache: None,
        }
    }

    /// Attaches a content-addressed [`ArtifactCache`]: before running the
    /// pipeline, [`Compiler::compile`] (and everything built on it —
    /// [`Compiler::compile_batch`], [`crate::Supervisor`]) looks the
    /// circuit up under the key `(circuit content hash, compiler
    /// fingerprint)` and replays a stored artifact instead of compiling,
    /// marking it via [`CompileArtifact::is_cached`]. Fresh compilations
    /// are stored on the way out.
    pub fn with_artifact_cache(mut self, cache: ArtifactCache) -> Self {
        self.artifact_cache = Some(cache);
        self
    }

    /// The attached artifact cache, when one was configured.
    pub fn artifact_cache(&self) -> Option<&ArtifactCache> {
        self.artifact_cache.as_ref()
    }

    /// The compiler half of the [`ArtifactCache`] key: the target's
    /// [`Target::fingerprint`] folded with the compile options and the
    /// *resolved* cost-model constants — so host-calibrated fuse
    /// constants and the resolved window pricing are part of the key, and
    /// a cache shared across processes never replays an artifact compiled
    /// under different constants as if it matched.
    pub fn fingerprint(&self) -> u64 {
        use waltz_codec::Encode;
        let mut w = waltz_codec::ByteWriter::new();
        w.put_u64(self.target.fingerprint());
        self.options.encode(&mut w);
        self.fuse.encode(&mut w);
        w.put_usize(
            self.options
                .window_sweep_fixed
                .unwrap_or(self.fuse.sweep_fixed),
        );
        waltz_codec::fnv1a64(w.as_bytes())
    }

    /// The target this compiler was built from.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The options this compiler was built with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The resolved fusion cost-model constants (calibrated or pinned).
    pub fn fuse_options(&self) -> &FuseOptions {
        &self.fuse
    }

    /// Compiles one circuit through the full pass pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the circuit is empty or malformed
    /// (duplicate/missing/out-of-range operands, non-finite rotation
    /// angles) or the topology cannot host it (too small, disconnected).
    pub fn compile(&self, circuit: &Circuit) -> Result<CompileArtifact, CompileError> {
        self.compile_until(circuit, None, 0)
    }

    /// [`Compiler::compile`] under a wall-clock deadline: the budget is
    /// checked at every pass boundary, and a compilation that runs past
    /// it returns [`CompileError::DeadlineExceeded`] naming the first
    /// pass that did not start in time. A pass already running is never
    /// interrupted, so the overshoot is bounded by one pass.
    pub fn compile_with_deadline(
        &self,
        circuit: &Circuit,
        budget: std::time::Duration,
    ) -> Result<CompileArtifact, CompileError> {
        let budget_ms = budget.as_millis().min(u64::MAX as u128) as u64;
        self.compile_until(circuit, Some(Instant::now() + budget), budget_ms)
    }

    /// The one pipeline implementation behind [`Compiler::compile`],
    /// [`Compiler::compile_with_deadline`] and the supervised entry
    /// points: every pass boundary runs through
    /// [`crate::supervisor::begin_pass`], which enforces the deadline and
    /// marks the running pass in thread-local state so a supervisor's
    /// `catch_unwind` can attribute a panic to the pass that raised it.
    pub(crate) fn compile_until(
        &self,
        circuit: &Circuit,
        deadline: Option<Instant>,
        budget_ms: u64,
    ) -> Result<CompileArtifact, CompileError> {
        use crate::supervisor::begin_pass;

        let topology = self.target.topology_for(circuit.n_qubits());
        validate(circuit, &topology, self.target.strategy())?;
        // Content-addressed replay: a hit skips every pass below. The
        // key is computed only when a cache is attached (hashing the
        // circuit costs one canonical encoding).
        let cache_key = self
            .artifact_cache
            .as_ref()
            .map(|_| (waltz_codec::content_hash(circuit), self.fingerprint()));
        if let (Some(cache), Some(key)) = (&self.artifact_cache, cache_key) {
            if let Some(artifact) = cache.lookup(key) {
                return Ok(artifact);
            }
        }
        let strategy = *self.target.strategy();
        let lib = self.target.library();
        let mut reports: Vec<PassReport> = Vec::with_capacity(Pass::ALL.len());

        // -- Decompose ----------------------------------------------------
        begin_pass(Pass::Decompose, deadline, budget_ms)?;
        let t0 = Instant::now();
        let prepared = match &strategy {
            Strategy::QubitOnly { ccx } => lower::qubit_only::preprocess(circuit, *ccx),
            Strategy::MixedRadix { ccx, native_cswap } => {
                lower::mixed_radix::preprocess(circuit, *ccx, *native_cswap)
            }
            Strategy::FullQuquart { use_ccz, cswap } => {
                lower::full_ququart::preprocess(circuit, *use_ccz, *cswap)
            }
        };
        let (c1, c2, c3) = prepared.gate_counts();
        reports.push(PassReport {
            pass: Pass::Decompose,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            ops_in: circuit.len(),
            ops_out: prepared.len(),
            depth_in: circuit.depth(),
            depth_out: prepared.depth(),
            diagnostics: vec![
                ("gates_1q".into(), c1.to_string()),
                ("gates_2q".into(), c2.to_string()),
                ("gates_3q".into(), c3.to_string()),
            ],
        });

        // -- Map ----------------------------------------------------------
        begin_pass(Pass::Map, deadline, budget_ms)?;
        let t0 = Instant::now();
        let graph = match &strategy {
            Strategy::FullQuquart { .. } => InteractionGraph::encoded(topology),
            _ => InteractionGraph::qubit_only(topology),
        };
        let layout = mapping::place(&prepared, &graph);
        reports.push(PassReport {
            pass: Pass::Map,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            ops_in: prepared.len(),
            ops_out: prepared.len(),
            depth_in: prepared.depth(),
            depth_out: prepared.depth(),
            diagnostics: vec![
                ("devices".into(), graph.topology().n_devices().to_string()),
                ("center".into(), graph.topology().center().to_string()),
            ],
        });

        // -- Route --------------------------------------------------------
        begin_pass(Pass::Route, deadline, budget_ms)?;
        let t0 = Instant::now();
        let mut out: LowerOutput = match &strategy {
            Strategy::QubitOnly { ccx } => {
                lower::qubit_only::route(&prepared, layout, graph, lib, *ccx)
            }
            Strategy::MixedRadix { ccx, .. } => {
                lower::mixed_radix::route(&prepared, layout, graph, lib, *ccx)
            }
            Strategy::FullQuquart { cswap, .. } => {
                lower::full_ququart::route(&prepared, layout, graph, lib, *cswap)
            }
        };
        reports.push(PassReport {
            pass: Pass::Route,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            ops_in: prepared.len(),
            ops_out: out.prog.len(),
            depth_in: prepared.depth(),
            depth_out: out.prog.len(),
            diagnostics: vec![
                ("routing_swaps".into(), out.swaps.to_string()),
                ("enc_windows".into(), out.enc_windows.len().to_string()),
            ],
        });

        // -- Analyze ------------------------------------------------------
        // Level occupancy: bound the highest level each device ever
        // populates and shrink the register to exactly those dimensions.
        // The mixed-radix payoff: only ENC hosts (and partners the closure
        // check cannot demote) stay four-dimensional, so a register that
        // padded to 4^n amplitudes collapses to the occupied product.
        // The windowed refinement then time-slices that result: the
        // program is cut wherever a device's occupied dimension changes
        // (ENC/DEC boundaries) and each segment gets its own register, so
        // hosts shrink *outside* their windows too — gated by a cost
        // model that only keeps boundaries whose smaller registers save
        // more sweep-bytes than the reshape copy costs.
        begin_pass(Pass::Analyze, deadline, budget_ms)?;
        let t0 = Instant::now();
        // Saturating like `Register::state_bytes`: a 38-qubit register's
        // byte count must not wrap into something a budget would admit.
        let bytes_of = |dims: &[u8]| {
            dims.iter()
                .map(|&d| d as usize)
                .fold(STATE_BYTES_PER_AMP, usize::saturating_mul)
        };
        let padded_bytes = bytes_of(out.prog.dims());
        if !self.options.padded_registers {
            out.prog.demote_to_occupancy();
        }
        let windowing = self.options.windowed_registers && !self.options.padded_registers;
        // The window cost model prices each sweep's fixed overhead with
        // the same constant the fusion model calibrated, unless pinned.
        let window_fixed = self
            .options
            .window_sweep_fixed
            .unwrap_or(self.fuse.sweep_fixed);
        let windows = if windowing {
            out.prog.window_registers_with(window_fixed)
        } else {
            Vec::new()
        };
        // A single window is exactly the whole-program register: fall
        // back to the PR 4 engine and skip the segmented schedule.
        let windowed_active = windows.len() > 1;
        let dims = out.prog.dims();
        let state_bytes = bytes_of(dims);
        let (peak_bytes, mean_bytes) = if windowed_active {
            let peak = windows
                .iter()
                .map(crate::hwprog::RegisterWindow::state_bytes)
                .max()
                .unwrap_or(0);
            let ops: usize = windows.iter().map(|w| w.ops.len()).sum();
            let weighted: f64 = windows
                .iter()
                .map(|w| (w.ops.len() * w.state_bytes()) as f64)
                .sum();
            (peak, weighted / ops.max(1) as f64)
        } else {
            (state_bytes, state_bytes as f64)
        };
        let dim_counts = |target: u8| dims.iter().filter(|&&d| d == target).count();
        let prog_len = out.prog.len();
        reports.push(PassReport {
            pass: Pass::Analyze,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            ops_in: prog_len,
            ops_out: prog_len,
            depth_in: prog_len,
            depth_out: prog_len,
            diagnostics: vec![
                (
                    "dims".into(),
                    dims.iter().map(u8::to_string).collect::<Vec<_>>().join(","),
                ),
                ("dim2_devices".into(), dim_counts(2).to_string()),
                ("dim4_devices".into(), dim_counts(4).to_string()),
                ("state_bytes".into(), state_bytes.to_string()),
                ("state_bytes_padded".into(), padded_bytes.to_string()),
                (
                    "demoted".into(),
                    (!self.options.padded_registers).to_string(),
                ),
                ("windowed".into(), windowed_active.to_string()),
                (
                    "segments".into(),
                    if windowed_active { windows.len() } else { 1 }.to_string(),
                ),
                (
                    "reshapes".into(),
                    windows.len().saturating_sub(1).to_string(),
                ),
                (
                    "segment_dims".into(),
                    if windowed_active {
                        windows
                            .iter()
                            .map(|w| {
                                w.dims
                                    .iter()
                                    .map(u8::to_string)
                                    .collect::<Vec<_>>()
                                    .join(",")
                            })
                            .collect::<Vec<_>>()
                            .join("|")
                    } else {
                        dims.iter().map(u8::to_string).collect::<Vec<_>>().join(",")
                    },
                ),
                ("state_bytes_peak".into(), peak_bytes.to_string()),
                ("state_bytes_mean".into(), format!("{mean_bytes:.1}")),
                ("window_sweep_fixed".into(), window_fixed.to_string()),
            ],
        });

        // -- Schedule -----------------------------------------------------
        begin_pass(Pass::Schedule, deadline, budget_ms)?;
        let t0 = Instant::now();
        let timed = out.prog.schedule(lib);
        let windowed_raw = windowed_active.then(|| out.prog.schedule_windowed(lib, &windows));
        let timed_depth = schedule_depth(&timed);
        reports.push(PassReport {
            pass: Pass::Schedule,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            ops_in: out.prog.len(),
            ops_out: timed.len(),
            depth_in: out.prog.len(),
            depth_out: timed_depth,
            diagnostics: vec![(
                "duration_ns".into(),
                format!("{:.1}", timed.total_duration_ns),
            )],
        });

        // -- Fuse ---------------------------------------------------------
        begin_pass(Pass::Fuse, deadline, budget_ms)?;
        let t0 = Instant::now();
        let fused = match self.options.fusion {
            Fusion::Off => None,
            Fusion::TwoQudit => Some(timed.fuse_with_cache(&self.fuse, &self.fuse_cache)),
        };
        // The windowed schedule fuses per segment (never across a reshape
        // boundary), sharing the compiler-wide block cache.
        let windowed = windowed_raw.map(|seg| match self.options.fusion {
            Fusion::Off => seg,
            Fusion::TwoQudit => seg.fuse_with_cache(&self.fuse, &self.fuse_cache),
        });
        let sim_ops = fused.as_ref().map_or(timed.len(), TimedCircuit::len);
        let sim_depth = fused.as_ref().map_or(timed_depth, schedule_depth);
        reports.push(PassReport {
            pass: Pass::Fuse,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            ops_in: timed.len(),
            ops_out: sim_ops,
            depth_in: timed_depth,
            depth_out: sim_depth,
            diagnostics: vec![
                (
                    "enabled".into(),
                    (self.options.fusion != Fusion::Off).to_string(),
                ),
                (
                    "sweep_overhead".into(),
                    self.fuse.sweep_overhead.to_string(),
                ),
                ("sweep_fixed".into(), self.fuse.sweep_fixed.to_string()),
                (
                    "max_block_span".into(),
                    if self.fuse.max_block_span == usize::MAX {
                        "unbounded".into()
                    } else {
                        self.fuse.max_block_span.to_string()
                    },
                ),
                ("fuse_cache_hits".into(), self.fuse_cache.hits().to_string()),
                (
                    "fuse_cache_misses".into(),
                    self.fuse_cache.misses().to_string(),
                ),
                (
                    "fuse_cache_evictions".into(),
                    self.fuse_cache.evictions().to_string(),
                ),
            ],
        });

        // -- Lower --------------------------------------------------------
        begin_pass(Pass::Lower, deadline, budget_ms)?;
        let t0 = Instant::now();
        let coherence_spans = build_spans(&strategy, &out, &timed);
        let stats = CompileStats {
            routing_swaps: out.swaps,
            enc_windows: out.enc_windows.len(),
            hw_ops: timed.len(),
            total_duration_ns: timed.total_duration_ns,
        };
        let compiled = CompiledCircuit {
            timed,
            fused,
            windowed,
            strategy,
            initial_sites: out.initial_sites,
            final_sites: out.final_sites,
            coherence_spans,
            stats,
            slots_per_device: out.graph.slots_per_device(),
        };
        // Lower assembles spans and stats without touching the ops, so its
        // op/depth fields report the simulation schedule unchanged.
        let mut lower_diagnostics = vec![
            (
                "coherence_spans".into(),
                compiled.coherence_spans.len().to_string(),
            ),
            (
                "gate_eps".into(),
                format!("{:.6}", compiled.timed.gate_eps()),
            ),
        ];
        if let Some(cache) = &self.artifact_cache {
            lower_diagnostics.push(("artifact_cache_hits".into(), cache.hits().to_string()));
            lower_diagnostics.push(("artifact_cache_misses".into(), cache.misses().to_string()));
            lower_diagnostics.push((
                "artifact_cache_evictions".into(),
                cache.evictions().to_string(),
            ));
            lower_diagnostics.push((
                "artifact_cache_evictions_disk".into(),
                cache.evictions_disk().to_string(),
            ));
        }
        reports.push(PassReport {
            pass: Pass::Lower,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            ops_in: sim_ops,
            ops_out: sim_ops,
            depth_in: sim_depth,
            depth_out: sim_depth,
            diagnostics: lower_diagnostics,
        });

        // -- Sparse-representation prediction ------------------------------
        // Appended to the analyze report retroactively: the prediction
        // walks the *fused* simulation schedule (fusion reclassifies
        // blocks, which changes which ops preserve the support), so it
        // cannot run until the Fuse pass has.
        let sparse_peak_nnz = predict_sparse_peak_nnz(&compiled);
        let sparse_bytes_pred = sparse_peak_nnz.saturating_mul(SPARSE_BYTES_PER_ENTRY);
        let dense_bytes_peak = compiled.sim_state_bytes_peak();
        if let Some(analyze) = reports.iter_mut().find(|r| r.pass == Pass::Analyze) {
            analyze
                .diagnostics
                .push(("sparse_peak_nnz_pred".into(), sparse_peak_nnz.to_string()));
            analyze.diagnostics.push((
                "sparse_state_bytes_pred".into(),
                sparse_bytes_pred.to_string(),
            ));
            analyze.diagnostics.push((
                "repr_plan".into(),
                if sparse_bytes_pred < dense_bytes_peak {
                    "sparse"
                } else {
                    "dense"
                }
                .to_string(),
            ));
            analyze.diagnostics.push((
                "sparse_density_threshold".into(),
                self.options
                    .sparse_density_threshold()
                    .unwrap_or(waltz_sim::DEFAULT_SPARSE_DENSITY_THRESHOLD)
                    .to_string(),
            ));
            analyze.diagnostics.push((
                "sparse_epsilon".into(),
                self.options.sparse_epsilon().unwrap_or(0.0).to_string(),
            ));
        }

        let artifact = CompileArtifact::new(compiled, reports, self.target.noise().clone());
        if let (Some(cache), Some(key)) = (&self.artifact_cache, cache_key) {
            cache.store(key, &artifact);
        }
        Ok(artifact)
    }

    /// Compiles a batch of circuits, fanning them across worker threads
    /// with an atomic-counter work-stealing loop: each worker repeatedly
    /// claims the next unclaimed circuit, so one big circuit next to many
    /// small ones never strands the other workers. Results are
    /// element-wise identical to sequential [`Compiler::compile`] calls —
    /// each circuit compiles independently, and one circuit's failure
    /// never poisons the rest of the batch. Since the loop moved into
    /// [`crate::Supervisor`] (which this method delegates to), that
    /// isolation extends to panics: a pass that panics costs its own job
    /// a [`CompileError::Internal`] while every sibling completes. Use a
    /// [`crate::Supervisor`] directly for per-job [`crate::JobReport`]s,
    /// deadlines, state-byte budgets and retry-with-degradation.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
    ) -> Vec<Result<CompileArtifact, CompileError>> {
        // Retry-with-degradation is off here: this entry point promises
        // element-wise parity with sequential `compile` calls, so a
        // panicked job must surface as its error, not as an artifact
        // compiled under different options.
        crate::supervisor::Supervisor::with_policy(
            self.clone(),
            crate::supervisor::SupervisorPolicy::default().with_retry_degraded(false),
        )
        .compile_batch(circuits)
        .into_iter()
        .map(|job| job.result)
        .collect()
    }

    /// A compiler over the same target and fuse cache with different
    /// options — the supervisor's degradation rungs recompile through
    /// this, so retries reuse every memoized fused block.
    pub(crate) fn reoptioned(&self, options: CompileOptions) -> Compiler {
        Compiler {
            target: self.target.clone(),
            fuse: resolve_fuse_options(&options),
            options,
            fuse_cache: self.fuse_cache.clone(),
            // Degraded rungs keep the cache: their options change the
            // fingerprint, so rung artifacts are cached under their own
            // keys and a retried batch warms up too.
            artifact_cache: self.artifact_cache.clone(),
        }
    }
}

/// Entry validation: everything a caller can get wrong surfaces as a
/// [`CompileError`] here instead of a panic deep inside a pass.
fn validate(
    circuit: &Circuit,
    topology: &waltz_arch::Topology,
    strategy: &Strategy,
) -> Result<(), CompileError> {
    if circuit.n_qubits() == 0 {
        return Err(CompileError::EmptyCircuit);
    }
    for (gate_index, gate) in circuit.iter().enumerate() {
        let expected = gate.kind.arity();
        if gate.qubits.len() != expected {
            return Err(CompileError::WrongOperandCount {
                gate_index,
                expected,
                got: gate.qubits.len(),
            });
        }
        for (i, &q) in gate.qubits.iter().enumerate() {
            if q >= circuit.n_qubits() {
                return Err(CompileError::QubitOutOfRange {
                    gate_index,
                    qubit: q,
                    n_qubits: circuit.n_qubits(),
                });
            }
            if gate.qubits[i + 1..].contains(&q) {
                return Err(CompileError::DuplicateOperands {
                    gate_index,
                    qubit: q,
                });
            }
        }
        if let GateKind::One(Q1Gate::Rx(a) | Q1Gate::Ry(a) | Q1Gate::Rz(a)) = gate.kind {
            if !a.is_finite() {
                return Err(CompileError::NonFiniteAngle { gate_index });
            }
        }
    }
    if !topology.is_connected() {
        return Err(CompileError::DisconnectedTopology {
            devices: topology.n_devices(),
        });
    }
    let needed = strategy.device_count(circuit.n_qubits());
    if topology.n_devices() < needed {
        return Err(CompileError::TopologyTooSmall {
            needed,
            available: topology.n_devices(),
        });
    }
    Ok(())
}

/// Resolves the fusion knobs for a compiler: option overrides win,
/// anything unspecified comes from the once-per-process calibration.
/// Calibration is skipped entirely when fusion is off or both constants
/// are pinned.
fn resolve_fuse_options(options: &CompileOptions) -> FuseOptions {
    let defaults = FuseOptions::default();
    let needs_calibration = options.fusion != Fusion::Off
        && (options.fuse_sweep_overhead.is_none() || options.fuse_sweep_fixed.is_none());
    let (cal_overhead, cal_fixed) = if needs_calibration {
        calibrated_fuse_constants()
    } else {
        (defaults.sweep_overhead, defaults.sweep_fixed)
    };
    FuseOptions {
        sweep_overhead: options.fuse_sweep_overhead.unwrap_or(cal_overhead),
        sweep_fixed: options.fuse_sweep_fixed.unwrap_or(cal_fixed),
        max_block_span: options.max_fused_span.unwrap_or(defaults.max_block_span),
    }
}

/// The host-calibrated `(sweep_overhead, sweep_fixed)` pair, measured once
/// per process (see [`measure_fuse_constants`]).
fn calibrated_fuse_constants() -> (usize, usize) {
    static CAL: OnceLock<(usize, usize)> = OnceLock::new();
    *CAL.get_or_init(measure_fuse_constants)
}

/// Best-of-`reps` mean nanoseconds per call of `f` over `iters` calls.
fn best_time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// One-shot sweep-timing calibration of the fusion cost model (a ROADMAP
/// follow-up: the shipped constants were tuned on a 1-core container).
///
/// Times a two-ququart *diagonal* sweep at two state sizes to split the
/// sweep cost into a fixed part and a per-amplitude part, and a
/// two-ququart *dense* apply to price one complex multiply; the model
/// constants are those costs re-expressed in multiply units. Falls back
/// to the shipped defaults if the timer resolution defeats the
/// measurement (both constants are clamped to sane ranges regardless).
fn measure_fuse_constants() -> (usize, usize) {
    use waltz_math::{Matrix, C64};

    let defaults = FuseOptions::default();
    let fallback = (defaults.sweep_overhead, defaults.sweep_fixed);

    const SMALL_QUDITS: usize = 3; // 4^3 = 64 amplitudes
    const BIG_QUDITS: usize = 6; // 4^6 = 4096 amplitudes
    let small_amps = 4usize.pow(SMALL_QUDITS as u32) as f64;
    let big_amps = 4usize.pow(BIG_QUDITS as u32) as f64;

    // A 16-dim diagonal (phases) and a 16-dim dense unitary on two
    // ququarts; the dense matrix need not be unitary to price a matvec.
    let diag: Vec<C64> = (0..16)
        .map(|k| C64::new(0.0, 0.3 * k as f64).exp())
        .collect();
    let diag_u = Matrix::from_diag(&diag);
    let mut dense_u = Matrix::zeros(16, 16);
    for r in 0..16 {
        for c in 0..16 {
            dense_u[(r, c)] = C64::new(1.0 / (1.0 + (r + 2 * c) as f64), 0.1);
        }
    }
    let diag_kernel = GateKernel::classify(&diag_u, 2);
    let dense_kernel = GateKernel::classify(&dense_u, 2);

    let mut ws = Workspace::serial();
    let mut small = State::zero(&Register::ququarts(SMALL_QUDITS));
    let mut big = State::zero(&Register::ququarts(BIG_QUDITS));

    let t_diag_small = best_time_ns(3, 256, || {
        small.apply_kernel(&diag_kernel, &diag_u, &[0, 1], &mut ws)
    });
    let t_diag_big = best_time_ns(3, 48, || {
        big.apply_kernel(&diag_kernel, &diag_u, &[0, 1], &mut ws)
    });
    let t_dense_big = best_time_ns(3, 16, || {
        big.apply_kernel(&dense_kernel, &dense_u, &[0, 1], &mut ws)
    });

    let per_amp_diag = (t_diag_big - t_diag_small) / (big_amps - small_amps);
    let fixed_ns = (t_diag_small - small_amps * per_amp_diag).max(0.0);
    let per_amp_dense = (t_dense_big - fixed_ns) / big_amps;
    let mult_ns = per_amp_dense / 16.0;
    if !(per_amp_diag > 0.0 && mult_ns > 0.0) {
        return fallback;
    }
    // The diagonal sweep does one multiply per amplitude; everything above
    // that is bookkeeping overhead.
    let overhead = ((per_amp_diag / mult_ns) - 1.0).round().clamp(1.0, 32.0) as usize;
    let fixed = (fixed_ns / mult_ns).round().clamp(256.0, 65536.0) as usize;
    (overhead, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_arch::Topology;
    use waltz_circuit::Gate;

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2);
        c
    }

    #[test]
    fn pipeline_records_every_pass_in_order() {
        let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
        let artifact = compiler.compile(&small_circuit()).unwrap();
        let passes: Vec<Pass> = artifact.reports().iter().map(|r| r.pass).collect();
        assert_eq!(passes, Pass::ALL.to_vec());
        for r in artifact.reports() {
            assert!(r.wall_ms >= 0.0, "{:?}", r.pass);
        }
        // Decompose expands the CCX; route adds ENC/DEC; fuse shrinks.
        let decompose = artifact.report(Pass::Decompose);
        assert!(decompose.ops_out >= decompose.ops_in);
        let route = artifact.report(Pass::Route);
        assert_eq!(route.diagnostic("enc_windows").unwrap(), "1");
        let fuse = artifact.report(Pass::Fuse);
        assert!(fuse.ops_out <= fuse.ops_in);
        assert_eq!(fuse.diagnostic("enabled").unwrap(), "true");
    }

    /// A CNU-style 6-qubit Toffoli ladder (the cnu-6q compute half).
    fn toffoli_ladder_6q() -> Circuit {
        let mut c = Circuit::new(6);
        c.ccx(0, 1, 3).ccx(2, 3, 4).ccx(2, 4, 5);
        c
    }

    #[test]
    fn analyze_demotes_mixed_radix_registers() {
        let circuit = toffoli_ladder_6q();
        let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
        let artifact = compiler.compile(&circuit).unwrap();
        let dims = artifact.timed.register.dims();
        assert!(
            dims.contains(&2),
            "cnu-6q mixed-radix must demote at least one device, got {dims:?}"
        );
        assert!(
            dims.contains(&4),
            "ENC hosts stay four-dimensional, got {dims:?}"
        );
        let analyze = artifact.report(Pass::Analyze);
        assert_eq!(analyze.diagnostic("demoted").unwrap(), "true");
        let bytes: usize = analyze.diagnostic("state_bytes").unwrap().parse().unwrap();
        let padded: usize = analyze
            .diagnostic("state_bytes_padded")
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(bytes, artifact.timed.register.state_bytes());
        assert_eq!(padded, 16 * 4usize.pow(6));
        assert!(bytes < padded, "demotion must shrink the state");
        assert!(artifact.timed.validate().is_ok());
        // Every scheduled unitary stays unitary after subspace restriction.
        for op in &artifact.timed.ops {
            assert!(op.unitary.is_unitary(1e-9), "{}", op.label);
        }
    }

    #[test]
    fn padded_registers_option_keeps_full_dimensions() {
        let circuit = toffoli_ladder_6q();
        let compiler = Compiler::with_options(
            Target::paper(Strategy::mixed_radix_ccz()),
            CompileOptions::default().with_padded_registers(),
        );
        let artifact = compiler.compile(&circuit).unwrap();
        assert!(artifact.timed.register.dims().iter().all(|&d| d == 4));
        let analyze = artifact.report(Pass::Analyze);
        assert_eq!(analyze.diagnostic("demoted").unwrap(), "false");
        assert_eq!(
            analyze.diagnostic("state_bytes").unwrap(),
            analyze.diagnostic("state_bytes_padded").unwrap()
        );
    }

    #[test]
    fn qubit_only_and_full_ququart_registers_unchanged_by_analyze() {
        let compiler = Compiler::new(Target::paper(Strategy::qubit_only()));
        let artifact = compiler.compile(&small_circuit()).unwrap();
        assert!(artifact.timed.register.dims().iter().all(|&d| d == 2));
        // The H wrapping the CCZ transform promotes the half-filled
        // device back to full dimension, so this circuit stays all-4 even
        // with slot-layout-seeded entry occupancy.
        let compiler = Compiler::new(Target::paper(Strategy::full_ququart()));
        let artifact = compiler.compile(&small_circuit()).unwrap();
        assert!(artifact.timed.register.dims().iter().all(|&d| d == 4));
    }

    #[test]
    fn full_ququart_entry_occupancy_demotes_half_filled_device() {
        // Three qubits on two devices: the lone qubit's device enters the
        // analysis at its slot-layout occupancy instead of full dimension
        // (the ROADMAP follow-up), and a CCZ-only circuit — diagonal
        // pulses keep every subspace closed — lets it stay demoted.
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let artifact = Compiler::new(Target::paper(Strategy::full_ququart()))
            .compile(&c)
            .unwrap();
        let dims = artifact.timed.register.dims();
        assert!(
            dims.iter().any(|&d| d < 4),
            "half-filled device must demote below 4, got {dims:?}"
        );
        assert!(dims.contains(&4), "packed device stays at 4");
        assert!(artifact.timed.validate().is_ok());
        for op in &artifact.timed.ops {
            assert!(op.unitary.is_unitary(1e-9), "{}", op.label);
        }
        // And the demoted register still simulates the circuit exactly.
        let noiseless = artifact
            .simulate()
            .with_noise(waltz_noise::NoiseModel::noiseless())
            .average_fidelity(5);
        assert!((noiseless.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analyze_reports_windowed_segments_on_disjoint_enc_windows() {
        // Pure byte pricing: the calibrated default fixed term is
        // build-profile dependent and may merge cnu-6q's split.
        let circuit = toffoli_ladder_6q();
        let compiler = Compiler::with_options(
            Target::paper(Strategy::mixed_radix_ccz()),
            CompileOptions::default().with_window_sweep_fixed(0),
        );
        let artifact = compiler.compile(&circuit).unwrap();
        let analyze = artifact.report(Pass::Analyze);
        assert_eq!(analyze.diagnostic("windowed").unwrap(), "true");
        let segments: usize = analyze.diagnostic("segments").unwrap().parse().unwrap();
        let reshapes: usize = analyze.diagnostic("reshapes").unwrap().parse().unwrap();
        assert!(segments > 1, "cnu-6q has disjoint ENC windows");
        assert_eq!(reshapes, segments - 1);
        let peak: usize = analyze
            .diagnostic("state_bytes_peak")
            .unwrap()
            .parse()
            .unwrap();
        let whole: usize = analyze.diagnostic("state_bytes").unwrap().parse().unwrap();
        assert!(peak < whole, "windowed peak {peak} !< whole {whole}");
        let mean: f64 = analyze
            .diagnostic("state_bytes_mean")
            .unwrap()
            .parse()
            .unwrap();
        assert!(mean <= peak as f64);
        assert_eq!(
            analyze
                .diagnostic("segment_dims")
                .unwrap()
                .split('|')
                .count(),
            segments
        );
        // The artifact carries the matching segmented schedule.
        let windowed = artifact.sim_segments().expect("windowed schedule");
        assert_eq!(windowed.n_segments(), segments);
        assert_eq!(windowed.peak_state_bytes(), peak);
    }

    #[test]
    fn windowed_registers_can_be_disabled() {
        let circuit = toffoli_ladder_6q();
        let compiler = Compiler::with_options(
            Target::paper(Strategy::mixed_radix_ccz()),
            CompileOptions::default().with_windowed_registers(false),
        );
        let artifact = compiler.compile(&circuit).unwrap();
        assert!(artifact.sim_segments().is_none());
        let analyze = artifact.report(Pass::Analyze);
        assert_eq!(analyze.diagnostic("windowed").unwrap(), "false");
        assert_eq!(analyze.diagnostic("segments").unwrap(), "1");
        // Padded registers imply no windowing too.
        let padded = Compiler::with_options(
            Target::paper(Strategy::mixed_radix_ccz()),
            CompileOptions::default().with_padded_registers(),
        )
        .compile(&circuit)
        .unwrap();
        assert!(padded.sim_segments().is_none());
    }

    #[test]
    fn fusion_off_is_reported_and_skips_fusing() {
        let compiler = Compiler::with_options(
            Target::paper(Strategy::full_ququart()),
            CompileOptions::unfused(),
        );
        let artifact = compiler.compile(&small_circuit()).unwrap();
        assert!(artifact.fused.is_none());
        let fuse = artifact.report(Pass::Fuse);
        assert_eq!(fuse.ops_in, fuse.ops_out);
        assert_eq!(fuse.diagnostic("enabled").unwrap(), "false");
    }

    #[test]
    fn option_overrides_pin_the_fuse_constants() {
        let options = CompileOptions::default()
            .with_fuse_constants(7, 1234)
            .with_max_fused_span(3);
        let compiler = Compiler::with_options(Target::paper(Strategy::qubit_only()), options);
        assert_eq!(compiler.fuse_options().sweep_overhead, 7);
        assert_eq!(compiler.fuse_options().sweep_fixed, 1234);
        assert_eq!(compiler.fuse_options().max_block_span, 3);
        let artifact = compiler.compile(&small_circuit()).unwrap();
        for op in &artifact.sim_circuit().ops {
            let span = op.noise_events.as_ref().map_or(1, Vec::len);
            assert!(span <= 3, "block spans {span} pulses");
        }
    }

    #[test]
    fn calibrated_constants_are_in_range_and_stable() {
        let (o1, f1) = calibrated_fuse_constants();
        let (o2, f2) = calibrated_fuse_constants();
        assert_eq!((o1, f1), (o2, f2), "calibration must be process-stable");
        assert!((1..=32).contains(&o1));
        assert!((256..=65536).contains(&f1));
    }

    #[test]
    fn duplicate_operands_are_rejected() {
        // Gate::new validates, but the fields are public: a malformed gate
        // is still constructible, so the pipeline must reject it politely.
        let mut c = Circuit::new(3);
        c.push(Gate {
            kind: GateKind::Ccx,
            qubits: vec![0, 0, 1],
        });
        let err = Compiler::new(Target::paper(Strategy::qubit_only()))
            .compile(&c)
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::DuplicateOperands {
                gate_index: 0,
                qubit: 0
            }
        );
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn wrong_operand_count_is_rejected() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.push(Gate {
            kind: GateKind::Cx,
            qubits: vec![1],
        });
        let err = Compiler::new(Target::paper(Strategy::full_ququart()))
            .compile(&c)
            .unwrap_err();
        assert_eq!(
            err,
            CompileError::WrongOperandCount {
                gate_index: 1,
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn non_finite_angles_are_rejected() {
        let mut c = Circuit::new(2);
        c.one(Q1Gate::Rz(f64::NAN), 0);
        let err = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()))
            .compile(&c)
            .unwrap_err();
        assert_eq!(err, CompileError::NonFiniteAngle { gate_index: 0 });
    }

    #[test]
    fn disconnected_topology_is_rejected() {
        // heavy_hex(3, 2) has no bridge between rows 1 and 2: row 2 is
        // unreachable.
        let topo = Topology::heavy_hex(3, 2);
        assert!(!topo.is_connected());
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let err = Compiler::new(Target::paper(Strategy::qubit_only()).with_topology(topo))
            .compile(&c)
            .unwrap_err();
        assert!(matches!(err, CompileError::DisconnectedTopology { .. }));
    }

    #[test]
    fn compiler_fuse_cache_is_shared_across_compiles() {
        let compiler = Compiler::new(Target::paper(Strategy::qubit_only()));
        let first = compiler.compile(&small_circuit()).unwrap();
        let populated = compiler.fuse_cache.len();
        assert!(populated > 0, "fusing must memoize block products");
        let second = compiler.compile(&small_circuit()).unwrap();
        assert_eq!(
            compiler.fuse_cache.len(),
            populated,
            "recompiling the same circuit must hit the cache"
        );
        // Cache hits are bit-identical.
        let a = first.sim_circuit();
        let b = second.sim_circuit();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.unitary, y.unitary);
        }
    }

    #[test]
    fn batch_work_stealing_matches_sequential_on_skewed_batches() {
        // One big circuit first, many tiny ones after — the shape static
        // chunking handled worst (the big circuit's worker chunk also
        // held a share of the small ones).
        let mut circuits = Vec::new();
        let mut big = Circuit::new(8);
        for q in 2..8 {
            big.ccx(q - 2, q - 1, q);
        }
        for q in 0..8 {
            big.h(q);
        }
        circuits.push(big);
        for i in 0..12 {
            let mut c = Circuit::new(2);
            c.h(i % 2).cx(0, 1);
            circuits.push(c);
        }
        let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()));
        let batch = compiler.compile_batch(&circuits);
        assert_eq!(batch.len(), circuits.len());
        for (got, circuit) in batch.iter().zip(&circuits) {
            let want = compiler.compile(circuit).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.timed.len(), want.timed.len());
            assert_eq!(got.timed.register.dims(), want.timed.register.dims());
            assert_eq!(got.sim_circuit().len(), want.sim_circuit().len());
        }
    }

    #[test]
    fn batch_compiles_across_threads() {
        let circuits: Vec<Circuit> = (2..6)
            .map(|n| {
                let mut c = Circuit::new(n);
                c.h(0);
                for q in 1..n {
                    c.cx(q - 1, q);
                }
                c
            })
            .collect();
        let compiler = Compiler::new(Target::paper(Strategy::qubit_only()));
        let batch = compiler.compile_batch(&circuits);
        assert_eq!(batch.len(), circuits.len());
        for (artifact, circuit) in batch.iter().zip(&circuits) {
            let artifact = artifact.as_ref().unwrap();
            assert_eq!(artifact.initial_sites.len(), circuit.n_qubits());
        }
        assert!(compiler.compile_batch(&[]).is_empty());
    }
}
