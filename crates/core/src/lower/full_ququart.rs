//! Full-ququart lowering (§5.1.3): two qubits per device at all times.
//!
//! Single-qubit gates become encoded `QuartU` pulses, two-qubit gates are
//! internal (`CX0`/`CX1`/`SWAP_in`) when co-located and full-ququart
//! (`CX{s}{t}`, `CZ{s}{t}`) across devices, and three-qubit gates route
//! into an adjacent device pair with the configuration chosen by the
//! paper's preferences: controls (or targets) together when it does not
//! cost an extra swap (§5.1.3), always together in the "oriented" CSWAP
//! variant (§7.1).

use waltz_arch::InteractionGraph;
use waltz_circuit::{decompose, Circuit, GateKind};
use waltz_gates::hw::{FqCcxConfig, FqCswapConfig};
use waltz_gates::{GateLibrary, HwGate, Slot};

use crate::layout::Layout;
use crate::lower::common::{RadixMode, Router};
use crate::strategy::FqCswapMode;

use super::LowerOutput;

/// Which roles co-locate for a three-qubit gate.
#[derive(Debug, Clone, Copy)]
struct Plan {
    /// The two qubits that share a device.
    pair: (usize, usize),
    /// The lone qubit on the adjacent device.
    third: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PlanKind {
    /// CCZ with the pair co-located (symmetric).
    Ccz,
    /// CCX with both controls co-located (pair = controls, third = target).
    CcxControlsPair,
    /// CCX with split controls: pair = (control, target), third = control.
    CcxSplit,
    /// CSWAP with targets co-located: pair = targets, third = control.
    CswapTargetsPair,
    /// CSWAP split: pair = (control, target), third = other target.
    CswapSplit,
}

/// Routes a [`preprocess`]ed circuit in the full-ququart regime from a
/// precomputed initial placement.
pub fn route(
    prepared: &Circuit,
    layout: Layout,
    graph: InteractionGraph,
    lib: &GateLibrary,
    cswap_mode: FqCswapMode,
) -> LowerOutput {
    let initial_sites = layout.assignment();
    let n_devices = graph.topology().n_devices();
    let mut r = Router::new(layout, vec![4; n_devices], RadixMode::Encoded);
    // Seed the occupancy analysis from the initial slot layout instead of
    // assuming every device enters at full dimension: a device holding
    // one qubit in slot 1 populates levels {0, 1} (entry bound 2), one
    // with only slot 0 occupied reaches level 2 (bound 3), and only fully
    // packed devices enter at 4 — so half-filled devices at odd qubit
    // counts can demote whenever their gates stay closed on the occupied
    // subspace (diagonal CZ/CCZ pulses always do).
    let mut entry = vec![1u8; n_devices];
    for site in &initial_sites {
        entry[site.device] += if site.slot == 0 { 2 } else { 1 };
    }
    r.prog.set_entry_occupancy(entry);

    for gate in prepared.iter() {
        match (&gate.kind, gate.qubits.as_slice()) {
            (GateKind::One(g), &[q]) => {
                let d = r.layout.device_of(q);
                let slot = r.slot_of(q);
                r.prog.push(HwGate::QuartU { slot, gate: *g }, vec![d]);
            }
            (GateKind::Swap, &[a, b]) => {
                r.layout.relabel(a, b);
            }
            (GateKind::Cx, &[a, b]) => {
                if r.layout.device_of(a) == r.layout.device_of(b) {
                    // Internal CNOT: target slot determines the pulse.
                    let hw = match r.slot_of(b) {
                        Slot::S0 => HwGate::QuartCx0,
                        Slot::S1 => HwGate::QuartCx1,
                    };
                    r.prog.push(hw, vec![r.layout.device_of(a)]);
                } else {
                    ensure_adjacent(&mut r, a, b);
                    r.prog.push(
                        HwGate::FqCx {
                            ctrl: r.slot_of(a),
                            tgt: r.slot_of(b),
                        },
                        vec![r.layout.device_of(a), r.layout.device_of(b)],
                    );
                }
            }
            (GateKind::Cz, &[a, b]) => {
                if r.layout.device_of(a) == r.layout.device_of(b) {
                    r.prog.push(HwGate::QuartCzIn, vec![r.layout.device_of(a)]);
                } else {
                    ensure_adjacent(&mut r, a, b);
                    r.prog.push(
                        HwGate::FqCz {
                            a: r.slot_of(a),
                            b: r.slot_of(b),
                        },
                        vec![r.layout.device_of(a), r.layout.device_of(b)],
                    );
                }
            }
            (GateKind::Csdg, &[a, b]) => {
                // No calibrated cross-device CS† pulse: co-locate and run
                // the internal-class pulse.
                if r.layout.device_of(a) != r.layout.device_of(b) {
                    let target = r.layout.device_of(b);
                    r.route_to_device(a, target, &[b]);
                }
                // CS† is diagonal and symmetric, so slot order is moot.
                r.prog
                    .push(HwGate::QuartCsdgIn, vec![r.layout.device_of(a)]);
            }
            (kind @ (GateKind::Ccx | GateKind::Ccz | GateKind::Cswap), ops) => {
                let plan = choose_plan(&r, lib, kind, ops, cswap_mode);
                emit_three_qubit(&mut r, &plan);
            }
            (kind, qs) => unreachable!("malformed gate: {kind:?} {qs:?}"),
        }
    }

    let (prog, layout, swaps) = r.finish();
    LowerOutput {
        prog,
        graph,
        initial_sites,
        final_sites: layout.assignment(),
        swaps,
        enc_windows: Vec::new(),
        layout,
    }
}

/// Expands the circuit per the strategy's transforms.
pub fn preprocess(circuit: &Circuit, use_ccz: bool, cswap_mode: FqCswapMode) -> Circuit {
    let w = circuit.n_qubits();
    let mut out = Circuit::new(w);
    for g in circuit.iter() {
        match (&g.kind, g.qubits.as_slice()) {
            (GateKind::Ccx, &[c1, c2, t]) if use_ccz => {
                out.extend(&decompose::ccx_via_ccz(c1, c2, t, w));
            }
            (GateKind::Cswap, &[c, t1, t2]) if cswap_mode == FqCswapMode::Decompose => {
                if use_ccz {
                    out.extend(&decompose::cswap_via_ccz(c, t1, t2, w));
                } else {
                    out.extend(&decompose::cswap_to_ccx(c, t1, t2, w));
                }
            }
            _ => {
                out.push(g.clone());
            }
        }
    }
    out
}

/// Moves `a` until its device couples to `b`'s.
fn ensure_adjacent(r: &mut Router, a: usize, b: usize) {
    let da = r.layout.device_of(a);
    let db = r.layout.device_of(b);
    if da != db && r.ddist(da, db) > 1 {
        r.route_adjacent(a, b);
    }
}

fn choose_plan(
    r: &Router,
    lib: &GateLibrary,
    kind: &GateKind,
    ops: &[usize],
    cswap_mode: FqCswapMode,
) -> Plan {
    let mut candidates: Vec<Plan> = Vec::new();
    match kind {
        GateKind::Ccz => {
            let [a, b, c] = [ops[0], ops[1], ops[2]];
            for (pair, third) in [((a, b), c), ((a, c), b), ((b, c), a)] {
                candidates.push(Plan {
                    pair,
                    third,
                    kind: PlanKind::Ccz,
                });
            }
        }
        GateKind::Ccx => {
            let [c1, c2, t] = [ops[0], ops[1], ops[2]];
            candidates.push(Plan {
                pair: (c1, c2),
                third: t,
                kind: PlanKind::CcxControlsPair,
            });
            for (kept, other) in [(c1, c2), (c2, c1)] {
                candidates.push(Plan {
                    pair: (kept, t),
                    third: other,
                    kind: PlanKind::CcxSplit,
                });
            }
        }
        GateKind::Cswap => {
            let [c, t1, t2] = [ops[0], ops[1], ops[2]];
            candidates.push(Plan {
                pair: (t1, t2),
                third: c,
                kind: PlanKind::CswapTargetsPair,
            });
            if cswap_mode != FqCswapMode::NativeOriented {
                for (tin, tout) in [(t1, t2), (t2, t1)] {
                    candidates.push(Plan {
                        pair: (c, tin),
                        third: tout,
                        kind: PlanKind::CswapSplit,
                    });
                }
            }
        }
        _ => unreachable!("not a three-qubit gate"),
    }

    // Estimated pulse duration per plan kind (slot-independent lower
    // bound), plus routing hops x a representative swap cost.
    let swap_dur = lib.duration(&HwGate::FqSwap {
        a: Slot::S0,
        b: Slot::S1,
    });
    let gate_dur = |k: PlanKind| -> f64 {
        match k {
            PlanKind::Ccz => 232.0,
            PlanKind::CcxControlsPair => 536.0,
            PlanKind::CcxSplit => 680.0,
            PlanKind::CswapTargetsPair => 432.0,
            PlanKind::CswapSplit => 680.0,
        }
    };
    candidates
        .into_iter()
        .min_by(|x, y| {
            let cost = |p: &Plan| -> f64 {
                let hops = r.plan_pair(p.pair.0, p.pair.1, p.third).2 as f64;
                hops * swap_dur + gate_dur(p.kind)
            };
            cost(x).partial_cmp(&cost(y)).unwrap()
        })
        .expect("at least one candidate per gate")
}

fn emit_three_qubit(r: &mut Router, plan: &Plan) {
    let (pair_dev, third_dev) = r.route_pair(plan.pair.0, plan.pair.1, plan.third);
    match plan.kind {
        PlanKind::Ccz => {
            r.prog.push(
                HwGate::FqCcz {
                    tgt: r.slot_of(plan.third),
                },
                vec![pair_dev, third_dev],
            );
        }
        PlanKind::CcxControlsPair => {
            r.prog.push(
                HwGate::FqCcx(FqCcxConfig::ControlsPair {
                    tgt: r.slot_of(plan.third),
                }),
                vec![pair_dev, third_dev],
            );
        }
        PlanKind::CcxSplit => {
            // pair = (control, target) co-located; third = other control.
            // Operand order (control device, pair device): the target is
            // automatically the pair device's other slot.
            r.prog.push(
                HwGate::FqCcx(FqCcxConfig::Split {
                    actrl: r.slot_of(plan.third),
                    bctrl: r.slot_of(plan.pair.0),
                }),
                vec![third_dev, pair_dev],
            );
        }
        PlanKind::CswapTargetsPair => {
            // Operand order (control device, targets device).
            r.prog.push(
                HwGate::FqCswap(FqCswapConfig::TargetsPair {
                    ctrl: r.slot_of(plan.third),
                }),
                vec![third_dev, pair_dev],
            );
        }
        PlanKind::CswapSplit => {
            // pair = (control, one target); third = the other target.
            r.prog.push(
                HwGate::FqCswap(FqCswapConfig::Split {
                    ctrl: r.slot_of(plan.pair.0),
                    btgt: r.slot_of(plan.third),
                }),
                vec![pair_dev, third_dev],
            );
        }
    }
}
