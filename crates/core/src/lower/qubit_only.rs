//! Qubit-only lowering: the paper's two baselines (§5.1.1, §6.2).
//!
//! * **8-CX**: every three-qubit gate expands to the nearest-neighbour
//!   8-CNOT form before mapping; routing then only handles 2-qubit gates.
//! * **iToffoli**: Toffolis execute as one native 912 ns pulse across three
//!   devices with the target routed to the middle (Hadamard-retargeting
//!   when cheaper), followed by the Fig. 6d CS† correction — which needs an
//!   extra SWAP because the controls are not adjacent ("We must insert an
//!   extra SWAP gate to perform the corrective Controlled-S gate", §7).

use waltz_arch::InteractionGraph;
use waltz_circuit::{decompose, Circuit, GateKind};
use waltz_gates::{GateLibrary, HwGate, Q1Gate};

use crate::layout::Layout;
use crate::lower::common::{RadixMode, Router};
use crate::strategy::QubitCcxMode;

use super::LowerOutput;

/// Routes a [`preprocess`]ed circuit in the qubit-only regime from a
/// precomputed initial placement.
pub fn route(
    prepared: &Circuit,
    layout: Layout,
    graph: InteractionGraph,
    lib: &GateLibrary,
    mode: QubitCcxMode,
) -> LowerOutput {
    let initial_sites = layout.assignment();
    let n_devices = graph.topology().n_devices();
    let mut r = Router::new(layout, vec![2; n_devices], RadixMode::Bare);

    for gate in prepared.iter() {
        match (&gate.kind, gate.qubits.as_slice()) {
            (GateKind::One(g), &[q]) => {
                let d = r.layout.device_of(q);
                r.prog.push(HwGate::QubitU(*g), vec![d]);
            }
            (GateKind::Swap, &[a, b]) => {
                r.layout.relabel(a, b);
            }
            (GateKind::Cx, &[a, b]) | (GateKind::Cz, &[a, b]) | (GateKind::Csdg, &[a, b]) => {
                if r.layout.device_of(a) != r.layout.device_of(b) {
                    let da = r.layout.device_of(a);
                    let db = r.layout.device_of(b);
                    if r.ddist(da, db) > 1 {
                        r.route_adjacent(a, b);
                    }
                }
                let hw = match gate.kind {
                    GateKind::Cx => HwGate::QubitCx,
                    GateKind::Cz => HwGate::QubitCz,
                    _ => HwGate::QubitCsdg,
                };
                r.prog
                    .push(hw, vec![r.layout.device_of(a), r.layout.device_of(b)]);
            }
            (GateKind::Ccx, &[c1, c2, t]) => {
                debug_assert_eq!(mode, QubitCcxMode::IToffoli);
                lower_itoffoli(&mut r, lib, c1, c2, t);
            }
            (kind, qs) => unreachable!("unexpected gate after preprocessing: {kind:?} {qs:?}"),
        }
    }

    let (prog, layout, swaps) = r.finish();
    LowerOutput {
        prog,
        graph,
        initial_sites,
        final_sites: layout.assignment(),
        swaps,
        enc_windows: Vec::new(),
        layout,
    }
}

/// Expands the circuit to what this regime executes natively.
pub fn preprocess(circuit: &Circuit, mode: QubitCcxMode) -> Circuit {
    match mode {
        QubitCcxMode::EightCx => decompose::decompose_all_three_qubit(circuit),
        QubitCcxMode::IToffoli => {
            // Keep CCX; expand CCZ and CSWAP through it.
            let w = circuit.n_qubits();
            let mut out = Circuit::new(w);
            for g in circuit.iter() {
                match (&g.kind, g.qubits.as_slice()) {
                    (GateKind::Ccz, &[a, b, c]) => {
                        out.h(c).ccx(a, b, c).h(c);
                    }
                    (GateKind::Cswap, &[c, t1, t2]) => {
                        out.cx(t2, t1).ccx(c, t1, t2).cx(t2, t1);
                    }
                    _ => {
                        out.push(g.clone());
                    }
                }
            }
            out
        }
    }
}

/// Emits one Toffoli as iToffoli + CS† correction (Fig. 6d).
fn lower_itoffoli(r: &mut Router, lib: &GateLibrary, c1: usize, c2: usize, t: usize) {
    // Candidate middles: the natural target, or either control via
    // Hadamard retargeting (Fig. 6b). `(middle, left-ctrl, right-ctrl,
    // retarget-partner)`.
    let h_cost = 4.0 * lib.duration(&HwGate::QubitU(Q1Gate::H));
    let candidates = [
        (t, c1, c2, None),
        (c2, c1, t, Some(c2)),
        (c1, c2, t, Some(c1)),
    ];
    let (mid, cl, cr, retarget) = candidates
        .iter()
        .copied()
        .min_by(|a, b| {
            let cost = |c: &(usize, usize, usize, Option<usize>)| -> f64 {
                let (_, _, _, re) = c;
                let hops = r.plan_star(c.0, c.1, c.2).3 as f64;
                hops * lib.duration(&HwGate::QubitSwap) + if re.is_some() { h_cost } else { 0.0 }
            };
            cost(a).partial_cmp(&cost(b)).unwrap()
        })
        .unwrap();

    // Retargeting sandwich: H on the swapped control and the original
    // target turns CCX(c1, c2, t) into CCX with `mid` as target.
    if let Some(rq) = retarget {
        for q in [rq, t] {
            let d = r.layout.device_of(q);
            r.prog.push(HwGate::QubitU(Q1Gate::H), vec![d]);
        }
    }
    let (_h, _n1, _n2) = r.route_star(mid, cl, cr);
    r.prog.push(
        HwGate::IToffoli,
        vec![
            r.layout.device_of(cl),
            r.layout.device_of(cr),
            r.layout.device_of(mid),
        ],
    );
    // CS† correction between the controls: swap the middle qubit with one
    // control so the controls become adjacent (the paper's extra SWAP).
    let mid_site = r.layout.site_of(mid);
    let cr_site = r.layout.site_of(cr);
    r.emit_swap(mid_site, cr_site);
    r.prog.push(
        HwGate::QubitCsdg,
        vec![r.layout.device_of(cl), r.layout.device_of(cr)],
    );
    if let Some(rq) = retarget {
        for q in [rq, t] {
            let d = r.layout.device_of(q);
            r.prog.push(HwGate::QubitU(Q1Gate::H), vec![d]);
        }
    }
}
