//! Shared routing machinery.
//!
//! Routing is deterministic and always terminates: every multi-qubit gate
//! gets a *target configuration* (a device, or a star of adjacent
//! devices), qubits walk there along shortest paths one swap at a time,
//! and ties are broken by the paper's preferences — avoid displacing the
//! gate's other operands, prefer empty slots, prefer cheap internal hops.

use waltz_arch::Site;
use waltz_gates::{HwGate, Slot};

use crate::hwprog::HwProgram;
use crate::layout::Layout;

/// Physical swap flavour per regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadixMode {
    /// One qubit per device; swaps are `QubitSwap` pulses.
    Bare,
    /// Two slots per device; internal swaps are `QuartSwapIn`, cross-device
    /// swaps are `FqSwap`.
    Encoded,
}

/// Mutable routing state: the layout, the program being emitted and the
/// precomputed device distance matrix.
pub struct Router {
    /// Current logical-to-physical assignment.
    pub layout: Layout,
    /// Hardware program under construction.
    pub prog: HwProgram,
    /// All-pairs device hop distances.
    pub dev_dist: Vec<Vec<usize>>,
    /// Number of physical routing swaps inserted.
    pub swaps_inserted: usize,
    mode: RadixMode,
}

impl Router {
    /// Creates a router over an initial layout.
    ///
    /// The program's occupancy analysis (see
    /// [`HwProgram::set_entry_occupancy`]) is seeded from the radix mode:
    /// bare devices start confined to their qubit subspace (inputs are
    /// qubit products, §6.4), so the analysis can prove that devices
    /// never hosting an ENC window stay two-dimensional; encoded devices
    /// may hold two qubits from the start and enter at full dimension.
    pub fn new(layout: Layout, dims: Vec<u8>, mode: RadixMode) -> Self {
        let dev_dist = layout.graph().topology().distances();
        let mut prog = HwProgram::new(dims);
        if mode == RadixMode::Bare {
            prog.set_entry_occupancy(vec![2; prog.dims().len()]);
        }
        Router {
            layout,
            prog,
            dev_dist,
            swaps_inserted: 0,
            mode,
        }
    }

    /// Device hop distance.
    pub fn ddist(&self, a: usize, b: usize) -> usize {
        self.dev_dist[a][b]
    }

    /// Emits the physical swap exchanging the states at two sites and
    /// updates the layout. Sites may be empty (moving into a free slot is
    /// still a pulse).
    ///
    /// # Panics
    ///
    /// Panics if a cross-device swap spans non-adjacent devices.
    pub fn emit_swap(&mut self, a: Site, b: Site) {
        assert_ne!(a, b, "swap needs two sites");
        if a.device == b.device {
            debug_assert_eq!(self.mode, RadixMode::Encoded);
            self.prog.push(HwGate::QuartSwapIn, vec![a.device]);
        } else {
            assert!(
                self.layout
                    .graph()
                    .topology()
                    .are_adjacent(a.device, b.device),
                "swap between non-adjacent devices {} and {}",
                a.device,
                b.device
            );
            match self.mode {
                RadixMode::Bare => {
                    self.prog.push(HwGate::QubitSwap, vec![a.device, b.device]);
                }
                RadixMode::Encoded => {
                    self.prog.push(
                        HwGate::FqSwap {
                            a: Slot::from_index(a.slot),
                            b: Slot::from_index(b.slot),
                        },
                        vec![a.device, b.device],
                    );
                }
            }
        }
        self.layout.swap_sites(a, b);
        self.swaps_inserted += 1;
    }

    /// Moves `q` one device closer to `target_dev`, preferring steps that
    /// do not displace `avoid` qubits and land in empty slots.
    ///
    /// # Panics
    ///
    /// Panics if `q` already sits on `target_dev` or no strictly-closer
    /// neighbour exists (impossible on a connected graph).
    pub fn step_toward(&mut self, q: usize, target_dev: usize, avoid: &[usize]) {
        let cur = self.layout.device_of(q);
        assert_ne!(cur, target_dev, "qubit already at target");
        let cur_d = self.ddist(cur, target_dev);
        let avoid_devs: Vec<usize> = avoid.iter().map(|&aq| self.layout.device_of(aq)).collect();
        // Strictly-decreasing neighbours, scored by (displaces-avoided,
        // occupancy).
        let graph = self.layout.graph().clone();
        let mut best: Option<(usize, (bool, usize))> = None;
        for &nd in graph.topology().neighbors(cur) {
            if self.ddist(nd, target_dev) >= cur_d {
                continue;
            }
            let displaces = avoid_devs.contains(&nd);
            let occ = self.layout.device_occupancy(nd);
            let score = (displaces, occ);
            if best.map(|(_, s)| score < s).unwrap_or(true) {
                best = Some((nd, score));
            }
        }
        let (nd, _) = best.expect("connected topology always has a closer neighbour");
        // Destination slot within nd: empty first, then a slot not holding
        // an avoided qubit, then slot 0.
        let dest = self.layout.empty_slot(nd).unwrap_or_else(|| {
            (0..graph.slots_per_device())
                .map(|s| Site::new(nd, s))
                .find(|&s| {
                    self.layout
                        .qubit_at(s)
                        .map(|occupant| !avoid.contains(&occupant))
                        .unwrap_or(true)
                })
                .unwrap_or(Site::new(nd, 0))
        });
        let from = self.layout.site_of(q);
        self.emit_swap(from, dest);
    }

    /// Routes `q` onto `target_dev` (exact device), avoiding displacement
    /// of `avoid` where possible.
    pub fn route_to_device(&mut self, q: usize, target_dev: usize, avoid: &[usize]) {
        let mut guard = 0usize;
        while self.layout.device_of(q) != target_dev {
            self.step_toward(q, target_dev, avoid);
            guard += 1;
            assert!(guard < 10_000, "routing failed to converge");
        }
    }

    /// Routes until `a` and `b` sit on adjacent (distinct) devices, moving
    /// `a` (falling back to moving `b` if `a` cannot make progress).
    pub fn route_adjacent(&mut self, a: usize, b: usize) {
        let mut guard = 0usize;
        loop {
            let da = self.layout.device_of(a);
            let db = self.layout.device_of(b);
            if da != db && self.ddist(da, db) == 1 {
                return;
            }
            if da == db {
                // Same device in Bare mode is impossible; in Encoded mode the
                // caller wanted a cross-device gate — but same-device is
                // handled by the caller before calling this.
                unreachable!("route_adjacent called on co-located qubits");
            }
            // Move a to a neighbour of db (never onto db itself).
            let graph = self.layout.graph().clone();
            let target = *graph
                .topology()
                .neighbors(db)
                .iter()
                .min_by_key(|&&nd| (self.ddist(da, nd), self.layout.device_occupancy(nd)))
                .expect("devices have neighbours");
            if da == target {
                return;
            }
            self.step_toward(a, target, &[b]);
            // If the step swapped a through b (unique path), distances are
            // unchanged — make progress from b's side instead.
            let da2 = self.layout.device_of(a);
            let db2 = self.layout.device_of(b);
            if self.ddist(da2, db2) >= self.ddist(da, db) && da2 != db2 {
                let target_b = *graph
                    .topology()
                    .neighbors(da2)
                    .iter()
                    .min_by_key(|&&nd| (self.ddist(db2, nd), self.layout.device_occupancy(nd)))
                    .expect("devices have neighbours");
                if db2 != target_b {
                    self.step_toward(b, target_b, &[a]);
                }
            }
            guard += 1;
            assert!(guard < 10_000, "adjacency routing failed to converge");
        }
    }

    /// Plans a star configuration for a three-qubit gate on bare devices:
    /// a hub device `h` and two distinct neighbours `(n1, n2)`, minimizing
    /// total hop movement of `(q_h, q_1, q_2)`. Returns `(h, n1, n2, hops)`.
    pub fn plan_star(&self, q_h: usize, q_1: usize, q_2: usize) -> (usize, usize, usize, usize) {
        let topo = self.layout.graph().topology();
        let (dh, d1, d2) = (
            self.layout.device_of(q_h),
            self.layout.device_of(q_1),
            self.layout.device_of(q_2),
        );
        let mut best: Option<(usize, usize, usize, usize)> = None;
        for h in 0..topo.n_devices() {
            let neighbors = topo.neighbors(h);
            if neighbors.len() < 2 {
                continue;
            }
            for &n1 in neighbors {
                for &n2 in neighbors {
                    if n1 == n2 {
                        continue;
                    }
                    let cost = self.ddist(dh, h) + self.ddist(d1, n1) + self.ddist(d2, n2);
                    if best.map(|(.., c)| cost < c).unwrap_or(true) {
                        best = Some((h, n1, n2, cost));
                    }
                }
            }
        }
        best.expect("topology must contain a degree-2 device for 3-qubit gates")
    }

    /// Routes three qubits into a planned star: `q_h` to the hub, the
    /// others to its neighbours. Loops until all three placements hold.
    pub fn route_star(&mut self, q_h: usize, q_1: usize, q_2: usize) -> (usize, usize, usize) {
        let (h, n1, n2, _) = self.plan_star(q_h, q_1, q_2);
        let mut guard = 0usize;
        loop {
            let ok_h = self.layout.device_of(q_h) == h;
            let ok_1 = self.layout.device_of(q_1) == n1;
            let ok_2 = self.layout.device_of(q_2) == n2;
            if ok_h && ok_1 && ok_2 {
                return (h, n1, n2);
            }
            if !ok_h {
                self.route_to_device(q_h, h, &[q_1, q_2]);
            } else if !ok_1 {
                self.route_to_device(q_1, n1, &[q_h, q_2]);
            } else {
                self.route_to_device(q_2, n2, &[q_h, q_1]);
            }
            guard += 1;
            assert!(guard < 100, "star routing failed to converge");
        }
    }

    /// Plans a pair configuration on encoded devices: adjacent devices
    /// `(a_dev, b_dev)` where two qubits co-locate in `a_dev` and one sits
    /// in `b_dev`. Returns `(a_dev, b_dev, hops)`.
    pub fn plan_pair(&self, co1: usize, co2: usize, third: usize) -> (usize, usize, usize) {
        let topo = self.layout.graph().topology();
        let (d1, d2, d3) = (
            self.layout.device_of(co1),
            self.layout.device_of(co2),
            self.layout.device_of(third),
        );
        let mut best: Option<(usize, usize, usize)> = None;
        for a in 0..topo.n_devices() {
            for &b in topo.neighbors(a) {
                let cost = self.ddist(d1, a) + self.ddist(d2, a) + self.ddist(d3, b);
                if best.map(|(.., c)| cost < c).unwrap_or(true) {
                    best = Some((a, b, cost));
                }
            }
        }
        best.expect("topology must have at least one edge")
    }

    /// Routes `(co1, co2)` onto one device and `third` onto an adjacent
    /// device (encoded mode). Returns `(pair_dev, third_dev)`.
    pub fn route_pair(&mut self, co1: usize, co2: usize, third: usize) -> (usize, usize) {
        let (a, b, _) = self.plan_pair(co1, co2, third);
        let mut guard = 0usize;
        loop {
            let ok1 = self.layout.device_of(co1) == a;
            let ok2 = self.layout.device_of(co2) == a;
            let ok3 = self.layout.device_of(third) == b;
            if ok1 && ok2 && ok3 {
                return (a, b);
            }
            if !ok1 {
                self.route_to_device(co1, a, &[co2, third]);
            } else if !ok2 {
                self.route_to_device(co2, a, &[co1, third]);
            } else {
                self.route_to_device(third, b, &[co1, co2]);
            }
            guard += 1;
            assert!(guard < 100, "pair routing failed to converge");
        }
    }

    /// Slot of a placed qubit (encoded mode helper).
    pub fn slot_of(&self, q: usize) -> Slot {
        Slot::from_index(self.layout.site_of(q).slot)
    }

    /// Consumes the router, returning the finished program and layout.
    pub fn finish(self) -> (HwProgram, Layout, usize) {
        (self.prog, self.layout, self.swaps_inserted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_arch::{InteractionGraph, Topology};

    fn bare_router(n_devices: usize, placements: &[(usize, usize)]) -> Router {
        let graph = InteractionGraph::qubit_only(Topology::line(n_devices));
        let mut layout = Layout::new(graph, placements.len());
        for &(q, d) in placements {
            layout.place(q, Site::new(d, 0));
        }
        Router::new(layout, vec![2; n_devices], RadixMode::Bare)
    }

    #[test]
    fn route_adjacent_inserts_expected_swaps() {
        let mut r = bare_router(5, &[(0, 0), (1, 4)]);
        r.route_adjacent(0, 1);
        let da = r.layout.device_of(0);
        let db = r.layout.device_of(1);
        assert_eq!(r.ddist(da, db), 1);
        // 0 at device 0, 1 at device 4: three swaps to reach device 3.
        assert_eq!(r.swaps_inserted, 3);
        assert_eq!(r.prog.len(), 3);
    }

    #[test]
    fn route_to_device_moves_through_occupants() {
        let mut r = bare_router(4, &[(0, 0), (1, 1), (2, 2)]);
        r.route_to_device(0, 3, &[]);
        assert_eq!(r.layout.device_of(0), 3);
        // Occupants were displaced backwards along the path.
        assert_eq!(r.layout.device_of(1), 0);
        assert_eq!(r.layout.device_of(2), 1);
    }

    #[test]
    fn star_routing_on_line_places_hub_between() {
        let mut r = bare_router(5, &[(0, 0), (1, 2), (2, 4)]);
        let (h, n1, n2) = r.route_star(0, 1, 2);
        assert_eq!(r.layout.device_of(0), h);
        assert_eq!(r.layout.device_of(1), n1);
        assert_eq!(r.layout.device_of(2), n2);
        let topo = r.layout.graph().topology().clone();
        assert!(topo.are_adjacent(h, n1));
        assert!(topo.are_adjacent(h, n2));
    }

    #[test]
    fn star_routing_already_in_place_is_free() {
        let mut r = bare_router(3, &[(0, 1), (1, 0), (2, 2)]);
        let before = r.swaps_inserted;
        let _ = r.route_star(0, 1, 2);
        assert_eq!(r.swaps_inserted, before, "no swaps needed");
    }

    #[test]
    fn encoded_pair_routing_colocates() {
        let graph = InteractionGraph::encoded(Topology::line(3));
        let mut layout = Layout::new(graph, 3);
        layout.place(0, Site::new(0, 0));
        layout.place(1, Site::new(1, 0));
        layout.place(2, Site::new(2, 0));
        let mut r = Router::new(layout, vec![4; 3], RadixMode::Encoded);
        let (a, b) = r.route_pair(0, 1, 2);
        assert_eq!(r.layout.device_of(0), a);
        assert_eq!(r.layout.device_of(1), a);
        assert_eq!(r.layout.device_of(2), b);
        assert!(r.layout.graph().topology().are_adjacent(a, b));
    }

    #[test]
    fn encoded_swap_prefers_empty_slots() {
        let graph = InteractionGraph::encoded(Topology::line(2));
        let mut layout = Layout::new(graph, 2);
        layout.place(0, Site::new(0, 0));
        layout.place(1, Site::new(1, 0)); // slot 1 of device 1 empty
        let mut r = Router::new(layout, vec![4; 2], RadixMode::Encoded);
        r.route_to_device(0, 1, &[1]);
        // 0 landed in the empty slot; 1 was not displaced.
        assert_eq!(r.layout.device_of(0), 1);
        assert_eq!(r.layout.device_of(1), 1);
        assert_eq!(r.layout.site_of(0), Site::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn cross_device_swap_requires_coupler() {
        let mut r = bare_router(3, &[(0, 0), (1, 2)]);
        r.emit_swap(Site::new(0, 0), Site::new(2, 0));
    }
}
