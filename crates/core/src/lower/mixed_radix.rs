//! Intermediate mixed-radix lowering (§5.1.2): devices stay bare except
//! for a temporary ENC / three-qubit-gate / DEC window around each native
//! three-qubit gate.

use waltz_arch::InteractionGraph;
use waltz_circuit::{decompose, Circuit, GateKind};
use waltz_gates::hw::{MrCcxConfig, MrCswapConfig};
use waltz_gates::{GateLibrary, HwGate, Q1Gate};

use crate::layout::Layout;
use crate::lower::common::{RadixMode, Router};
use crate::strategy::MrCcxMode;

use super::{EncWindow, LowerOutput};

/// A candidate encoding plan for one three-qubit gate: `pair.0` encodes
/// into slot 0 of the host, `pair.1` into slot 1, `third` stays bare.
struct Plan {
    pair: (usize, usize),
    third: usize,
    gate: HwGate,
    /// Hadamard pre/post gates (retargeting / CCZ sandwich), applied while
    /// every operand is still bare.
    wrap: Vec<usize>,
}

/// Routes a [`preprocess`]ed circuit in the mixed-radix regime from a
/// precomputed initial placement.
pub fn route(
    prepared: &Circuit,
    layout: Layout,
    graph: InteractionGraph,
    lib: &GateLibrary,
    ccx_mode: MrCcxMode,
) -> LowerOutput {
    let initial_sites = layout.assignment();
    let n_devices = graph.topology().n_devices();
    let mut r = Router::new(layout, vec![4; n_devices], RadixMode::Bare);
    let mut enc_windows = Vec::new();

    for gate in prepared.iter() {
        match (&gate.kind, gate.qubits.as_slice()) {
            (GateKind::One(g), &[q]) => {
                let d = r.layout.device_of(q);
                r.prog.push(HwGate::QubitU(*g), vec![d]);
            }
            (GateKind::Swap, &[a, b]) => {
                r.layout.relabel(a, b);
            }
            (GateKind::Cx, &[a, b]) | (GateKind::Cz, &[a, b]) | (GateKind::Csdg, &[a, b]) => {
                let da = r.layout.device_of(a);
                let db = r.layout.device_of(b);
                if r.ddist(da, db) > 1 {
                    r.route_adjacent(a, b);
                }
                let hw = match gate.kind {
                    GateKind::Cx => HwGate::QubitCx,
                    GateKind::Cz => HwGate::QubitCz,
                    _ => HwGate::QubitCsdg,
                };
                r.prog
                    .push(hw, vec![r.layout.device_of(a), r.layout.device_of(b)]);
            }
            (kind @ (GateKind::Ccx | GateKind::Ccz | GateKind::Cswap), ops) => {
                let plan = choose_plan(&r, lib, kind, ops, ccx_mode);
                emit_window(&mut r, &plan, &mut enc_windows);
            }
            (kind, qs) => unreachable!("unexpected gate after preprocessing: {kind:?} {qs:?}"),
        }
    }

    let (prog, layout, swaps) = r.finish();
    LowerOutput {
        prog,
        graph,
        initial_sites,
        final_sites: layout.assignment(),
        swaps,
        enc_windows,
        layout,
    }
}

/// Expands the circuit per the strategy's transforms.
pub fn preprocess(circuit: &Circuit, ccx_mode: MrCcxMode, native_cswap: bool) -> Circuit {
    let w = circuit.n_qubits();
    let mut out = Circuit::new(w);
    for g in circuit.iter() {
        match (&g.kind, g.qubits.as_slice()) {
            (GateKind::Ccx, &[c1, c2, t]) if ccx_mode == MrCcxMode::CczTransform => {
                out.extend(&decompose::ccx_via_ccz(c1, c2, t, w));
            }
            (GateKind::Cswap, &[c, t1, t2]) if !native_cswap => {
                if ccx_mode == MrCcxMode::CczTransform {
                    out.extend(&decompose::cswap_via_ccz(c, t1, t2, w));
                } else {
                    out.extend(&decompose::cswap_to_ccx(c, t1, t2, w));
                }
            }
            _ => {
                out.push(g.clone());
            }
        }
    }
    out
}

/// Enumerates the allowed encoding plans for a three-qubit gate and picks
/// the cheapest (routing hops x SWAP duration + pulse duration + wrapper
/// single-qubit gates).
fn choose_plan(
    r: &Router,
    lib: &GateLibrary,
    kind: &GateKind,
    ops: &[usize],
    ccx_mode: MrCcxMode,
) -> Plan {
    let mut candidates: Vec<Plan> = Vec::new();
    match kind {
        GateKind::Ccz => {
            let [a, b, c] = [ops[0], ops[1], ops[2]];
            for (pair, third) in [((a, b), c), ((a, c), b), ((b, c), a)] {
                candidates.push(Plan {
                    pair,
                    third,
                    gate: HwGate::MrCcz,
                    wrap: vec![],
                });
            }
        }
        GateKind::Ccx => {
            let [c1, c2, t] = [ops[0], ops[1], ops[2]];
            // Controls together: the fast CCX01q configuration.
            candidates.push(Plan {
                pair: (c1, c2),
                third: t,
                gate: HwGate::MrCcx(MrCcxConfig::ControlsEncoded),
                wrap: vec![],
            });
            match ccx_mode {
                MrCcxMode::Raw => {
                    // Split controls: encode (control, target) directly.
                    for (ctrl, other) in [(c1, c2), (c2, c1)] {
                        candidates.push(Plan {
                            pair: (ctrl, t),
                            third: other,
                            gate: HwGate::MrCcx(MrCcxConfig::CtrlQubitAndSlot0TargetSlot1),
                            wrap: vec![],
                        });
                    }
                }
                MrCcxMode::Retarget => {
                    // Fig. 6b: H on (other control, target) swaps their
                    // roles, so (kept control, target) encode as the new
                    // control pair and the fast configuration applies.
                    for (kept, swapped) in [(c1, c2), (c2, c1)] {
                        candidates.push(Plan {
                            pair: (kept, t),
                            third: swapped,
                            gate: HwGate::MrCcx(MrCcxConfig::ControlsEncoded),
                            wrap: vec![swapped, t],
                        });
                    }
                }
                MrCcxMode::CczTransform => unreachable!("CCX removed by preprocessing"),
            }
        }
        GateKind::Cswap => {
            let [c, t1, t2] = [ops[0], ops[1], ops[2]];
            // Targets together: the fast CSWAPq01 configuration.
            candidates.push(Plan {
                pair: (t1, t2),
                third: c,
                gate: HwGate::MrCswap(MrCswapConfig::TargetsEncoded),
                wrap: vec![],
            });
            for (tin, tout) in [(t1, t2), (t2, t1)] {
                candidates.push(Plan {
                    pair: (c, tin),
                    third: tout,
                    gate: HwGate::MrCswap(MrCswapConfig::CtrlSlot0),
                    wrap: vec![],
                });
            }
        }
        _ => unreachable!("not a three-qubit gate"),
    }

    let swap_dur = lib.duration(&HwGate::QubitSwap);
    let h_dur = lib.duration(&HwGate::QubitU(Q1Gate::H));
    candidates
        .into_iter()
        .min_by(|x, y| {
            let cost = |p: &Plan| -> f64 {
                let hops = r.plan_star(p.pair.0, p.pair.1, p.third).3 as f64;
                hops * swap_dur + lib.duration(&p.gate) + 2.0 * p.wrap.len() as f64 * h_dur
            };
            cost(x).partial_cmp(&cost(y)).unwrap()
        })
        .expect("at least one candidate per gate")
}

/// Routes and emits one ENC / gate / DEC window.
fn emit_window(r: &mut Router, plan: &Plan, windows: &mut Vec<EncWindow>) {
    let (host, partner_dev, third_dev) = r.route_star(plan.pair.0, plan.pair.1, plan.third);
    for &q in &plan.wrap {
        let d = r.layout.device_of(q);
        r.prog.push(HwGate::QubitU(Q1Gate::H), vec![d]);
    }
    let enc_idx = r.prog.len();
    r.prog.push(HwGate::Enc, vec![host, partner_dev]);
    r.prog.push(plan.gate.clone(), vec![host, third_dev]);
    let dec_idx = r.prog.len();
    r.prog.push(HwGate::Dec, vec![host, partner_dev]);
    windows.push(EncWindow {
        host,
        enc_idx,
        dec_idx,
    });
    for &q in &plan.wrap {
        let d = r.layout.device_of(q);
        r.prog.push(HwGate::QubitU(Q1Gate::H), vec![d]);
    }
}
