//! Strategy-specific lowering: routing and gate-configuration selection.

use waltz_arch::{InteractionGraph, Site};

use crate::hwprog::HwProgram;
use crate::layout::Layout;

pub(crate) mod common;
pub(crate) mod full_ququart;
pub(crate) mod mixed_radix;
pub(crate) mod qubit_only;

/// A mixed-radix ENC/DEC window: host device and the program indices of
/// the ENC and DEC ops (used to build the coherence timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EncWindow {
    pub host: usize,
    pub enc_idx: usize,
    pub dec_idx: usize,
}

/// What every lowering pass produces.
pub(crate) struct LowerOutput {
    pub prog: HwProgram,
    pub graph: InteractionGraph,
    pub initial_sites: Vec<Site>,
    pub final_sites: Vec<Site>,
    pub swaps: usize,
    pub enc_windows: Vec<EncWindow>,
    #[allow(dead_code)]
    pub layout: Layout,
}
