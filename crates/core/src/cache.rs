//! The content-addressed compile cache: compiled artifacts keyed on
//! `(circuit content hash, compiler fingerprint)`, stored as their
//! versioned wire encodings in an in-memory LRU tier with an optional
//! on-disk store underneath.
//!
//! Both tiers hold **encoded bytes**, not live artifacts: every hit runs
//! the full [`waltz_codec`] decode path, so a replayed artifact is
//! guaranteed to be whatever the wire format can represent — the same
//! guarantee a fresh process loading the disk store gets. Floating
//! content the compiler derives per process (calibrated fuse constants,
//! occupancy profiles) is captured inside the stored artifact, never
//! re-derived on a hit.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use waltz_codec::{decode_versioned, encode_versioned};

use crate::artifact::CompileArtifact;

/// Default capacity of the in-memory tier, in artifacts.
const DEFAULT_MEMORY_CAPACITY: usize = 64;

/// The cache key: the circuit's content hash and the compiler's
/// fingerprint (target + resolved options), both 64-bit FNV-1a.
pub(crate) type CacheKey = (u64, u64);

#[derive(Debug)]
struct ArtifactCacheInner {
    /// Memory tier: key → (LRU tick, versioned artifact bytes).
    map: Mutex<HashMap<CacheKey, (u64, Vec<u8>)>>,
    /// Memory-tier capacity in artifacts; 0 disables the memory tier.
    capacity: usize,
    /// Monotonic LRU clock.
    tick: AtomicU64,
    /// Lookups answered from either tier.
    hits: AtomicU64,
    /// Lookups that found nothing (or only corrupt bytes).
    misses: AtomicU64,
    /// Memory-tier entries displaced to make room.
    evictions: AtomicU64,
    /// Disk-tier entries pruned to respect `disk_capacity`.
    evictions_disk: AtomicU64,
    /// Disk tier root; one file per key.
    dir: Option<PathBuf>,
    /// Disk-tier capacity in artifacts; `None` leaves the tier unbounded.
    disk_capacity: Option<usize>,
}

/// A content-addressed store of compiled artifacts, shared by every
/// clone (the store sits behind an `Arc`): attach one to a
/// [`crate::Compiler`] via [`crate::Compiler::with_artifact_cache`] and
/// repeat compilations of the same circuit against the same target skip
/// the whole pass pipeline, replaying the artifact from its stored wire
/// encoding instead (marked via [`CompileArtifact::is_cached`]).
///
/// # Example
///
/// ```
/// use waltz_core::{ArtifactCache, Compiler, Strategy, Target};
/// use waltz_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).ccx(0, 1, 2);
/// let compiler = Compiler::new(Target::paper(Strategy::mixed_radix_ccz()))
///     .with_artifact_cache(ArtifactCache::new());
/// let cold = compiler.compile(&c).unwrap();
/// assert!(!cold.is_cached());
/// let warm = compiler.compile(&c).unwrap();
/// assert!(warm.is_cached());
/// ```
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    inner: Arc<ArtifactCacheInner>,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

impl ArtifactCache {
    /// A memory-only cache with the default capacity (64 artifacts).
    pub fn new() -> Self {
        ArtifactCache::with_capacity(DEFAULT_MEMORY_CAPACITY)
    }

    /// A memory-only cache holding at most `capacity` artifacts (least
    /// recently used evicted first). Capacity 0 disables the memory tier
    /// entirely — useful to force every hit through the disk store.
    pub fn with_capacity(capacity: usize) -> Self {
        ArtifactCache {
            inner: Arc::new(ArtifactCacheInner {
                map: Mutex::new(HashMap::new()),
                capacity,
                tick: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                evictions_disk: AtomicU64::new(0),
                dir: None,
                disk_capacity: None,
            }),
        }
    }

    /// Adds an on-disk tier under `dir` (created on first store): every
    /// stored artifact is also written to one file per key
    /// (`<circuit-hash>-<fingerprint>.waltz`, written via a temp file and
    /// rename so readers never see a half-written artifact), and a
    /// memory miss falls through to the directory before reporting a
    /// miss. A disk hit is promoted into the memory tier. Corrupt,
    /// truncated or version-mismatched files count as misses, never
    /// errors.
    pub fn with_disk_dir(self, dir: impl Into<PathBuf>) -> Self {
        let inner = ArtifactCacheInner {
            map: Mutex::new(HashMap::new()),
            capacity: self.inner.capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evictions_disk: AtomicU64::new(0),
            dir: Some(dir.into()),
            disk_capacity: self.inner.disk_capacity,
        };
        ArtifactCache {
            inner: Arc::new(inner),
        }
    }

    /// Caps the on-disk tier at `max_entries` artifacts: every store that
    /// pushes the directory over the cap prunes the oldest files first
    /// (by modification time — the disk tier's write order), counted in
    /// [`ArtifactCache::evictions_disk`]. Without a cap the disk tier
    /// grows without bound, which is fine for a developer cache but not
    /// for a long-lived server. A cap of 0 keeps the tier write-through
    /// but immediately pruned — effectively disabling it.
    pub fn with_disk_capacity(self, max_entries: usize) -> Self {
        let inner = ArtifactCacheInner {
            map: Mutex::new(HashMap::new()),
            capacity: self.inner.capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evictions_disk: AtomicU64::new(0),
            dir: self.inner.dir.clone(),
            disk_capacity: Some(max_entries),
        };
        ArtifactCache {
            inner: Arc::new(inner),
        }
    }

    /// Artifacts currently in the memory tier.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from either tier since construction.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing since construction.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Memory-tier evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Disk-tier entries pruned (oldest first) to respect
    /// [`ArtifactCache::with_disk_capacity`], since construction.
    pub fn evictions_disk(&self) -> u64 {
        self.inner.evictions_disk.load(Ordering::Relaxed)
    }

    /// The on-disk tier's root, when one was configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// The disk tier's max-entries cap, when one was configured.
    pub fn disk_capacity(&self) -> Option<usize> {
        self.inner.disk_capacity
    }

    /// One aggregated snapshot of every counter — what
    /// [`crate::Supervisor::cache_stats`] and the serving stack's stats
    /// endpoint surface, replacing the habit of digging the same numbers
    /// out of per-job Lower-pass diagnostics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions_memory: self.evictions(),
            evictions_disk: self.evictions_disk(),
            memory_entries: self.len(),
        }
    }

    /// The map lock, tolerating poisoning: a panicked compilation thread
    /// can only ever have inserted whole entries.
    fn lock(&self) -> MutexGuard<'_, HashMap<CacheKey, (u64, Vec<u8>)>> {
        match self.inner.map.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The disk tier's file for a key.
    fn path_for(dir: &Path, key: CacheKey) -> PathBuf {
        dir.join(format!("{:016x}-{:016x}.waltz", key.0, key.1))
    }

    /// Looks up a stored artifact by its content address — the circuit's
    /// [`waltz_codec::content_hash`] and the owning compiler's
    /// [`crate::Compiler::fingerprint`] — decoding it from its stored
    /// bytes. This is the keyed entry point remote fronts use to resolve
    /// artifact references without re-submitting the circuit; the
    /// returned artifact is marked [`CompileArtifact::is_cached`], and a
    /// lookup counts as a hit or miss like any other.
    pub fn get(&self, circuit_hash: u64, fingerprint: u64) -> Option<CompileArtifact> {
        self.lookup((circuit_hash, fingerprint))
    }

    /// Looks up an artifact, decoding it from its stored bytes; the
    /// returned artifact is marked [`CompileArtifact::is_cached`].
    pub(crate) fn lookup(&self, key: CacheKey) -> Option<CompileArtifact> {
        let bytes = self.lookup_bytes(key);
        let artifact = bytes.and_then(|b| decode_versioned::<CompileArtifact>(&b).ok());
        match artifact {
            Some(mut artifact) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                artifact.set_cached(true);
                Some(artifact)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The stored bytes for a key: memory tier first (bumping its LRU
    /// tick), then the disk tier (promoting a hit into memory).
    fn lookup_bytes(&self, key: CacheKey) -> Option<Vec<u8>> {
        {
            let mut map = self.lock();
            if let Some((tick, bytes)) = map.get_mut(&key) {
                *tick = self.inner.tick.fetch_add(1, Ordering::Relaxed);
                return Some(bytes.clone());
            }
        }
        let dir = self.inner.dir.as_ref()?;
        let bytes = std::fs::read(Self::path_for(dir, key)).ok()?;
        // Validate before promoting so corrupt files never enter memory.
        decode_versioned::<CompileArtifact>(&bytes).ok()?;
        self.insert_memory(key, bytes.clone());
        Some(bytes)
    }

    /// Stores an artifact's versioned encoding in both tiers.
    pub(crate) fn store(&self, key: CacheKey, artifact: &CompileArtifact) {
        let bytes = encode_versioned(artifact);
        if let Some(dir) = &self.inner.dir {
            // Best-effort: a read-only or full disk degrades the cache,
            // never the compilation.
            let _ = std::fs::create_dir_all(dir);
            let path = Self::path_for(dir, key);
            let tmp = path.with_extension("tmp");
            if std::fs::write(&tmp, &bytes).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
            if let Some(cap) = self.inner.disk_capacity {
                self.prune_disk(dir, cap, &path);
            }
        }
        self.insert_memory(key, bytes);
    }

    /// Prunes the disk tier down to `cap` entries, removing the oldest
    /// files (by modification time) first and never the entry just
    /// written. Directory scans are per-store and O(entries) — cheap next
    /// to a compilation, and only walked when a cap is configured.
    fn prune_disk(&self, dir: &Path, cap: usize, just_written: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                if path.extension().is_some_and(|x| x == "waltz") {
                    let modified = e.metadata().and_then(|m| m.modified()).ok()?;
                    Some((modified, path))
                } else {
                    None
                }
            })
            .collect();
        if files.len() <= cap {
            return;
        }
        // Oldest first; ties broken by path so pruning is deterministic
        // even on filesystems with coarse mtime granularity.
        files.sort();
        let mut excess = files.len() - cap;
        for (_, path) in files {
            if excess == 0 {
                break;
            }
            // Never prune the entry this store just wrote (mtime ties on
            // coarse-granularity filesystems could sort it early) —
            // unless the cap is 0, where nothing may stay.
            if cap > 0 && path == just_written {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                self.inner.evictions_disk.fetch_add(1, Ordering::Relaxed);
                excess -= 1;
            }
        }
    }

    /// Inserts into the memory tier, evicting the least recently used
    /// entry when full.
    fn insert_memory(&self, key: CacheKey, bytes: Vec<u8>) {
        if self.inner.capacity == 0 {
            return;
        }
        let mut map = self.lock();
        if map.len() >= self.inner.capacity && !map.contains_key(&key) {
            if let Some(oldest) = map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| *k)
            {
                map.remove(&oldest);
                self.inner.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let tick = self.inner.tick.fetch_add(1, Ordering::Relaxed);
        map.insert(key, (tick, bytes));
    }
}

/// One aggregated snapshot of an [`ArtifactCache`]'s counters
/// ([`ArtifactCache::stats`]). Implements the wire format, so a serving
/// front can ship it inside a stats frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from either tier.
    pub hits: u64,
    /// Lookups that found nothing (or only corrupt bytes).
    pub misses: u64,
    /// Memory-tier entries displaced to make room.
    pub evictions_memory: u64,
    /// Disk-tier entries pruned to respect the max-entries cap.
    pub evictions_disk: u64,
    /// Artifacts currently held in the memory tier.
    pub memory_entries: usize,
}

#[cfg(test)]
mod tests {
    use waltz_circuit::Circuit;

    use super::*;
    use crate::{Compiler, Strategy, Target};

    fn artifact_for(seedling: u64) -> (CacheKey, CompileArtifact) {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2);
        let artifact = Compiler::new(Target::paper(Strategy::qubit_only()))
            .compile(&c)
            .unwrap();
        ((seedling, 42), artifact)
    }

    #[test]
    fn memory_tier_hits_and_counts() {
        let cache = ArtifactCache::with_capacity(4);
        let (key, artifact) = artifact_for(1);
        assert!(cache.lookup(key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.store(key, &artifact);
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup(key).expect("stored key must hit");
        assert!(hit.is_cached());
        assert_eq!(hit.stats, artifact.stats);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Clones share the store and the counters.
        let clone = cache.clone();
        assert!(clone.lookup(key).is_some());
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn lru_eviction_keeps_the_recently_used_entry() {
        let cache = ArtifactCache::with_capacity(1);
        let (k1, artifact) = artifact_for(1);
        let k2 = (2u64, 42u64);
        cache.store(k1, &artifact);
        cache.store(k2, &artifact);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(k1).is_none(), "k1 was evicted");
        assert!(cache.lookup(k2).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_memory_tier() {
        let cache = ArtifactCache::with_capacity(0);
        let (key, artifact) = artifact_for(1);
        cache.store(key, &artifact);
        assert!(cache.is_empty());
        assert!(cache.lookup(key).is_none());
    }

    #[test]
    fn disk_capacity_prunes_oldest_first_and_counts_evictions() {
        let dir = std::env::temp_dir().join(format!("waltz-cache-cap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Memory tier off: every lookup must go to disk.
        let cache = ArtifactCache::with_capacity(0)
            .with_disk_dir(&dir)
            .with_disk_capacity(2);
        assert_eq!(cache.disk_capacity(), Some(2));
        let (_, artifact) = artifact_for(1);
        for k in 1..=4u64 {
            cache.store((k, 42), &artifact);
            // Distinct mtimes even on coarse-granularity filesystems.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(cache.evictions_disk(), 2, "two oldest entries pruned");
        assert!(cache.lookup((1, 42)).is_none());
        assert!(cache.lookup((2, 42)).is_none());
        assert!(cache.lookup((3, 42)).is_some());
        assert!(cache.lookup((4, 42)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions_disk, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_memory_eviction() {
        let dir = std::env::temp_dir().join(format!("waltz-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::with_capacity(1).with_disk_dir(&dir);
        let (k1, artifact) = artifact_for(1);
        let k2 = (2u64, 42u64);
        cache.store(k1, &artifact);
        cache.store(k2, &artifact); // evicts k1 from memory, not disk
        let hit = cache.lookup(k1).expect("disk tier must answer");
        assert!(hit.is_cached());
        assert_eq!(hit.stats, artifact.stats);
        // Corrupt file counts as a miss, not an error.
        std::fs::write(ArtifactCache::path_for(&dir, (9, 9)), b"garbage").unwrap();
        assert!(cache.lookup((9, 9)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
