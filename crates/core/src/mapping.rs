//! Initial placement (§5.2).
//!
//! Weights come from the moment-decayed interaction matrix
//! `w(i,j) = sum_t o(i,j,t)/t`. The qubit with the greatest total weight is
//! placed at the centre device; each subsequent qubit (greatest weight to
//! the already-placed set) lands on the free site minimizing
//! `sum_{placed j} w(i,j) * d(site, site(j))` with the fidelity-aware
//! distance `d`, restricted to sites adjacent to the placed region when
//! possible.

use waltz_arch::{InteractionGraph, Site};
use waltz_circuit::{moments, Circuit};

use crate::Layout;

/// Relative path cost of an internal (in-ququart) hop versus an
/// inter-device hop, approximating the error ratio of the corresponding
/// SWAP pulses (0.999 vs 0.99 — about 10x).
pub const INTERNAL_HOP_COST: f64 = 0.1;
/// Inter-device hop cost.
pub const EXTERNAL_HOP_COST: f64 = 1.0;

/// Produces the initial layout for `circuit` on `graph`.
///
/// # Panics
///
/// Panics if the graph has fewer sites than the circuit has qubits.
pub fn place(circuit: &Circuit, graph: &InteractionGraph) -> Layout {
    let n = circuit.n_qubits();
    assert!(
        graph.n_sites() >= n,
        "interaction graph has {} sites for {} qubits",
        graph.n_sites(),
        n
    );
    let w = moments::interaction_weights(circuit);
    let dist = graph.distances(INTERNAL_HOP_COST, EXTERNAL_HOP_COST);
    let mut layout = Layout::new(graph.clone(), n);

    if n == 0 {
        return layout;
    }

    // First qubit: greatest total weight, placed at the centre.
    let first = (0..n)
        .max_by(|&a, &b| {
            let wa: f64 = w[a].iter().sum();
            let wb: f64 = w[b].iter().sum();
            wa.partial_cmp(&wb).unwrap()
        })
        .unwrap();
    layout.place(first, graph.center_site());

    let mut placed = vec![false; n];
    placed[first] = true;
    for _ in 1..n {
        // Next qubit: max weight to the placed set.
        let next = (0..n)
            .filter(|&q| !placed[q])
            .max_by(|&a, &b| {
                let wa: f64 = (0..n).filter(|&j| placed[j]).map(|j| w[a][j]).sum();
                let wb: f64 = (0..n).filter(|&j| placed[j]).map(|j| w[b][j]).sum();
                wa.partial_cmp(&wb).unwrap()
            })
            .unwrap();
        // Candidate sites: free sites adjacent to the placed region.
        let mut candidates: Vec<Site> = graph
            .sites()
            .filter(|&s| layout.qubit_at(s).is_none())
            .filter(|&s| {
                (0..n)
                    .filter(|&j| placed[j])
                    .any(|j| graph.adjacent(s, layout.site_of(j)))
            })
            .collect();
        if candidates.is_empty() {
            candidates = graph
                .sites()
                .filter(|&s| layout.qubit_at(s).is_none())
                .collect();
        }
        let best = candidates
            .into_iter()
            .min_by(|&a, &b| {
                let cost = |s: Site| -> f64 {
                    (0..n)
                        .filter(|&j| placed[j])
                        .map(|j| {
                            w[next][j] * dist[graph.index_of(s)][graph.index_of(layout.site_of(j))]
                        })
                        .sum()
                };
                cost(a).partial_cmp(&cost(b)).unwrap()
            })
            .expect("at least one free site");
        layout.place(next, best);
        placed[next] = true;
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_arch::Topology;

    #[test]
    fn heavily_interacting_qubits_are_packed_together() {
        // Qubits 0,1 interact constantly; 2 joins later.
        let mut c = Circuit::new(3);
        for _ in 0..5 {
            c.cx(0, 1);
        }
        c.cx(1, 2);
        let g = InteractionGraph::encoded(Topology::line(3));
        let layout = place(&c, &g);
        // 0 and 1 should share a device (internal distance is cheapest).
        assert_eq!(layout.device_of(0), layout.device_of(1));
        // 2 must be adjacent to that device.
        let d = layout.device_of(2);
        assert!(d == layout.device_of(0) || g.topology().are_adjacent(d, layout.device_of(0)));
    }

    #[test]
    fn qubit_only_mapping_spreads_over_devices() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        let g = InteractionGraph::qubit_only(Topology::line(4));
        let layout = place(&c, &g);
        let mut devices: Vec<usize> = (0..4).map(|q| layout.device_of(q)).collect();
        devices.sort_unstable();
        devices.dedup();
        assert_eq!(devices.len(), 4, "each qubit gets its own device");
        // Chain neighbours should be adjacent after mapping.
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            assert!(
                g.topology()
                    .are_adjacent(layout.device_of(a), layout.device_of(b)),
                "{a}-{b} not adjacent"
            );
        }
    }

    #[test]
    fn all_qubits_are_placed() {
        let mut c = Circuit::new(5);
        c.ccx(0, 1, 2).ccx(2, 3, 4);
        let g = InteractionGraph::encoded(Topology::grid(3));
        let layout = place(&c, &g);
        let assignment = layout.assignment();
        let mut sites: Vec<_> = assignment.iter().map(|s| (s.device, s.slot)).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), 5, "no two qubits share a site");
    }

    #[test]
    fn isolated_qubits_still_get_sites() {
        // A circuit with no gates at all.
        let c = Circuit::new(3);
        let g = InteractionGraph::qubit_only(Topology::grid(4));
        let layout = place(&c, &g);
        assert_eq!(layout.assignment().len(), 3);
    }

    #[test]
    #[should_panic(expected = "sites for")]
    fn too_many_qubits_rejected() {
        let c = Circuit::new(5);
        let g = InteractionGraph::qubit_only(Topology::line(3));
        let _ = place(&c, &g);
    }
}
