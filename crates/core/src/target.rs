//! The compilation target: everything about the machine and the noise
//! environment bundled into one owning value.
//!
//! Before the builder API existed, a [`Strategy`], [`GateLibrary`],
//! [`Topology`], and coherence/noise model were threaded separately
//! through every entry point; a [`Target`] owns all four so a
//! [`crate::Compiler`] can be built once and reused across circuits.

use waltz_arch::Topology;
use waltz_gates::GateLibrary;
use waltz_noise::{CoherenceModel, NoiseModel};

use crate::strategy::Strategy;

/// How a [`Target`] obtains its device coupling graph.
#[derive(Debug, Clone)]
pub enum TopologySpec {
    /// The paper's 2D mesh (§6.2), sized per circuit from the strategy's
    /// device count (the default).
    Auto,
    /// A caller-provided topology shared by every compilation.
    Fixed(Topology),
}

/// A compilation target: strategy, calibrated gate library, device
/// topology and noise environment, owned together.
///
/// # Example
///
/// ```
/// use waltz_core::{Compiler, Strategy, Target};
/// use waltz_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).ccx(0, 1, 2);
/// let artifact = Compiler::new(Target::paper(Strategy::full_ququart()))
///     .compile(&c)
///     .unwrap();
/// assert!(artifact.eps().total() > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Target {
    strategy: Strategy,
    library: GateLibrary,
    topology: TopologySpec,
    noise: NoiseModel,
}

impl Target {
    /// The paper's machine for `strategy`: calibrated [`GateLibrary`]
    /// (Tables 1–2), auto-sized 2D mesh, and the §6.4/§6.5 noise model.
    pub fn paper(strategy: Strategy) -> Self {
        Target {
            strategy,
            library: GateLibrary::paper(),
            topology: TopologySpec::Auto,
            noise: NoiseModel::paper(),
        }
    }

    /// Replaces the gate library.
    pub fn with_library(mut self, library: GateLibrary) -> Self {
        self.library = library;
        self
    }

    /// Pins a fixed device topology instead of the auto-sized mesh.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = TopologySpec::Fixed(topology);
        self
    }

    /// Restores the auto-sized paper mesh.
    pub fn with_auto_topology(mut self) -> Self {
        self.topology = TopologySpec::Auto;
        self
    }

    /// Replaces the full noise model (depolarizing + damping flags and the
    /// coherence parameters).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces only the coherence (T1) parameters, keeping the noise
    /// flags.
    pub fn with_coherence(mut self, coherence: CoherenceModel) -> Self {
        self.noise.coherence = coherence;
        self
    }

    /// The compilation strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The calibrated gate library.
    pub fn library(&self) -> &GateLibrary {
        &self.library
    }

    /// How the device graph is obtained.
    pub fn topology_spec(&self) -> &TopologySpec {
        &self.topology
    }

    /// The noise model simulations against this target use.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The coherence (T1) parameters the EPS estimate uses.
    pub fn coherence(&self) -> &CoherenceModel {
        &self.noise.coherence
    }

    /// A stable 64-bit fingerprint of everything about this target that
    /// shapes a compiled artifact: the strategy, the calibrated gate
    /// library, the topology spec and the noise model, hashed over their
    /// canonical wire encodings ([`waltz_codec`]'s FNV-1a).
    ///
    /// Two targets with the same fingerprint compile any circuit to the
    /// same artifact (up to wall-clock timings in the pass reports), so
    /// the fingerprint is the target half of an [`crate::ArtifactCache`]
    /// key. Stability rules: the fingerprint is a pure function of the
    /// target's wire encoding — it survives process restarts and
    /// rebuilds, and changes exactly when a field with compilation
    /// consequences changes (or when `waltz_codec::CODEC_VERSION` revs
    /// the encodings themselves).
    pub fn fingerprint(&self) -> u64 {
        use waltz_codec::Encode;
        let mut w = waltz_codec::ByteWriter::new();
        self.strategy.encode(&mut w);
        self.library.encode(&mut w);
        self.topology.encode(&mut w);
        self.noise.encode(&mut w);
        waltz_codec::fnv1a64(w.as_bytes())
    }

    /// Resolves the topology for an `n_qubits`-wide circuit: the fixed
    /// graph when pinned, otherwise the paper mesh sized from the
    /// strategy's device count.
    pub fn topology_for(&self, n_qubits: usize) -> Topology {
        match &self.topology {
            TopologySpec::Fixed(t) => t.clone(),
            TopologySpec::Auto => {
                // Three-qubit gates need a hub with two neighbours; a 1xN
                // mesh of width >= 3 or any 2D mesh provides one.
                Topology::grid(self.strategy.device_count(n_qubits).max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_topology_tracks_strategy_device_count() {
        let t = Target::paper(Strategy::full_ququart());
        assert_eq!(t.topology_for(6).n_devices(), 3);
        let t = Target::paper(Strategy::qubit_only());
        assert_eq!(t.topology_for(6).n_devices(), 6);
        // Never an empty graph, even for degenerate widths.
        assert_eq!(t.topology_for(0).n_devices(), 1);
    }

    #[test]
    fn fixed_topology_is_returned_verbatim() {
        let line = Topology::line(9);
        let t = Target::paper(Strategy::qubit_only()).with_topology(line);
        assert_eq!(t.topology_for(4).n_devices(), 9);
        assert!(matches!(t.topology_spec(), TopologySpec::Fixed(_)));
        let t = t.with_auto_topology();
        assert!(matches!(t.topology_spec(), TopologySpec::Auto));
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = Target::paper(Strategy::mixed_radix_ccz());
        let b = Target::paper(Strategy::mixed_radix_ccz());
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Every compilation-relevant field moves the fingerprint.
        assert_ne!(
            a.fingerprint(),
            Target::paper(Strategy::full_ququart()).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            b.clone().with_topology(Topology::line(9)).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            b.clone()
                .with_noise(waltz_noise::NoiseModel::noiseless())
                .fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            b.clone()
                .with_coherence(CoherenceModel::with_t1_ns(1e5))
                .fingerprint()
        );
    }

    #[test]
    fn coherence_override_keeps_noise_flags() {
        let t = Target::paper(Strategy::qubit_only())
            .with_coherence(waltz_noise::CoherenceModel::with_t1_ns(1e5));
        assert!(t.noise().depolarizing);
        assert!((t.coherence().t1_ns() - 1e5).abs() < 1e-9);
    }
}
