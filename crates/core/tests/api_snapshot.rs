//! Public-API snapshot: the exported symbol list of `waltz_core` is
//! pinned here so future surface drift is deliberate — adding, removing
//! or renaming a re-export must update this test (and the crate docs)
//! in the same change.

/// Symbols re-exported at the crate root (`pub use`) plus public modules
/// (`pub mod`), alphabetically. Update deliberately.
const EXPECTED: &[&str] = &[
    "ArtifactCache",
    "CacheStats",
    "CoherenceSpan",
    "CompileArtifact",
    "CompileError",
    "CompileOptions",
    "CompileStats",
    "CompiledCircuit",
    "Compiler",
    "Degradation",
    "EpsBreakdown",
    "FqCswapMode",
    "Fusion",
    "HwProgram",
    "JobReport",
    "JobStatus",
    "Layout",
    "MrCcxMode",
    "Pass",
    "PassReport",
    "QubitCcxMode",
    "RegisterWindow",
    "Simulation",
    "Strategy",
    "Supervisor",
    "SupervisorPolicy",
    "Target",
    "TopologySpec",
    "mod eps",
    // The `fault-inject`-gated fault module: the parser reads `pub mod`
    // lines without their `#[cfg]` attribute, so it appears in every
    // configuration even though it only compiles with the feature on.
    "mod fault",
    "mod verify",
];

/// Extracts the crate-root export surface from `lib.rs` source text:
/// every `pub use` leaf identifier and every `pub mod` name.
fn exported_symbols(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stmt = String::new();
    let mut in_use = false;
    for line in src.lines() {
        let t = line.trim();
        if !in_use {
            if t.starts_with("//") || t.starts_with("#!") || t.starts_with("#[") {
                continue;
            }
            if let Some(rest) = t.strip_prefix("pub mod ") {
                out.push(format!("mod {}", rest.trim_end_matches(';').trim()));
                continue;
            }
            if t.starts_with("pub use ") {
                in_use = true;
                stmt.clear();
            }
        }
        if in_use {
            stmt.push(' ');
            stmt.push_str(t);
            if t.ends_with(';') {
                in_use = false;
                let body = stmt
                    .trim()
                    .trim_start_matches("pub use")
                    .trim_end_matches(';')
                    .trim();
                match (body.find('{'), body.rfind('}')) {
                    (Some(open), Some(close)) => {
                        for item in body[open + 1..close].split(',') {
                            let leaf = item.trim().rsplit("::").next().unwrap_or("").trim();
                            if !leaf.is_empty() {
                                out.push(leaf.to_string());
                            }
                        }
                    }
                    _ => {
                        let leaf = body.rsplit("::").next().unwrap_or("").trim();
                        if !leaf.is_empty() {
                            out.push(leaf.to_string());
                        }
                    }
                }
            }
        }
    }
    out.sort();
    out
}

#[test]
fn waltz_core_export_surface_is_pinned() {
    let src = include_str!("../src/lib.rs");
    let actual = exported_symbols(src);
    let expected: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        actual, expected,
        "waltz_core's export surface drifted; if deliberate, update \
         crates/core/tests/api_snapshot.rs and the migration table in the crate docs"
    );
}

#[test]
fn snapshot_symbols_actually_exist() {
    // A compile-time cross-check that the pinned names refer to real
    // exports (renames that keep the list length would otherwise slip).
    use waltz_core::{
        ArtifactCache, CacheStats, CoherenceSpan, CompileArtifact, CompileError, CompileOptions,
        CompileStats, CompiledCircuit, Compiler, Degradation, EpsBreakdown, FqCswapMode, Fusion,
        HwProgram, JobReport, JobStatus, Layout, MrCcxMode, Pass, PassReport, QubitCcxMode,
        RegisterWindow, Simulation, Strategy, Supervisor, SupervisorPolicy, Target, TopologySpec,
    };
    fn assert_type<T: ?Sized>() {}
    assert_type::<ArtifactCache>();
    assert_type::<CacheStats>();
    assert_type::<CoherenceSpan>();
    assert_type::<CompileArtifact>();
    assert_type::<CompileError>();
    assert_type::<CompileOptions>();
    assert_type::<CompileStats>();
    assert_type::<CompiledCircuit>();
    assert_type::<Compiler>();
    assert_type::<EpsBreakdown>();
    assert_type::<FqCswapMode>();
    assert_type::<Fusion>();
    assert_type::<HwProgram>();
    assert_type::<Layout>();
    assert_type::<MrCcxMode>();
    assert_type::<Pass>();
    assert_type::<PassReport>();
    assert_type::<QubitCcxMode>();
    assert_type::<RegisterWindow>();
    assert_type::<Simulation<'static>>();
    assert_type::<Strategy>();
    assert_type::<Target>();
    assert_type::<TopologySpec>();
    assert_type::<Degradation>();
    assert_type::<JobReport>();
    assert_type::<JobStatus>();
    assert_type::<Supervisor>();
    assert_type::<SupervisorPolicy>();
    let _ = waltz_core::eps::uniform_spans;
    let _ = waltz_core::verify::check;
    #[cfg(feature = "fault-inject")]
    {
        let _ = waltz_core::fault::arm;
        let _ = waltz_core::fault::disarm;
    }
}
