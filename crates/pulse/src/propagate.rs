//! Piecewise-constant time evolution.

use waltz_math::{expm, Matrix, C64};

use crate::TransmonSystem;

/// A piecewise-constant control schedule: `values[slice][control]` in
/// rad/ns, each slice lasting `dt_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pulse {
    /// Control amplitudes per slice.
    pub values: Vec<Vec<f64>>,
    /// Slice duration in nanoseconds.
    pub dt_ns: f64,
}

impl Pulse {
    /// A zero pulse with `slices` slices over `duration_ns`.
    pub fn zeros(slices: usize, n_controls: usize, duration_ns: f64) -> Self {
        assert!(slices > 0, "pulse needs at least one slice");
        Pulse {
            values: vec![vec![0.0; n_controls]; slices],
            dt_ns: duration_ns / slices as f64,
        }
    }

    /// Total duration in nanoseconds.
    pub fn duration_ns(&self) -> f64 {
        self.dt_ns * self.values.len() as f64
    }

    /// Number of slices.
    pub fn n_slices(&self) -> usize {
        self.values.len()
    }

    /// Clamps every amplitude to `[-max, max]`.
    pub fn clamp(&mut self, max: f64) {
        for slice in &mut self.values {
            for v in slice.iter_mut() {
                *v = v.clamp(-max, max);
            }
        }
    }

    /// Resamples the pulse to a new slice count over a (possibly shorter)
    /// duration — the re-seeding step of the §2.3 duration shrinking.
    pub fn resample(&self, slices: usize, duration_ns: f64) -> Pulse {
        let n_controls = self.values[0].len();
        let mut out = Pulse::zeros(slices, n_controls, duration_ns);
        for (j, slice) in out.values.iter_mut().enumerate() {
            // Sample the old pulse at the same *fractional* position.
            let frac = (j as f64 + 0.5) / slices as f64;
            let src = ((frac * self.n_slices() as f64) as usize).min(self.n_slices() - 1);
            slice.clone_from(&self.values[src]);
        }
        out
    }
}

/// Per-slice propagators `U_j = exp(-i H_j dt)` for a pulse on a system.
pub fn slice_propagators(system: &TransmonSystem, pulse: &Pulse) -> Vec<Matrix> {
    let drift = system.drift();
    let controls = system.control_ops();
    pulse
        .values
        .iter()
        .map(|amps| {
            let mut h = drift.clone();
            for (c, &u) in controls.iter().zip(amps.iter()) {
                h = &h + &c.scale(C64::real(u));
            }
            expm::expm(&h.scale(C64::new(0.0, -pulse.dt_ns)))
        })
        .collect()
}

/// The total propagator `U = U_N ... U_1`.
pub fn total_propagator(system: &TransmonSystem, pulse: &Pulse) -> Matrix {
    let mut u = Matrix::identity(system.dim());
    for uj in slice_propagators(system, pulse) {
        u = uj.matmul(&u);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_pulse_on_resonant_qubit_is_identity_on_qubit_block() {
        // Single transmon, logical qubit: drift has no dynamics inside
        // {|0>, |1>} in its own rotating frame.
        let s = TransmonSystem::paper(1, 2, 1);
        let p = Pulse::zeros(10, s.n_controls(), 20.0);
        let u = total_propagator(&s, &p);
        assert!(u.is_unitary(1e-10));
        assert!((u[(0, 0)].abs() - 1.0).abs() < 1e-9);
        assert!((u[(1, 1)].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn propagator_is_always_unitary() {
        let s = TransmonSystem::paper(2, 2, 1);
        let mut p = Pulse::zeros(8, s.n_controls(), 40.0);
        for (j, slice) in p.values.iter_mut().enumerate() {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = 0.02 * ((j + k) as f64).sin();
            }
        }
        let u = total_propagator(&s, &p);
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn constant_drive_rotates_qubit() {
        // A resonant constant X drive rotates |0> -> |1> at rate ~u (the
        // sqrt(2) ladder factor only matters above level 1; guard detuned).
        let s = TransmonSystem::paper(1, 2, 1);
        let u_amp = s.drive_max() / 2.0;
        // H_ctrl = u X on the qubit block: full transfer at u * t = pi/2.
        let t = std::f64::consts::FRAC_PI_2 / u_amp;
        let mut p = Pulse::zeros(200, s.n_controls(), t);
        for slice in &mut p.values {
            slice[0] = u_amp;
        }
        let u = total_propagator(&s, &p);
        // |<1|U|0>|^2 should be large (not exactly 1: leakage to level 2).
        let pop = u[(1, 0)].norm_sqr();
        assert!(pop > 0.8, "population transfer only {pop}");
    }

    #[test]
    fn resample_preserves_shape() {
        let mut p = Pulse::zeros(4, 1, 4.0);
        for (j, s) in p.values.iter_mut().enumerate() {
            s[0] = j as f64;
        }
        let r = p.resample(8, 2.0);
        assert_eq!(r.n_slices(), 8);
        assert!((r.duration_ns() - 2.0).abs() < 1e-12);
        // First half samples low indices, last half high.
        assert!(r.values[0][0] < r.values[7][0]);
    }

    #[test]
    fn clamp_bounds_amplitudes() {
        let mut p = Pulse::zeros(2, 2, 2.0);
        p.values[0][0] = 10.0;
        p.values[1][1] = -10.0;
        p.clamp(0.5);
        assert_eq!(p.values[0][0], 0.5);
        assert_eq!(p.values[1][1], -0.5);
    }
}
