//! Gate-synthesis presets and the §2.3 iterative duration shrinking.
//!
//! "Currently, Juqbox only allows pulse optimization for a fixed gate time
//! T, therefore we minimize pulse durations by applying an iterative
//! re-optimization technique" — [`shrink_duration`] reproduces that loop:
//! re-seed the optimizer with the previous controls resampled onto a
//! shorter grid until the fidelity target no longer holds.

use waltz_math::Matrix;

use crate::grape::{optimize, GrapeOptions, GrapeResult};
use crate::propagate::Pulse;
use crate::TransmonSystem;

/// Synthesizes `target` at a fixed duration with a deterministic seed.
pub fn synthesize(
    system: &TransmonSystem,
    target: &Matrix,
    duration_ns: f64,
    slices: usize,
    opts: &GrapeOptions,
) -> GrapeResult {
    let mut pulse = Pulse::zeros(slices, system.n_controls(), duration_ns);
    for (j, slice) in pulse.values.iter_mut().enumerate() {
        for (k, v) in slice.iter_mut().enumerate() {
            *v = 0.01 * ((1 + j + 3 * k) as f64).sin();
        }
    }
    optimize(system, target, pulse, opts)
}

/// Outcome of the duration-shrinking loop.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// Shortest duration that still met the fidelity target.
    pub duration_ns: f64,
    /// The result at that duration.
    pub result: GrapeResult,
    /// Every (duration, fidelity) attempt, longest first.
    pub attempts: Vec<(f64, f64)>,
}

/// Iterative re-optimization (§2.3): starting from `initial_duration_ns`,
/// repeatedly shrink by `factor` (re-seeding from the last good pulse)
/// until the optimizer can no longer reach `fidelity_target`.
///
/// # Panics
///
/// Panics if the initial duration cannot be synthesized to the target
/// fidelity (callers should start generous) or `factor` is not in (0, 1).
pub fn shrink_duration(
    system: &TransmonSystem,
    target: &Matrix,
    initial_duration_ns: f64,
    slices: usize,
    factor: f64,
    fidelity_target: f64,
    opts: &GrapeOptions,
) -> ShrinkResult {
    assert!(
        (0.0..1.0).contains(&factor),
        "shrink factor must be in (0,1)"
    );
    let first = synthesize(system, target, initial_duration_ns, slices, opts);
    assert!(
        first.fidelity >= fidelity_target,
        "initial duration {initial_duration_ns} ns only reached F = {}",
        first.fidelity
    );
    let mut attempts = vec![(initial_duration_ns, first.fidelity)];
    let mut best = (initial_duration_ns, first);
    loop {
        let next_duration = best.0 * factor;
        let seed = best.1.pulse.resample(slices, next_duration);
        let r = optimize(system, target, seed, opts);
        attempts.push((next_duration, r.fidelity));
        if r.fidelity >= fidelity_target {
            best = (next_duration, r);
        } else {
            break;
        }
    }
    ShrinkResult {
        duration_ns: best.0,
        result: best.1,
        attempts,
    }
}

/// The Fig. 2 target: Hadamard on both encoded qubits of one ququart.
pub fn h_tensor_h_target() -> Matrix {
    let h = waltz_gates::standard::h();
    h.kron(&h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_gates::standard;

    #[test]
    fn shrink_finds_shorter_x_pulses() {
        let s = TransmonSystem::paper(1, 2, 1);
        let opts = GrapeOptions {
            max_iters: 400,
            infidelity_target: 5e-3,
            ..GrapeOptions::default()
        };
        // Keep dt ~ 1 ns: the first-order GRAPE gradient degrades above that.
        let r = shrink_duration(&s, &standard::x(), 60.0, 60, 0.7, 0.99, &opts);
        assert!(r.duration_ns < 60.0, "no shrink achieved");
        assert!(r.result.fidelity >= 0.99);
        assert!(r.attempts.len() >= 2);
        // Attempts are monotonically shorter.
        for w in r.attempts.windows(2) {
            assert!(w[1].0 < w[0].0);
        }
    }

    #[test]
    fn h_tensor_h_is_a_valid_ququart_target() {
        let t = h_tensor_h_target();
        assert_eq!(t.rows(), 4);
        assert!(t.is_unitary(1e-12));
    }

    #[test]
    fn single_ququart_gate_synthesis_makes_progress() {
        // Full 4-level ququart with one guard level: optimize H (x) H and
        // require clear progress over the identity baseline within a small
        // iteration budget (full convergence is exercised by the harness).
        let s = TransmonSystem::paper(1, 4, 1);
        let target = h_tensor_h_target();
        let opts = GrapeOptions {
            max_iters: 60,
            infidelity_target: 1e-4,
            learning_rate: 0.006,
            leakage_weight: 0.5,
            ..GrapeOptions::default()
        };
        let r = synthesize(&s, &target, 120.0, 60, &opts);
        let baseline = {
            let p = Pulse::zeros(60, s.n_controls(), 120.0);
            let u = crate::propagate::total_propagator(&s, &p);
            waltz_math::metrics::subspace_gate_fidelity(&u, &target, &s.logical_indices())
        };
        assert!(
            r.fidelity > baseline + 0.2,
            "no progress: {} vs baseline {baseline}",
            r.fidelity
        );
    }
}
