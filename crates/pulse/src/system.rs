//! The weakly-coupled anharmonic transmon Hamiltonian (paper Eq. 2).

use waltz_math::{Matrix, C64};

/// Two pi, for converting GHz frequencies to rad/ns rates.
const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

/// A chain of up to three weakly coupled anharmonic transmons, truncated
/// to `logical_levels + guard_levels` states each.
///
/// All frequencies are supplied in GHz and stored as angular rates in
/// rad/ns. The drift Hamiltonian is expressed in the co-rotating frame:
/// each transmon's detuning `w_k - w_0` remains, plus the anharmonic
/// ladder and the exchange coupling.
#[derive(Debug, Clone)]
pub struct TransmonSystem {
    levels: usize,
    n_transmons: usize,
    detunings: Vec<f64>,
    anharmonicity: f64,
    coupling: f64,
    drive_max: f64,
    logical_levels: usize,
}

impl TransmonSystem {
    /// The paper's device: `w/2pi = 4.914, 5.114, 5.214 GHz`,
    /// `xi/2pi = -330 MHz`, `J/2pi = 3.8 MHz`, `f_max = 45 MHz`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n_transmons <= 3` and levels are sensible.
    pub fn paper(n_transmons: usize, logical_levels: usize, guard_levels: usize) -> Self {
        assert!(
            (1..=3).contains(&n_transmons),
            "paper device has 1-3 transmons"
        );
        assert!(logical_levels >= 2, "need at least a qubit");
        let freqs = [4.914, 5.114, 5.214];
        let base = freqs[0];
        TransmonSystem {
            levels: logical_levels + guard_levels,
            n_transmons,
            detunings: (0..n_transmons)
                .map(|k| TWO_PI * (freqs[k] - base))
                .collect(),
            anharmonicity: TWO_PI * (-0.330),
            coupling: TWO_PI * 0.0038,
            drive_max: TWO_PI * 0.045,
            logical_levels,
        }
    }

    /// Number of transmons.
    pub fn n_transmons(&self) -> usize {
        self.n_transmons
    }

    /// Simulated levels per transmon (logical + guard).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Logical levels per transmon.
    pub fn logical_levels(&self) -> usize {
        self.logical_levels
    }

    /// Total Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.levels.pow(self.n_transmons as u32)
    }

    /// Drive amplitude bound in rad/ns (`2 pi x 45 MHz`).
    pub fn drive_max(&self) -> f64 {
        self.drive_max
    }

    /// Number of independent real controls (I and Q per transmon).
    pub fn n_controls(&self) -> usize {
        2 * self.n_transmons
    }

    /// Annihilation operator for one transmon, truncated.
    fn lowering(levels: usize) -> Matrix {
        let mut a = Matrix::zeros(levels, levels);
        for n in 1..levels {
            a[(n - 1, n)] = C64::real((n as f64).sqrt());
        }
        a
    }

    /// Lifts a single-transmon operator to the full register at `k`.
    fn lift(&self, op: &Matrix, k: usize) -> Matrix {
        let mut out = Matrix::identity(1);
        for j in 0..self.n_transmons {
            let factor = if j == k {
                op.clone()
            } else {
                Matrix::identity(self.levels)
            };
            out = out.kron(&factor);
        }
        out
    }

    /// The static (drift) Hamiltonian in rad/ns.
    pub fn drift(&self) -> Matrix {
        let dim = self.dim();
        let mut h = Matrix::zeros(dim, dim);
        let a = Self::lowering(self.levels);
        let n_op = a.dagger().matmul(&a);
        // n(n-1) ladder for the anharmonicity.
        let mut anh = Matrix::zeros(self.levels, self.levels);
        for n in 0..self.levels {
            anh[(n, n)] = C64::real((n * n.saturating_sub(1)) as f64);
        }
        for k in 0..self.n_transmons {
            h = &h + &self.lift(&n_op, k).scale(C64::real(self.detunings[k]));
            h = &h
                + &self
                    .lift(&anh, k)
                    .scale(C64::real(self.anharmonicity / 2.0));
        }
        // Exchange coupling between neighbours.
        for k in 1..self.n_transmons {
            let al = self.lift(&a, k - 1);
            let ar = self.lift(&a, k);
            let ex = &al.dagger().matmul(&ar) + &ar.dagger().matmul(&al);
            h = &h + &ex.scale(C64::real(self.coupling));
        }
        h
    }

    /// Control operators: for each transmon the in-phase `a + a†` and
    /// quadrature `i(a† - a)` drives.
    pub fn control_ops(&self) -> Vec<Matrix> {
        let a = Self::lowering(self.levels);
        let x = &a + &a.dagger();
        let y = (&a.dagger() - &a).scale(C64::I);
        let mut out = Vec::with_capacity(self.n_controls());
        for k in 0..self.n_transmons {
            out.push(self.lift(&x, k));
            out.push(self.lift(&y, k));
        }
        out
    }

    /// Indices of the logical basis states inside the full (guarded)
    /// space, ordered as the logical register's own basis.
    pub fn logical_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let logical_dim = self.logical_levels.pow(self.n_transmons as u32);
        for l in 0..logical_dim {
            // Decompose l in base logical_levels, recompose in base levels.
            let mut digits = vec![0usize; self.n_transmons];
            let mut rem = l;
            for d in digits.iter_mut().rev() {
                *d = rem % self.logical_levels;
                rem /= self.logical_levels;
            }
            let mut idx = 0usize;
            for &d in &digits {
                idx = idx * self.levels + d;
            }
            out.push(idx);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let s = TransmonSystem::paper(1, 4, 1);
        assert_eq!(s.dim(), 5);
        assert_eq!(s.n_controls(), 2);
        let s = TransmonSystem::paper(2, 2, 1);
        assert_eq!(s.dim(), 9);
        assert_eq!(s.n_controls(), 4);
    }

    #[test]
    fn drift_is_hermitian() {
        for (n, l, g) in [(1, 4, 1), (2, 2, 1), (3, 2, 0)] {
            let s = TransmonSystem::paper(n, l, g);
            assert!(s.drift().is_hermitian(1e-12), "n={n}");
        }
    }

    #[test]
    fn control_ops_are_hermitian() {
        let s = TransmonSystem::paper(2, 2, 1);
        for c in s.control_ops() {
            assert!(c.is_hermitian(1e-12));
        }
    }

    #[test]
    fn anharmonicity_shows_in_level_spacing() {
        // Single transmon in its own rotating frame: E1 - E0 = 0,
        // E2 - E1 = xi (the anharmonic shift).
        let s = TransmonSystem::paper(1, 4, 0);
        let h = s.drift();
        let e: Vec<f64> = (0..4).map(|n| h[(n, n)].re).collect();
        assert!((e[1] - e[0]).abs() < 1e-12);
        let xi = TWO_PI * (-0.330);
        assert!(((e[2] - e[1]) - xi).abs() < 1e-9);
        assert!(((e[3] - e[2]) - 2.0 * xi).abs() < 1e-9);
    }

    #[test]
    fn logical_indices_skip_guard_states() {
        let s = TransmonSystem::paper(1, 2, 2); // 4 levels, logical {0,1}
        assert_eq!(s.logical_indices(), vec![0, 1]);
        let s = TransmonSystem::paper(2, 2, 1); // 3 levels each, logical 2x2
        assert_eq!(s.logical_indices(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn coupling_appears_between_neighbours() {
        let s = TransmonSystem::paper(2, 2, 0);
        let h = s.drift();
        // <01|H|10> = J
        let j = TWO_PI * 0.0038;
        assert!((h[(1, 2)].re - j).abs() < 1e-12);
    }
}
