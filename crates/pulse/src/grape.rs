//! First-order GRAPE with Adam updates (§2.3).
//!
//! The objective is the paper's `J[f] = 1 - F[f] + L[f]`: `F` is the
//! Eq. (1) gate fidelity evaluated on the logical subspace and `L`
//! penalizes population leaking into guard levels. Gradients use the
//! standard first-order GRAPE approximation
//! `dU_j/du ~ -i dt C_k U_j`, assembled from cached forward/backward
//! propagator products, so one iteration costs `O(slices x controls)`
//! small matrix products.

use waltz_math::{Matrix, C64};

use crate::propagate::{slice_propagators, Pulse};
use crate::TransmonSystem;

/// Options controlling the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct GrapeOptions {
    /// Maximum Adam iterations.
    pub max_iters: usize,
    /// Stop when `1 - F` drops below this.
    pub infidelity_target: f64,
    /// Adam step size (rad/ns per iteration).
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay per iteration (1.0 = none).
    pub lr_decay: f64,
    /// Weight of the guard-leakage penalty.
    pub leakage_weight: f64,
}

impl Default for GrapeOptions {
    fn default() -> Self {
        GrapeOptions {
            max_iters: 500,
            infidelity_target: 1e-3,
            learning_rate: 0.004,
            lr_decay: 0.995,
            leakage_weight: 1.0,
        }
    }
}

/// Result of a GRAPE run.
#[derive(Debug, Clone)]
pub struct GrapeResult {
    /// Optimized controls.
    pub pulse: Pulse,
    /// Final Eq. (1) subspace gate fidelity.
    pub fidelity: f64,
    /// Final guard-leakage penalty value.
    pub leakage: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Fidelity after each iteration (for convergence plots).
    pub history: Vec<f64>,
}

/// Objective pieces for a given total propagator.
fn objective(u: &Matrix, target: &Matrix, logical: &[usize]) -> (f64, f64, Matrix) {
    let h = logical.len() as f64;
    // z = sum over logical block of conj(V) .* U
    let mut z = C64::ZERO;
    for (i, &gi) in logical.iter().enumerate() {
        for (j, &gj) in logical.iter().enumerate() {
            z += target[(i, j)].conj() * u[(gi, gj)];
        }
    }
    let fidelity = z.norm_sqr() / (h * h);
    // Leakage: population escaping the logical block from logical inputs.
    let dim = u.rows();
    let is_logical = {
        let mut v = vec![false; dim];
        for &g in logical {
            v[g] = true;
        }
        v
    };
    let mut leak = 0.0;
    for &gj in logical {
        for r in 0..dim {
            if !is_logical[r] {
                leak += u[(r, gj)].norm_sqr();
            }
        }
    }
    leak /= h;
    // dJ/d(conj U): from -F: -(z/h^2) * V restricted to the block; from
    // leakage: (lambda/h) * U on guard rows of logical columns.
    let mut grad = Matrix::zeros(dim, dim);
    for (i, &gi) in logical.iter().enumerate() {
        for (j, &gj) in logical.iter().enumerate() {
            grad[(gi, gj)] = -(z / (h * h)) * target[(i, j)];
        }
    }
    (fidelity, leak, grad)
}

/// Runs GRAPE from an initial pulse toward `target` (a unitary on the
/// logical subspace of `system`).
///
/// # Panics
///
/// Panics if the target dimension does not match the system's logical
/// dimension.
pub fn optimize(
    system: &TransmonSystem,
    target: &Matrix,
    mut pulse: Pulse,
    opts: &GrapeOptions,
) -> GrapeResult {
    let logical = system.logical_indices();
    assert_eq!(
        target.rows(),
        logical.len(),
        "target must act on the logical subspace"
    );
    let controls = system.control_ops();
    let dim = system.dim();
    let n_slices = pulse.n_slices();
    let n_controls = controls.len();
    let f_max = system.drive_max();

    // Adam state.
    let mut m = vec![vec![0.0f64; n_controls]; n_slices];
    let mut v = vec![vec![0.0f64; n_controls]; n_slices];
    let (b1, b2, eps) = (0.9, 0.999, 1e-8);

    let mut best_pulse = pulse.clone();
    let mut best_f = -1.0;
    let mut best_leak = f64::INFINITY;
    let mut history = Vec::new();
    let mut iterations = 0;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        let slices = slice_propagators(system, &pulse);
        // forward[j] = U_j ... U_1 (forward[0] = I).
        let mut forward = Vec::with_capacity(n_slices + 1);
        forward.push(Matrix::identity(dim));
        for uj in &slices {
            let last = forward.last().unwrap();
            forward.push(uj.matmul(last));
        }
        // backward[j] = U_N ... U_{j+1} (backward[n] = I).
        let mut backward = vec![Matrix::identity(dim); n_slices + 1];
        for j in (0..n_slices).rev() {
            backward[j] = backward[j + 1].matmul(&slices[j]);
        }
        let u_total = &forward[n_slices];
        let (fidelity, leak, mut grad_u) = objective(u_total, target, &logical);
        // Add the leakage gradient.
        {
            let mut is_logical = vec![false; dim];
            for &g in &logical {
                is_logical[g] = true;
            }
            let h = logical.len() as f64;
            for &gj in &logical {
                for r in 0..dim {
                    if !is_logical[r] {
                        grad_u[(r, gj)] += u_total[(r, gj)] * C64::real(opts.leakage_weight / h);
                    }
                }
            }
        }
        history.push(fidelity);
        if fidelity > best_f {
            best_f = fidelity;
            best_leak = leak;
            best_pulse = pulse.clone();
        }
        if 1.0 - fidelity < opts.infidelity_target {
            break;
        }

        // dJ/du_{j,k} = 2 Re tr(G† B_{j+1} (-i dt C_k) F_j)  with
        // F_j = forward[j+1] (includes slice j):
        // dU_total = B_{j+1} (-i dt C_k) U_j F_{j-1} = B_{j+1} (-i dt C_k) forward[j+1].
        let t = iter as f64 + 1.0;
        let lr = opts.learning_rate * opts.lr_decay.powf(iter as f64);
        for j in 0..n_slices {
            // P = G† B_{j+1}; Q = forward[j+1]; grad = 2 Re tr(P (-i dt C) Q)
            let p = grad_u.dagger().matmul(&backward[j + 1]);
            for k in 0..n_controls {
                let cq = controls[k].matmul(&forward[j + 1]);
                // tr(P * (-i dt) * CQ)
                let mut tr = C64::ZERO;
                for r in 0..dim {
                    for c in 0..dim {
                        tr += p[(r, c)] * cq[(c, r)];
                    }
                }
                let g = 2.0 * (C64::new(0.0, -pulse.dt_ns) * tr).re;
                // Adam update.
                m[j][k] = b1 * m[j][k] + (1.0 - b1) * g;
                v[j][k] = b2 * v[j][k] + (1.0 - b2) * g * g;
                let mh = m[j][k] / (1.0 - b1.powf(t));
                let vh = v[j][k] / (1.0 - b2.powf(t));
                pulse.values[j][k] -= lr * mh / (vh.sqrt() + eps);
            }
        }
        pulse.clamp(f_max);
    }

    GrapeResult {
        pulse: best_pulse,
        fidelity: best_f,
        leakage: best_leak,
        iterations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waltz_gates::standard;

    fn seeded_pulse(system: &TransmonSystem, slices: usize, duration: f64) -> Pulse {
        // Small deterministic non-zero seed to break symmetry.
        let mut p = Pulse::zeros(slices, system.n_controls(), duration);
        for (j, slice) in p.values.iter_mut().enumerate() {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = 0.01 * ((1 + j + 2 * k) as f64).sin();
            }
        }
        p
    }

    #[test]
    fn synthesizes_x_gate_on_guarded_qubit() {
        let s = TransmonSystem::paper(1, 2, 1);
        let p = seeded_pulse(&s, 40, 35.0);
        let r = optimize(&s, &standard::x(), p, &GrapeOptions::default());
        assert!(
            r.fidelity > 0.99,
            "X fidelity {} after {} iters",
            r.fidelity,
            r.iterations
        );
        assert!(r.leakage < 0.05, "leakage {}", r.leakage);
    }

    #[test]
    fn synthesizes_hadamard() {
        let s = TransmonSystem::paper(1, 2, 1);
        let p = seeded_pulse(&s, 40, 35.0);
        let r = optimize(&s, &standard::h(), p, &GrapeOptions::default());
        assert!(r.fidelity > 0.99, "H fidelity {}", r.fidelity);
    }

    #[test]
    fn fidelity_history_is_reported() {
        let s = TransmonSystem::paper(1, 2, 1);
        let p = seeded_pulse(&s, 20, 30.0);
        let opts = GrapeOptions {
            max_iters: 5,
            infidelity_target: 0.0,
            ..GrapeOptions::default()
        };
        let r = optimize(&s, &standard::x(), p, &opts);
        assert_eq!(r.history.len(), 5);
        assert_eq!(r.iterations, 5);
    }

    #[test]
    fn amplitudes_respect_drive_cap() {
        let s = TransmonSystem::paper(1, 2, 1);
        let p = seeded_pulse(&s, 30, 35.0);
        let r = optimize(&s, &standard::x(), p, &GrapeOptions::default());
        let cap = s.drive_max() + 1e-12;
        for slice in &r.pulse.values {
            for &v in slice {
                assert!(v.abs() <= cap);
            }
        }
    }

    #[test]
    #[should_panic(expected = "logical subspace")]
    fn wrong_target_dimension_panics() {
        let s = TransmonSystem::paper(1, 2, 1);
        let p = Pulse::zeros(5, s.n_controls(), 10.0);
        let _ = optimize(
            &s,
            &waltz_math::Matrix::identity(3),
            p,
            &GrapeOptions::default(),
        );
    }
}
