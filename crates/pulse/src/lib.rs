//! Quantum optimal control (the paper's Juqbox substitute, §2.3 and §3.3).
//!
//! The paper synthesizes every mixed-radix and full-ququart pulse with the
//! Juqbox optimal-control package against the transmon Hamiltonian of
//! Eq. (2):
//!
//! ```text
//! H(t) = sum_k [ w_k a†a + (xi_k/2) a†a†aa ]
//!      + sum_{k<l} J_kl (a†_k a_l + a_k a†_l)
//!      + sum_k f_k(t) (a_k + a†_k)
//! ```
//!
//! with `w/2pi = 4.914, 5.114, 5.214 GHz`, `xi/2pi = -330 MHz`,
//! `J/2pi = 3.8 MHz` and drive power capped at `f_max = 45 MHz`.
//!
//! This crate implements the same stack in Rust, in the standard
//! co-rotating frame (each transmon rotates at its own drive frequency,
//! leaving the anharmonicity, detunings and couplings):
//!
//! * [`TransmonSystem`] — the Eq. (2) Hamiltonian with logical levels plus
//!   *guard* levels whose population is penalized (§2.3).
//! * [`propagate`] — piecewise-constant propagators via the Padé matrix
//!   exponential.
//! * [`grape`] — first-order GRAPE with Adam updates, amplitude clamping
//!   at `f_max`, and the paper's objective `J = 1 - F + L` combining the
//!   Eq. (1) subspace gate fidelity with a guard-leakage penalty.
//! * [`synth`] — ready-made synthesis targets (single-qudit gates, the
//!   encoded `H (x) H` of Fig. 2) and the iterative gate-time shrinking of
//!   §2.3.
//!
//! The compiler itself consumes the *calibrated* durations of Tables 1–2
//! (`waltz_gates::GateLibrary`); this crate demonstrates that such pulses
//! exist and regenerates small entries end-to-end (see the `table1`
//! harness binary).

#![warn(missing_docs)]

pub mod grape;
pub mod propagate;
pub mod synth;
mod system;

pub use grape::{optimize, GrapeOptions, GrapeResult};
pub use system::TransmonSystem;
