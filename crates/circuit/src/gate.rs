//! Logical gates over qubits.

use waltz_gates::Q1Gate;
use waltz_math::Matrix;

/// The logical gate vocabulary after decomposition to the compiler's native
/// set (§5.2).
#[derive(Debug, Clone, PartialEq)]
pub enum GateKind {
    /// A single-qubit gate.
    One(Q1Gate),
    /// CNOT (control, target).
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP.
    Swap,
    /// Controlled-S† (control, target) — used by the iToffoli correction.
    Csdg,
    /// Toffoli (control, control, target).
    Ccx,
    /// Doubly-controlled Z (symmetric / target-independent).
    Ccz,
    /// Fredkin (control, target, target).
    Cswap,
}

impl GateKind {
    /// Number of operands.
    pub fn arity(&self) -> usize {
        match self {
            GateKind::One(_) => 1,
            GateKind::Cx | GateKind::Cz | GateKind::Swap | GateKind::Csdg => 2,
            GateKind::Ccx | GateKind::Ccz | GateKind::Cswap => 3,
        }
    }

    /// The unitary on the operand space (first operand most significant).
    pub fn unitary(&self) -> Matrix {
        use waltz_gates::standard;
        match self {
            GateKind::One(g) => g.matrix(),
            GateKind::Cx => standard::cx(),
            GateKind::Cz => standard::cz(),
            GateKind::Swap => standard::swap(),
            GateKind::Csdg => standard::csdg(),
            GateKind::Ccx => standard::ccx(),
            GateKind::Ccz => standard::ccz(),
            GateKind::Cswap => standard::cswap(),
        }
    }

    /// Whether this is one of the three-qubit gates the compiler executes
    /// natively on ququarts.
    pub fn is_three_qubit(&self) -> bool {
        self.arity() == 3
    }

    /// The inverse gate kind (all native gates are self-inverse except
    /// parameterized rotations, S/T phases and CS†).
    pub fn dagger(&self) -> GateKind {
        match self {
            GateKind::One(g) => GateKind::One(g.dagger()),
            // CS† is not self-inverse; its inverse (CS) is representable as
            // CS† preceded/followed by nothing in our set, so callers that
            // need exact inversion go through `Gate::dagger_gates`.
            other => other.clone(),
        }
    }
}

/// A gate applied to specific logical qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// What gate.
    pub kind: GateKind,
    /// Operand qubits in the kind's conventional order (controls first).
    pub qubits: Vec<usize>,
}

impl Gate {
    /// Creates a gate, validating arity and operand distinctness.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity or if an
    /// operand repeats.
    pub fn new(kind: GateKind, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            kind.arity(),
            "gate {kind:?} expects {} operands, got {}",
            kind.arity(),
            qubits.len()
        );
        for (i, a) in qubits.iter().enumerate() {
            for b in qubits.iter().skip(i + 1) {
                assert_ne!(a, b, "gate operands must be distinct: {qubits:?}");
            }
        }
        Gate { kind, qubits }
    }

    /// Number of operands.
    pub fn arity(&self) -> usize {
        self.qubits.len()
    }

    /// The sequence of gates implementing this gate's inverse.
    pub fn dagger_gates(&self) -> Vec<Gate> {
        match &self.kind {
            GateKind::Csdg => {
                // CS = (CS†)^3 — cheapest expression inside the native set
                // is Z-rotations, but for circuit-level inversion three
                // repetitions are exact and only used in tests.
                vec![
                    Gate::new(GateKind::Csdg, self.qubits.clone()),
                    Gate::new(GateKind::Csdg, self.qubits.clone()),
                    Gate::new(GateKind::Csdg, self.qubits.clone()),
                ]
            }
            kind => vec![Gate::new(kind.dagger(), self.qubits.clone())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_table() {
        assert_eq!(GateKind::One(Q1Gate::H).arity(), 1);
        assert_eq!(GateKind::Cx.arity(), 2);
        assert_eq!(GateKind::Ccz.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "expects 2 operands")]
    fn wrong_operand_count_panics() {
        let _ = Gate::new(GateKind::Cx, vec![0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_operand_panics() {
        let _ = Gate::new(GateKind::Ccx, vec![0, 1, 0]);
    }

    #[test]
    fn unitaries_are_unitary() {
        for kind in [
            GateKind::One(Q1Gate::T),
            GateKind::Cx,
            GateKind::Cz,
            GateKind::Swap,
            GateKind::Csdg,
            GateKind::Ccx,
            GateKind::Ccz,
            GateKind::Cswap,
        ] {
            assert!(kind.unitary().is_unitary(1e-12), "{kind:?}");
        }
    }

    #[test]
    fn dagger_of_self_inverse_gates() {
        assert_eq!(GateKind::Cx.dagger(), GateKind::Cx);
        assert_eq!(
            GateKind::One(Q1Gate::T).dagger(),
            GateKind::One(Q1Gate::Tdg)
        );
    }

    #[test]
    fn csdg_dagger_gates_compose_to_cs() {
        let g = Gate::new(GateKind::Csdg, vec![0, 1]);
        let inv = g.dagger_gates();
        assert_eq!(inv.len(), 3);
        let mut u = waltz_math::Matrix::identity(4);
        for gate in &inv {
            u = gate.kind.unitary().matmul(&u);
        }
        assert!(u.approx_eq(&waltz_gates::standard::cs(), 1e-12));
    }
}
