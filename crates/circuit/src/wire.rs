//! Wire-format ([`waltz_codec`]) implementations for the logical IR.
//!
//! Decoding funnels through [`Gate::new`] and [`Circuit::push`], so a
//! decoded circuit satisfies the same arity/range invariants as one built
//! through the API — corrupt operand lists are a [`DecodeError`], never a
//! malformed value.

use waltz_codec::{ByteReader, ByteWriter, Decode, DecodeError, Encode};
use waltz_gates::Q1Gate;

use crate::{Circuit, Gate, GateKind};

impl Encode for GateKind {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            GateKind::One(g) => {
                w.put_u8(0);
                g.encode(w);
            }
            GateKind::Cx => w.put_u8(1),
            GateKind::Cz => w.put_u8(2),
            GateKind::Swap => w.put_u8(3),
            GateKind::Csdg => w.put_u8(4),
            GateKind::Ccx => w.put_u8(5),
            GateKind::Ccz => w.put_u8(6),
            GateKind::Cswap => w.put_u8(7),
        }
    }
}

impl Decode for GateKind {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => GateKind::One(Q1Gate::decode(r)?),
            1 => GateKind::Cx,
            2 => GateKind::Cz,
            3 => GateKind::Swap,
            4 => GateKind::Csdg,
            5 => GateKind::Ccx,
            6 => GateKind::Ccz,
            7 => GateKind::Cswap,
            tag => {
                return Err(DecodeError::BadTag {
                    ty: "GateKind",
                    tag,
                })
            }
        })
    }
}

impl Encode for Gate {
    fn encode(&self, w: &mut ByteWriter) {
        self.kind.encode(w);
        self.qubits.encode(w);
    }
}

impl Decode for Gate {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let kind = GateKind::decode(r)?;
        let qubits: Vec<usize> = Vec::decode(r)?;
        if qubits.len() != kind.arity() {
            return Err(DecodeError::Invalid("gate operand count != arity"));
        }
        for (i, a) in qubits.iter().enumerate() {
            if qubits.iter().skip(i + 1).any(|b| a == b) {
                return Err(DecodeError::Invalid("gate operands repeat"));
            }
        }
        Ok(Gate::new(kind, qubits))
    }
}

impl Encode for Circuit {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.n_qubits());
        w.put_usize(self.len());
        for g in self.iter() {
            g.encode(w);
        }
    }
}

impl Decode for Circuit {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n_qubits = r.get_usize()?;
        let len = r.get_usize()?;
        let mut c = Circuit::new(n_qubits);
        for _ in 0..len {
            let gate = Gate::decode(r)?;
            if gate.qubits.iter().any(|&q| q >= n_qubits) {
                return Err(DecodeError::Invalid("gate operand out of range"));
            }
            c.push(gate);
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use waltz_codec::{content_hash, decode_from_slice, encode_to_vec};

    use super::*;

    #[test]
    fn circuit_round_trip_is_byte_identical() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cx(0, 1)
            .one(Q1Gate::Rz(0.75), 2)
            .ccx(0, 1, 3)
            .push(Gate::new(GateKind::Cswap, vec![1, 2, 3]));
        let bytes = encode_to_vec(&c);
        let back: Circuit = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(encode_to_vec(&back), bytes);
        assert_eq!(content_hash(&back), content_hash(&c));
    }

    #[test]
    fn distinct_circuits_hash_differently() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn corrupt_operands_error_instead_of_panicking() {
        // A CX with three operands.
        let mut w = waltz_codec::ByteWriter::new();
        GateKind::Cx.encode(&mut w);
        vec![0usize, 1, 2].encode(&mut w);
        assert!(decode_from_slice::<Gate>(w.as_bytes()).is_err());

        // A gate referencing a qubit outside the circuit's width.
        let mut w = waltz_codec::ByteWriter::new();
        w.put_usize(1); // n_qubits
        w.put_usize(1); // gate count
        GateKind::Cx.encode(&mut w);
        vec![0usize, 5].encode(&mut w);
        assert!(decode_from_slice::<Circuit>(w.as_bytes()).is_err());
    }
}
