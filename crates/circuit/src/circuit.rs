//! The [`Circuit`] container and its builder API.

use std::fmt;

use waltz_gates::Q1Gate;

use crate::gate::{Gate, GateKind};

/// An ordered list of logical gates over `n` qubits.
///
/// The builder methods return `&mut Self` so circuits can be written
/// fluently:
///
/// ```
/// use waltz_circuit::Circuit;
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// assert_eq!(bell.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of logical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for &q in &gate.qubits {
            assert!(
                q < self.n_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.n_qubits
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other` (qubit indices shared).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.n_qubits <= self.n_qubits,
            "circuit too wide to append"
        );
        for g in &other.gates {
            self.push(g.clone());
        }
        self
    }

    /// Appends an arbitrary single-qubit gate.
    pub fn one(&mut self, g: Q1Gate, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::One(g), vec![q]))
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.one(Q1Gate::H, q)
    }

    /// Appends a Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.one(Q1Gate::X, q)
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.one(Q1Gate::T, q)
    }

    /// Appends a T†.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.one(Q1Gate::Tdg, q)
    }

    /// Appends a CNOT.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Cx, vec![control, target]))
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Cz, vec![a, b]))
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Swap, vec![a, b]))
    }

    /// Appends a controlled-S†.
    pub fn csdg(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Csdg, vec![control, target]))
    }

    /// Appends a Toffoli.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Ccx, vec![c1, c2, target]))
    }

    /// Appends a CCZ.
    pub fn ccz(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Ccz, vec![a, b, c]))
    }

    /// Appends a Fredkin (CSWAP).
    pub fn cswap(&mut self, control: usize, t1: usize, t2: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Cswap, vec![control, t1, t2]))
    }

    /// Gate count grouped by arity `(1q, 2q, 3q)`.
    pub fn gate_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for g in &self.gates {
            match g.arity() {
                1 => counts.0 += 1,
                2 => counts.1 += 1,
                _ => counts.2 += 1,
            }
        }
        counts
    }

    /// Number of three-qubit gates.
    pub fn three_qubit_gate_count(&self) -> usize {
        self.gate_counts().2
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gate_counts().1
    }

    /// Circuit depth: the number of ASAP moments (see [`crate::moments`]).
    pub fn depth(&self) -> usize {
        crate::moments::moments(self).len()
    }

    /// The inverse circuit: reversed gate order with each gate inverted.
    pub fn dagger(&self) -> Circuit {
        let mut out = Circuit::new(self.n_qubits);
        for g in self.gates.iter().rev() {
            for inv in g.dagger_gates() {
                out.push(inv);
            }
        }
        out
    }

    /// Returns the circuit with qubit indices remapped through `map`.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != self.n_qubits()` or a mapped index exceeds
    /// `new_width`.
    pub fn remap(&self, map: &[usize], new_width: usize) -> Circuit {
        assert_eq!(map.len(), self.n_qubits, "remap table width mismatch");
        let mut out = Circuit::new(new_width);
        for g in &self.gates {
            let qubits: Vec<usize> = g.qubits.iter().map(|&q| map[q]).collect();
            out.push(Gate::new(g.kind.clone(), qubits));
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit({} qubits, {} gates)",
            self.n_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {:?} {:?}", g.kind, g.qubits)?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccz(0, 1, 2).cswap(2, 0, 1);
        assert_eq!(c.len(), 4);
        assert_eq!(c.gate_counts(), (1, 1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.cx(0, 2);
    }

    #[test]
    fn depth_of_parallel_gates_is_one() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        assert_eq!(c.depth(), 1);
        c.cx(0, 1).cx(2, 3);
        assert_eq!(c.depth(), 2);
        c.cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn dagger_inverts_the_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cx(0, 1).csdg(1, 0).swap(0, 1);
        let u = unitary::circuit_unitary(&c);
        let udg = unitary::circuit_unitary(&c.dagger());
        assert!(u.matmul(&udg).is_identity(1e-12));
    }

    #[test]
    fn remap_moves_operands() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let r = c.remap(&[3, 1], 4);
        assert_eq!(r.gates()[0].qubits, vec![3, 1]);
        assert_eq!(r.n_qubits(), 4);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0);
        let s = format!("{c}");
        assert!(s.contains("Circuit(2 qubits, 1 gates)"));
        assert!(s.contains("One(H)"));
    }
}
