//! Three-qubit gate decompositions (paper Fig. 6 and §5.1).
//!
//! * [`ccx_to_6cx`] — the textbook 6-CNOT Toffoli (all-to-all
//!   connectivity).
//! * [`ccz_to_8cx_line`] / [`ccx_to_8cx_line`] — the 8-CNOT
//!   nearest-neighbour decomposition used by the paper's qubit-only
//!   baseline (§5.1.1, "a decomposition into eight CX operations"): only
//!   CX gates between adjacent wires of the line `a–b–c` appear.
//! * [`ccx_via_ccz`] — Fig. 6c: CCX = H(t) · CCZ · H(t).
//! * [`ccx_retargeted`] — Fig. 6b: Hadamards exchange the second control
//!   and the target ("re-targeting", §5.1.2).
//! * [`cswap_to_ccx`] / [`cswap_via_ccz`] — Fredkin expansions used by the
//!   §7.1 CSWAP case study.

use crate::Circuit;

/// Textbook 6-CNOT Toffoli decomposition (requires all-to-all coupling
/// between the three operands).
pub fn ccx_to_6cx(c1: usize, c2: usize, t: usize, width: usize) -> Circuit {
    let mut c = Circuit::new(width);
    c.h(t)
        .cx(c2, t)
        .tdg(t)
        .cx(c1, t)
        .t(t)
        .cx(c2, t)
        .tdg(t)
        .cx(c1, t)
        .t(c2)
        .t(t)
        .h(t)
        .cx(c1, c2)
        .t(c1)
        .tdg(c2)
        .cx(c1, c2);
    c
}

/// 8-CNOT CCZ on a line `a–b–c`: every CX acts between adjacent wires.
///
/// Construction: phase-polynomial form of CCZ
/// `(-1)^{abc} = exp(i pi/4 (a + b + c - a^b - a^c - b^c + a^b^c))`,
/// realized by walking the parities `a^b, a^b^c, a^c, b^c` onto wires `b`
/// and `c` with nearest-neighbour CNOTs and undoing them at the end.
pub fn ccz_to_8cx_line(a: usize, b: usize, c: usize, width: usize) -> Circuit {
    let mut k = Circuit::new(width);
    k.t(a).t(b).t(c);
    k.cx(a, b).tdg(b); // b holds a^b
    k.cx(b, c).t(c); // c holds a^b^c
    k.cx(a, b); // b holds b
    k.cx(b, c).tdg(c); // c holds a^c
    k.cx(a, b); // b holds a^b
    k.cx(b, c).tdg(c); // c holds b^c
    k.cx(a, b); // b holds b
    k.cx(b, c); // c holds c
    k
}

/// 8-CNOT Toffoli on a line `c1–c2–t` (Hadamard-conjugated
/// [`ccz_to_8cx_line`]). This is the paper's qubit-only baseline
/// decomposition: 8 two-qubit gates plus single-qubit gates.
pub fn ccx_to_8cx_line(c1: usize, c2: usize, t: usize, width: usize) -> Circuit {
    let mut k = Circuit::new(width);
    k.h(t);
    k.extend(&ccz_to_8cx_line(c1, c2, t, width));
    k.h(t);
    k
}

/// Fig. 6c: `CCX(c1, c2, t) = H(t) CCZ(c1, c2, t) H(t)` with the CCZ kept
/// as a native three-qubit gate (the compiler's "CCZ transform", §5.1.2).
pub fn ccx_via_ccz(c1: usize, c2: usize, t: usize, width: usize) -> Circuit {
    let mut c = Circuit::new(width);
    c.h(t).ccz(c1, c2, t).h(t);
    c
}

/// Fig. 6b: re-targeting — Hadamards on the second control and the target
/// exchange their roles, so the emitted Toffoli is `CCX(c1, t, c2)`.
///
/// Used when routing happens to co-locate a control with the target: the
/// compiler flips roles to reach the fast controls-together configuration.
pub fn ccx_retargeted(c1: usize, c2: usize, t: usize, width: usize) -> Circuit {
    let mut c = Circuit::new(width);
    c.h(c2).h(t).ccx(c1, t, c2).h(c2).h(t);
    c
}

/// `CSWAP(c, t1, t2) = CX(t2, t1) · CCX(c, t1, t2) · CX(t2, t1)` — the
/// standard Fredkin expansion ("two CX gates and one CCX gate", §7.1).
pub fn cswap_to_ccx(control: usize, t1: usize, t2: usize, width: usize) -> Circuit {
    let mut c = Circuit::new(width);
    c.cx(t2, t1).ccx(control, t1, t2).cx(t2, t1);
    c
}

/// Fredkin via a native CCZ: `CX(t2,t1) · H(t2) · CCZ(c,t1,t2) · H(t2) ·
/// CX(t2,t1)`.
pub fn cswap_via_ccz(control: usize, t1: usize, t2: usize, width: usize) -> Circuit {
    let mut c = Circuit::new(width);
    c.cx(t2, t1).h(t2).ccz(control, t1, t2).h(t2).cx(t2, t1);
    c
}

/// Replaces every three-qubit gate in `circuit` with its 8-CX
/// nearest-neighbour expansion (CSWAPs first expand through
/// [`cswap_to_ccx`]). The result contains only 1- and 2-qubit gates.
pub fn decompose_all_three_qubit(circuit: &Circuit) -> Circuit {
    use crate::GateKind;
    let w = circuit.n_qubits();
    let mut out = Circuit::new(w);
    for g in circuit.iter() {
        match &g.kind {
            GateKind::Ccx => {
                out.extend(&ccx_to_8cx_line(g.qubits[0], g.qubits[1], g.qubits[2], w));
            }
            GateKind::Ccz => {
                out.extend(&ccz_to_8cx_line(g.qubits[0], g.qubits[1], g.qubits[2], w));
            }
            GateKind::Cswap => {
                let (c, t1, t2) = (g.qubits[0], g.qubits[1], g.qubits[2]);
                out.cx(t2, t1);
                out.extend(&ccx_to_8cx_line(c, t1, t2, w));
                out.cx(t2, t1);
            }
            _ => {
                out.push(g.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::{circuit_unitary, equivalent};
    use crate::{Circuit, GateKind};

    fn reference(kind: GateKind, qubits: Vec<usize>, width: usize) -> Circuit {
        let mut c = Circuit::new(width);
        c.push(crate::Gate::new(kind, qubits));
        c
    }

    #[test]
    fn six_cx_toffoli_is_exact() {
        let built = ccx_to_6cx(0, 1, 2, 3);
        let reference = reference(GateKind::Ccx, vec![0, 1, 2], 3);
        assert!(equivalent(&built, &reference, 1e-12));
        assert_eq!(built.two_qubit_gate_count(), 6);
    }

    #[test]
    fn eight_cx_ccz_is_exact_and_nearest_neighbour() {
        let built = ccz_to_8cx_line(0, 1, 2, 3);
        let reference = reference(GateKind::Ccz, vec![0, 1, 2], 3);
        assert!(equivalent(&built, &reference, 1e-12));
        assert_eq!(built.two_qubit_gate_count(), 8);
        // Nearest neighbour on the line 0-1-2: no CX between 0 and 2.
        for g in built.iter() {
            if g.arity() == 2 {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                assert_eq!((a as i64 - b as i64).abs(), 1, "non-adjacent CX {a},{b}");
            }
        }
    }

    #[test]
    fn eight_cx_toffoli_is_exact() {
        let built = ccx_to_8cx_line(0, 1, 2, 3);
        let reference = reference(GateKind::Ccx, vec![0, 1, 2], 3);
        assert!(equivalent(&built, &reference, 1e-12));
        assert_eq!(built.two_qubit_gate_count(), 8);
    }

    #[test]
    fn eight_cx_works_for_scrambled_operands() {
        let built = ccx_to_8cx_line(2, 0, 1, 3);
        let reference = reference(GateKind::Ccx, vec![2, 0, 1], 3);
        assert!(equivalent(&built, &reference, 1e-12));
    }

    #[test]
    fn ccx_via_ccz_is_exact() {
        let built = ccx_via_ccz(0, 1, 2, 3);
        let reference = reference(GateKind::Ccx, vec![0, 1, 2], 3);
        assert!(equivalent(&built, &reference, 1e-12));
    }

    #[test]
    fn retargeting_is_exact() {
        let built = ccx_retargeted(0, 1, 2, 3);
        let want = reference(GateKind::Ccx, vec![0, 1, 2], 3);
        assert!(equivalent(&built, &want, 1e-12));
        // And in a wider circuit with different roles.
        let built = ccx_retargeted(3, 0, 2, 4);
        let want = reference(GateKind::Ccx, vec![3, 0, 2], 4);
        assert!(equivalent(&built, &want, 1e-12));
    }

    #[test]
    fn cswap_expansions_are_exact() {
        let reference = reference(GateKind::Cswap, vec![0, 1, 2], 3);
        assert!(equivalent(&cswap_to_ccx(0, 1, 2, 3), &reference, 1e-12));
        assert!(equivalent(&cswap_via_ccz(0, 1, 2, 3), &reference, 1e-12));
    }

    #[test]
    fn full_decomposition_removes_three_qubit_gates() {
        let mut c = Circuit::new(4);
        c.h(0).ccx(0, 1, 2).cswap(3, 1, 0).ccz(1, 2, 3).cx(0, 3);
        let d = decompose_all_three_qubit(&c);
        assert_eq!(d.three_qubit_gate_count(), 0);
        assert!(equivalent(&c, &d, 1e-12));
    }

    #[test]
    fn ccz_is_symmetric_in_its_operands() {
        for perm in [[0, 1, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let built = ccz_to_8cx_line(perm[0], perm[1], perm[2], 3);
            let reference = reference(GateKind::Ccz, vec![0, 1, 2], 3);
            assert!(equivalent(&built, &reference, 1e-12), "perm {perm:?}");
        }
    }

    #[test]
    fn gate_counts_match_paper_shape() {
        // §5.1.1: "eight two-qubit gates and 14 one-qubit gates" for the
        // qubit-only Toffoli. Our phase-polynomial variant uses 8 CX and 9
        // one-qubit gates — the same two-qubit cost, which is what the
        // fidelity model keys on.
        let built = ccx_to_8cx_line(0, 1, 2, 3);
        let (oneq, twoq, threeq) = built.gate_counts();
        assert_eq!(twoq, 8);
        assert_eq!(threeq, 0);
        assert!(oneq >= 9);
        let u = circuit_unitary(&built);
        assert!(u.is_unitary(1e-12));
    }
}
