//! Dense reference semantics for logical circuits (small qubit counts).
//!
//! Used by tests across the workspace to verify that decompositions and
//! compiled circuits implement the same operator. Exponential in qubit
//! count — intended for `n <= ~12`.

use waltz_math::{Matrix, C64};

use crate::{Circuit, Gate};

/// Applies `gate` to an `n`-qubit state vector (qubit 0 most significant).
///
/// # Panics
///
/// Panics if the state length is not `2^n` for some `n` covering all
/// operands.
pub fn apply_gate(state: &mut [C64], gate: &Gate, n_qubits: usize) {
    assert_eq!(state.len(), 1 << n_qubits, "state length mismatch");
    let u = gate.kind.unitary();
    let k = gate.arity();
    let block = 1 << k;
    // Bit position (from the left / MSB) of each operand.
    let shifts: Vec<usize> = gate.qubits.iter().map(|&q| n_qubits - 1 - q).collect();

    // Iterate over all assignments of the non-operand bits.
    let mask: usize = shifts.iter().fold(0, |m, &s| m | (1 << s));
    let mut scratch = vec![C64::ZERO; block];
    let full = 1 << n_qubits;
    let mut base = 0usize;
    loop {
        // `base` has zeros in all operand bit positions.
        for (sub, slot) in scratch.iter_mut().enumerate() {
            let mut idx = base;
            for (j, &s) in shifts.iter().enumerate() {
                if (sub >> (k - 1 - j)) & 1 == 1 {
                    idx |= 1 << s;
                }
            }
            *slot = state[idx];
        }
        for row in 0..block {
            let mut acc = C64::ZERO;
            for (col, &amp) in scratch.iter().enumerate() {
                let coeff = u[(row, col)];
                if coeff != C64::ZERO {
                    acc += coeff * amp;
                }
            }
            let mut idx = base;
            for (j, &s) in shifts.iter().enumerate() {
                if (row >> (k - 1 - j)) & 1 == 1 {
                    idx |= 1 << s;
                }
            }
            state[idx] = acc;
        }
        // Advance `base` skipping operand bits (carry trick).
        base = (base | mask).wrapping_add(1) & !mask;
        if base == 0 || base >= full {
            break;
        }
    }
}

/// Applies the whole circuit to a state vector.
pub fn apply_circuit(state: &mut [C64], circuit: &Circuit) {
    for g in circuit.iter() {
        apply_gate(state, g, circuit.n_qubits());
    }
}

/// The full `2^n x 2^n` unitary of a circuit.
pub fn circuit_unitary(circuit: &Circuit) -> Matrix {
    let n = circuit.n_qubits();
    let dim = 1usize << n;
    let mut m = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let mut state = vec![C64::ZERO; dim];
        state[col] = C64::ONE;
        apply_circuit(&mut state, circuit);
        for row in 0..dim {
            m[(row, col)] = state[row];
        }
    }
    m
}

/// Checks that two circuits implement the same unitary within `tol`,
/// ignoring global phase.
pub fn equivalent(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    assert_eq!(a.n_qubits(), b.n_qubits(), "width mismatch");
    circuit_unitary(a).approx_eq_up_to_phase(&circuit_unitary(b), tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;
    use waltz_gates::standard;

    #[test]
    fn single_gate_unitary_matches_kron_embedding() {
        // X on qubit 1 of 3: I (x) X (x) I.
        let mut c = Circuit::new(3);
        c.x(1);
        let expected = Matrix::identity(2)
            .kron(&standard::x())
            .kron(&Matrix::identity(2));
        assert!(circuit_unitary(&c).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn cx_on_non_adjacent_bits() {
        // CX(control=2, target=0) on 3 qubits.
        let mut c = Circuit::new(3);
        c.cx(2, 0);
        let u = circuit_unitary(&c);
        // |001> (idx 1) -> |101> (idx 5)
        let mut v = vec![C64::ZERO; 8];
        v[1] = C64::ONE;
        let out = u.apply(&v);
        assert!(out[5].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn bell_circuit_produces_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut state = vec![C64::ZERO; 4];
        state[0] = C64::ONE;
        apply_circuit(&mut state, &c);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(state[0].approx_eq(C64::real(r), 1e-12));
        assert!(state[3].approx_eq(C64::real(r), 1e-12));
        assert!(state[1].abs() < 1e-12 && state[2].abs() < 1e-12);
    }

    #[test]
    fn ccx_with_scrambled_operands() {
        // CCX(2, 0, 1): controls qubits 2 and 0, target 1.
        let mut c = Circuit::new(3);
        c.ccx(2, 0, 1);
        let u = circuit_unitary(&c);
        // |101> (q0=1, q1=0, q2=1): controls (q2=1, q0=1) set -> flip q1 -> |111>.
        let mut v = vec![C64::ZERO; 8];
        v[0b101] = C64::ONE;
        assert!(u.apply(&v)[0b111].approx_eq(C64::ONE, 1e-12));
        // |100>: control q2=0 -> unchanged.
        let mut v = vec![C64::ZERO; 8];
        v[0b100] = C64::ONE;
        assert!(u.apply(&v)[0b100].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn unitary_is_unitary_for_random_circuit() {
        let mut c = Circuit::new(4);
        c.h(0).t(1).cx(1, 2).ccz(0, 2, 3).cswap(3, 0, 1).swap(1, 3);
        assert!(circuit_unitary(&c).is_unitary(1e-12));
    }

    #[test]
    fn equivalence_detects_equal_and_unequal() {
        let mut a = Circuit::new(2);
        a.h(0).h(0);
        let b = Circuit::new(2);
        assert!(equivalent(&a, &b, 1e-12));
        let mut c = Circuit::new(2);
        c.x(0);
        assert!(!equivalent(&a, &c, 1e-12));
    }

    #[test]
    fn swap_matches_gate_kind_unitary() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert!(circuit_unitary(&c).approx_eq(&GateKind::Swap.unitary(), 1e-12));
    }
}
