//! Logical quantum circuit IR for the Quantum Waltz compiler.
//!
//! Circuits here are written over *logical qubits* — exactly what "the
//! general programmer" writes in the paper's flow (§5.2); all translation
//! to ququart hardware happens later in `waltz-core`. The IR supports the
//! paper's native gate set after decomposition: parameterized single-qubit
//! rotations, `CX`/`CZ`/`SWAP`/`CS†`, and the three-qubit `CCX`/`CCZ`/
//! `CSWAP` (§5.2: "we decompose to the CX, CCX, CCZ or CSWAP along with a
//! parameterized single-qubit rotation gate").
//!
//! [`decompose`] implements every decomposition the paper uses (Fig. 6 and
//! §5.1): the 8-CX nearest-neighbour Toffoli, the CCZ form, the
//! iToffoli-with-CS† form, Hadamard retargeting and CSWAP expansions.
//!
//! # Example
//!
//! ```
//! use waltz_circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).ccx(0, 1, 2);
//! assert_eq!(c.len(), 3);
//! assert_eq!(c.three_qubit_gate_count(), 1);
//! ```

#![warn(missing_docs)]

mod circuit;
mod gate;
mod wire;

pub mod decompose;
pub mod moments;
pub mod unitary;

pub use circuit::Circuit;
pub use gate::{Gate, GateKind};
pub use waltz_gates::Q1Gate;
