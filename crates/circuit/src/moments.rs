//! ASAP moment scheduling of logical circuits.
//!
//! Moments drive two things: circuit depth, and the paper's mapping weight
//! function `w(i, j) = sum_t o(i, j, t) / t` (§5.2), whose lookahead decay
//! needs each gate's time step.

use crate::{Circuit, Gate};

/// Greedy as-soon-as-possible layering: each gate lands in the earliest
/// moment after the previous use of all of its operands.
///
/// # Example
///
/// ```
/// use waltz_circuit::{moments, Circuit};
/// let mut c = Circuit::new(3);
/// c.h(0).h(1).cx(0, 1).h(2);
/// let layers = moments::moments(&c);
/// assert_eq!(layers.len(), 2);
/// assert_eq!(layers[0].len(), 3); // h(0), h(1), h(2)
/// ```
pub fn moments(circuit: &Circuit) -> Vec<Vec<&Gate>> {
    let mut frontier = vec![0usize; circuit.n_qubits()];
    let mut layers: Vec<Vec<&Gate>> = Vec::new();
    for gate in circuit.iter() {
        let slot = gate.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
        if slot == layers.len() {
            layers.push(Vec::new());
        }
        layers[slot].push(gate);
        for &q in &gate.qubits {
            frontier[q] = slot + 1;
        }
    }
    layers
}

/// The moment index of every gate, aligned with `circuit.gates()`.
pub fn moment_of_each_gate(circuit: &Circuit) -> Vec<usize> {
    let mut frontier = vec![0usize; circuit.n_qubits()];
    let mut out = Vec::with_capacity(circuit.len());
    for gate in circuit.iter() {
        let slot = gate.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
        out.push(slot);
        for &q in &gate.qubits {
            frontier[q] = slot + 1;
        }
    }
    out
}

/// The paper's §5.2 interaction weight matrix with lookahead decay:
/// `w(i, j) = sum over gates g containing both i and j of 1 / (t_g + 1)`
/// where `t_g` is the gate's moment (1-based in the paper; we use `t + 1`
/// to avoid dividing by zero for the first moment).
pub fn interaction_weights(circuit: &Circuit) -> Vec<Vec<f64>> {
    let n = circuit.n_qubits();
    let mut w = vec![vec![0.0f64; n]; n];
    let moments_idx = moment_of_each_gate(circuit);
    for (gate, &t) in circuit.iter().zip(moments_idx.iter()) {
        let decay = 1.0 / (t as f64 + 1.0);
        for (i, &a) in gate.qubits.iter().enumerate() {
            for &b in gate.qubits.iter().skip(i + 1) {
                w[a][b] += decay;
                w[b][a] += decay;
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_has_one_gate_per_moment() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).cx(0, 1);
        let layers = moments(&c);
        assert_eq!(layers.len(), 3);
        assert!(layers.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn three_qubit_gate_blocks_all_operands() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).h(0).h(1).h(2);
        let layers = moments(&c);
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[1].len(), 3);
    }

    #[test]
    fn moment_indices_align_with_layers() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).h(2).ccz(0, 1, 2);
        let idx = moment_of_each_gate(&c);
        assert_eq!(idx, vec![0, 1, 0, 2]);
    }

    #[test]
    fn weights_decay_with_time() {
        let mut c = Circuit::new(3);
        c.cx(0, 1); // moment 0: weight 1
        c.cx(1, 2); // moment 1: weight 1/2
        let w = interaction_weights(&c);
        assert!((w[0][1] - 1.0).abs() < 1e-12);
        assert!((w[1][2] - 0.5).abs() < 1e-12);
        assert_eq!(w[0][2], 0.0);
        // Symmetry.
        assert_eq!(w[0][1], w[1][0]);
    }

    #[test]
    fn three_qubit_gate_weights_all_pairs() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let w = interaction_weights(&c);
        assert!(w[0][1] > 0.0 && w[0][2] > 0.0 && w[1][2] > 0.0);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(3);
        assert!(moments(&c).is_empty());
        assert_eq!(c.depth(), 0);
    }
}
