//! Physical device coupling graphs.

use std::collections::VecDeque;

/// The family a [`Topology`] was generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 1D chain.
    Line,
    /// 2D mesh with nearest-neighbour coupling (the paper's evaluation
    /// target, §6.2).
    Grid,
    /// IBM-style heavy-hex lattice (sparser than the mesh).
    HeavyHex,
    /// All-to-all coupling.
    FullyConnected,
}

/// An undirected device coupling graph.
///
/// # Example
///
/// ```
/// use waltz_arch::Topology;
/// let grid = Topology::grid(9); // 3 x 3 mesh
/// assert_eq!(grid.n_devices(), 9);
/// assert!(grid.are_adjacent(0, 1));
/// assert!(grid.are_adjacent(0, 3));
/// assert!(!grid.are_adjacent(0, 4)); // no diagonals
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    n_devices: usize,
    adjacency: Vec<Vec<usize>>,
}

impl Topology {
    /// Rebuilds a topology from its edge list — the wire-format decode
    /// path (`wire.rs`); the public constructors stay the only way to
    /// *author* a topology.
    pub(crate) fn from_parts(
        kind: TopologyKind,
        n_devices: usize,
        edges: &[(usize, usize)],
    ) -> Self {
        Topology::from_edges(kind, n_devices, edges)
    }

    fn from_edges(kind: TopologyKind, n_devices: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); n_devices];
        for &(a, b) in edges {
            assert!(
                a < n_devices && b < n_devices && a != b,
                "bad edge ({a},{b})"
            );
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for l in &mut adjacency {
            l.sort_unstable();
        }
        Topology {
            kind,
            n_devices,
            adjacency,
        }
    }

    /// 1D chain of `n` devices.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::from_edges(TopologyKind::Line, n, &edges)
    }

    /// The paper's 2D mesh for `n` devices: `ceil(sqrt(n))` columns, row
    /// major, nearest-neighbour coupling (§6.2).
    pub fn grid(n: usize) -> Self {
        let cols = (n as f64).sqrt().ceil() as usize;
        Topology::grid_dims(n, cols.max(1))
    }

    /// A 2D mesh with `n` devices laid out row-major over `cols` columns.
    pub fn grid_dims(n: usize, cols: usize) -> Self {
        assert!(cols >= 1, "grid needs at least one column");
        let mut edges = Vec::new();
        for i in 0..n {
            let (r, c) = (i / cols, i % cols);
            if c + 1 < cols && i + 1 < n {
                edges.push((i, i + 1));
            }
            if i + cols < n {
                edges.push((i, i + cols));
            }
            let _ = r;
        }
        Topology::from_edges(TopologyKind::Grid, n, &edges)
    }

    /// A simplified IBM-style heavy-hex lattice covering at least `n`
    /// devices: rows of length `cols` joined by bridge devices every four
    /// columns with the row-parity offset of the heavy-hex unit cell.
    pub fn heavy_hex(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        // Row qubits: rows x cols, then bridges appended.
        let row_site = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 1..cols {
                edges.push((row_site(r, c - 1), row_site(r, c)));
            }
        }
        let mut next = rows * cols;
        for r in 1..rows {
            let offset = if r % 2 == 1 { 0 } else { 2 };
            let mut c = offset;
            while c < cols {
                edges.push((row_site(r - 1, c), next));
                edges.push((next, row_site(r, c)));
                next += 1;
                c += 4;
            }
        }
        Topology::from_edges(TopologyKind::HeavyHex, next, &edges)
    }

    /// All-to-all coupling of `n` devices.
    pub fn fully_connected(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        Topology::from_edges(TopologyKind::FullyConnected, n, &edges)
    }

    /// Which family this topology came from.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Neighbours of a device, sorted.
    pub fn neighbors(&self, device: usize) -> &[usize] {
        &self.adjacency[device]
    }

    /// Whether two devices share a coupler.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// All-pairs hop distances by BFS. `usize::MAX` marks disconnected
    /// pairs.
    pub fn distances(&self) -> Vec<Vec<usize>> {
        (0..self.n_devices).map(|s| self.bfs(s)).collect()
    }

    fn bfs(&self, start: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n_devices];
        dist[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(d) = queue.pop_front() {
            for &n in &self.adjacency[d] {
                if dist[n] == usize::MAX {
                    dist[n] = dist[d] + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// The device minimizing total distance to all others — where the
    /// paper's mapper places the heaviest-weight qubit ("the center-most
    /// qudit", §5.2).
    pub fn center(&self) -> usize {
        let dist = self.distances();
        (0..self.n_devices)
            .min_by_key(|&d| {
                dist[d]
                    .iter()
                    .map(|&x| if x == usize::MAX { 1_000_000 } else { x })
                    .sum::<usize>()
            })
            .expect("topology has at least one device")
    }

    /// Whether every device can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.n_devices == 0 {
            return true;
        }
        self.bfs(0).iter().all(|&d| d != usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = Topology::line(5);
        assert!(t.are_adjacent(0, 1) && t.are_adjacent(3, 4));
        assert!(!t.are_adjacent(0, 2));
        assert_eq!(t.neighbors(2), &[1, 3]);
        assert_eq!(t.distances()[0][4], 4);
        assert_eq!(t.center(), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn grid_dimensions_match_paper_formula() {
        // n = 10 -> ceil(sqrt(10)) = 4 columns.
        let t = Topology::grid(10);
        assert_eq!(t.n_devices(), 10);
        assert!(t.are_adjacent(0, 1));
        assert!(t.are_adjacent(0, 4));
        assert!(!t.are_adjacent(3, 4)); // row wrap is not an edge
        assert!(t.is_connected());
    }

    #[test]
    fn grid_has_no_diagonal_edges() {
        let t = Topology::grid(9);
        assert!(!t.are_adjacent(0, 4));
        assert!(!t.are_adjacent(1, 3));
        // 3x3 grid: corner degree 2, center degree 4.
        assert_eq!(t.neighbors(0).len(), 2);
        assert_eq!(t.neighbors(4).len(), 4);
        assert_eq!(t.center(), 4);
    }

    #[test]
    fn heavy_hex_is_sparser_than_grid() {
        let hh = Topology::heavy_hex(3, 8);
        assert!(hh.is_connected());
        let max_degree = (0..hh.n_devices())
            .map(|d| hh.neighbors(d).len())
            .max()
            .unwrap();
        assert!(max_degree <= 3, "heavy-hex degree must be <= 3");
    }

    #[test]
    fn fully_connected_distances_are_one() {
        let t = Topology::fully_connected(5);
        let d = t.distances();
        for (a, row) in d.iter().enumerate() {
            for (b, &dist) in row.iter().enumerate() {
                assert_eq!(dist, usize::from(a != b));
            }
        }
    }

    #[test]
    fn single_device_topologies() {
        for t in [
            Topology::line(1),
            Topology::grid(1),
            Topology::fully_connected(1),
        ] {
            assert_eq!(t.n_devices(), 1);
            assert!(t.is_connected());
            assert_eq!(t.center(), 0);
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let t = Topology::grid(12);
        for a in 0..12 {
            for b in 0..12 {
                assert_eq!(t.are_adjacent(a, b), t.are_adjacent(b, a));
            }
        }
    }
}
