//! Device topologies and the qubits-on-ququarts interaction graph
//! (paper §4.1, §6.2, Fig. 3).
//!
//! The evaluation hardware is a 2D mesh of dimensions
//! `ceil(sqrt(n)) x ceil(n / ceil(sqrt(n)))` with nearest-neighbour
//! coupling (§6.2) — denser than IBM's heavy-hex, comparable to Google's
//! Sycamore. [`Topology`] also provides lines, heavy-hex and
//! fully-connected graphs for comparison studies.
//!
//! [`InteractionGraph`] expands each physical device into its encoded
//! *slots*: with two qubits per ququart every slot is connected to its
//! sibling slot (internal gates) and to all slots of neighbouring devices
//! (mixed-radix / full-ququart gates), producing the triangle connectivity
//! of Fig. 3.

#![warn(missing_docs)]

mod interaction;
mod topology;
mod wire;

pub use interaction::{InteractionGraph, Site};
pub use topology::{Topology, TopologyKind};
