//! Wire-format ([`waltz_codec`]) implementations for the architecture
//! types.
//!
//! A [`Topology`] travels as its kind, device count and canonical edge
//! list (each edge once, `a < b`, ascending); decode rebuilds the
//! adjacency lists through the same path the public constructors use, so
//! a round-tripped topology is structurally identical to the original.

use waltz_codec::{ByteReader, ByteWriter, Decode, DecodeError, Encode};

use crate::{Site, Topology, TopologyKind};

impl Encode for TopologyKind {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            TopologyKind::Line => 0,
            TopologyKind::Grid => 1,
            TopologyKind::HeavyHex => 2,
            TopologyKind::FullyConnected => 3,
        });
    }
}

impl Decode for TopologyKind {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => TopologyKind::Line,
            1 => TopologyKind::Grid,
            2 => TopologyKind::HeavyHex,
            3 => TopologyKind::FullyConnected,
            tag => {
                return Err(DecodeError::BadTag {
                    ty: "TopologyKind",
                    tag,
                })
            }
        })
    }
}

impl Encode for Topology {
    fn encode(&self, w: &mut ByteWriter) {
        self.kind().encode(w);
        w.put_usize(self.n_devices());
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for a in 0..self.n_devices() {
            for &b in self.neighbors(a) {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        edges.encode(w);
    }
}

impl Decode for Topology {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let kind = TopologyKind::decode(r)?;
        let n_devices = r.get_usize()?;
        let edges: Vec<(usize, usize)> = Vec::decode(r)?;
        if edges
            .iter()
            .any(|&(a, b)| a >= n_devices || b >= n_devices || a == b)
        {
            return Err(DecodeError::Invalid("topology edge out of range"));
        }
        Ok(Topology::from_parts(kind, n_devices, &edges))
    }
}

impl Encode for Site {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.device);
        w.put_usize(self.slot);
    }
}

impl Decode for Site {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let device = r.get_usize()?;
        let slot = r.get_usize()?;
        Ok(Site::new(device, slot))
    }
}

#[cfg(test)]
mod tests {
    use waltz_codec::{decode_from_slice, encode_to_vec};

    use super::*;

    #[test]
    fn topologies_round_trip_structurally() {
        for topo in [
            Topology::line(5),
            Topology::grid(9),
            Topology::heavy_hex(2, 3),
            Topology::fully_connected(4),
        ] {
            let bytes = encode_to_vec(&topo);
            let back: Topology = decode_from_slice(&bytes).unwrap();
            assert_eq!(back.kind(), topo.kind());
            assert_eq!(back.n_devices(), topo.n_devices());
            for d in 0..topo.n_devices() {
                assert_eq!(back.neighbors(d), topo.neighbors(d));
            }
            assert_eq!(encode_to_vec(&back), bytes);
        }
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let bytes = encode_to_vec(&Topology::line(3));
        // Rebuild with a device count smaller than the edges reference.
        let mut w = waltz_codec::ByteWriter::new();
        TopologyKind::Line.encode(&mut w);
        w.put_usize(1);
        vec![(0usize, 2usize)].encode(&mut w);
        assert!(decode_from_slice::<Topology>(w.as_bytes()).is_err());
        // The untampered bytes still decode.
        assert!(decode_from_slice::<Topology>(&bytes).is_ok());
    }

    #[test]
    fn site_round_trips() {
        let s = Site::new(3, 1);
        let back: Site = decode_from_slice(&encode_to_vec(&s)).unwrap();
        assert_eq!(back, s);
    }
}
