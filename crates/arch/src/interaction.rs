//! The interaction graph: encoded slots over physical devices (§5.1).
//!
//! "We expand the physical connectivity graph between the ququarts … and
//! treat each ququart as two connected qubits. Each qubit in the expanded
//! ququart is fully connected to the qubits in the neighboring ququarts."

use crate::Topology;

/// A location a logical qubit can occupy: a (device, slot) pair.
///
/// Qubit-only interaction graphs have one slot per device; encoded graphs
/// have two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Site {
    /// Physical device index.
    pub device: usize,
    /// Slot within the device (0 for bare qubits; 0/1 for ququarts).
    pub slot: usize,
}

impl Site {
    /// Creates a site.
    pub fn new(device: usize, slot: usize) -> Self {
        Site { device, slot }
    }
}

/// The expanded connectivity graph the compiler maps and routes on.
///
/// # Example
///
/// ```
/// use waltz_arch::{InteractionGraph, Topology};
/// use waltz_arch::Site;
///
/// let g = InteractionGraph::encoded(Topology::line(3));
/// assert_eq!(g.n_sites(), 6);
/// // Sibling slots are adjacent (internal gates)...
/// assert!(g.adjacent(Site::new(0, 0), Site::new(0, 1)));
/// // ...and every slot couples to both slots of a neighbouring device.
/// assert!(g.adjacent(Site::new(0, 1), Site::new(1, 0)));
/// assert!(!g.adjacent(Site::new(0, 0), Site::new(2, 0)));
/// ```
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    topology: Topology,
    slots_per_device: usize,
}

impl InteractionGraph {
    /// One slot per device: the plain qubit connectivity graph.
    pub fn qubit_only(topology: Topology) -> Self {
        InteractionGraph {
            topology,
            slots_per_device: 1,
        }
    }

    /// Two slots per device: the qubits-on-ququarts graph of Fig. 3.
    pub fn encoded(topology: Topology) -> Self {
        InteractionGraph {
            topology,
            slots_per_device: 2,
        }
    }

    /// The underlying device topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Slots per device (1 or 2).
    pub fn slots_per_device(&self) -> usize {
        self.slots_per_device
    }

    /// Total number of sites.
    pub fn n_sites(&self) -> usize {
        self.topology.n_devices() * self.slots_per_device
    }

    /// Linear index of a site (row-major: `device * slots + slot`).
    pub fn index_of(&self, site: Site) -> usize {
        debug_assert!(site.slot < self.slots_per_device);
        site.device * self.slots_per_device + site.slot
    }

    /// Site from a linear index.
    pub fn site_at(&self, index: usize) -> Site {
        Site::new(index / self.slots_per_device, index % self.slots_per_device)
    }

    /// All sites.
    pub fn sites(&self) -> impl Iterator<Item = Site> + '_ {
        (0..self.n_sites()).map(|i| self.site_at(i))
    }

    /// Whether a one-pulse interaction exists between two sites: sibling
    /// slots of one device, or any slots of coupled devices.
    pub fn adjacent(&self, a: Site, b: Site) -> bool {
        if a == b {
            return false;
        }
        if a.device == b.device {
            return true; // internal gate
        }
        self.topology.are_adjacent(a.device, b.device)
    }

    /// Sites reachable from `a` in one interaction.
    pub fn neighbors(&self, a: Site) -> Vec<Site> {
        let mut out = Vec::new();
        for s in 0..self.slots_per_device {
            if s != a.slot {
                out.push(Site::new(a.device, s));
            }
        }
        for &d in self.topology.neighbors(a.device) {
            for s in 0..self.slots_per_device {
                out.push(Site::new(d, s));
            }
        }
        out
    }

    /// All-pairs weighted distances between sites: internal hops cost
    /// `internal_cost`, inter-device hops cost `external_cost`.
    ///
    /// This is the paper's "specialized fidelity function … estimating the
    /// possibility of error along the communication path" (§5.2): with
    /// `internal_cost` ≈ the internal-SWAP error and `external_cost` ≈ the
    /// inter-device SWAP error, shortest paths prefer cheap internal moves.
    ///
    /// Uses Floyd–Warshall (site counts stay ≤ a few hundred).
    pub fn distances(&self, internal_cost: f64, external_cost: f64) -> Vec<Vec<f64>> {
        let n = self.n_sites();
        let mut dist = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in dist.iter_mut().enumerate() {
            row[i] = 0.0;
            let a = self.site_at(i);
            for b in self.neighbors(a) {
                let cost = if a.device == b.device {
                    internal_cost
                } else {
                    external_cost
                };
                row[self.index_of(b)] = cost;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if dist[i][k].is_infinite() {
                    continue;
                }
                for j in 0..n {
                    let through = dist[i][k] + dist[k][j];
                    if through < dist[i][j] {
                        dist[i][j] = through;
                    }
                }
            }
        }
        dist
    }

    /// Unweighted hop distances between sites.
    pub fn hop_distances(&self) -> Vec<Vec<f64>> {
        self.distances(1.0, 1.0)
    }

    /// The site at the center device, slot 0 — the paper's initial
    /// placement anchor (§5.2).
    pub fn center_site(&self) -> Site {
        Site::new(self.topology.center(), 0)
    }

    /// Counts triangles of mutually adjacent sites that span exactly two
    /// devices — the three-qubit interaction surfaces of Fig. 3.
    pub fn two_device_triangles(&self) -> usize {
        let mut count = 0;
        let n = self.n_sites();
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    let (a, b, c) = (self.site_at(i), self.site_at(j), self.site_at(k));
                    let devices = {
                        let mut d = [a.device, b.device, c.device];
                        d.sort_unstable();
                        d.windows(2).filter(|w| w[0] != w[1]).count() + 1
                    };
                    if devices == 2
                        && self.adjacent(a, b)
                        && self.adjacent(b, c)
                        && self.adjacent(a, c)
                    {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_only_matches_topology() {
        let g = InteractionGraph::qubit_only(Topology::line(4));
        assert_eq!(g.n_sites(), 4);
        assert!(g.adjacent(Site::new(0, 0), Site::new(1, 0)));
        assert!(!g.adjacent(Site::new(0, 0), Site::new(2, 0)));
        assert_eq!(g.neighbors(Site::new(1, 0)).len(), 2);
    }

    #[test]
    fn encoded_graph_doubles_sites() {
        let g = InteractionGraph::encoded(Topology::line(3));
        assert_eq!(g.n_sites(), 6);
        // Internal adjacency.
        assert!(g.adjacent(Site::new(1, 0), Site::new(1, 1)));
        // Full bipartite coupling between neighbouring devices' slots.
        for sa in 0..2 {
            for sb in 0..2 {
                assert!(g.adjacent(Site::new(0, sa), Site::new(1, sb)));
            }
        }
    }

    #[test]
    fn site_index_round_trip() {
        let g = InteractionGraph::encoded(Topology::grid(6));
        for i in 0..g.n_sites() {
            assert_eq!(g.index_of(g.site_at(i)), i);
        }
    }

    #[test]
    fn encoding_creates_triangles() {
        // Fig. 3: a qubit-only line has no triangles; the encoded line has
        // many two-device triangles.
        let bare = InteractionGraph::qubit_only(Topology::line(3));
        assert_eq!(bare.two_device_triangles(), 0);
        let enc = InteractionGraph::encoded(Topology::line(3));
        // Each device pair contributes 4 triangles (2 internal-pair choices
        // x 2 opposite slots): 2 pairs x 4 = 8.
        assert_eq!(enc.two_device_triangles(), 8);
    }

    #[test]
    fn weighted_distances_prefer_internal_moves() {
        let g = InteractionGraph::encoded(Topology::line(3));
        let d = g.distances(0.1, 1.0);
        let i00 = g.index_of(Site::new(0, 0));
        let i01 = g.index_of(Site::new(0, 1));
        let i10 = g.index_of(Site::new(1, 0));
        assert!((d[i00][i01] - 0.1).abs() < 1e-12);
        assert!((d[i00][i10] - 1.0).abs() < 1e-12);
        // Distance is a metric: triangle inequality on a sample.
        let i21 = g.index_of(Site::new(2, 1));
        assert!(d[i00][i21] <= d[i00][i10] + d[i10][i21] + 1e-12);
    }

    #[test]
    fn hop_distance_growth_along_line() {
        let g = InteractionGraph::encoded(Topology::line(4));
        let d = g.hop_distances();
        let at = |dev: usize| g.index_of(Site::new(dev, 0));
        assert_eq!(d[at(0)][at(3)], 3.0);
        assert_eq!(d[at(0)][at(1)], 1.0);
    }

    #[test]
    fn center_site_is_on_center_device() {
        let g = InteractionGraph::encoded(Topology::grid(9));
        assert_eq!(g.center_site().device, 4);
        assert_eq!(g.center_site().slot, 0);
    }

    #[test]
    fn connectivity_advantage_over_qubit_only() {
        // §3.4: between two ququarts there are four fully connected
        // computational qubits.
        let g = InteractionGraph::encoded(Topology::line(2));
        let sites: Vec<Site> = g.sites().collect();
        for (i, &a) in sites.iter().enumerate() {
            for &b in sites.iter().skip(i + 1) {
                assert!(g.adjacent(a, b), "{a:?} {b:?} should be adjacent");
            }
        }
    }
}
