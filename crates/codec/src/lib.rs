//! The Quantum Waltz wire format: a self-contained versioned binary codec.
//!
//! The sanctioned dependency set contains no serialization crates, so this
//! crate hand-rolls the persistence substrate the rest of the workspace
//! builds on:
//!
//! * [`Encode`] / [`Decode`] — the codec traits every persistent artifact
//!   type implements (`waltz_math::Matrix` up through
//!   `waltz_core::CompileArtifact`).
//! * [`ByteWriter`] / [`ByteReader`] — a little-endian byte stream with
//!   length-prefixed collections and strings; floats travel as IEEE-754
//!   bit patterns ([`f64::to_bits`]) so round trips are bit-exact, NaN
//!   payloads included.
//! * [`encode_versioned`] / [`decode_versioned`] — the on-disk envelope:
//!   magic + [`CODEC_VERSION`] + payload. Readers reject foreign magic and
//!   mismatched versions instead of misinterpreting bytes.
//! * [`fnv1a64`] / [`content_hash`] — the stable 64-bit content hash
//!   (FNV-1a over the canonical encoding) that content-addressed caches
//!   key on.
//!
//! # Determinism contract
//!
//! The canonical encoding of a value is a pure function of its contents:
//! no timestamps, no pointers, no platform-dependent layout. Every
//! implementation must satisfy `encode(decode(encode(x))) == encode(x)`
//! byte-for-byte — the workspace pins this with proptest round-trip suites
//! and a golden-bytes fixture keyed to [`CODEC_VERSION`].
//!
//! # Versioning policy
//!
//! [`CODEC_VERSION`] names the format of *every* type at once: any change
//! to any canonical encoding (field added, reordered, widened) must bump
//! it and regenerate the golden fixture. There is no in-band migration —
//! a cache entry written by another version is simply a miss.
//!
//! # Example
//!
//! ```
//! use waltz_codec::{decode_versioned, encode_versioned, content_hash};
//!
//! let v: Vec<u64> = vec![3, 1, 4, 1, 5];
//! let bytes = encode_versioned(&v);
//! let back: Vec<u64> = decode_versioned(&bytes).unwrap();
//! assert_eq!(back, v);
//! assert_eq!(content_hash(&back), content_hash(&v));
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Version of the wire format. Bump on **any** change to **any** canonical
/// encoding, and regenerate the golden fixture (`tests/golden/`) in the
/// same change — CI gates on the pair moving together.
pub const CODEC_VERSION: u32 = 1;

/// Four magic bytes opening every versioned envelope.
pub const MAGIC: [u8; 4] = *b"WLTZ";

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the value was complete.
    Eof,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type whose tag was unrecognized.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A decoded value violated a structural invariant of its type.
    Invalid(&'static str),
    /// The envelope did not start with [`MAGIC`].
    BadMagic,
    /// The envelope was written by a different [`CODEC_VERSION`].
    VersionMismatch {
        /// Version found in the envelope.
        found: u32,
    },
    /// Bytes remained after the value was fully decoded.
    TrailingBytes(usize),
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Eof => write!(f, "unexpected end of input"),
            DecodeError::BadTag { ty, tag } => write!(f, "unknown tag {tag} for {ty}"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
            DecodeError::BadMagic => write!(f, "missing WLTZ magic"),
            DecodeError::VersionMismatch { found } => {
                write!(f, "codec version {found} != supported {CODEC_VERSION}")
            }
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Growable little-endian byte sink the canonical encoding is written to.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the format is width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_raw(s.as_bytes());
    }
}

/// Cursor over a byte slice, mirroring [`ByteWriter`]'s primitives.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors with [`DecodeError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Eof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to the platform `usize`.
    pub fn get_usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.get_u64()?).map_err(|_| DecodeError::Invalid("usize overflow"))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0 and 1.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { ty: "bool", tag }),
        }
    }

    /// Reads a length-prefixed string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

/// A value with a canonical binary encoding.
///
/// The encoding must be a pure function of the value's contents and must
/// re-encode byte-identically after a decode.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `w`.
    fn encode(&self, w: &mut ByteWriter);
}

/// A value reconstructible from its canonical encoding.
pub trait Decode: Sized {
    /// Reads one value from `r`, validating structural invariants.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;
}

impl Encode for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_u64()
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(*self);
    }
}

impl Decode for usize {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_usize()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_bool()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.get_str()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = r.get_usize()?;
        // Guard the pre-allocation against corrupt length prefixes: never
        // reserve more entries than bytes remaining (every entry consumes
        // at least one byte).
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag { ty: "Option", tag }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Encodes a value to its bare canonical bytes (no envelope).
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from bare canonical bytes, requiring full consumption.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Encodes a value inside the versioned envelope
/// (`MAGIC || CODEC_VERSION || payload`) — the format cache files and any
/// cross-process artifact exchange use.
pub fn encode_versioned<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(&MAGIC);
    w.put_u32(CODEC_VERSION);
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from the versioned envelope, rejecting foreign magic,
/// other versions and trailing bytes.
pub fn decode_versioned<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let found = r.get_u32()?;
    if found != CODEC_VERSION {
        return Err(DecodeError::VersionMismatch { found });
    }
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// FNV-1a 64-bit hash — stable across platforms and releases, the basis
/// of every content address in the workspace.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The stable 64-bit content hash of a value: FNV-1a over its canonical
/// encoding. Equal values hash equal on every platform; the hash is part
/// of the format contract and changes only with [`CODEC_VERSION`].
pub fn content_hash<T: Encode>(value: &T) -> u64 {
    fnv1a64(&encode_to_vec(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("waltz");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "waltz");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_eof_not_panic() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<Vec<u64>>(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, DecodeError::Eof), "cut={cut}: {err:?}");
        }
    }

    #[test]
    fn corrupt_length_prefix_does_not_overallocate() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        let err = decode_from_slice::<Vec<u64>>(w.as_bytes()).unwrap_err();
        assert!(matches!(err, DecodeError::Eof | DecodeError::Invalid(_)));
    }

    #[test]
    fn versioned_envelope_gates_magic_and_version() {
        let bytes = encode_versioned(&3u64);
        assert_eq!(decode_versioned::<u64>(&bytes).unwrap(), 3);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            decode_versioned::<u64>(&wrong_magic).unwrap_err(),
            DecodeError::BadMagic
        );

        let mut wrong_version = bytes.clone();
        wrong_version[4] = wrong_version[4].wrapping_add(1);
        assert!(matches!(
            decode_versioned::<u64>(&wrong_version).unwrap_err(),
            DecodeError::VersionMismatch { .. }
        ));

        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(
            decode_versioned::<u64>(&trailing).unwrap_err(),
            DecodeError::TrailingBytes(1)
        );
    }

    #[test]
    fn fnv1a64_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn content_hash_is_injective_on_distinct_options() {
        assert_ne!(
            content_hash(&Some(0u64)),
            content_hash(&Option::<u64>::None)
        );
    }
}
