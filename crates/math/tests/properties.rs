//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use waltz_math::{expm, linalg, metrics, vector, Matrix, C64};

fn random_unitary(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    linalg::haar_unitary(n, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn complex_field_properties(
        (ar, ai, br, bi, cr, ci) in (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0,
                                     -10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0)
    ) {
        let a = C64::new(ar, ai);
        let b = C64::new(br, bi);
        let c = C64::new(cr, ci);
        prop_assert!(((a + b) * c).approx_eq(a * c + b * c, 1e-9));
        prop_assert!((a * b).approx_eq(b * a, 1e-12));
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-9));
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-8);
    }

    #[test]
    fn haar_unitaries_compose_and_invert(seed in 0u64..500, n in 2usize..6) {
        let u = random_unitary(n, seed);
        let v = random_unitary(n, seed.wrapping_add(1));
        let uv = u.matmul(&v);
        prop_assert!(uv.is_unitary(1e-8));
        prop_assert!(uv.dagger().approx_eq(&v.dagger().matmul(&u.dagger()), 1e-9));
        let inv = linalg::inverse(&uv).unwrap();
        prop_assert!(inv.approx_eq(&uv.dagger(), 1e-7));
    }

    #[test]
    fn kron_mixed_product_property(seed in 0u64..200) {
        // (A (x) B)(C (x) D) = AC (x) BD
        let a = random_unitary(2, seed);
        let b = random_unitary(3, seed + 1);
        let c = random_unitary(2, seed + 2);
        let d = random_unitary(3, seed + 3);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn expm_of_skew_hermitian_is_unitary_and_invertible(seed in 0u64..200, t in 0.01f64..5.0) {
        // H = U D U† Hermitian; exp(-iHt) exp(+iHt) = I.
        let u = random_unitary(4, seed);
        let d = Matrix::from_diag(&[
            C64::real(0.3), C64::real(-1.1), C64::real(2.0), C64::real(0.7),
        ]);
        let h = u.matmul(&d).matmul(&u.dagger());
        let fwd = expm::expm(&h.scale(C64::new(0.0, -t)));
        let bwd = expm::expm(&h.scale(C64::new(0.0, t)));
        prop_assert!(fwd.is_unitary(1e-8));
        prop_assert!(fwd.matmul(&bwd).is_identity(1e-8));
    }

    #[test]
    fn lu_solves_random_systems(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_unitary(5, seed).scale(C64::real(2.0));
        let x: Vec<C64> = linalg::haar_state(5, &mut rng);
        let b = a.apply(&x);
        let solved = linalg::LuDecomposition::new(&a).unwrap().solve_vec(&b);
        for (got, want) in solved.iter().zip(x.iter()) {
            prop_assert!(got.approx_eq(*want, 1e-8));
        }
    }

    #[test]
    fn gate_fidelity_is_unitarily_invariant(seed in 0u64..200) {
        // F(WU, WV) = F(U, V) for unitary W.
        let u = random_unitary(4, seed);
        let v = random_unitary(4, seed + 7);
        let w = random_unitary(4, seed + 13);
        let f1 = metrics::gate_fidelity(&u, &v);
        let f2 = metrics::gate_fidelity(&w.matmul(&u), &w.matmul(&v));
        prop_assert!((f1 - f2).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f1));
    }

    #[test]
    fn unitaries_preserve_norm_and_inner_products(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(6, seed);
        let a = linalg::haar_state(6, &mut rng);
        let b = linalg::haar_state(6, &mut rng);
        let ua = u.apply(&a);
        let ub = u.apply(&b);
        prop_assert!((vector::norm(&ua) - 1.0).abs() < 1e-9);
        prop_assert!(vector::inner(&ua, &ub).approx_eq(vector::inner(&a, &b), 1e-9));
    }

    #[test]
    fn permutations_compose_like_functions(perm in proptest::sample::subsequence(vec![0usize,1,2,3,4], 5)) {
        // Only full permutations: skip shorter subsequences.
        if perm.len() == 5 {
            let m = Matrix::permutation(&perm);
            prop_assert!(m.is_unitary(1e-12));
            // M^k eventually returns to identity (order divides 5! but we
            // just check a bounded power).
            let mut acc = Matrix::identity(5);
            let mut returned = false;
            for _ in 0..121 {
                acc = acc.matmul(&m);
                if acc.is_identity(1e-9) {
                    returned = true;
                    break;
                }
            }
            prop_assert!(returned);
        }
    }
}
